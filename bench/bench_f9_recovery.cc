/// F9 (table) — Recovery cost of the two durability designs. The same
/// TPC-C run is logged once with value logging and once with command
/// logging; each log is then replayed into a freshly loaded engine.
/// Expected shape: command logs are smaller but replay slower per
/// transaction (they re-execute logic); value logs replay faster per byte.
///
/// Second axis — checkpoint interval vs recovery time. A value-logged
/// SmallBank run is repeated with 0..15 online checkpoints spread evenly
/// through it; each checkpoint truncates the log prefix, so recovery becomes
/// "load the newest checkpoint + replay the suffix". More frequent
/// checkpoints shrink the replayed suffix (and recovery time) at the cost of
/// checkpoint writes during the run. SmallBank (not TPC-C) because the
/// checkpoint loader needs a schema-complete but row-empty target engine,
/// which SmallBank's two-table schema can provide cheaply.

#include <chrono>

#include "bench_common.h"
#include "log/checkpoint.h"
#include "log/recovery.h"

using namespace next700;
using namespace next700::bench;

namespace {

struct Produced {
  std::string path;
  uint64_t commits;
};

Produced ProduceLog(LoggingKind kind, const TpccOptions& tpcc) {
  char path[128];
  std::snprintf(path, sizeof(path), "/tmp/next700_f9_%s.logd",
                LoggingKindName(kind));
  RemoveLogDir(path);
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 2;
  eng.logging = kind;
  eng.log_dir = path;
  eng.sync_commit = true;
  eng.log_sync = LogSyncPolicy::kFdatasync;  // Real barriers while logging.
  Engine engine(eng);
  TpccWorkload workload(tpcc);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = QuickMode() ? 200 : 2000;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  return Produced{path, stats.commits};
}

SmallBankOptions CkptBank() {
  SmallBankOptions bank;
  bank.num_accounts = QuickMode() ? 1000 : 10000;
  return bank;
}

/// One checkpoint-interval point: the run is split into `checkpoints + 1`
/// equal batches with a checkpoint after each batch except the last, so
/// the log suffix left for recovery is 1/(checkpoints+1) of the run.
void RunCheckpointPoint(int checkpoints, JsonOutput* json) {
  const std::string log_dir = "/tmp/next700_f9_ckpt.logd";
  const std::string ckpt_dir = "/tmp/next700_f9_ckpt.ckptd";
  RemoveLogDir(log_dir);
  RemoveLogDir(ckpt_dir);
  const SmallBankOptions bank = CkptBank();
  uint64_t commits = 0;
  {
    EngineOptions eng;
    eng.cc_scheme = CcScheme::kNoWait;
    eng.max_threads = 2;
    eng.logging = LoggingKind::kValue;
    eng.log_dir = log_dir;
    eng.sync_commit = true;
    eng.log_sync = LogSyncPolicy::kFdatasync;
    eng.log_segment_bytes = 64 << 10;  // Rotate often so truncation can bite.
    if (checkpoints > 0) eng.checkpoint_dir = ckpt_dir;
    Engine engine(eng);
    SmallBankWorkload workload(bank);
    workload.Load(&engine);
    const uint64_t total = QuickMode() ? 2000 : 20000;
    const int batches = checkpoints + 1;
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = total / static_cast<uint64_t>(batches);
    for (int b = 0; b < batches; ++b) {
      commits += Driver::Run(&engine, &workload, driver).commits;
      if (b + 1 < batches) {
        const Status s = engine.TriggerCheckpoint(nullptr);
        NEXT700_CHECK_MSG(s.ok(), s.ToString().c_str());
      }
    }
  }

  // Recovery target. A checkpoint restores every row, so its target must be
  // schema-complete but row-empty; plain full replay (checkpoints == 0)
  // instead replays over the deterministically re-loaded initial state,
  // because the bulk load itself is not logged.
  EngineOptions clean;
  clean.cc_scheme = CcScheme::kNoWait;
  clean.max_threads = 2;
  Engine engine(clean);
  SmallBankWorkload workload(bank);
  workload.Load(&engine);
  if (checkpoints > 0) {
    for (const char* index_name : {"SAVINGS_PK", "CHECKING_PK"}) {
      Index* index = engine.catalog()->GetIndex(index_name);
      for (uint64_t acct = 0; acct < bank.num_accounts; ++acct) {
        Row* row = index->Lookup(acct);
        NEXT700_CHECK(row != nullptr);
        index->Remove(acct, row);
        row->table->FreeRow(row);
      }
    }
  }
  RecoverOutcome outcome;
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = RecoverEngine(&engine, checkpoints > 0 ? ckpt_dir : "",
                                 log_dir, nullptr, &outcome);
  NEXT700_CHECK_MSG(s.ok(), s.ToString().c_str());
  const double recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  NEXT700_CHECK(outcome.used_checkpoint == (checkpoints > 0));
  const double ckpt_mb =
      static_cast<double>(outcome.checkpoint.bytes) / (1024.0 * 1024.0);
  const double suffix_mb =
      static_cast<double>(outcome.log.bytes_read) / (1024.0 * 1024.0);
  std::printf("%d,%llu,%.2f,%.2f,%llu,%.3f\n", checkpoints,
              static_cast<unsigned long long>(commits), ckpt_mb, suffix_mb,
              static_cast<unsigned long long>(outcome.log.txns_replayed),
              recovery_seconds);
  std::fflush(stdout);
  json->AddPoint(
      {{"series", JsonOutput::Str("checkpoint_interval")},
       {"checkpoints", JsonOutput::Num(checkpoints)},
       {"txns_logged", JsonOutput::Num(static_cast<double>(commits))},
       {"checkpoint_mb", JsonOutput::Num(ckpt_mb)},
       {"suffix_mb", JsonOutput::Num(suffix_mb)},
       {"txns_replayed",
        JsonOutput::Num(static_cast<double>(outcome.log.txns_replayed))},
       {"recovery_seconds", JsonOutput::Num(recovery_seconds)}});
  RemoveLogDir(log_dir);
  RemoveLogDir(ckpt_dir);
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F9", "recovery replay: value vs command logging (TPC-C)");
  PrintHeader("F9", "recovery replay: value vs command logging (TPC-C)",
              "logging,log_mb,txns_logged,txns_replayed,replay_seconds,"
              "ktxn_per_s_replay");
  const TpccOptions tpcc = BenchTpcc(1);
  for (LoggingKind kind : {LoggingKind::kValue, LoggingKind::kCommand}) {
    const Produced produced = ProduceLog(kind, tpcc);

    // Fresh engine at the initial (deterministically re-loadable) state.
    EngineOptions clean;
    clean.cc_scheme = CcScheme::kNoWait;
    clean.max_threads = 2;
    Engine engine(clean);
    TpccWorkload workload(tpcc);
    workload.Load(&engine);
    RecoveryManager recovery(&engine);
    RecoveryStats stats;
    const Status s = recovery.Replay(produced.path, &stats);
    NEXT700_CHECK_MSG(s.ok(), s.ToString().c_str());
    const double ktxn_per_s =
        stats.elapsed_seconds > 0
            ? static_cast<double>(stats.txns_replayed) / 1000.0 /
                  stats.elapsed_seconds
            : 0.0;
    std::printf("%s,%.2f,%llu,%llu,%.3f,%.1f\n", LoggingKindName(kind),
                static_cast<double>(stats.bytes_read) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(produced.commits),
                static_cast<unsigned long long>(stats.txns_replayed),
                stats.elapsed_seconds, ktxn_per_s);
    std::fflush(stdout);
    json.AddPoint(
        {{"series", JsonOutput::Str("replay")},
         {"logging", JsonOutput::Str(LoggingKindName(kind))},
         {"log_mb", JsonOutput::Num(static_cast<double>(stats.bytes_read) /
                                    (1024.0 * 1024.0))},
         {"txns_logged",
          JsonOutput::Num(static_cast<double>(produced.commits))},
         {"txns_replayed",
          JsonOutput::Num(static_cast<double>(stats.txns_replayed))},
         {"replay_seconds", JsonOutput::Num(stats.elapsed_seconds)},
         {"ktxn_per_s_replay", JsonOutput::Num(ktxn_per_s)}});
    RemoveLogDir(produced.path);
  }

  PrintHeader("F9b",
              "checkpoint interval vs recovery time (SmallBank, value log)",
              "checkpoints,txns_logged,checkpoint_mb,suffix_mb,txns_replayed,"
              "recovery_seconds");
  for (int checkpoints : {0, 1, 3, 7, 15}) {
    RunCheckpointPoint(checkpoints, &json);
  }
  return 0;
}
