/// F9 (table) — Recovery cost of the two durability designs. The same
/// TPC-C run is logged once with value logging and once with command
/// logging; each log is then replayed into a freshly loaded engine.
/// Expected shape: command logs are smaller but replay slower per
/// transaction (they re-execute logic); value logs replay faster per byte.

#include "bench_common.h"
#include "log/recovery.h"

using namespace next700;
using namespace next700::bench;

namespace {

struct Produced {
  std::string path;
  uint64_t commits;
};

Produced ProduceLog(LoggingKind kind, const TpccOptions& tpcc) {
  char path[128];
  std::snprintf(path, sizeof(path), "/tmp/next700_f9_%s.logd",
                LoggingKindName(kind));
  RemoveLogDir(path);
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 2;
  eng.logging = kind;
  eng.log_dir = path;
  eng.sync_commit = true;
  eng.log_sync = LogSyncPolicy::kFdatasync;  // Real barriers while logging.
  Engine engine(eng);
  TpccWorkload workload(tpcc);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = QuickMode() ? 200 : 2000;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  return Produced{path, stats.commits};
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F9", "recovery replay: value vs command logging (TPC-C)");
  PrintHeader("F9", "recovery replay: value vs command logging (TPC-C)",
              "logging,log_mb,txns_logged,txns_replayed,replay_seconds,"
              "ktxn_per_s_replay");
  const TpccOptions tpcc = BenchTpcc(1);
  for (LoggingKind kind : {LoggingKind::kValue, LoggingKind::kCommand}) {
    const Produced produced = ProduceLog(kind, tpcc);

    // Fresh engine at the initial (deterministically re-loadable) state.
    EngineOptions clean;
    clean.cc_scheme = CcScheme::kNoWait;
    clean.max_threads = 2;
    Engine engine(clean);
    TpccWorkload workload(tpcc);
    workload.Load(&engine);
    RecoveryManager recovery(&engine);
    RecoveryStats stats;
    const Status s = recovery.Replay(produced.path, &stats);
    NEXT700_CHECK_MSG(s.ok(), s.ToString().c_str());
    const double ktxn_per_s =
        stats.elapsed_seconds > 0
            ? static_cast<double>(stats.txns_replayed) / 1000.0 /
                  stats.elapsed_seconds
            : 0.0;
    std::printf("%s,%.2f,%llu,%llu,%.3f,%.1f\n", LoggingKindName(kind),
                static_cast<double>(stats.bytes_read) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(produced.commits),
                static_cast<unsigned long long>(stats.txns_replayed),
                stats.elapsed_seconds, ktxn_per_s);
    std::fflush(stdout);
    json.AddPoint(
        {{"logging", JsonOutput::Str(LoggingKindName(kind))},
         {"log_mb", JsonOutput::Num(static_cast<double>(stats.bytes_read) /
                                    (1024.0 * 1024.0))},
         {"txns_logged",
          JsonOutput::Num(static_cast<double>(produced.commits))},
         {"txns_replayed",
          JsonOutput::Num(static_cast<double>(stats.txns_replayed))},
         {"replay_seconds", JsonOutput::Num(stats.elapsed_seconds)},
         {"ktxn_per_s_replay", JsonOutput::Num(ktxn_per_s)}});
    RemoveLogDir(produced.path);
  }
  return 0;
}
