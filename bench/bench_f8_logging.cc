/// F8 (table) — Logging overhead across the composition space: no logging
/// vs value logging vs command logging, each at three modelled log-device
/// latencies (DRAM-like NVM 0us, NVMe ~20us, SATA-SSD ~100us), on TPC-C
/// with synchronous group commit. Expected shape [Aether; H-Store]:
/// command logs are a fraction of value-log bytes; group commit keeps
/// throughput usable even at high device latency; the latency knob widens
/// the none-vs-sync gap.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "F8", "logging overhead: kind x device latency (TPC-C, sync commit)");
  PrintHeader("F8",
              "logging overhead: kind x device latency (TPC-C, sync commit)",
              "logging,device_latency_us,throughput_txn_s,log_mb,"
              "mb_per_ktxn,flushes");
  const uint32_t warehouses = QuickMode() ? 1 : 2;
  for (LoggingKind kind :
       {LoggingKind::kNone, LoggingKind::kValue, LoggingKind::kCommand}) {
    for (uint64_t latency_us : {uint64_t{0}, uint64_t{20}, uint64_t{100}}) {
      if (kind == LoggingKind::kNone && latency_us != 0) continue;
      EngineOptions eng;
      eng.cc_scheme = CcScheme::kNoWait;
      eng.max_threads = static_cast<int>(warehouses);
      eng.num_partitions = warehouses;
      eng.logging = kind;
      eng.log_device_latency_us = latency_us;
      eng.log_flush_interval_us = 50;
      eng.sync_commit = true;
      char path[128];
      std::snprintf(path, sizeof(path), "/tmp/next700_f8_%s_%llu.log",
                    LoggingKindName(kind),
                    static_cast<unsigned long long>(latency_us));
      eng.log_path = path;
      Engine engine(eng);
      TpccWorkload workload(BenchTpcc(warehouses));
      workload.Load(&engine);
      DriverOptions driver;
      driver.num_threads = static_cast<int>(warehouses);
      driver.warmup_seconds = WarmupSeconds();
      driver.measure_seconds = MeasureSeconds();
      const RunStats stats = Driver::Run(&engine, &workload, driver);
      const double log_mb =
          static_cast<double>(stats.log_bytes) / (1024.0 * 1024.0);
      const double mb_per_ktxn =
          stats.commits == 0
              ? 0.0
              : log_mb / (static_cast<double>(stats.commits) / 1000.0);
      const uint64_t flushes =
          engine.log_manager() != nullptr ? engine.log_manager()->flush_count()
                                          : 0;
      std::printf("%s,%llu,%.0f,%.2f,%.3f,%llu\n", LoggingKindName(kind),
                  static_cast<unsigned long long>(latency_us),
                  stats.Throughput(), log_mb, mb_per_ktxn,
                  static_cast<unsigned long long>(flushes));
      std::fflush(stdout);
      json.AddPoint(
          {{"logging", JsonOutput::Str(LoggingKindName(kind))},
           {"device_latency_us",
            JsonOutput::Num(static_cast<double>(latency_us))},
           {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
           {"log_mb", JsonOutput::Num(log_mb)},
           {"mb_per_ktxn", JsonOutput::Num(mb_per_ktxn)},
           {"flushes", JsonOutput::Num(static_cast<double>(flushes))}});
      std::remove(path);
    }
  }
  return 0;
}
