/// F8 (table) — Logging overhead across the composition space: no logging
/// vs value logging vs command logging, each under the three durability
/// barriers (none = page-cache only, fdatasync after each group-commit
/// flush, O_DSYNC segments), on TPC-C with synchronous group commit.
/// Earlier revisions modelled the device with a sleep
/// (log_device_latency_us); the sync-policy axis replaces that with real
/// barriers — see EXPERIMENTS.md for the old simulated numbers. Expected
/// shape [Aether; H-Store]: command logs are a fraction of value-log
/// bytes; group commit amortizes the barrier across concurrent commits so
/// throughput stays usable even with fdatasync on every flush.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "F8", "logging overhead: kind x sync policy (TPC-C, sync commit)");
  PrintHeader("F8",
              "logging overhead: kind x sync policy (TPC-C, sync commit)",
              "logging,sync,throughput_txn_s,log_mb,mb_per_ktxn,flushes,"
              "barriers");
  const uint32_t warehouses = QuickMode() ? 1 : 2;
  for (LoggingKind kind :
       {LoggingKind::kNone, LoggingKind::kValue, LoggingKind::kCommand}) {
    for (LogSyncPolicy sync :
         {LogSyncPolicy::kNone, LogSyncPolicy::kFdatasync,
          LogSyncPolicy::kODsync}) {
      if (kind == LoggingKind::kNone && sync != LogSyncPolicy::kNone) {
        continue;
      }
      EngineOptions eng;
      eng.cc_scheme = CcScheme::kNoWait;
      eng.max_threads = static_cast<int>(warehouses);
      eng.num_partitions = warehouses;
      eng.logging = kind;
      eng.log_sync = sync;
      eng.log_flush_interval_us = 50;
      eng.sync_commit = true;
      char dir[128];
      std::snprintf(dir, sizeof(dir), "/tmp/next700_f8_%s_%s.logd",
                    LoggingKindName(kind), LogSyncPolicyName(sync));
      RemoveLogDir(dir);
      eng.log_dir = dir;
      Engine engine(eng);
      TpccWorkload workload(BenchTpcc(warehouses));
      workload.Load(&engine);
      DriverOptions driver;
      driver.num_threads = static_cast<int>(warehouses);
      driver.warmup_seconds = WarmupSeconds();
      driver.measure_seconds = MeasureSeconds();
      const RunStats stats = Driver::Run(&engine, &workload, driver);
      const double log_mb =
          static_cast<double>(stats.log_bytes) / (1024.0 * 1024.0);
      const double mb_per_ktxn =
          stats.commits == 0
              ? 0.0
              : log_mb / (static_cast<double>(stats.commits) / 1000.0);
      const uint64_t flushes =
          engine.log_manager() != nullptr ? engine.log_manager()->flush_count()
                                          : 0;
      const uint64_t barriers =
          engine.log_manager() != nullptr ? engine.log_manager()->sync_count()
                                          : 0;
      std::printf("%s,%s,%.0f,%.2f,%.3f,%llu,%llu\n", LoggingKindName(kind),
                  LogSyncPolicyName(sync), stats.Throughput(), log_mb,
                  mb_per_ktxn, static_cast<unsigned long long>(flushes),
                  static_cast<unsigned long long>(barriers));
      std::fflush(stdout);
      json.AddPoint(
          {{"logging", JsonOutput::Str(LoggingKindName(kind))},
           {"sync", JsonOutput::Str(LogSyncPolicyName(sync))},
           {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
           {"log_mb", JsonOutput::Num(log_mb)},
           {"mb_per_ktxn", JsonOutput::Num(mb_per_ktxn)},
           {"flushes", JsonOutput::Num(static_cast<double>(flushes))},
           {"barriers", JsonOutput::Num(static_cast<double>(barriers))}});
      RemoveLogDir(dir);
    }
  }
  return 0;
}
