/// F13 — HTAP interference: long analytical scans concurrent with OLTP
/// updates. Worker 0 repeatedly runs a full-range scan transaction (read
/// every row it returns); the remaining workers run hot RMW updates.
/// Expected shape (the keynote's OLTP+OLAP isolation/freshness theme):
/// single-version schemes either block writers behind the scan's locks
/// (2PL) or abort the scanner/writers at validation (OCC/TicToc); MVTO
/// serves the scan from a snapshot and leaves writers untouched.

#include <memory>

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

namespace {

class HtapWorkload : public Workload {
 public:
  HtapWorkload(uint64_t num_records) : num_records_(num_records) {}

  void Load(Engine* engine) override {
    Schema schema;
    schema.AddUint64("val");
    schema.AddUint64("pad");
    table_ = engine->CreateTable("facts", std::move(schema));
    index_ = engine->CreateIndex("facts_pk", table_, IndexKind::kBTree,
                                 num_records_);
    std::vector<uint8_t> buf(table_->schema().row_size());
    for (uint64_t key = 0; key < num_records_; ++key) {
      table_->schema().SetUint64(buf.data(), 0, 1);
      table_->schema().SetUint64(buf.data(), 1, key);
      Row* row = engine->LoadRow(table_, 0, key, buf.data());
      NEXT700_CHECK(index_->Insert(key, row).ok());
    }
  }

  Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) override {
    return thread_id == 0 ? RunScan(engine, rng)
                          : RunUpdate(engine, thread_id, rng);
  }

  const char* name() const override { return "htap"; }

 private:
  Status RunScan(Engine* engine, Rng* rng) {
    return RunWithRetry(rng, [&] {
      TxnContext* txn = engine->Begin(0);
      std::vector<Row*> rows;
      Status s = engine->Scan(txn, index_, 0, num_records_ - 1, 0, &rows);
      uint64_t sum = 0;
      std::vector<uint8_t> buf(table_->schema().row_size());
      for (Row* row : rows) {
        if (!s.ok()) break;
        s = engine->ReadRow(txn, row, buf.data());
        if (s.ok()) sum += table_->schema().GetUint64(buf.data(), 0);
      }
      if (s.ok()) s = engine->Commit(txn);
      if (!s.ok()) engine->Abort(txn);
      return s;
    });
  }

  Status RunUpdate(Engine* engine, int thread_id, Rng* rng) {
    const uint64_t key = rng->NextUint64(num_records_ / 8);  // Hot eighth.
    return RunWithRetry(rng, [&] {
      TxnContext* txn = engine->Begin(thread_id);
      std::vector<uint8_t> buf(table_->schema().row_size());
      Status s = engine->Read(txn, index_, key, buf.data());
      if (s.ok()) {
        table_->schema().SetUint64(buf.data(), 0,
                                   table_->schema().GetUint64(buf.data(), 0) +
                                       1);
        s = engine->Update(txn, index_, key, buf.data());
      }
      if (s.ok()) s = engine->Commit(txn);
      if (!s.ok()) engine->Abort(txn);
      return s;
    });
  }

  uint64_t num_records_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F13",
                     "OLTP updates vs concurrent full scans (1 scanner + N-1 "
                     "updaters)");
  PrintHeader("F13",
              "OLTP updates vs concurrent full scans (1 scanner + N-1 "
              "updaters)",
              "scheme,scans_completed,scan_p50_ms,oltp_txn_s,"
              "oltp_abort_ratio");
  const int threads = QuickMode() ? 2 : 4;
  const uint64_t records = QuickMode() ? 4096 : 32768;
  for (CcScheme scheme : {CcScheme::kNoWait, CcScheme::kDlDetect,
                          CcScheme::kOcc, CcScheme::kTicToc,
                          CcScheme::kMvto}) {
    EngineOptions eng;
    eng.cc_scheme = scheme;
    eng.max_threads = threads;
    Engine engine(eng);
    HtapWorkload workload(records);
    workload.Load(&engine);
    DriverOptions driver;
    driver.num_threads = threads;
    driver.warmup_seconds = WarmupSeconds();
    driver.measure_seconds = MeasureSeconds();
    const RunStats total = Driver::Run(&engine, &workload, driver);
    // Thread 0 is the scanner; the rest are OLTP.
    const ThreadStats* scanner = engine.stats(0);
    RunStats oltp;
    for (int t = 1; t < threads; ++t) oltp.Add(*engine.stats(t));
    oltp.elapsed_seconds = total.elapsed_seconds;
    std::printf("%s,%llu,%.2f,%.0f,%.4f\n", CcSchemeName(scheme),
                static_cast<unsigned long long>(scanner->commits),
                static_cast<double>(
                    scanner->commit_latency_ns.Percentile(0.5)) /
                    1e6,
                oltp.Throughput(), oltp.AbortRatio());
    std::fflush(stdout);
    json.AddPoint(
        {{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
         {"scans_completed",
          JsonOutput::Num(static_cast<double>(scanner->commits))},
         {"scan_p50_ms",
          JsonOutput::Num(
              static_cast<double>(scanner->commit_latency_ns.Percentile(0.5)) /
              1e6)},
         {"oltp_txn_s", JsonOutput::Num(oltp.Throughput())},
         {"oltp_abort_ratio", JsonOutput::Num(oltp.AbortRatio())}});
  }
  return 0;
}
