/// F7 — The partitioned-engine crossover. Partitioned YCSB sweeping the
/// fraction of multi-partition transactions; HSTORE against a
/// representative lock-based (NO_WAIT) and optimistic (SILO) engine.
/// Expected shape [HStore; Abyss]: HSTORE dominates at 0-5% multi-partition
/// work (no per-row CC at all) and collapses past ~10-20% as partition
/// locks serialize everything — the classic crossover.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F7",
                     "H-Store crossover vs multi-partition txn fraction "
                     "(partitioned YCSB)");
  PrintHeader("F7",
              "H-Store crossover vs multi-partition txn fraction "
              "(partitioned YCSB)",
              "scheme,mp_fraction_pct,throughput_txn_s,abort_ratio");
  const int threads = QuickMode() ? 2 : 4;
  const uint32_t partitions = static_cast<uint32_t>(threads);
  const std::vector<double> fractions = {0.0,  0.01, 0.05, 0.1,
                                         0.2,  0.5,  1.0};
  for (CcScheme scheme :
       {CcScheme::kHstore, CcScheme::kNoWait, CcScheme::kOcc}) {
    for (double fraction : fractions) {
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = 16;
      ycsb.write_fraction = 0.5;
      ycsb.theta = 0.0;
      ycsb.partitioned = true;
      ycsb.multi_partition_fraction = fraction;
      ycsb.partitions_per_mp_txn = 2;
      YcsbSetup setup = MakeYcsb(scheme, ycsb, threads, partitions);
      const RunStats stats =
          RunYcsb(setup.engine.get(), setup.workload.get(), threads);
      std::printf("%s,%.0f,%.0f,%.4f\n", CcSchemeName(scheme),
                  fraction * 100, stats.Throughput(), stats.AbortRatio());
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"mp_fraction_pct", JsonOutput::Num(fraction * 100)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())}});
    }
  }
  return 0;
}
