/// F14 — Deterministic vs nondeterministic execution ("new designs").
/// The same stream of read-modify-write transactions over a hot set of
/// rows runs through (a) the Calvin-style deterministic engine and (b) the
/// SILO and NO_WAIT compositions, sweeping the hot-set size (contention).
/// Expected shape [Calvin]: the deterministic engine never aborts and its
/// throughput is nearly flat across contention levels, while the
/// nondeterministic engines abort-and-retry increasingly as the hot set
/// shrinks; at low contention the sequencer overhead makes determinism the
/// slower choice — the classic trade.

#include "bench_common.h"
#include "det/deterministic.h"
#include "index/hash_index.h"

using namespace next700;
using namespace next700::bench;

namespace {

constexpr int kThreads = 2;

double RunDeterministic(uint64_t hot_rows, uint64_t txns) {
  Schema s;
  s.AddInt64("v");
  Table table(0, "t", std::move(s), 1);
  HashIndex index(&table, hot_rows * 2);
  for (uint64_t key = 0; key < hot_rows; ++key) {
    Row* row = table.AllocateRow(0);
    row->primary_key = key;
    table.schema().SetInt64(row->data(), 0, 0);
    NEXT700_CHECK(index.Insert(key, row).ok());
  }
  const Schema& schema = table.schema();
  Rng rng(17);
  const uint64_t start = NowNanos();
  DeterministicEngine det(&table, &index, {.num_workers = kThreads});
  for (uint64_t i = 0; i < txns; ++i) {
    const uint64_t key = rng.NextUint64(hot_rows);
    det.Submit({}, {key}, [&schema, key](DetAccessor* db) {
      uint8_t buf[8];
      NEXT700_CHECK(db->Read(key, buf).ok());
      schema.SetInt64(buf, 0, schema.GetInt64(buf, 0) + 1);
      NEXT700_CHECK(db->Write(key, buf).ok());
    });
  }
  det.WaitAll();
  const double seconds = static_cast<double>(NowNanos() - start) / 1e9;
  return static_cast<double>(txns) / seconds;
}

struct NonDetResult {
  double throughput;
  double abort_ratio;
};

NonDetResult RunNonDeterministic(CcScheme scheme, uint64_t hot_rows,
                                 uint64_t txns) {
  EngineOptions eng;
  eng.cc_scheme = scheme;
  eng.max_threads = kThreads;
  Engine engine(eng);
  YcsbOptions ycsb;
  ycsb.num_records = hot_rows;
  ycsb.ops_per_txn = 1;
  ycsb.write_fraction = 1.0;
  ycsb.read_modify_write = true;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = kThreads;
  driver.txns_per_thread = txns / kThreads;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  return NonDetResult{stats.Throughput(), stats.AbortRatio()};
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F14",
                     "deterministic (Calvin-style) vs SILO/NO_WAIT across "
                     "contention (1-op RMW txns)");
  PrintHeader("F14",
              "deterministic (Calvin-style) vs SILO/NO_WAIT across "
              "contention (1-op RMW txns)",
              "engine,hot_rows,throughput_txn_s,abort_ratio");
  const uint64_t txns = QuickMode() ? 20000 : 200000;
  for (const uint64_t hot_rows : {uint64_t{4}, uint64_t{64}, uint64_t{4096}}) {
    const double det = RunDeterministic(hot_rows, txns);
    std::printf("DETERMINISTIC,%llu,%.0f,0.0000\n",
                static_cast<unsigned long long>(hot_rows), det);
    std::fflush(stdout);
    json.AddPoint({{"engine", JsonOutput::Str("DETERMINISTIC")},
                   {"hot_rows", JsonOutput::Num(static_cast<double>(hot_rows))},
                   {"throughput_txn_s", JsonOutput::Num(det)},
                   {"abort_ratio", JsonOutput::Num(0.0)}});
    for (CcScheme scheme : {CcScheme::kOcc, CcScheme::kNoWait}) {
      const NonDetResult r = RunNonDeterministic(scheme, hot_rows, txns);
      std::printf("%s,%llu,%.0f,%.4f\n", CcSchemeName(scheme),
                  static_cast<unsigned long long>(hot_rows), r.throughput,
                  r.abort_ratio);
      std::fflush(stdout);
      json.AddPoint(
          {{"engine", JsonOutput::Str(CcSchemeName(scheme))},
           {"hot_rows", JsonOutput::Num(static_cast<double>(hot_rows))},
           {"throughput_txn_s", JsonOutput::Num(r.throughput)},
           {"abort_ratio", JsonOutput::Num(r.abort_ratio)}});
    }
  }
  return 0;
}
