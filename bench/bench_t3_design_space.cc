/// T3 (table) — The "next 700 engines" enumeration. Sweeps the composition
/// matrix (CC scheme x index kind x logging mode x timestamp allocator),
/// instantiates every valid engine, and smoke-runs a fixed YCSB workload on
/// each, proving that the design space really is spanned by orthogonal
/// components rather than by 700 hand-built systems — the keynote's thesis.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("T3",
                     "design-space enumeration: every composition smoke-run "
                     "(fixed-work YCSB)");
  PrintHeader("T3",
              "design-space enumeration: every composition smoke-run "
              "(fixed-work YCSB)",
              "cc,index,logging,ts_alloc,throughput_txn_s,abort_ratio");
  int compositions = 0;
  for (CcScheme cc : AllCcSchemes()) {
    for (IndexKind index : {IndexKind::kHash, IndexKind::kBTree}) {
      for (LoggingKind logging :
           {LoggingKind::kNone, LoggingKind::kValue, LoggingKind::kCommand}) {
        for (TimestampAllocatorKind ts_alloc :
             {TimestampAllocatorKind::kAtomic,
              TimestampAllocatorKind::kBatched}) {
          if (cc == CcScheme::kSi &&
              ts_alloc == TimestampAllocatorKind::kBatched) {
            // Invalid composition: SI's snapshot stability and first-
            // committer-wins need real-time timestamps. MVTO is fine — it
            // serializes in ts order and its GC watermark is covered by the
            // batched allocator's floor protocol.
            continue;
          }
          EngineOptions eng;
          eng.cc_scheme = cc;
          eng.max_threads = 2;
          eng.num_partitions = 2;
          eng.logging = logging;
          eng.ts_allocator = ts_alloc;
          if (logging != LoggingKind::kNone) {
            eng.log_dir = "/tmp/next700_t3.logd";
            RemoveLogDir(eng.log_dir);  // Reset between compositions.
          }
          Engine engine(eng);
          YcsbOptions ycsb;
          ycsb.num_records = QuickMode() ? 4096 : 16384;
          ycsb.ops_per_txn = 8;
          ycsb.write_fraction = 0.5;
          ycsb.theta = 0.6;
          ycsb.index_kind = index;
          ycsb.partitioned = cc == CcScheme::kHstore;
          YcsbWorkload workload(ycsb);
          workload.Load(&engine);
          DriverOptions driver;
          driver.num_threads = 2;
          driver.txns_per_thread = QuickMode() ? 200 : 1000;
          const RunStats stats = Driver::Run(&engine, &workload, driver);
          NEXT700_CHECK_MSG(stats.commits == 2 * driver.txns_per_thread,
                            "composition failed its smoke run");
          std::printf("%s,%s,%s,%s,%.0f,%.4f\n", CcSchemeName(cc),
                      IndexKindName(index), LoggingKindName(logging),
                      ts_alloc == TimestampAllocatorKind::kAtomic ? "atomic"
                                                                  : "batched",
                      stats.Throughput(), stats.AbortRatio());
          std::fflush(stdout);
          json.AddPoint(
              {{"cc", JsonOutput::Str(CcSchemeName(cc))},
               {"index", JsonOutput::Str(IndexKindName(index))},
               {"logging", JsonOutput::Str(LoggingKindName(logging))},
               {"ts_alloc",
                JsonOutput::Str(ts_alloc == TimestampAllocatorKind::kAtomic
                                    ? "atomic"
                                    : "batched")},
               {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
               {"abort_ratio", JsonOutput::Num(stats.AbortRatio())}});
          ++compositions;
        }
      }
    }
  }
  std::printf("# %d engine compositions ran to completion\n", compositions);
  std::remove("/tmp/next700_t3.log");
  return 0;
}
