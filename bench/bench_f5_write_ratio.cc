/// F5 — Read/write mix sensitivity. YCSB at moderate skew (theta = 0.8),
/// sweeping the per-op write fraction from read-only to write-only.
/// Expected shape [Abyss]: MVTO shines read-heavy (readers never block),
/// the gap closes as writes dominate and version churn costs appear.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F5", "write-fraction sweep (YCSB theta=0.8)");
  PrintHeader("F5", "write-fraction sweep (YCSB theta=0.8)",
              "scheme,write_fraction,throughput_txn_s,abort_ratio");
  const int threads = QuickMode() ? 2 : 4;
  for (CcScheme scheme : AllCcSchemes()) {
    for (double wf : {0.0, 0.05, 0.2, 0.5, 0.8, 1.0}) {
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = 16;
      ycsb.write_fraction = wf;
      ycsb.read_modify_write = true;
      ycsb.theta = 0.8;
      YcsbSetup setup = MakeYcsb(scheme, ycsb, threads);
      const RunStats stats =
          RunYcsb(setup.engine.get(), setup.workload.get(), threads);
      std::printf("%s,%.2f,%.0f,%.4f\n", CcSchemeName(scheme), wf,
                  stats.Throughput(), stats.AbortRatio());
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"write_fraction", JsonOutput::Num(wf)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())}});
    }
  }
  return 0;
}
