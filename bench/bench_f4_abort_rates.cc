/// F4 — Abort behaviour across the contention spectrum: the same sweep as
/// F3, reported as abort ratios plus validation-failure and lock-wait
/// breakdowns. Expected shape [Abyss]: optimistic validation failures
/// explode under skew; WAIT_DIE kills more transactions than DL_DETECT;
/// MVTO aborts on late writes only.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F4", "abort breakdown vs skew (YCSB 50r/50w rmw)");
  PrintHeader("F4", "abort breakdown vs skew (YCSB 50r/50w rmw)",
              "scheme,theta,abort_ratio,validation_fails,lock_waits,"
              "aborts_per_commit");
  const int threads = QuickMode() ? 2 : 4;
  for (CcScheme scheme : AllCcSchemes()) {
    for (double theta : {0.0, 0.6, 0.9, 0.99}) {
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = 16;
      ycsb.write_fraction = 0.5;
      ycsb.read_modify_write = true;
      ycsb.theta = theta;
      YcsbSetup setup = MakeYcsb(scheme, ycsb, threads);
      const RunStats stats =
          RunYcsb(setup.engine.get(), setup.workload.get(), threads);
      const double aborts_per_commit =
          stats.commits == 0 ? 0.0
                             : static_cast<double>(stats.aborts) /
                                   static_cast<double>(stats.commits);
      std::printf("%s,%.2f,%.4f,%llu,%llu,%.3f\n", CcSchemeName(scheme),
                  theta, stats.AbortRatio(),
                  static_cast<unsigned long long>(stats.validation_fails),
                  static_cast<unsigned long long>(stats.lock_waits),
                  aborts_per_commit);
      std::fflush(stdout);
      json.AddPoint(
          {{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
           {"theta", JsonOutput::Num(theta)},
           {"abort_ratio", JsonOutput::Num(stats.AbortRatio())},
           {"validation_fails",
            JsonOutput::Num(static_cast<double>(stats.validation_fails))},
           {"lock_waits",
            JsonOutput::Num(static_cast<double>(stats.lock_waits))},
           {"aborts_per_commit", JsonOutput::Num(aborts_per_commit)}});
    }
  }
  return 0;
}
