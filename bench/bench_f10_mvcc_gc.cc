/// F10 — Version-chain growth and garbage collection in the multi-version
/// engine. An update-heavy hot-key YCSB runs with GC on and off; we report
/// throughput and the resulting chain lengths over the hottest keys.
/// Expected shape: without GC chains grow with every update and read
/// latency climbs with them; incremental GC keeps both flat.

#include <algorithm>

#include "bench_common.h"
#include "cc/mvto.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F10", "MVTO version chains with and without GC");
  PrintHeader("F10", "MVTO version chains with and without GC",
              "gc,seconds_run,throughput_txn_s,max_chain,avg_hot_chain");
  for (const bool gc : {true, false}) {
    EngineOptions eng;
    eng.cc_scheme = CcScheme::kMvto;
    eng.max_threads = 2;
    eng.mvcc_gc = gc;
    Engine engine(eng);
    YcsbOptions ycsb;
    ycsb.num_records = QuickMode() ? 1024 : 8192;  // Small: hot updates.
    ycsb.ops_per_txn = 4;
    ycsb.write_fraction = 0.9;
    ycsb.read_modify_write = true;
    ycsb.theta = 0.9;
    YcsbWorkload workload(ycsb);
    workload.Load(&engine);
    DriverOptions driver;
    driver.num_threads = 2;
    driver.warmup_seconds = WarmupSeconds();
    driver.measure_seconds = MeasureSeconds();
    const RunStats stats = Driver::Run(&engine, &workload, driver);

    // Inspect chains over the whole table.
    size_t max_chain = 0;
    size_t total = 0;
    size_t hot = 0;
    workload.table()->ForEachRow([&](Row* row) {
      const size_t len = Mvto::ChainLength(row);
      max_chain = std::max(max_chain, len);
      if (len > 1) {
        total += len;
        ++hot;
      }
    });
    const double avg_hot =
        hot == 0 ? 1.0 : static_cast<double>(total) / static_cast<double>(hot);
    std::printf("%s,%.2f,%.0f,%zu,%.1f\n", gc ? "on" : "off",
                driver.measure_seconds, stats.Throughput(), max_chain,
                avg_hot);
    std::fflush(stdout);
    json.AddPoint({{"gc", JsonOutput::Str(gc ? "on" : "off")},
                   {"seconds_run", JsonOutput::Num(driver.measure_seconds)},
                   {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                   {"max_chain", JsonOutput::Num(static_cast<double>(max_chain))},
                   {"avg_hot_chain", JsonOutput::Num(avg_hot)}});
  }
  return 0;
}
