/// N2 — Replication cost and staleness over loopback.
/// Starts the transaction service in-process with value logging and
/// attaches 0..2 in-process replicas (engine + log applier per replica),
/// then drives the pipelined load generator against the primary for three
/// ack modes: no replication, async shipping (commit acks gate only on
/// local durability), and semisync (acks additionally wait for one replica
/// to report the bytes durable on its own log). Reported per point:
/// primary throughput/latency and the replication lag the replicas showed
/// during the measurement window (primary durable LSN minus replica
/// applied LSN, sampled every few milliseconds). Expected shape: async
/// shipping costs a few percent of primary throughput (the event loop
/// shares cycles with the shippers) at a small steady-state lag; semisync
/// adds a loopback round trip plus the replica's group-commit interval to
/// every commit ack, which pipelining largely hides at the throughput
/// level but which is visible in p50.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "repl/replica_applier.h"
#include "server/loadgen.h"
#include "server/procs.h"
#include "server/server.h"

using namespace next700;
using namespace next700::bench;

namespace {

struct Mode {
  const char* name;
  server::ReplAckMode ack;
  std::vector<int> replica_counts;
};

struct ReplicaNode {
  std::string log_dir;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<repl::ReplicaApplier> applier;
};

EngineOptions NodeEngineOptions(int workers, const std::string& log_dir) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = workers;
  eng.num_partitions = static_cast<uint32_t>(workers);
  eng.logging = LoggingKind::kValue;
  eng.log_dir = log_dir;
  return eng;
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "N2", "replication: primary throughput and replica lag vs ack mode "
            "x replica count");
  PrintHeader("N2",
              "replication: primary throughput and replica lag vs ack mode "
              "x replica count",
              "mode,replicas,throughput_txn_s,ok,p50_us,p99_us,"
              "lag_mean_bytes,lag_max_bytes");

  const uint64_t records = QuickMode() ? 20000 : 100000;
  const double seconds = QuickMode() ? 0.3 : 2.0;
  const double warmup = QuickMode() ? 0.1 : 0.5;
  const int workers = 2;
  const std::string base_dir = "/tmp/next700_bench_n2";

  const std::vector<Mode> modes = {
      {"no-repl", server::ReplAckMode::kAsync, {0}},
      {"async", server::ReplAckMode::kAsync, {1, 2}},
      {"semisync", server::ReplAckMode::kSemisync, {1, 2}},
  };

  for (const Mode& mode : modes) {
    for (int num_replicas : mode.replica_counts) {
      const std::string primary_dir = base_dir + "_p.logd";
      RemoveLogDir(primary_dir);
      Engine engine(NodeEngineOptions(workers, primary_dir));
      server::KvServiceOptions kv;
      kv.num_records = records;
      server::RegisterKvService(&engine, kv);

      server::ServerOptions srv;
      srv.num_workers = workers;
      srv.repl_ack = mode.ack;
      server::Server server(&engine, srv);
      const Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 1;
      }

      std::vector<std::unique_ptr<ReplicaNode>> replicas;
      for (int r = 0; r < num_replicas; ++r) {
        auto node = std::make_unique<ReplicaNode>();
        node->log_dir = base_dir + "_r" + std::to_string(r) + ".logd";
        RemoveLogDir(node->log_dir);
        node->engine = std::make_unique<Engine>(
            NodeEngineOptions(workers, node->log_dir));
        server::KvServiceOptions rkv;
        rkv.num_records = records;
        server::RegisterKvService(node->engine.get(), rkv);
        repl::ReplicaApplierOptions opts;
        opts.primary_port = server.port();
        node->applier = std::make_unique<repl::ReplicaApplier>(
            node->engine.get(), opts);
        const Status s = node->applier->Start();
        if (!s.ok()) {
          std::fprintf(stderr, "replica start failed: %s\n",
                       s.ToString().c_str());
          return 1;
        }
        replicas.push_back(std::move(node));
      }

      // Lag sampler: max over replicas of (primary durable - applied),
      // every 5ms for the duration of the load.
      std::atomic<bool> sampling{num_replicas > 0};
      uint64_t lag_sum = 0, lag_samples = 0, lag_max = 0;
      std::thread sampler;
      if (num_replicas > 0) {
        sampler = std::thread([&] {
          while (sampling.load(std::memory_order_acquire)) {
            uint64_t worst = 0;
            // Applied first: sampling durable before applied could show a
            // negative (wrapped) lag when the replica advances in between.
            for (const auto& node : replicas) {
              const Lsn applied = node->applier->applied_lsn();
              const Lsn durable = engine.log_manager()->durable_lsn();
              worst = std::max<uint64_t>(
                  worst, durable >= applied ? durable - applied : 0);
            }
            lag_sum += worst;
            ++lag_samples;
            lag_max = std::max(lag_max, worst);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        });
      }

      server::LoadGenOptions load;
      load.port = server.port();
      load.connections = 4;
      load.pipeline_depth = 8;
      load.warmup_seconds = warmup;
      load.seconds = seconds;
      load.num_records = records;
      load.num_partitions = static_cast<uint32_t>(workers);
      load.get_fraction = 0.5;
      load.put_fraction = 0.25;
      load.rmw_keys = 2;
      const server::LoadGenStats stats = server::RunLoadGen(load);

      if (sampler.joinable()) {
        sampling.store(false, std::memory_order_release);
        sampler.join();
      }
      const double lag_mean =
          lag_samples > 0 ? static_cast<double>(lag_sum) /
                                static_cast<double>(lag_samples)
                          : 0.0;
      const double p50_us =
          static_cast<double>(stats.latency_ns.Percentile(0.50)) / 1e3;
      const double p99_us =
          static_cast<double>(stats.latency_ns.Percentile(0.99)) / 1e3;

      std::printf("%s,%d,%.0f,%llu,%.0f,%.0f,%.0f,%llu\n", mode.name,
                  num_replicas, stats.Throughput(),
                  static_cast<unsigned long long>(stats.ok), p50_us, p99_us,
                  lag_mean, static_cast<unsigned long long>(lag_max));
      std::fflush(stdout);
      json.AddPoint(
          {{"mode", JsonOutput::Str(mode.name)},
           {"replicas", JsonOutput::Num(num_replicas)},
           {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
           {"ok", JsonOutput::Num(static_cast<double>(stats.ok))},
           {"transport_errors",
            JsonOutput::Num(static_cast<double>(stats.transport_errors))},
           {"p50_us", JsonOutput::Num(p50_us)},
           {"p99_us", JsonOutput::Num(p99_us)},
           {"lag_mean_bytes", JsonOutput::Num(lag_mean)},
           {"lag_max_bytes",
            JsonOutput::Num(static_cast<double>(lag_max))}});
      if (stats.transport_errors != 0) {
        std::fprintf(stderr, "transport errors: %llu\n",
                     static_cast<unsigned long long>(stats.transport_errors));
        return 1;
      }

      server.Stop();
      for (auto& node : replicas) node->applier->Stop();
      for (auto& node : replicas) RemoveLogDir(node->log_dir);
      replicas.clear();
      RemoveLogDir(primary_dir);
    }
  }
  return 0;
}
