/// F1 — Concurrency-control scaling under *low* contention.
/// YCSB, uniform keys (theta = 0), 95/5 read/write, 16 ops/txn; sweep the
/// worker count for every CC scheme. Expected shape [Abyss]: schemes are
/// close together; lock-manager overhead costs the 2PL family a constant
/// factor; OCC/TicToc sit near the top.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F1",
                     "CC scaling under low contention (YCSB theta=0, 95r/5w)");
  PrintHeader("F1", "CC scaling under low contention (YCSB theta=0, 95r/5w)",
              "scheme,threads,throughput_txn_s,abort_ratio");
  YcsbOptions ycsb;
  ycsb.num_records = DefaultYcsbRecords();
  ycsb.ops_per_txn = 16;
  ycsb.write_fraction = 0.05;
  ycsb.theta = 0.0;
  const auto threads = ThreadSweep();
  const int max_threads = threads.back();
  for (CcScheme scheme : AllCcSchemes()) {
    YcsbSetup setup = MakeYcsb(scheme, ycsb, max_threads);
    for (int t : threads) {
      const RunStats stats = RunYcsb(setup.engine.get(), setup.workload.get(), t);
      std::printf("%s,%d,%.0f,%.4f\n", CcSchemeName(scheme), t,
                  stats.Throughput(), stats.AbortRatio());
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"threads", JsonOutput::Num(t)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())}});
    }
  }
  return 0;
}
