#ifndef NEXT700_BENCH_BENCH_COMMON_H_
#define NEXT700_BENCH_BENCH_COMMON_H_

/// \file
/// Shared scaffolding for the experiment binaries (bench_f1 ... bench_t3).
/// Each binary regenerates one table/figure from DESIGN.md's experiment
/// index and prints a self-describing header plus one CSV row per series
/// point, so EXPERIMENTS.md can be assembled from raw runs.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/driver.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace next700 {
namespace bench {

/// Machine-readable run output. Every bench binary that takes
/// `--json <path>` (or `--json=<path>`) writes its series points there as
///
///   {"experiment": "F1",
///    "question": "...",
///    "points": [{"scheme": "SILO", "threads": 4, "throughput_txn_s": ...},
///               ...]}
///
/// in addition to the human-readable CSV on stdout, so plots and regression
/// tracking consume runs without scraping stdout.
class JsonOutput {
 public:
  struct Value {
    bool is_string;
    double num;
    std::string str;
  };
  using Field = std::pair<std::string, Value>;

  static Value Num(double v) { return Value{false, v, {}}; }
  static Value Str(std::string v) { return Value{true, 0, std::move(v)}; }

  /// Parses argv; dies on any argument other than --json forms so bench
  /// binaries reject typos instead of ignoring them.
  JsonOutput(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      } else if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
        std::exit(1);
      }
    }
  }

  void SetExperiment(const std::string& id, const std::string& question) {
    experiment_ = id;
    question_ = question;
  }

  void AddPoint(std::vector<Field> fields) {
    points_.push_back(std::move(fields));
  }

  /// Writes the file (if --json was given). Called from the destructor;
  /// call explicitly to observe failure.
  bool Write() {
    if (path_.empty() || written_) return true;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"experiment\": %s,\n \"question\": %s,\n \"points\": [",
                 Quoted(experiment_).c_str(), Quoted(question_).c_str());
    for (size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "%s\n  {", i == 0 ? "" : ",");
      for (size_t j = 0; j < points_[i].size(); ++j) {
        const Field& field = points_[i][j];
        std::fprintf(f, "%s%s: ", j == 0 ? "" : ", ",
                     Quoted(field.first).c_str());
        if (field.second.is_string) {
          std::fprintf(f, "%s", Quoted(field.second.str).c_str());
        } else {
          std::fprintf(f, "%.6g", field.second.num);
        }
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("# json: %s (%zu points)\n", path_.c_str(), points_.size());
    return true;
  }

  ~JsonOutput() { Write(); }

 private:
  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string path_;
  std::string experiment_;
  std::string question_;
  std::vector<std::vector<Field>> points_;
  bool written_ = false;
};

/// Environment knob: NEXT700_QUICK=1 shrinks loads and windows (CI smoke).
inline bool QuickMode() {
  const char* env = std::getenv("NEXT700_QUICK");
  return env != nullptr && env[0] == '1';
}

inline double MeasureSeconds() { return QuickMode() ? 0.2 : 1.0; }
inline double WarmupSeconds() { return QuickMode() ? 0.05 : 0.25; }

/// Thread counts swept by the scaling experiments.
inline std::vector<int> ThreadSweep() {
  return QuickMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
}

inline void PrintHeader(const char* experiment_id, const char* question,
                        const char* columns) {
  std::printf("# experiment: %s\n# question: %s\n%s\n", experiment_id,
              question, columns);
}

/// One timed YCSB run of `scheme` with `threads`, on a freshly warmed
/// engine that the caller keeps across thread counts.
inline RunStats RunYcsb(Engine* engine, YcsbWorkload* workload, int threads) {
  DriverOptions driver;
  driver.num_threads = threads;
  driver.warmup_seconds = WarmupSeconds();
  driver.measure_seconds = MeasureSeconds();
  return Driver::Run(engine, workload, driver);
}

/// Builds an engine + loaded YCSB workload for one scheme.
struct YcsbSetup {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<YcsbWorkload> workload;
};

inline YcsbSetup MakeYcsb(CcScheme scheme, YcsbOptions ycsb, int max_threads,
                          uint32_t partitions = 1) {
  EngineOptions eng;
  eng.cc_scheme = scheme;
  eng.max_threads = max_threads;
  eng.num_partitions = partitions;
  YcsbSetup setup;
  setup.engine = std::make_unique<Engine>(eng);
  setup.workload = std::make_unique<YcsbWorkload>(ycsb);
  setup.workload->Load(setup.engine.get());
  return setup;
}

inline uint64_t DefaultYcsbRecords() {
  return QuickMode() ? (uint64_t{1} << 14) : (uint64_t{1} << 18);
}

/// TPC-C scale used by benchmarks: full district/customer shape, reduced
/// initial orders to keep load times sane on one core.
inline TpccOptions BenchTpcc(uint32_t warehouses) {
  TpccOptions options;
  options.num_warehouses = warehouses;
  if (QuickMode()) {
    options.districts_per_warehouse = 4;
    options.customers_per_district = 200;
    options.num_items = 1000;
    options.initial_orders_per_district = 200;
  } else {
    options.districts_per_warehouse = 10;
    options.customers_per_district = 1000;
    options.num_items = 10000;
    options.initial_orders_per_district = 500;
  }
  return options;
}

}  // namespace bench
}  // namespace next700

#endif  // NEXT700_BENCH_BENCH_COMMON_H_
