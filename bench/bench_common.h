#ifndef NEXT700_BENCH_BENCH_COMMON_H_
#define NEXT700_BENCH_BENCH_COMMON_H_

/// \file
/// Shared scaffolding for the experiment binaries (bench_f1 ... bench_t3).
/// Each binary regenerates one table/figure from DESIGN.md's experiment
/// index and prints a self-describing header plus one CSV row per series
/// point, so EXPERIMENTS.md can be assembled from raw runs.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "workload/driver.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace next700 {
namespace bench {

/// Environment knob: NEXT700_QUICK=1 shrinks loads and windows (CI smoke).
inline bool QuickMode() {
  const char* env = std::getenv("NEXT700_QUICK");
  return env != nullptr && env[0] == '1';
}

inline double MeasureSeconds() { return QuickMode() ? 0.2 : 1.0; }
inline double WarmupSeconds() { return QuickMode() ? 0.05 : 0.25; }

/// Thread counts swept by the scaling experiments.
inline std::vector<int> ThreadSweep() {
  return QuickMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
}

inline void PrintHeader(const char* experiment_id, const char* question,
                        const char* columns) {
  std::printf("# experiment: %s\n# question: %s\n%s\n", experiment_id,
              question, columns);
}

/// One timed YCSB run of `scheme` with `threads`, on a freshly warmed
/// engine that the caller keeps across thread counts.
inline RunStats RunYcsb(Engine* engine, YcsbWorkload* workload, int threads) {
  DriverOptions driver;
  driver.num_threads = threads;
  driver.warmup_seconds = WarmupSeconds();
  driver.measure_seconds = MeasureSeconds();
  return Driver::Run(engine, workload, driver);
}

/// Builds an engine + loaded YCSB workload for one scheme.
struct YcsbSetup {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<YcsbWorkload> workload;
};

inline YcsbSetup MakeYcsb(CcScheme scheme, YcsbOptions ycsb, int max_threads,
                          uint32_t partitions = 1) {
  EngineOptions eng;
  eng.cc_scheme = scheme;
  eng.max_threads = max_threads;
  eng.num_partitions = partitions;
  YcsbSetup setup;
  setup.engine = std::make_unique<Engine>(eng);
  setup.workload = std::make_unique<YcsbWorkload>(ycsb);
  setup.workload->Load(setup.engine.get());
  return setup;
}

inline uint64_t DefaultYcsbRecords() {
  return QuickMode() ? (uint64_t{1} << 14) : (uint64_t{1} << 18);
}

/// TPC-C scale used by benchmarks: full district/customer shape, reduced
/// initial orders to keep load times sane on one core.
inline TpccOptions BenchTpcc(uint32_t warehouses) {
  TpccOptions options;
  options.num_warehouses = warehouses;
  if (QuickMode()) {
    options.districts_per_warehouse = 4;
    options.customers_per_district = 200;
    options.num_items = 1000;
    options.initial_orders_per_district = 200;
  } else {
    options.districts_per_warehouse = 10;
    options.customers_per_district = 1000;
    options.num_items = 10000;
    options.initial_orders_per_district = 500;
  }
  return options;
}

}  // namespace bench
}  // namespace next700

#endif  // NEXT700_BENCH_BENCH_COMMON_H_
