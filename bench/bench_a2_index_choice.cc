/// A2 (ablation) — Index structure as an engine component at the *whole
/// transaction* level (F11 measures raw index ops): the same point-access
/// YCSB through a hash table vs a B+-tree, on a lock-based and an
/// optimistic engine. Quantifies how much of a transaction's budget the
/// index probe actually is once CC and copying are included.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("A2",
                     "index choice at transaction level (point-access YCSB)");
  PrintHeader("A2", "index choice at transaction level (point-access YCSB)",
              "scheme,index,throughput_txn_s");
  const int threads = QuickMode() ? 2 : 4;
  for (CcScheme scheme : {CcScheme::kNoWait, CcScheme::kOcc}) {
    for (IndexKind kind : {IndexKind::kHash, IndexKind::kBTree}) {
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = 16;
      ycsb.write_fraction = 0.05;
      ycsb.index_kind = kind;
      YcsbSetup setup = MakeYcsb(scheme, ycsb, threads);
      const RunStats stats =
          RunYcsb(setup.engine.get(), setup.workload.get(), threads);
      std::printf("%s,%s,%.0f\n", CcSchemeName(scheme), IndexKindName(kind),
                  stats.Throughput());
      std::fflush(stdout);
      json.AddPoint(
          {{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
           {"index", JsonOutput::Str(IndexKindName(kind))},
           {"throughput_txn_s", JsonOutput::Num(stats.Throughput())}});
    }
  }
  return 0;
}
