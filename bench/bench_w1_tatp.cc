/// W1 (supplementary workload) — TATP across the scheme family. TATP's
/// tiny, 80%-read transactions stress Begin/Commit overheads rather than
/// data contention. Expected shape: per-txn fixed costs dominate — schemes
/// with cheap begins (SILO/TICTOC, no allocator) lead; lock-manager
/// round-trips price the 2PL family; abort ratios stay near zero.

#include "bench_common.h"
#include "workload/tatp.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("W1", "TATP standard mix across CC schemes");
  PrintHeader("W1", "TATP standard mix across CC schemes",
              "scheme,threads,throughput_txn_s,abort_ratio,user_abort_pct");
  TatpOptions tatp;
  tatp.num_subscribers = QuickMode() ? 10000 : 100000;
  const auto threads = ThreadSweep();
  for (CcScheme scheme : AllCcSchemes()) {
    EngineOptions eng;
    eng.cc_scheme = scheme;
    eng.max_threads = threads.back();
    eng.num_partitions = static_cast<uint32_t>(threads.back());
    Engine engine(eng);
    TatpWorkload workload(tatp);
    workload.Load(&engine);
    for (int t : threads) {
      DriverOptions driver;
      driver.num_threads = t;
      driver.warmup_seconds = WarmupSeconds();
      driver.measure_seconds = MeasureSeconds();
      const RunStats stats = Driver::Run(&engine, &workload, driver);
      const double user_pct =
          stats.commits + stats.user_aborts == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats.user_aborts) /
                    static_cast<double>(stats.commits + stats.user_aborts);
      std::printf("%s,%d,%.0f,%.4f,%.1f\n", CcSchemeName(scheme), t,
                  stats.Throughput(), stats.AbortRatio(), user_pct);
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"threads", JsonOutput::Num(t)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())},
                     {"user_abort_pct", JsonOutput::Num(user_pct)}});
    }
  }
  return 0;
}
