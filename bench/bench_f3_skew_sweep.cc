/// F3 — Skew sensitivity. YCSB at a fixed worker count, sweeping zipf theta
/// from uniform to extreme. Expected shape [Abyss]: monotone degradation
/// for every scheme, with pessimistic lock waits and optimistic aborts
/// taking over at high skew; MVTO holds up on the read side.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F3", "skew sweep (YCSB, 50r/50w rmw, fixed threads)");
  PrintHeader("F3", "skew sweep (YCSB, 50r/50w rmw, fixed threads)",
              "scheme,theta,throughput_txn_s,abort_ratio");
  const int threads = QuickMode() ? 2 : 4;
  const std::vector<double> thetas = {0.0, 0.3, 0.6, 0.8, 0.9, 0.99};
  for (CcScheme scheme : AllCcSchemes()) {
    for (double theta : thetas) {
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = 16;
      ycsb.write_fraction = 0.5;
      ycsb.read_modify_write = true;
      ycsb.theta = theta;
      YcsbSetup setup = MakeYcsb(scheme, ycsb, threads);
      const RunStats stats =
          RunYcsb(setup.engine.get(), setup.workload.get(), threads);
      std::printf("%s,%.2f,%.0f,%.4f\n", CcSchemeName(scheme), theta,
                  stats.Throughput(), stats.AbortRatio());
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"theta", JsonOutput::Num(theta)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())}});
    }
  }
  return 0;
}
