/// F6 — TPC-C scaling with warehouse count. Standard 5-transaction mix,
/// workers = warehouses (each worker homed on one warehouse). Expected
/// shape [Abyss]: throughput grows with warehouses; W=1 serializes every
/// worker on the warehouse and district rows.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("F6", "TPC-C full mix vs warehouse count (threads = W)");
  PrintHeader("F6", "TPC-C full mix vs warehouse count (threads = W)",
              "scheme,warehouses,throughput_txn_s,abort_ratio,user_aborts");
  const std::vector<uint32_t> sweep =
      QuickMode() ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4};
  for (CcScheme scheme : AllCcSchemes()) {
    for (uint32_t w : sweep) {
      EngineOptions eng;
      eng.cc_scheme = scheme;
      eng.max_threads = static_cast<int>(w);
      eng.num_partitions = w;
      Engine engine(eng);
      TpccWorkload workload(BenchTpcc(w));
      workload.Load(&engine);
      DriverOptions driver;
      driver.num_threads = static_cast<int>(w);
      driver.warmup_seconds = WarmupSeconds();
      driver.measure_seconds = MeasureSeconds();
      const RunStats stats = Driver::Run(&engine, &workload, driver);
      std::printf("%s,%u,%.0f,%.4f,%llu\n", CcSchemeName(scheme), w,
                  stats.Throughput(), stats.AbortRatio(),
                  static_cast<unsigned long long>(stats.user_aborts));
      std::fflush(stdout);
      json.AddPoint(
          {{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
           {"warehouses", JsonOutput::Num(w)},
           {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
           {"abort_ratio", JsonOutput::Num(stats.AbortRatio())},
           {"user_aborts",
            JsonOutput::Num(static_cast<double>(stats.user_aborts))}});
      NEXT700_CHECK_MSG(workload.CheckConsistency(&engine).ok(),
                        "TPC-C consistency audit failed after run");
    }
  }
  return 0;
}
