/// F12 — Tail-latency predictability. Moderately contended YCSB at a fixed
/// worker count; per-scheme committed-transaction latency percentiles.
/// Expected shape (the keynote's predictability theme; cf. VATS): waiting
/// schemes fatten the tail (p99/p50 ratio grows), NO_WAIT buys a flat tail
/// with aborted-and-retried work, and optimistic schemes sit in between.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "F12", "committed-txn latency percentiles (YCSB theta=0.8, 50r/50w)");
  PrintHeader("F12",
              "committed-txn latency percentiles (YCSB theta=0.8, 50r/50w)",
              "scheme,p50_us,p95_us,p99_us,p999_us,max_us,p99_over_p50");
  const int threads = QuickMode() ? 2 : 4;
  for (CcScheme scheme : AllCcSchemes()) {
    YcsbOptions ycsb;
    ycsb.num_records = DefaultYcsbRecords();
    ycsb.ops_per_txn = 16;
    ycsb.write_fraction = 0.5;
    ycsb.read_modify_write = true;
    ycsb.theta = 0.8;
    YcsbSetup setup = MakeYcsb(scheme, ycsb, threads);
    const RunStats stats =
        RunYcsb(setup.engine.get(), setup.workload.get(), threads);
    const Histogram& h = stats.commit_latency_ns;
    const double p50 = static_cast<double>(h.Percentile(0.50)) / 1000.0;
    const double p99 = static_cast<double>(h.Percentile(0.99)) / 1000.0;
    std::printf("%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f\n", CcSchemeName(scheme),
                p50, static_cast<double>(h.Percentile(0.95)) / 1000.0, p99,
                static_cast<double>(h.Percentile(0.999)) / 1000.0,
                static_cast<double>(h.max()) / 1000.0,
                p50 > 0 ? p99 / p50 : 0.0);
    std::fflush(stdout);
    json.AddPoint(
        {{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
         {"p50_us", JsonOutput::Num(p50)},
         {"p95_us",
          JsonOutput::Num(static_cast<double>(h.Percentile(0.95)) / 1000.0)},
         {"p99_us", JsonOutput::Num(p99)},
         {"p999_us",
          JsonOutput::Num(static_cast<double>(h.Percentile(0.999)) / 1000.0)},
         {"max_us", JsonOutput::Num(static_cast<double>(h.max()) / 1000.0)},
         {"p99_over_p50", JsonOutput::Num(p50 > 0 ? p99 / p50 : 0.0)}});
  }
  return 0;
}
