/// F11 — Index microbenchmarks (google-benchmark): point lookups, inserts,
/// and ordered scans for the chained hash index vs the B+-tree, under
/// uniform and zipfian key draws. Expected shape: hash wins point ops by a
/// small integer factor; only the B+-tree scans; both degrade gracefully
/// under skew (hot buckets / hot leaves stay cached).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "storage/table.h"

namespace next700 {
namespace {

constexpr uint64_t kKeys = 1 << 18;

struct Fixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<Index> index;

  explicit Fixture(IndexKind kind) {
    Schema s;
    s.AddUint64("v");
    table = std::make_unique<Table>(0, "t", std::move(s), 1);
    if (kind == IndexKind::kHash) {
      index = std::make_unique<HashIndex>(table.get(), kKeys);
    } else {
      index = std::make_unique<BTreeIndex>(table.get());
    }
    for (uint64_t key = 0; key < kKeys; ++key) {
      Row* row = table->AllocateRow(0);
      row->primary_key = key;
      NEXT700_CHECK(index->Insert(key, row).ok());
    }
  }
};

Fixture* SharedFixture(IndexKind kind) {
  static Fixture* hash = new Fixture(IndexKind::kHash);
  static Fixture* btree = new Fixture(IndexKind::kBTree);
  return kind == IndexKind::kHash ? hash : btree;
}

void BM_PointLookup(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 100.0;
  Fixture* fixture = SharedFixture(kind);
  Rng rng(42);
  ZipfGenerator zipf(kKeys, theta);
  for (auto _ : state) {
    Row* row = fixture->index->Lookup(zipf.Next(&rng));
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(IndexKindName(kind)) +
                 (theta > 0 ? "/zipf" : "/uniform"));
}
BENCHMARK(BM_PointLookup)
    ->Args({static_cast<int>(IndexKind::kHash), 0})
    ->Args({static_cast<int>(IndexKind::kBTree), 0})
    ->Args({static_cast<int>(IndexKind::kHash), 90})
    ->Args({static_cast<int>(IndexKind::kBTree), 90});

void BM_Insert(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  // Private fixture: inserts mutate the structure.
  Fixture fixture(kind);
  uint64_t next = kKeys;
  for (auto _ : state) {
    Row* row = fixture.table->AllocateRow(0);
    row->primary_key = next;
    benchmark::DoNotOptimize(fixture.index->Insert(next, row).ok());
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(IndexKindName(kind));
}
BENCHMARK(BM_Insert)
    ->Args({static_cast<int>(IndexKind::kHash)})
    ->Args({static_cast<int>(IndexKind::kBTree)});

void BM_ScanBTree(benchmark::State& state) {
  const size_t span = static_cast<size_t>(state.range(0));
  Fixture* fixture = SharedFixture(IndexKind::kBTree);
  Rng rng(7);
  std::vector<Row*> out;
  for (auto _ : state) {
    out.clear();
    const uint64_t lo = rng.NextUint64(kKeys - span);
    benchmark::DoNotOptimize(
        fixture->index->Scan(lo, lo + span - 1, 0, &out).ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(span));
  state.SetLabel("btree/span=" + std::to_string(span));
}
BENCHMARK(BM_ScanBTree)->Arg(16)->Arg(256)->Arg(4096);

void BM_RemoveInsertChurn(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  Fixture fixture(kind);
  Rng rng(11);
  for (auto _ : state) {
    const uint64_t key = rng.NextUint64(kKeys);
    Row* row = fixture.index->Lookup(key);
    if (row != nullptr) {
      benchmark::DoNotOptimize(fixture.index->Remove(key, row));
      benchmark::DoNotOptimize(fixture.index->Insert(key, row).ok());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(IndexKindName(kind));
}
BENCHMARK(BM_RemoveInsertChurn)
    ->Args({static_cast<int>(IndexKind::kHash)})
    ->Args({static_cast<int>(IndexKind::kBTree)});

}  // namespace
}  // namespace next700

// Custom main: maps the repo-wide `--json <path>` convention onto
// google-benchmark's native JSON reporter, so every experiment binary is
// driven the same way by run_experiments / the CI bench smoke step.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out_format=json");
    args.push_back("--benchmark_out=" + json_path);
  }
  std::vector<char*> argv2;
  for (std::string& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
