/// F2 — Concurrency-control scaling under *high* contention.
/// YCSB with zipf theta = 0.9 and a 50/50 read/write mix. Expected shape
/// [Abyss]: throughput flattens or declines as workers are added; waiting
/// schemes thrash; NO_WAIT and TicToc degrade most gracefully.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "F2", "CC scaling under high contention (YCSB theta=0.9, 50r/50w)");
  PrintHeader("F2",
              "CC scaling under high contention (YCSB theta=0.9, 50r/50w)",
              "scheme,threads,throughput_txn_s,abort_ratio,lock_waits");
  YcsbOptions ycsb;
  ycsb.num_records = DefaultYcsbRecords();
  ycsb.ops_per_txn = 16;
  ycsb.write_fraction = 0.5;
  ycsb.theta = 0.9;
  ycsb.read_modify_write = true;
  const auto threads = ThreadSweep();
  for (CcScheme scheme : AllCcSchemes()) {
    YcsbSetup setup = MakeYcsb(scheme, ycsb, threads.back());
    for (int t : threads) {
      const RunStats stats = RunYcsb(setup.engine.get(), setup.workload.get(), t);
      std::printf("%s,%d,%.0f,%.4f,%llu\n", CcSchemeName(scheme), t,
                  stats.Throughput(), stats.AbortRatio(),
                  static_cast<unsigned long long>(stats.lock_waits));
      std::fflush(stdout);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"threads", JsonOutput::Num(t)},
                     {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
                     {"abort_ratio", JsonOutput::Num(stats.AbortRatio())},
                     {"lock_waits", JsonOutput::Num(
                                        static_cast<double>(stats.lock_waits))}});
    }
  }
  return 0;
}
