/// N3 — Sharded service: cross-shard 2PC cost vs multi-partition fraction.
/// Starts two in-process shard servers (each owning the keys where
/// key % 2 == shard_id, value logging so commit acks are durable) behind
/// an in-process shard router, and drives pure-rmw load through the router
/// while sweeping the fraction of transactions that deliberately span both
/// shards: {0, 1, 5, 20, 50, 100}%. Two-phase commit pays two sequential
/// shard round trips plus a durable coordinator decision per cross-shard
/// transaction, so throughput degrades smoothly with the fraction — the
/// sharded-OLTP cliff every partitioned design in the paper's design space
/// has to price in (H-Store's "multi-partition transactions are the
/// enemy" axis, measured on this codebase's wire).
///
/// A second axis pins the router's overhead: the same single-shard-only
/// load against a direct (unsharded) server vs through the router at 0%
/// cross-shard. The router's fast path forwards request frames verbatim
/// and relays replies in order; with the router tier on its own cores it
/// should sit within ~10% of direct — the `fastpath_ratio` point in the
/// JSON tracks that. On a single-core host the router's forwarding CPU
/// (~2.5us/txn) is subtracted from the shards' own budget, which caps the
/// ratio near 0.5 at saturation regardless of router efficiency; see
/// EXPERIMENTS.md N3 for the CPU accounting behind that number.
///
/// Every router point carries the router's own counters (forwarded,
/// cross-shard commits/aborts, vote timeouts) so 2PC health is visible in
/// the JSON, not just throughput.

#include <memory>

#include "bench_common.h"
#include "server/loadgen.h"
#include "server/procs.h"
#include "server/server.h"
#include "shard/shard_router.h"

using namespace next700;
using namespace next700::bench;

namespace {

constexpr uint32_t kNumShards = 2;
constexpr uint32_t kPartitions = 4;  // Global partition map, every shard.

std::vector<double> FractionSweep() {
  return QuickMode() ? std::vector<double>{0.0, 0.05, 0.5}
                     : std::vector<double>{0.0, 0.01, 0.05, 0.2, 0.5, 1.0};
}

struct Service {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<server::Server> server;
};

/// One shard server (or, with num_shards=1, the direct unsharded
/// baseline): OCC engine, value logging, group commit gating replies.
Service StartShard(uint32_t shard_id, uint32_t num_shards, int workers,
                   uint64_t records, const std::string& log_dir) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = workers;
  eng.num_partitions = kPartitions;
  eng.logging = LoggingKind::kValue;
  RemoveLogDir(log_dir);
  eng.log_dir = log_dir;
  Service service;
  service.engine = std::make_unique<Engine>(eng);
  server::KvServiceOptions kv;
  kv.num_records = records;
  kv.num_shards = num_shards;
  kv.shard_id = shard_id;
  server::RegisterKvService(service.engine.get(), kv);
  server::ServerOptions srv;
  srv.num_workers = workers;
  service.server =
      std::make_unique<server::Server>(service.engine.get(), srv);
  const Status started = service.server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shard server start failed: %s\n",
                 started.ToString().c_str());
    service.server.reset();
  }
  return service;
}

struct RouterCounters {
  uint64_t forwarded = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t vote_timeouts = 0;
  uint64_t io_syscalls = 0;
  uint64_t writev_batches = 0;
  uint64_t frames_batched = 0;
};

RouterCounters Snap(const shard::ShardRouter& router) {
  const shard::ShardRouterStats& s = router.stats();
  RouterCounters c;
  c.forwarded = s.forwarded.load(std::memory_order_relaxed);
  c.commits = s.cross_shard_commits.load(std::memory_order_relaxed);
  c.aborts = s.cross_shard_aborts.load(std::memory_order_relaxed);
  c.vote_timeouts = s.vote_timeouts.load(std::memory_order_relaxed);
  c.io_syscalls = router.io_syscalls();
  c.writev_batches = s.writev_batches.load(std::memory_order_relaxed);
  c.frames_batched = s.frames_batched.load(std::memory_order_relaxed);
  return c;
}

/// Runs one load point and emits the CSV row + JSON point. `router` is
/// null for the direct-baseline axis. Router points carry the event-loop
/// tier's syscall accounting: syscalls_per_txn is the router's kernel
/// entries per completed txn and frames_per_writev the outbound gather
/// ratio — the two numbers the event-loop rewrite exists to improve.
/// Returns the throughput (0 on transport errors, which fail the bench
/// via the caller).
double RunPoint(JsonOutput* json, const char* axis, uint16_t port,
                double multi_shard_fraction, uint32_t num_shards,
                const shard::ShardRouter* router,
                const server::LoadGenOptions& base, bool* ok) {
  server::LoadGenOptions load = base;
  load.port = port;
  load.num_shards = num_shards;
  load.multi_shard_fraction = multi_shard_fraction;

  const RouterCounters before =
      router != nullptr ? Snap(*router) : RouterCounters{};
  const server::LoadGenStats stats = server::RunLoadGen(load);
  const RouterCounters after =
      router != nullptr ? Snap(*router) : RouterCounters{};

  const double p50_us =
      static_cast<double>(stats.latency_ns.Percentile(0.50)) / 1e3;
  const double p95_us =
      static_cast<double>(stats.latency_ns.Percentile(0.95)) / 1e3;
  const double p99_us =
      static_cast<double>(stats.latency_ns.Percentile(0.99)) / 1e3;
  const uint64_t commits = after.commits - before.commits;
  const uint64_t aborts = after.aborts - before.aborts;
  const uint64_t io_syscalls = after.io_syscalls - before.io_syscalls;
  const uint64_t writev_batches =
      after.writev_batches - before.writev_batches;
  const uint64_t frames_batched = after.frames_batched - before.frames_batched;
  const double syscalls_per_txn =
      stats.ok > 0 ? static_cast<double>(io_syscalls) /
                         static_cast<double>(stats.ok)
                   : 0.0;
  const double frames_per_writev =
      writev_batches > 0 ? static_cast<double>(frames_batched) /
                               static_cast<double>(writev_batches)
                         : 0.0;

  std::printf(
      "%s,%.2f,%.0f,%llu,%llu,%.0f,%.0f,%.0f,%llu,%llu,%llu,%.2f,%.2f\n",
      axis, multi_shard_fraction, stats.Throughput(),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.aborted), p50_us, p95_us,
      p99_us, static_cast<unsigned long long>(
                  after.forwarded - before.forwarded),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts), syscalls_per_txn,
      frames_per_writev);
  std::fflush(stdout);
  json->AddPoint(
      {{"axis", JsonOutput::Str(axis)},
       {"multi_shard_fraction", JsonOutput::Num(multi_shard_fraction)},
       {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
       {"ok", JsonOutput::Num(static_cast<double>(stats.ok))},
       {"aborted", JsonOutput::Num(static_cast<double>(stats.aborted))},
       {"transport_errors",
        JsonOutput::Num(static_cast<double>(stats.transport_errors))},
       {"p50_us", JsonOutput::Num(p50_us)},
       {"p95_us", JsonOutput::Num(p95_us)},
       {"p99_us", JsonOutput::Num(p99_us)},
       {"forwarded", JsonOutput::Num(static_cast<double>(
                         after.forwarded - before.forwarded))},
       {"cross_shard_commits",
        JsonOutput::Num(static_cast<double>(commits))},
       {"cross_shard_aborts", JsonOutput::Num(static_cast<double>(aborts))},
       {"vote_timeouts", JsonOutput::Num(static_cast<double>(
                             after.vote_timeouts - before.vote_timeouts))},
       {"router_loops",
        JsonOutput::Num(router != nullptr
                            ? static_cast<double>(router->num_loops())
                            : 0.0)},
       {"io_syscalls", JsonOutput::Num(static_cast<double>(io_syscalls))},
       {"syscalls_per_txn", JsonOutput::Num(syscalls_per_txn)},
       {"frames_per_writev", JsonOutput::Num(frames_per_writev)}});
  if (stats.transport_errors != 0) {
    std::fprintf(stderr, "transport errors: %llu\n",
                 static_cast<unsigned long long>(stats.transport_errors));
    *ok = false;
  }
  return stats.Throughput();
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "N3", "sharded service: cross-shard 2PC cost vs multi-partition "
            "fraction, and router fast-path overhead vs direct");
  PrintHeader("N3",
              "sharded service: cross-shard 2PC cost vs multi-partition "
              "fraction, and router fast-path overhead vs direct",
              "axis,multi_shard_fraction,throughput_txn_s,ok,aborted,"
              "p50_us,p95_us,p99_us,forwarded,cross_shard_commits,"
              "cross_shard_aborts,syscalls_per_txn,frames_per_writev");

  const uint64_t records = QuickMode() ? 20000 : 100000;
  const int workers = 2;

  server::LoadGenOptions base;
  base.warmup_seconds = QuickMode() ? 0.1 : 0.5;
  base.seconds = QuickMode() ? 0.3 : 2.0;
  base.num_records = records;
  base.num_partitions = kPartitions;
  base.connections = 4;
  base.pipeline_depth = 8;
  base.get_fraction = 0.0;  // Pure rmw: every txn exercises commit.
  base.put_fraction = 0.0;
  base.rmw_keys = 2;

  bool ok = true;

  // Direct baseline: one unsharded server, same composition and load
  // shape, no router in the path.
  double direct_tput = 0;
  {
    Service direct = StartShard(/*shard_id=*/0, /*num_shards=*/1, workers,
                                records, "/tmp/next700_bench_n3.directd");
    if (direct.server == nullptr) return 1;
    direct_tput = RunPoint(&json, "direct", direct.server->port(),
                           /*multi_shard_fraction=*/0.0, /*num_shards=*/1,
                           /*router=*/nullptr, base, &ok);
    direct.server->Stop();
  }
  if (!ok) return 1;

  // Sharded topology: two shard servers behind the router.
  Service shards[kNumShards];
  shard::ShardRouterOptions ropts;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    shards[i] = StartShard(i, kNumShards, workers, records,
                           "/tmp/next700_bench_n3.s" + std::to_string(i) +
                               "logd");
    if (shards[i].server == nullptr) return 1;
    ropts.shards.push_back("127.0.0.1:" +
                           std::to_string(shards[i].server->port()));
  }
  ropts.num_partitions = kPartitions;
  ropts.log_dir = "/tmp/next700_bench_n3.rtlogd";
  RemoveLogDir(ropts.log_dir);
  shard::ShardRouter router(ropts);
  if (!router.Start().ok() || !router.WaitShardsConnected(15000)) {
    std::fprintf(stderr, "shard router failed to start\n");
    return 1;
  }

  double fastpath_tput = 0;
  for (const double fraction : FractionSweep()) {
    const double tput =
        RunPoint(&json, "router", router.port(), fraction, kNumShards,
                 &router, base, &ok);
    if (fraction == 0.0) fastpath_tput = tput;
    if (!ok) break;
  }

  if (ok && direct_tput > 0) {
    const double ratio = fastpath_tput / direct_tput;
    std::printf("# fastpath_ratio (router@0%% / direct): %.3f\n", ratio);
    json.AddPoint({{"axis", JsonOutput::Str("fastpath_ratio")},
                   {"multi_shard_fraction", JsonOutput::Num(0.0)},
                   {"throughput_txn_s", JsonOutput::Num(fastpath_tput)},
                   {"ratio_vs_direct", JsonOutput::Num(ratio)}});
  }

  router.Stop();

  // Third axis: event-loop count at the all-single-shard point. A fresh
  // router (fresh decision log) per loop count; the shards stay up. Shows
  // whether the fast path scales past one loop or the shards saturate
  // first on this host.
  if (ok) {
    const std::vector<int> loop_counts =
        QuickMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    for (const int loops : loop_counts) {
      shard::ShardRouterOptions lopts = ropts;
      lopts.num_loops = loops;
      lopts.log_dir =
          "/tmp/next700_bench_n3.rtlogd_l" + std::to_string(loops);
      RemoveLogDir(lopts.log_dir);
      shard::ShardRouter loop_router(lopts);
      if (!loop_router.Start().ok() ||
          !loop_router.WaitShardsConnected(15000)) {
        std::fprintf(stderr, "shard router (loops=%d) failed to start\n",
                     loops);
        ok = false;
        break;
      }
      RunPoint(&json, "router_loops", loop_router.port(),
               /*multi_shard_fraction=*/0.0, kNumShards, &loop_router, base,
               &ok);
      loop_router.Stop();
      if (!ok) break;
    }
  }

  for (uint32_t i = 0; i < kNumShards; ++i) shards[i].server->Stop();
  return ok ? 0 : 1;
}
