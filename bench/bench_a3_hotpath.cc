/// \file
/// Experiment A3: is the transaction hot path allocation-free?
///
/// Replaces global operator new with a counting shim, then runs YCSB
/// transactions inline on the calling thread (no driver threads, so every
/// counted allocation is attributable to the measured loop) and reports
/// allocations/txn and ns/txn per scheme and mix. After warm-up the
/// read-only path must report 0.0 allocations per transaction under both
/// SILO and MVTO — the per-worker arenas, inline access-set small-vectors,
/// version pools, and batched timestamps exist to make that number zero.
///
/// Columns: scheme, mix, txns, allocs_per_txn, ns_per_txn.

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.h"
#include "common/stats.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

// Counting shims: every heap allocation in this binary bumps g_allocs.
// Deletes deliberately don't count — the metric is allocation traffic.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace next700 {
namespace bench {
namespace {

struct Mix {
  const char* name;
  double write_fraction;
  bool read_modify_write;
};

struct Point {
  double allocs_per_txn;
  double ns_per_txn;
  uint64_t txns;
};

Point RunInline(CcScheme scheme, const Mix& mix) {
  YcsbOptions ycsb;
  ycsb.num_records = QuickMode() ? (uint64_t{1} << 13) : (uint64_t{1} << 16);
  ycsb.ops_per_txn = 16;  // Matches the read/write-set inline capacity.
  ycsb.write_fraction = mix.write_fraction;
  ycsb.read_modify_write = mix.read_modify_write;
  YcsbSetup setup = MakeYcsb(scheme, ycsb, /*max_threads=*/1);

  Rng rng(42);
  const uint64_t warmup = QuickMode() ? 2000 : 20000;
  const uint64_t measured = QuickMode() ? 5000 : 100000;
  // Warm-up: grows the per-worker arena, spills, version-pool freelists,
  // and thread-local workload scratch to their steady-state sizes.
  for (uint64_t i = 0; i < warmup; ++i) {
    NEXT700_CHECK(
        setup.workload->RunNextTxn(setup.engine.get(), 0, &rng).ok());
  }
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t t0 = NowNanos();
  for (uint64_t i = 0; i < measured; ++i) {
    NEXT700_CHECK(
        setup.workload->RunNextTxn(setup.engine.get(), 0, &rng).ok());
  }
  const uint64_t t1 = NowNanos();
  const uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  Point point;
  point.txns = measured;
  point.allocs_per_txn =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(measured);
  point.ns_per_txn =
      static_cast<double>(t1 - t0) / static_cast<double>(measured);
  return point;
}

int Main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "A3", "Does the steady-state transaction hot path heap-allocate?");
  PrintHeader("A3",
              "Does the steady-state transaction hot path heap-allocate?",
              "scheme,mix,txns,allocs_per_txn,ns_per_txn");

  const Mix mixes[] = {
      {"read_only", 0.0, false},
      {"rmw_50", 0.5, true},
  };
  int failures = 0;
  for (CcScheme scheme : {CcScheme::kOcc, CcScheme::kMvto}) {
    for (const Mix& mix : mixes) {
      const Point p = RunInline(scheme, mix);
      std::printf("%s,%s,%llu,%.4f,%.1f\n", CcSchemeName(scheme), mix.name,
                  static_cast<unsigned long long>(p.txns), p.allocs_per_txn,
                  p.ns_per_txn);
      json.AddPoint({{"scheme", JsonOutput::Str(CcSchemeName(scheme))},
                     {"mix", JsonOutput::Str(mix.name)},
                     {"txns", JsonOutput::Num(static_cast<double>(p.txns))},
                     {"allocs_per_txn", JsonOutput::Num(p.allocs_per_txn)},
                     {"ns_per_txn", JsonOutput::Num(p.ns_per_txn)}});
      // The headline acceptance bar: zero steady-state allocations on the
      // read-only path. Surfaced as a nonzero exit so CI smoke catches a
      // regression without parsing the JSON.
      if (mix.write_fraction == 0.0 && p.allocs_per_txn != 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s read_only allocates %.4f times per txn\n",
                     CcSchemeName(scheme), p.allocs_per_txn);
        ++failures;
      }
    }
  }
  if (!json.Write()) return 1;
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace next700

int main(int argc, char** argv) { return next700::bench::Main(argc, argv); }
