/// N1 — Networked service throughput and latency over loopback.
/// Starts the transaction service in-process (epoll front-end, KV
/// stored-procedure suite, value logging so group commit gates replies)
/// and drives it with the pipelined load generator. Sweeps pipeline depth
/// x worker count for two compositions: H-STORE (per-partition queue
/// affinity in the dispatch layer) and SILO (shared run queue). Expected
/// shape: depth 1 is dominated by round-trip latency; deeper pipelines
/// amortize the wire and group-commit waits until workers saturate, at
/// which point p99 grows with queueing delay.

#include "bench_common.h"
#include "server/loadgen.h"
#include "server/procs.h"
#include "server/server.h"

using namespace next700;
using namespace next700::bench;

namespace {

struct Composition {
  CcScheme scheme;
  bool declare_partitions;
};

std::vector<int> WorkerSweep() {
  return QuickMode() ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
}

std::vector<int> PipelineSweep() { return {1, 8, 64}; }

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "N1", "networked service: loopback throughput/latency vs pipeline "
            "depth x workers x composition");
  PrintHeader("N1",
              "networked service: loopback throughput/latency vs pipeline "
              "depth x workers x composition",
              "scheme,workers,pipeline,throughput_txn_s,ok,aborted,rejected,"
              "p50_us,p95_us,p99_us");

  const uint64_t records = QuickMode() ? 20000 : 100000;
  const double seconds = QuickMode() ? 0.3 : 2.0;
  const double warmup = QuickMode() ? 0.1 : 0.5;
  const std::string log_dir = "/tmp/next700_bench_n1.logd";

  for (const Composition& comp :
       {Composition{CcScheme::kHstore, true},
        Composition{CcScheme::kOcc, false}}) {
    for (int workers : WorkerSweep()) {
      EngineOptions eng;
      eng.cc_scheme = comp.scheme;
      eng.max_threads = workers;
      eng.num_partitions = static_cast<uint32_t>(workers);
      eng.logging = LoggingKind::kValue;
      RemoveLogDir(log_dir);  // Reset between compositions.
      eng.log_dir = log_dir;
      Engine engine(eng);

      server::KvServiceOptions kv;
      kv.num_records = records;
      server::RegisterKvService(&engine, kv);

      server::ServerOptions srv;
      srv.num_workers = workers;
      server::Server server(&engine, srv);
      const Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 1;
      }

      for (int pipeline : PipelineSweep()) {
        server::LoadGenOptions load;
        load.port = server.port();
        load.connections = 4;
        load.pipeline_depth = pipeline;
        load.warmup_seconds = warmup;
        load.seconds = seconds;
        load.num_records = records;
        load.num_partitions = eng.num_partitions;
        load.declare_partitions = comp.declare_partitions;
        load.get_fraction = 0.5;
        load.put_fraction = 0.25;
        load.rmw_keys = 2;
        const server::LoadGenStats stats = server::RunLoadGen(load);
        const double p50_us =
            static_cast<double>(stats.latency_ns.Percentile(0.50)) / 1e3;
        const double p95_us =
            static_cast<double>(stats.latency_ns.Percentile(0.95)) / 1e3;
        const double p99_us =
            static_cast<double>(stats.latency_ns.Percentile(0.99)) / 1e3;
        std::printf("%s,%d,%d,%.0f,%llu,%llu,%llu,%.0f,%.0f,%.0f\n",
                    CcSchemeName(comp.scheme), workers, pipeline,
                    stats.Throughput(),
                    static_cast<unsigned long long>(stats.ok),
                    static_cast<unsigned long long>(stats.aborted),
                    static_cast<unsigned long long>(stats.resource_exhausted),
                    p50_us, p95_us, p99_us);
        std::fflush(stdout);
        json.AddPoint(
            {{"scheme", JsonOutput::Str(CcSchemeName(comp.scheme))},
             {"workers", JsonOutput::Num(workers)},
             {"pipeline", JsonOutput::Num(pipeline)},
             {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
             {"ok", JsonOutput::Num(static_cast<double>(stats.ok))},
             {"aborted", JsonOutput::Num(static_cast<double>(stats.aborted))},
             {"rejected", JsonOutput::Num(
                              static_cast<double>(stats.resource_exhausted))},
             {"transport_errors",
              JsonOutput::Num(static_cast<double>(stats.transport_errors))},
             {"p50_us", JsonOutput::Num(p50_us)},
             {"p95_us", JsonOutput::Num(p95_us)},
             {"p99_us", JsonOutput::Num(p99_us)}});
        if (stats.transport_errors != 0) {
          std::fprintf(stderr, "transport errors: %llu\n",
                       static_cast<unsigned long long>(
                           stats.transport_errors));
          return 1;
        }
      }
      server.Stop();
    }
  }
  return 0;
}
