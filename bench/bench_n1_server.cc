/// N1 — Networked service throughput and latency over loopback.
/// Starts the transaction service in-process (async submit/reap I/O spine,
/// KV stored-procedure suite, value logging so group commit gates replies)
/// and drives it with the pipelined load generator. Three sweeps:
///
///   1. pipeline depth x worker count for two compositions: H-STORE
///      (per-partition queue affinity) and SILO (shared run queue). Depth 1
///      is dominated by round-trip latency; deeper pipelines amortize the
///      wire and group-commit waits until workers saturate.
///   2. io backend (batched-epoll fallback vs io_uring, where the kernel
///      allows it) at fixed shape — the syscalls-per-txn series that the
///      async spine exists to improve: reply frames gathered into one
///      writev per readiness event, log writes batched by group commit.
///   3. connection count {64, 256, 1024} under the multiplexed load
///      generator (RLIMIT_NOFILE raised first) — scaling the number of
///      sockets must scale kernel entries sublinearly, not per-connection.
///
/// Every point carries syscalls_per_txn, log_writes_per_txn and
/// frames_per_writev so regressions in batching are visible in the JSON,
/// not just in throughput.

#include <sys/resource.h>

#include "bench_common.h"
#include "io/io_backend.h"
#include "server/loadgen.h"
#include "server/procs.h"
#include "server/server.h"

using namespace next700;
using namespace next700::bench;

namespace {

struct Composition {
  CcScheme scheme;
  bool declare_partitions;
};

std::vector<int> WorkerSweep() {
  return QuickMode() ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
}

std::vector<int> PipelineSweep() { return {1, 8, 64}; }

std::vector<int> ConnectionSweep() {
  return QuickMode() ? std::vector<int>{64, 256}
                     : std::vector<int>{64, 256, 1024};
}

/// 1024-connection cells need ~2x that many fds between server and
/// in-process loadgen; lift the soft limit toward the hard one.
void RaiseFdLimit(rlim_t want) {
  struct rlimit lim;
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = want < lim.rlim_max ? want : lim.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &lim);
}

/// Cumulative kernel-entry counters around one load run; per-server and
/// per-log totals only grow, so deltas isolate a single sweep point.
struct IoSnapshot {
  uint64_t io_syscalls = 0;
  uint64_t writev_batches = 0;
  uint64_t frames_batched = 0;
  uint64_t log_writes = 0;
};

IoSnapshot Snap(const server::Server& srv, Engine& engine) {
  IoSnapshot s;
  if (const io::IoCounters* c = srv.io_counters()) {
    s.io_syscalls = c->syscalls.load(std::memory_order_relaxed);
  }
  s.writev_batches = srv.stats().writev_batches.load(std::memory_order_relaxed);
  s.frames_batched = srv.stats().frames_batched.load(std::memory_order_relaxed);
  if (engine.log_manager() != nullptr) {
    s.log_writes = engine.log_manager()->write_syscalls();
  }
  return s;
}

/// Runs one load point against a running server and emits the CSV row and
/// JSON point. Returns false on transport errors (which fail the bench).
bool RunPoint(JsonOutput* json, const char* axis, server::Server* srv,
              Engine* engine, const Composition& comp, int workers,
              int connections, int pipeline,
              const server::LoadGenOptions& base) {
  server::LoadGenOptions load = base;
  load.port = srv->port();
  load.connections = connections;
  load.pipeline_depth = pipeline;
  load.declare_partitions = comp.declare_partitions;
  // Beyond a handful of connections, multiplex them over a few poll()
  // threads instead of one OS thread each.
  load.threads = connections > 8 ? 8 : 0;

  const IoSnapshot before = Snap(*srv, *engine);
  const server::LoadGenStats stats = server::RunLoadGen(load);
  const IoSnapshot after = Snap(*srv, *engine);

  const double txns = stats.ok > 0 ? static_cast<double>(stats.ok) : 1.0;
  const double syscalls_per_txn =
      static_cast<double>(after.io_syscalls - before.io_syscalls) / txns;
  const double log_writes_per_txn =
      static_cast<double>(after.log_writes - before.log_writes) / txns;
  const uint64_t writevs = after.writev_batches - before.writev_batches;
  const double frames_per_writev =
      writevs > 0 ? static_cast<double>(after.frames_batched -
                                        before.frames_batched) /
                        static_cast<double>(writevs)
                  : 0.0;
  const double p50_us =
      static_cast<double>(stats.latency_ns.Percentile(0.50)) / 1e3;
  const double p95_us =
      static_cast<double>(stats.latency_ns.Percentile(0.95)) / 1e3;
  const double p99_us =
      static_cast<double>(stats.latency_ns.Percentile(0.99)) / 1e3;

  std::printf(
      "%s,%s,%d,%d,%d,%s,%.0f,%llu,%llu,%llu,%.0f,%.0f,%.0f,%.2f,%.3f,%.1f\n",
      axis, CcSchemeName(comp.scheme), workers, connections, pipeline,
      srv->io_backend_name(), stats.Throughput(),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.aborted),
      static_cast<unsigned long long>(stats.resource_exhausted), p50_us,
      p95_us, p99_us, syscalls_per_txn, log_writes_per_txn,
      frames_per_writev);
  std::fflush(stdout);
  json->AddPoint(
      {{"axis", JsonOutput::Str(axis)},
       {"scheme", JsonOutput::Str(CcSchemeName(comp.scheme))},
       {"workers", JsonOutput::Num(workers)},
       {"connections", JsonOutput::Num(connections)},
       {"pipeline", JsonOutput::Num(pipeline)},
       {"io_backend", JsonOutput::Str(srv->io_backend_name())},
       {"log_device", JsonOutput::Str(
                          engine->log_manager() != nullptr
                              ? engine->log_manager()->io_backend_name()
                              : "none")},
       {"throughput_txn_s", JsonOutput::Num(stats.Throughput())},
       {"ok", JsonOutput::Num(static_cast<double>(stats.ok))},
       {"aborted", JsonOutput::Num(static_cast<double>(stats.aborted))},
       {"rejected",
        JsonOutput::Num(static_cast<double>(stats.resource_exhausted))},
       {"transport_errors",
        JsonOutput::Num(static_cast<double>(stats.transport_errors))},
       {"p50_us", JsonOutput::Num(p50_us)},
       {"p95_us", JsonOutput::Num(p95_us)},
       {"p99_us", JsonOutput::Num(p99_us)},
       {"syscalls_per_txn", JsonOutput::Num(syscalls_per_txn)},
       {"log_writes_per_txn", JsonOutput::Num(log_writes_per_txn)},
       {"frames_per_writev", JsonOutput::Num(frames_per_writev)}});
  if (stats.transport_errors != 0) {
    std::fprintf(stderr, "transport errors: %llu\n",
                 static_cast<unsigned long long>(stats.transport_errors));
    return false;
  }
  return true;
}

struct Service {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<server::Server> server;
};

Service StartService(const Composition& comp, int workers, uint64_t records,
                     const std::string& log_dir,
                     io::IoBackendKind backend) {
  EngineOptions eng;
  eng.cc_scheme = comp.scheme;
  eng.max_threads = workers;
  eng.num_partitions = static_cast<uint32_t>(workers);
  eng.logging = LoggingKind::kValue;
  RemoveLogDir(log_dir);  // Reset between sweep cells.
  eng.log_dir = log_dir;
  eng.log_io_backend = backend;
  Service service;
  service.engine = std::make_unique<Engine>(eng);
  server::KvServiceOptions kv;
  kv.num_records = records;
  server::RegisterKvService(service.engine.get(), kv);
  server::ServerOptions srv;
  srv.num_workers = workers;
  srv.io_backend = backend;
  service.server =
      std::make_unique<server::Server>(service.engine.get(), srv);
  const Status started = service.server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    service.server.reset();
  }
  return service;
}

}  // namespace

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment(
      "N1", "networked service: loopback throughput/latency vs pipeline "
            "depth x workers x composition x io backend x connections");
  PrintHeader("N1",
              "networked service: loopback throughput/latency vs pipeline "
              "depth x workers x composition x io backend x connections",
              "axis,scheme,workers,connections,pipeline,io_backend,"
              "throughput_txn_s,ok,aborted,rejected,p50_us,p95_us,p99_us,"
              "syscalls_per_txn,log_writes_per_txn,frames_per_writev");

  const uint64_t records = QuickMode() ? 20000 : 100000;
  const double seconds = QuickMode() ? 0.3 : 2.0;
  const double warmup = QuickMode() ? 0.1 : 0.5;
  const std::string log_dir = "/tmp/next700_bench_n1.logd";
  RaiseFdLimit(8192);

  server::LoadGenOptions base;
  base.warmup_seconds = warmup;
  base.seconds = seconds;
  base.num_records = records;
  base.get_fraction = 0.5;
  base.put_fraction = 0.25;
  base.rmw_keys = 2;

  // Sweep 1: composition x workers x pipeline (the original N1 axes).
  for (const Composition& comp :
       {Composition{CcScheme::kHstore, true},
        Composition{CcScheme::kOcc, false}}) {
    for (int workers : WorkerSweep()) {
      Service service = StartService(comp, workers, records, log_dir,
                                     io::IoBackendKind::kAuto);
      if (service.server == nullptr) return 1;
      for (int pipeline : PipelineSweep()) {
        server::LoadGenOptions load = base;
        load.num_partitions = static_cast<uint32_t>(workers);
        if (!RunPoint(&json, "pipeline", service.server.get(),
                      service.engine.get(), comp, workers,
                      /*connections=*/4, pipeline, load)) {
          return 1;
        }
      }
      service.server->Stop();
    }
  }

  // Sweeps 2 + 3: io backend x connection count at a fixed composition.
  // The backend axis is the headline of the async spine: same workload,
  // fewer kernel entries. The connection axis shows batching holding up
  // as sockets multiply.
  const Composition occ{CcScheme::kOcc, false};
  const int conn_workers = QuickMode() ? 2 : 4;
  std::vector<io::IoBackendKind> backends = {io::IoBackendKind::kEpoll};
  if (io::UringSupported()) {
    backends.push_back(io::IoBackendKind::kUring);
  } else {
    std::fprintf(stderr,
                 "# io_uring unavailable on this kernel/sandbox — "
                 "connection sweep runs the epoll fallback only\n");
  }
  for (const io::IoBackendKind backend : backends) {
    Service service = StartService(occ, conn_workers, records, log_dir,
                                   backend);
    if (service.server == nullptr) return 1;
    for (int connections : ConnectionSweep()) {
      server::LoadGenOptions load = base;
      load.num_partitions = static_cast<uint32_t>(conn_workers);
      if (!RunPoint(&json, "connections", service.server.get(),
                    service.engine.get(), occ, conn_workers, connections,
                    /*pipeline=*/8, load)) {
        return 1;
      }
    }
    service.server->Stop();
  }
  return 0;
}
