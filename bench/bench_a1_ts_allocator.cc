/// A1 (ablation) — Timestamp allocation as a shared component. Short
/// transactions make the allocator a measurable fraction of the work;
/// comparing the single shared atomic counter against per-thread batched
/// allocation isolates that component's cost, one of the keynote's
/// "everything becomes a bottleneck on enough cores" points.

#include "bench_common.h"

using namespace next700;
using namespace next700::bench;

int main(int argc, char** argv) {
  JsonOutput json(argc, argv);
  json.SetExperiment("A1",
                     "timestamp allocator ablation (short txns, T/O scheme)");
  PrintHeader("A1", "timestamp allocator ablation (short txns, T/O scheme)",
              "allocator,threads,ops_per_txn,throughput_txn_s");
  for (TimestampAllocatorKind kind :
       {TimestampAllocatorKind::kAtomic, TimestampAllocatorKind::kBatched}) {
    for (int ops : {1, 16}) {
      EngineOptions eng;
      // TIMESTAMP allocates on every Begin; the shortest transactions give
      // the allocator the largest relative weight.
      eng.cc_scheme = CcScheme::kTimestamp;
      eng.ts_allocator = kind;
      eng.max_threads = ThreadSweep().back();
      Engine engine(eng);
      YcsbOptions ycsb;
      ycsb.num_records = DefaultYcsbRecords();
      ycsb.ops_per_txn = ops;
      ycsb.write_fraction = 0.1;
      YcsbWorkload workload(ycsb);
      workload.Load(&engine);
      for (int threads : ThreadSweep()) {
        DriverOptions driver;
        driver.num_threads = threads;
        driver.warmup_seconds = WarmupSeconds();
        driver.measure_seconds = MeasureSeconds();
        const RunStats stats = Driver::Run(&engine, &workload, driver);
        const char* name =
            kind == TimestampAllocatorKind::kAtomic ? "atomic" : "batched";
        std::printf("%s,%d,%d,%.0f\n", name, threads, ops,
                    stats.Throughput());
        std::fflush(stdout);
        json.AddPoint(
            {{"allocator", JsonOutput::Str(name)},
             {"threads", JsonOutput::Num(threads)},
             {"ops_per_txn", JsonOutput::Num(ops)},
             {"throughput_txn_s", JsonOutput::Num(stats.Throughput())}});
      }
    }
  }
  return 0;
}
