#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "txn/engine.h"
#include "workload/workload.h"

namespace next700 {
namespace {

/// Shared harness: a two-column KV table over a 2-partition engine, so the
/// same tests drive the H-Store scheme (which needs partition declarations)
/// and everything else.
class CcSchemeTest : public ::testing::TestWithParam<CcScheme> {
 protected:
  static constexpr uint64_t kRows = 64;
  static constexpr int kThreads = 4;

  void SetUp() override {
    EngineOptions options;
    options.cc_scheme = GetParam();
    options.max_threads = kThreads;
    options.num_partitions = 2;
    engine_ = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("val");
    schema.AddUint64("pad");
    table_ = engine_->CreateTable("kv", std::move(schema));
    index_ = engine_->CreateIndex("kv_pk", table_, IndexKind::kHash,
                                  kRows * 4);
    std::vector<uint8_t> buf(table_->schema().row_size());
    for (uint64_t key = 0; key < kRows; ++key) {
      table_->schema().SetUint64(buf.data(), 0, 0);
      table_->schema().SetUint64(buf.data(), 1, key);
      Row* row = engine_->LoadRow(table_, PartitionOf(key), key, buf.data());
      ASSERT_TRUE(index_->Insert(key, row).ok());
    }
  }

  static uint32_t PartitionOf(uint64_t key) {
    return static_cast<uint32_t>(key % 2);
  }

  static std::vector<uint32_t> Parts(std::initializer_list<uint64_t> keys) {
    std::vector<uint32_t> parts;
    for (uint64_t key : keys) parts.push_back(PartitionOf(key));
    return parts;
  }

  Status ReadVal(TxnContext* txn, uint64_t key, uint64_t* out) {
    std::vector<uint8_t> buf(table_->schema().row_size());
    const Status s = engine_->Read(txn, index_, key, buf.data());
    if (s.ok()) *out = table_->schema().GetUint64(buf.data(), 0);
    return s;
  }

  Status WriteVal(TxnContext* txn, uint64_t key, uint64_t value) {
    std::vector<uint8_t> buf(table_->schema().row_size());
    const Status s = engine_->Read(txn, index_, key, buf.data());
    if (!s.ok()) return s;
    table_->schema().SetUint64(buf.data(), 0, value);
    return engine_->Update(txn, index_, key, buf.data());
  }

  /// Runs `body` as a transaction on `thread_id`, retrying aborts.
  template <typename Fn>
  Status RunTxn(int thread_id, std::vector<uint32_t> parts, Fn&& body) {
    Rng rng(static_cast<uint64_t>(thread_id) + 1234);
    return RunWithRetry(&rng, [&] {
      TxnContext* txn = engine_->Begin(thread_id, parts);
      Status s = body(txn);
      if (s.ok()) s = engine_->Commit(txn);
      if (!s.ok()) engine_->Abort(txn);
      return s;
    });
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

TEST_P(CcSchemeTest, CommittedWriteIsVisible) {
  ASSERT_TRUE(RunTxn(0, Parts({3}), [&](TxnContext* txn) {
                return WriteVal(txn, 3, 99);
              }).ok());
  uint64_t value = 0;
  ASSERT_TRUE(RunTxn(0, Parts({3}), [&](TxnContext* txn) {
                return ReadVal(txn, 3, &value);
              }).ok());
  EXPECT_EQ(value, 99u);
}

TEST_P(CcSchemeTest, AbortRollsBackWrites) {
  TxnContext* txn = engine_->Begin(0, Parts({5}));
  ASSERT_TRUE(WriteVal(txn, 5, 1234).ok());
  engine_->Abort(txn);
  uint64_t value = 77;
  ASSERT_TRUE(RunTxn(0, Parts({5}), [&](TxnContext* txn2) {
                return ReadVal(txn2, 5, &value);
              }).ok());
  EXPECT_EQ(value, 0u);
}

TEST_P(CcSchemeTest, ReadYourOwnWrites) {
  ASSERT_TRUE(RunTxn(0, Parts({7}), [&](TxnContext* txn) {
                NEXT700_RETURN_IF_ERROR(WriteVal(txn, 7, 55));
                uint64_t value = 0;
                NEXT700_RETURN_IF_ERROR(ReadVal(txn, 7, &value));
                EXPECT_EQ(value, 55u);
                return Status::OK();
              }).ok());
}

TEST_P(CcSchemeTest, RepeatedWritesLastOneWins) {
  ASSERT_TRUE(RunTxn(0, Parts({9}), [&](TxnContext* txn) {
                NEXT700_RETURN_IF_ERROR(WriteVal(txn, 9, 1));
                NEXT700_RETURN_IF_ERROR(WriteVal(txn, 9, 2));
                return WriteVal(txn, 9, 3);
              }).ok());
  uint64_t value = 0;
  ASSERT_TRUE(RunTxn(0, Parts({9}), [&](TxnContext* txn) {
                return ReadVal(txn, 9, &value);
              }).ok());
  EXPECT_EQ(value, 3u);
}

TEST_P(CcSchemeTest, InsertVisibleOnlyAfterCommit) {
  const uint64_t key = kRows + 1;
  std::vector<uint8_t> buf(table_->schema().row_size());
  table_->schema().SetUint64(buf.data(), 0, 42);

  TxnContext* txn = engine_->Begin(0, Parts({key}));
  Result<Row*> row =
      engine_->Insert(txn, table_, PartitionOf(key), key, buf.data());
  ASSERT_TRUE(row.ok());
  engine_->AddIndexInsert(txn, index_, key, row.value());
  EXPECT_EQ(index_->Lookup(key), nullptr);  // Not published yet.
  ASSERT_TRUE(engine_->Commit(txn).ok());
  uint64_t value = 0;
  ASSERT_TRUE(RunTxn(0, Parts({key}), [&](TxnContext* txn2) {
                return ReadVal(txn2, key, &value);
              }).ok());
  EXPECT_EQ(value, 42u);
}

TEST_P(CcSchemeTest, AbortedInsertLeavesNoTrace) {
  const uint64_t key = kRows + 2;
  std::vector<uint8_t> buf(table_->schema().row_size());
  table_->schema().SetUint64(buf.data(), 0, 42);
  TxnContext* txn = engine_->Begin(0, Parts({key}));
  Result<Row*> row =
      engine_->Insert(txn, table_, PartitionOf(key), key, buf.data());
  ASSERT_TRUE(row.ok());
  engine_->AddIndexInsert(txn, index_, key, row.value());
  engine_->Abort(txn);
  EXPECT_EQ(index_->Lookup(key), nullptr);
  uint64_t value = 0;
  EXPECT_TRUE(RunTxn(0, Parts({key}), [&](TxnContext* txn2) {
                return ReadVal(txn2, key, &value);
              }).IsNotFound());
}

TEST_P(CcSchemeTest, DeleteHidesRow) {
  Row* row = index_->Lookup(11);
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(RunTxn(0, Parts({11}), [&](TxnContext* txn) {
                NEXT700_RETURN_IF_ERROR(engine_->Delete(txn, row));
                engine_->AddIndexRemove(txn, index_, 11, row);
                return Status::OK();
              }).ok());
  EXPECT_EQ(index_->Lookup(11), nullptr);
  uint64_t value = 0;
  EXPECT_TRUE(RunTxn(0, Parts({11}), [&](TxnContext* txn) {
                return ReadVal(txn, 11, &value);
              }).IsNotFound());
}

TEST_P(CcSchemeTest, ConcurrentIncrementsLoseNoUpdates) {
  constexpr int kPerThread = 400;
  constexpr uint64_t kHotRows = 4;  // High contention.
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 7);
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t key = rng.NextUint64(kHotRows);
        const Status s = RunTxn(t, Parts({key}), [&](TxnContext* txn) {
          uint64_t value = 0;
          NEXT700_RETURN_IF_ERROR(ReadVal(txn, key, &value));
          return WriteVal(txn, key, value + 1);
        });
        if (s.ok()) ++committed;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(committed.load(), kThreads * kPerThread);
  uint64_t total = 0;
  for (uint64_t key = 0; key < kHotRows; ++key) {
    uint64_t value = 0;
    ASSERT_TRUE(RunTxn(0, Parts({key}), [&](TxnContext* txn) {
                  return ReadVal(txn, key, &value);
                }).ok());
    total += value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_P(CcSchemeTest, ConcurrentTransfersConserveTotal) {
  // Seed balances.
  constexpr uint64_t kAccounts = 8;
  constexpr uint64_t kSeedBalance = 1000;
  for (uint64_t key = 0; key < kAccounts; ++key) {
    ASSERT_TRUE(RunTxn(0, Parts({key}), [&](TxnContext* txn) {
                  return WriteVal(txn, key, kSeedBalance);
                }).ok());
  }
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t from = rng.NextUint64(kAccounts);
        uint64_t to = rng.NextUint64(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const uint64_t amount = rng.NextRange(1, 10);
        (void)RunTxn(t, Parts({from, to}), [&](TxnContext* txn) {
          uint64_t from_balance = 0, to_balance = 0;
          NEXT700_RETURN_IF_ERROR(ReadVal(txn, from, &from_balance));
          if (from_balance < amount) {
            return Status::InvalidArgument("insufficient");
          }
          NEXT700_RETURN_IF_ERROR(ReadVal(txn, to, &to_balance));
          NEXT700_RETURN_IF_ERROR(
              WriteVal(txn, from, from_balance - amount));
          return WriteVal(txn, to, to_balance + amount);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (uint64_t key = 0; key < kAccounts; ++key) {
    uint64_t value = 0;
    ASSERT_TRUE(RunTxn(0, Parts({key}), [&](TxnContext* txn) {
                  return ReadVal(txn, key, &value);
                }).ok());
    total += value;
  }
  EXPECT_EQ(total, kAccounts * kSeedBalance);
}

TEST_P(CcSchemeTest, ReadersNeverObserveTornInvariants) {
  // A writer keeps rows 20 and 21 equal; committed readers must never see
  // them differ (isolation + atomicity).
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 500; ++i) {
      (void)RunTxn(0, Parts({20, 21}), [&](TxnContext* txn) {
        NEXT700_RETURN_IF_ERROR(WriteVal(txn, 20, i));
        return WriteVal(txn, 21, i);
      });
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 1; r <= 2; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t a = 0, b = 0;
        const Status s = RunTxn(r, Parts({20, 21}), [&](TxnContext* txn) {
          NEXT700_RETURN_IF_ERROR(ReadVal(txn, 20, &a));
          return ReadVal(txn, 21, &b);
        });
        if (s.ok() && a != b) ++violations;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(CcSchemeTest, StatsCountCommitsAndAborts) {
  engine_->ResetStats();
  ASSERT_TRUE(RunTxn(0, Parts({1}), [&](TxnContext* txn) {
                return WriteVal(txn, 1, 5);
              }).ok());
  TxnContext* txn = engine_->Begin(0, Parts({1}));
  ASSERT_TRUE(WriteVal(txn, 1, 6).ok());
  engine_->Abort(txn);
  const RunStats stats = engine_->AggregateStats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.aborts, 1u);
  EXPECT_GE(stats.writes, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CcSchemeTest, ::testing::ValuesIn(AllCcSchemes()),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

}  // namespace
}  // namespace next700
