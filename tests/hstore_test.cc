#include "cc/hstore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "txn/engine.h"

namespace next700 {
namespace {

class HstoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cc_scheme = CcScheme::kHstore;
    options.max_threads = 4;
    options.num_partitions = 4;
    engine_ = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("v");
    table_ = engine_->CreateTable("t", std::move(schema));
    index_ = engine_->CreateIndex("t_pk", table_, IndexKind::kHash, 64);
    uint8_t buf[8];
    for (uint64_t key = 0; key < 16; ++key) {
      table_->schema().SetUint64(buf, 0, 0);
      Row* row = engine_->LoadRow(table_, static_cast<uint32_t>(key % 4),
                                  key, buf);
      ASSERT_TRUE(index_->Insert(key, row).ok());
    }
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

TEST_F(HstoreTest, SinglePartitionTxnsOnDistinctPartitionsOverlap) {
  // Two open transactions on different partitions coexist.
  TxnContext* t0 = engine_->Begin(0, {0});
  TxnContext* t1 = engine_->Begin(1, {1});
  uint8_t buf[8];
  EXPECT_TRUE(engine_->Read(t0, index_, 0, buf).ok());   // Partition 0.
  EXPECT_TRUE(engine_->Read(t1, index_, 1, buf).ok());   // Partition 1.
  EXPECT_TRUE(engine_->Commit(t0).ok());
  EXPECT_TRUE(engine_->Commit(t1).ok());
}

TEST_F(HstoreTest, SamePartitionBlocksUntilRelease) {
  TxnContext* holder = engine_->Begin(0, {2});
  std::atomic<bool> entered{false};
  std::thread blocked([&] {
    TxnContext* txn = engine_->Begin(1, {2});  // Blocks in Begin.
    entered.store(true);
    engine_->Commit(txn);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(entered.load());  // Partition lock held by `holder`.
  ASSERT_TRUE(engine_->Commit(holder).ok());
  blocked.join();
  EXPECT_TRUE(entered.load());
}

TEST_F(HstoreTest, MultiPartitionTxnLocksAllItsPartitions) {
  TxnContext* txn = engine_->Begin(0, {1, 3});
  uint8_t buf[8];
  EXPECT_TRUE(engine_->Read(txn, index_, 1, buf).ok());  // Partition 1.
  EXPECT_TRUE(engine_->Read(txn, index_, 3, buf).ok());  // Partition 3.
  // Partition 0 is NOT held; a parallel single-partition txn proceeds.
  std::atomic<bool> done{false};
  std::thread other([&] {
    TxnContext* t = engine_->Begin(1, {0});
    uint8_t b[8];
    EXPECT_TRUE(engine_->Read(t, index_, 0, b).ok());
    EXPECT_TRUE(engine_->Commit(t).ok());
    done.store(true);
  });
  other.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(engine_->Commit(txn).ok());
}

TEST_F(HstoreTest, EmptyPartitionListLocksEverything) {
  TxnContext* txn = engine_->Begin(0, {});
  // Touch rows from every partition without declaring them individually.
  uint8_t buf[8];
  for (uint64_t key = 0; key < 4; ++key) {
    EXPECT_TRUE(engine_->Read(txn, index_, key, buf).ok());
  }
  EXPECT_EQ(txn->partitions().size(), 4u);
  EXPECT_TRUE(engine_->Commit(txn).ok());
}

TEST_F(HstoreTest, AbortRestoresInPlaceWrites) {
  uint8_t buf[8];
  TxnContext* txn = engine_->Begin(0, {0});
  ASSERT_TRUE(engine_->Read(txn, index_, 0, buf).ok());
  table_->schema().SetUint64(buf, 0, 999);
  ASSERT_TRUE(engine_->Update(txn, index_, 0, buf).ok());
  engine_->Abort(txn);
  TxnContext* check = engine_->Begin(0, {0});
  ASSERT_TRUE(engine_->Read(check, index_, 0, buf).ok());
  EXPECT_EQ(table_->schema().GetUint64(buf, 0), 0u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(HstoreTest, SortedAcquisitionPreventsLockOrderDeadlock) {
  // Two threads repeatedly lock partition pairs given in opposite orders;
  // Begin() sorts them, so this must not deadlock.
  std::atomic<int> done{0};
  auto worker = [&](int tid, std::vector<uint32_t> parts) {
    uint8_t buf[8];
    for (int i = 0; i < 500; ++i) {
      TxnContext* txn = engine_->Begin(tid, parts);
      EXPECT_TRUE(engine_->Read(txn, index_, parts[0], buf).ok());
      EXPECT_TRUE(engine_->Commit(txn).ok());
    }
    ++done;
  };
  std::thread a(worker, 0, std::vector<uint32_t>{1, 2});
  std::thread b(worker, 1, std::vector<uint32_t>{2, 1});
  a.join();
  b.join();
  EXPECT_EQ(done.load(), 2);
}

}  // namespace
}  // namespace next700
