/// Loopback tests for the replication subsystem: a real primary server and
/// a real ReplicaApplier over real sockets, covering backlog catch-up,
/// live tailing, snapshot reads with the min_read_lsn staleness contract,
/// the applied-never-exceeds-primary-durable invariant, semisync ack
/// gating (with degradation when the last replica leaves), and failover
/// promotion of the replica's log into a writable engine.

#include "repl/replica_applier.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/index.h"
#include "io/io_backend.h"
#include "log/log_file.h"
#include "log/recovery.h"
#include "repl/log_shipper.h"
#include "server/client.h"
#include "server/procs.h"
#include "server/server.h"

namespace next700 {
namespace repl {
namespace {

using server::Client;
using server::KvServiceOptions;
using server::Request;
using server::Response;
using server::Server;
using server::ServerOptions;

constexpr uint64_t kRecords = 1024;
constexpr uint32_t kValueSize = 64;

/// Every case runs against both async-I/O backends (network event loop and
/// log flusher alike): replication catch-up, semisync gating, and failover
/// must not depend on which spine carried the bytes. Set by the fixture,
/// read by the node factories (gtest runs cases serially).
io::IoBackendKind g_io_backend = io::IoBackendKind::kAuto;

class ReplTest : public ::testing::TestWithParam<io::IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == io::IoBackendKind::kUring && !io::UringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
    }
    g_io_backend = GetParam();
  }
};

/// Log directories must be unique per test *instance*, not just per tag:
/// `ctest -j` runs the epoll and uring instantiations of the same case as
/// concurrent processes, and a shared directory means one process's
/// RemoveLogDir races the other's open log ("cannot open log" aborts).
std::string CurrentTestSlug() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string slug = std::string(info->name());
  for (char& c : slug) {
    if (c == '/') c = '_';
  }
  return slug;
}

std::string TempLogDir(const std::string& tag) {
  const std::string dir = std::string(::testing::TempDir()) +
                          "/next700_repl_" + CurrentTestSlug() + "_" + tag +
                          ".logd";
  RemoveLogDir(dir);
  return dir;
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

EngineOptions NodeEngineOptions(const std::string& log_dir) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 4;
  eng.num_partitions = 2;
  eng.logging = LoggingKind::kValue;
  eng.log_dir = log_dir;
  eng.log_flush_interval_us = 20;
  eng.log_io_backend = g_io_backend;
  return eng;
}

struct PrimaryNode {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Server> server;
};

PrimaryNode StartPrimary(const std::string& tag,
                         server::ReplAckMode ack_mode) {
  PrimaryNode node;
  node.engine = std::make_unique<Engine>(NodeEngineOptions(TempLogDir(tag)));
  KvServiceOptions kv;
  kv.num_records = kRecords;
  kv.value_size = kValueSize;
  RegisterKvService(node.engine.get(), kv);
  ServerOptions srv;
  srv.num_workers = 2;
  srv.io_backend = g_io_backend;
  srv.repl_ack = ack_mode;
  node.server = std::make_unique<Server>(node.engine.get(), srv);
  EXPECT_TRUE(node.server->Start().ok());
  return node;
}

struct ReplicaNode {
  std::string log_dir;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<ReplicaApplier> applier;
  std::unique_ptr<Server> server;

  void Stop() {
    if (server != nullptr) server->Stop();
    if (applier != nullptr) applier->Stop();
  }
};

/// A fresh replica: the same deterministic seed rows as the primary (the
/// bulk load is unlogged) and an empty local log, subscribing from LSN 0.
ReplicaNode StartReplica(const std::string& tag, uint16_t primary_port) {
  ReplicaNode node;
  node.log_dir = TempLogDir(tag);
  node.engine = std::make_unique<Engine>(NodeEngineOptions(node.log_dir));
  KvServiceOptions kv;
  kv.num_records = kRecords;
  kv.value_size = kValueSize;
  RegisterKvService(node.engine.get(), kv);
  ReplicaApplierOptions opts;
  opts.primary_port = primary_port;
  opts.reconnect_backoff_ms = 10;
  opts.recv_deadline_ms = 50;
  node.applier = std::make_unique<ReplicaApplier>(node.engine.get(), opts);
  EXPECT_TRUE(node.applier->Start().ok());
  ServerOptions srv;
  srv.num_workers = 2;
  srv.io_backend = g_io_backend;
  srv.snapshot_source = node.applier.get();
  node.server = std::make_unique<Server>(node.engine.get(), srv);
  EXPECT_TRUE(node.server->Start().ok());
  return node;
}

Request RmwRequest(uint64_t request_id, uint64_t key) {
  Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvRmw;
  server::WireWriter args(&request.args);
  args.PutU16(1);
  args.PutU64(key);
  return request;
}

Request GetRequest(uint64_t request_id, uint64_t key,
                   uint64_t min_read_lsn = 0) {
  Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvGet;
  request.min_read_lsn = min_read_lsn;
  server::WireWriter args(&request.args);
  args.PutU64(key);
  return request;
}

uint64_t CounterOf(const Response& response) {
  NEXT700_CHECK(response.payload.size() >= sizeof(uint64_t));
  uint64_t counter;
  std::memcpy(&counter, response.payload.data(), sizeof(counter));
  return counter;
}

TEST_P(ReplTest, ReplicaCatchesUpAndServesSnapshotReads) {
  PrimaryNode primary = StartPrimary("catchup_p",
                                     server::ReplAckMode::kAsync);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.server->port()).ok());

  // A backlog committed before the replica even exists: subscription from
  // LSN 0 must ship it all.
  std::map<uint64_t, uint64_t> increments;
  uint64_t request_id = 1;
  for (int i = 0; i < 32; ++i) {
    const uint64_t key = static_cast<uint64_t>(i % 8);
    Response response;
    ASSERT_TRUE(client.Call(RmwRequest(request_id++, key), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    ++increments[key];
  }

  ReplicaNode replica = StartReplica("catchup_r", primary.server->port());
  LogManager* primary_log = primary.engine->log_manager();
  ASSERT_TRUE(WaitUntil([&] {
    return replica.applier->applied_lsn() >= primary_log->durable_lsn();
  })) << "replica never caught up with the backlog";

  // Live tail: more commits after subscription.
  for (int i = 0; i < 32; ++i) {
    const uint64_t key = static_cast<uint64_t>(8 + i % 8);
    Response response;
    ASSERT_TRUE(client.Call(RmwRequest(request_id++, key), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    ++increments[key];
  }
  ASSERT_TRUE(WaitUntil([&] {
    return replica.applier->applied_lsn() >= primary_log->durable_lsn();
  })) << "replica never caught up with the live tail";

  // Snapshot reads on the replica observe every replicated increment and
  // report the applied snapshot LSN in commit_lsn.
  Client reader;
  ASSERT_TRUE(reader.Connect("127.0.0.1", replica.server->port()).ok());
  for (const auto& [key, count] : increments) {
    Response response;
    ASSERT_TRUE(reader.Call(GetRequest(request_id++, key), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(CounterOf(response), key + count) << "key " << key;
    EXPECT_EQ(response.commit_lsn, replica.applier->applied_lsn());
  }
  EXPECT_GT(replica.applier->batches_applied(), 0u);
  EXPECT_TRUE(replica.applier->stream_status().ok());

  replica.Stop();
  primary.server->Stop();
}

TEST_P(ReplTest, ReplicaRejectsWritesAndStaleReads) {
  PrimaryNode primary = StartPrimary("reject_p", server::ReplAckMode::kAsync);
  ReplicaNode replica = StartReplica("reject_r", primary.server->port());
  ASSERT_TRUE(WaitUntil([&] { return replica.applier->connected(); }));

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", replica.server->port()).ok());

  // Writes are not served by a replica, ever.
  Response response;
  ASSERT_TRUE(client.Call(RmwRequest(1, 0), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);

  // A read demanding a snapshot fresher than anything applied is refused
  // (client's move: retry, or go to the primary).
  const Lsn applied = replica.applier->applied_lsn();
  ASSERT_TRUE(
      client.Call(GetRequest(2, 0, applied + (1u << 20)), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kUnavailable);

  // The same demand at the applied LSN is satisfiable.
  ASSERT_TRUE(client.Call(GetRequest(3, 0, applied), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_GT(replica.server->stats().snapshot_rejects.load(), 0u);

  replica.Stop();
  primary.server->Stop();
}

TEST_P(ReplTest, AppliedLsnNeverExceedsPrimaryDurable) {
  PrimaryNode primary = StartPrimary("invariant_p",
                                     server::ReplAckMode::kAsync);
  ReplicaNode replica = StartReplica("invariant_r", primary.server->port());
  LogManager* primary_log = primary.engine->log_manager();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.server->port()).ok());
  uint64_t request_id = 1;
  for (int i = 0; i < 200; ++i) {
    Response response;
    ASSERT_TRUE(client
                    .Call(RmwRequest(request_id++,
                                     static_cast<uint64_t>(i) % kRecords),
                          &response)
                    .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    // Read applied first: it only advances after the primary made the
    // bytes durable and shipped them, so this order cannot race a false
    // violation.
    const Lsn applied = replica.applier->applied_lsn();
    EXPECT_LE(applied, primary_log->durable_lsn());
  }

  replica.Stop();
  primary.server->Stop();
}

TEST_P(ReplTest, SemisyncAckedWorkSurvivesPromotion) {
  PrimaryNode primary = StartPrimary("promote_p",
                                     server::ReplAckMode::kSemisync);
  ReplicaNode replica = StartReplica("promote_r", primary.server->port());
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->stats().repl_acks_received.load() > 0;
  })) << "replica never subscribed";

  // Every acked commit is, by semisync contract, durable on the replica's
  // own log before the client sees the response.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.server->port()).ok());
  std::map<uint64_t, uint64_t> increments;
  Lsn max_acked_commit = 0;
  uint64_t request_id = 1;
  for (int i = 0; i < 64; ++i) {
    const uint64_t key = static_cast<uint64_t>(i % 16);
    Response response;
    ASSERT_TRUE(client.Call(RmwRequest(request_id++, key), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    ++increments[key];
    max_acked_commit = std::max(max_acked_commit, response.commit_lsn);
  }
  ASSERT_GT(max_acked_commit, 0u);

  // "Kill" the primary: no orderly handoff, the replica simply stops
  // hearing from it. Every acked byte must already be on the replica log.
  primary.server->Stop();
  primary.engine.reset();
  EXPECT_GE(replica.engine->log_manager()->durable_lsn(), max_acked_commit);

  const std::string replica_log_dir = replica.log_dir;
  replica.Stop();
  replica.server.reset();
  replica.applier.reset();
  replica.engine.reset();

  // Promote: restart the replica's directories as a primary. Opening the
  // log runs the ordinary crash-recovery truncation (an unshipped torn
  // tail dies exactly as it would after a primary crash), and replay
  // rebuilds the state every acked transaction is part of.
  Engine promoted(NodeEngineOptions(replica_log_dir));
  KvServiceOptions kv;
  kv.num_records = kRecords;
  kv.value_size = kValueSize;
  RegisterKvService(&promoted, kv);
  RecoveryManager recovery(&promoted);
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(replica_log_dir, &stats).ok());
  EXPECT_GE(stats.txns_replayed, 64u);

  Index* index = promoted.catalog()->GetIndex("kv_pk");
  ASSERT_NE(index, nullptr);
  for (const auto& [key, count] : increments) {
    Row* row = index->Lookup(key);
    ASSERT_NE(row, nullptr);
    uint64_t counter;
    std::memcpy(&counter, promoted.RawImage(row), sizeof(counter));
    EXPECT_GE(counter, key + count) << "acked increments lost on key "
                                    << key;
  }

  // The promoted engine is writable: it accepts new transactions and logs
  // them past the replicated history.
  const Lsn before = promoted.log_manager()->appended_lsn();
  uint8_t args[2 + 8] = {};
  const uint16_t nkeys = 1;
  std::memcpy(args, &nkeys, sizeof(nkeys));
  const uint64_t key0 = 0;
  std::memcpy(args + 2, &key0, sizeof(key0));
  ASSERT_TRUE(
      promoted.RunProcedure(server::kKvRmw, 0, args, sizeof(args)).ok());
  EXPECT_GT(promoted.log_manager()->appended_lsn(), before);
}

TEST_P(ReplTest, SemisyncDegradesWhenLastReplicaLeaves) {
  PrimaryNode primary = StartPrimary("degrade_p",
                                     server::ReplAckMode::kSemisync);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.server->port()).ok());

  // No replica has ever subscribed: semisync must degrade to local
  // durability instead of stalling every commit.
  Response response;
  ASSERT_TRUE(client.Call(RmwRequest(1, 0), &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);

  {
    ReplicaNode replica = StartReplica("degrade_r", primary.server->port());
    ASSERT_TRUE(WaitUntil([&] {
      return primary.server->stats().repl_acks_received.load() > 0;
    }));
    // With a live replica, commits flow through the semisync gate.
    ASSERT_TRUE(client.Call(RmwRequest(2, 1), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    replica.Stop();
  }

  // The last replica is gone; commits must keep completing (degraded).
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->stats().semisync_degraded.load() > 0;
  })) << "primary never noticed the replica leaving";
  ASSERT_TRUE(client.Call(RmwRequest(3, 2), &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);

  primary.server->Stop();
}

INSTANTIATE_TEST_SUITE_P(
    IoBackends, ReplTest,
    ::testing::Values(io::IoBackendKind::kEpoll, io::IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<io::IoBackendKind>& info) {
      return std::string(io::IoBackendKindName(info.param));
    });

}  // namespace
}  // namespace repl
}  // namespace next700
