#include "txn/engine.h"

#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/ycsb.h"

namespace next700 {
namespace {

TEST(EngineTest, SchemeNamesRoundTrip) {
  for (CcScheme scheme : AllCcSchemes()) {
    EXPECT_EQ(CcSchemeFromName(CcSchemeName(scheme)), scheme);
  }
  EXPECT_EQ(CcSchemeFromName("silo"), CcScheme::kOcc);
  EXPECT_EQ(CcSchemeFromName("occ"), CcScheme::kOcc);
  EXPECT_EQ(CcSchemeFromName("no_wait"), CcScheme::kNoWait);
}

TEST(EngineTest, CatalogResolvesTablesAndIndexes) {
  EngineOptions options;
  Engine engine(options);
  Schema schema;
  schema.AddUint64("v");
  Table* table = engine.CreateTable("t", std::move(schema));
  Index* index = engine.CreateIndex("t_pk", table, IndexKind::kHash, 16);
  EXPECT_EQ(engine.catalog()->GetTable("t"), table);
  EXPECT_EQ(engine.catalog()->GetTable(table->id()), table);
  EXPECT_EQ(engine.catalog()->GetIndex("t_pk"), index);
  EXPECT_EQ(engine.catalog()->PrimaryIndex(table), index);
  EXPECT_EQ(engine.catalog()->GetTable("missing"), nullptr);
}

TEST(EngineTest, ProcedureRegistryDispatches) {
  EngineOptions options;
  Engine engine(options);
  Schema schema;
  schema.AddUint64("v");
  Table* table = engine.CreateTable("t", std::move(schema));
  Index* index = engine.CreateIndex("t_pk", table, IndexKind::kHash, 16);
  uint8_t zero[8] = {};
  Row* row = engine.LoadRow(table, 0, 1, zero);
  ASSERT_TRUE(index->Insert(1, row).ok());

  engine.RegisterProcedure(
      7, [&](Engine* e, TxnContext* txn, const uint8_t* args,
             size_t len) -> Status {
        NEXT700_CHECK(len == 8);
        uint64_t delta;
        std::memcpy(&delta, args, 8);
        uint8_t buf[8];
        NEXT700_RETURN_IF_ERROR(e->Read(txn, index, 1, buf));
        table->schema().SetUint64(buf, 0,
                                  table->schema().GetUint64(buf, 0) + delta);
        return e->Update(txn, index, 1, buf);
      });
  const uint64_t delta = 5;
  ASSERT_TRUE(engine.RunProcedure(7, 0, &delta, sizeof(delta)).ok());
  ASSERT_TRUE(engine.RunProcedure(7, 0, &delta, sizeof(delta)).ok());
  EXPECT_EQ(table->schema().GetUint64(engine.RawImage(row), 0), 10u);
}

/// The "next 700 engines" smoke test: every CC scheme x index kind x
/// logging mode composition loads and runs a small workload correctly.
struct Composition {
  CcScheme cc;
  IndexKind index;
  LoggingKind logging;
};

class DesignSpaceTest : public ::testing::TestWithParam<Composition> {};

TEST_P(DesignSpaceTest, CompositionRunsCorrectly) {
  const Composition& comp = GetParam();
  EngineOptions options;
  options.cc_scheme = comp.cc;
  options.max_threads = 2;
  options.num_partitions = 2;
  options.logging = comp.logging;
  if (comp.logging != LoggingKind::kNone) {
    options.log_dir = std::string(::testing::TempDir()) + "/design_" +
                      CcSchemeName(comp.cc) + IndexKindName(comp.index) +
                      LoggingKindName(comp.logging) + ".logd";
    RemoveLogDir(options.log_dir);  // Logs accumulate across runs.
  }
  Engine engine(options);
  YcsbOptions ycsb;
  ycsb.num_records = 512;
  ycsb.ops_per_txn = 4;
  ycsb.write_fraction = 0.5;
  ycsb.index_kind = comp.index;
  ycsb.partitioned = comp.cc == CcScheme::kHstore;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 50;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 100u);
  if (comp.logging != LoggingKind::kNone) {
    EXPECT_GT(stats.log_bytes, 0u);
  }
}

std::vector<Composition> AllCompositions() {
  std::vector<Composition> out;
  for (CcScheme cc : AllCcSchemes()) {
    for (IndexKind index : {IndexKind::kHash, IndexKind::kBTree}) {
      for (LoggingKind logging :
           {LoggingKind::kNone, LoggingKind::kValue, LoggingKind::kCommand}) {
        out.push_back(Composition{cc, index, logging});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllCompositions, DesignSpaceTest, ::testing::ValuesIn(AllCompositions()),
    [](const ::testing::TestParamInfo<Composition>& info) {
      return std::string(CcSchemeName(info.param.cc)) + "_" +
             IndexKindName(info.param.index) + "_" +
             LoggingKindName(info.param.logging);
    });

TEST(EngineTest, BatchedAllocatorComposition) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kTimestamp;
  options.ts_allocator = TimestampAllocatorKind::kBatched;
  options.max_threads = 2;
  Engine engine(options);
  YcsbOptions ycsb;
  ycsb.num_records = 256;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 100;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 200u);
}

TEST(EngineDeathTest, SiRejectsBatchedAllocator) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EngineOptions options;
  options.cc_scheme = CcScheme::kSi;
  options.ts_allocator = TimestampAllocatorKind::kBatched;
  EXPECT_DEATH({ Engine engine(options); }, "atomic timestamp allocator");
}

// MVTO serializes in timestamp order regardless of wall-clock interleaving,
// so batched (non-monotone across threads) timestamps are fine — the GC
// watermark is protected by the allocator's GcFloor protocol.
TEST(EngineTest, MvtoRunsWithBatchedAllocator) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kMvto;
  options.ts_allocator = TimestampAllocatorKind::kBatched;
  options.max_threads = 4;
  Engine engine(options);
  YcsbOptions ycsb;
  ycsb.num_records = 256;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 500;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 2000u);
}

}  // namespace
}  // namespace next700
