#include "log/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "common/latch_rank.h"
#include "log/log_file.h"
#include "workload/driver.h"
#include "workload/smallbank.h"

namespace next700 {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/next700_ckpt_" + tag;
}

std::string TempLogDir(const char* tag) {
  const std::string dir = TempPath(tag) + ".logd";
  RemoveLogDir(dir);  // Logs accumulate across runs now; start clean.
  return dir;
}

std::string TempCkptDir(const char* tag) {
  const std::string dir = TempPath(tag) + ".ckptd";
  RemoveDirContents(dir);  // Stale MANIFESTs poison later runs.
  return dir;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

class CheckpointTest : public ::testing::Test {
 protected:
  struct Setup {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<SmallBankWorkload> workload;
  };

  static Setup MakeWith(EngineOptions options) {
    Setup setup;
    setup.engine = std::make_unique<Engine>(std::move(options));
    SmallBankOptions bank;
    bank.num_accounts = 500;
    setup.workload = std::make_unique<SmallBankWorkload>(bank);
    setup.workload->Load(setup.engine.get());
    return setup;
  }

  static Setup MakeLoaded(LoggingKind logging, const std::string& log_dir) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    options.logging = logging;
    options.log_dir = log_dir;
    return MakeWith(std::move(options));
  }

  /// Engine with the schema created but no rows (checkpoint target).
  static Setup MakeEmptyWith(EngineOptions options) {
    Setup setup;
    setup.engine = std::make_unique<Engine>(std::move(options));
    SmallBankOptions bank;
    bank.num_accounts = 1;
    setup.workload = std::make_unique<SmallBankWorkload>(bank);
    // Loading one account creates the schema; remove its rows afterwards so
    // the engine is schema-complete but empty.
    setup.workload->Load(setup.engine.get());
    for (const char* index_name : {"SAVINGS_PK", "CHECKING_PK"}) {
      Index* index = setup.engine->catalog()->GetIndex(index_name);
      Row* row = index->Lookup(0);
      NEXT700_CHECK(row != nullptr);
      index->Remove(0, row);
      row->table->FreeRow(row);
    }
    return setup;
  }

  static Setup MakeEmpty() {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    return MakeEmptyWith(std::move(options));
  }

  /// Schema-complete empty engine whose attached workload spans the full
  /// 500-account keyspace (MakeEmpty's only knows account 0), so a Driver
  /// can run against it after recovery repopulates the tables.
  static Setup MakeEmptyFullKeyspace(EngineOptions options) {
    Setup setup;
    setup.engine = std::make_unique<Engine>(std::move(options));
    SmallBankOptions bank;
    bank.num_accounts = 500;
    setup.workload = std::make_unique<SmallBankWorkload>(bank);
    setup.workload->Load(setup.engine.get());
    for (const char* index_name : {"SAVINGS_PK", "CHECKING_PK"}) {
      Index* index = setup.engine->catalog()->GetIndex(index_name);
      for (uint64_t acct = 0; acct < bank.num_accounts; ++acct) {
        Row* row = index->Lookup(acct);
        NEXT700_CHECK(row != nullptr);
        index->Remove(acct, row);
        row->table->FreeRow(row);
      }
    }
    return setup;
  }

  static int64_t Total(Setup& setup) {
    return setup.workload->TotalMoney(setup.engine.get());
  }

  static EngineOptions OnlineOptions(CcScheme scheme, LoggingKind logging,
                                     const std::string& log_dir,
                                     const std::string& ckpt_dir) {
    EngineOptions options;
    options.cc_scheme = scheme;
    options.max_threads = 2;
    options.logging = logging;
    options.log_dir = log_dir;
    options.log_segment_bytes = 8192;  // Rotate often: truncation needs prey.
    options.checkpoint_dir = ckpt_dir;
    return options;
  }

  static void WaitAllDurable(Setup& setup) {
    LogManager* log = setup.engine->log_manager();
    ASSERT_TRUE(log->WaitDurable(log->appended_lsn()).ok());
  }

  /// The online lifecycle end to end for one composition: checkpoints taken
  /// concurrently with a running workload, install through the MANIFEST,
  /// log truncation, then MANIFEST-driven recovery into a fresh engine.
  void RunOnlineLifecycle(CcScheme scheme, LoggingKind logging,
                          const char* tag) {
    const std::string log_dir = TempLogDir(tag);
    const std::string ckpt_dir = TempCkptDir(tag);
    int64_t total_final = 0;
    {
      Setup source =
          MakeWith(OnlineOptions(scheme, logging, log_dir, ckpt_dir));
      DriverOptions driver;
      driver.num_threads = 2;
      driver.txns_per_thread = 400;
      std::thread run([&] {
        (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
      });
      // Online: these overlap the workload above.
      for (int i = 0; i < 3; ++i) {
        CheckpointStats cstats;
        ASSERT_TRUE(source.engine->TriggerCheckpoint(&cstats).ok());
        EXPECT_EQ(cstats.rows, 1000u);
      }
      run.join();
      ASSERT_TRUE(source.engine->TriggerCheckpoint(nullptr).ok());
      EXPECT_EQ(source.engine->checkpointer()->checkpoints_taken(), 4u);
      EXPECT_GT(source.engine->checkpointer()->last_start_lsn(), 0u);
      total_final = Total(source);
      WaitAllDurable(source);
    }
    // The retired prefix is really gone from disk.
    std::vector<LogSegment> segments;
    ASSERT_TRUE(ListLogSegments(log_dir, &segments).ok());
    ASSERT_FALSE(segments.empty());
    EXPECT_GT(segments.front().index, 0u);

    Setup target = MakeEmpty();
    RecoverOutcome outcome;
    ASSERT_TRUE(RecoverEngine(target.engine.get(), ckpt_dir, log_dir,
                              /*rebuilder=*/nullptr, &outcome)
                    .ok());
    EXPECT_TRUE(outcome.used_checkpoint);
    EXPECT_EQ(outcome.checkpoint.rows, 1000u);
    EXPECT_EQ(Total(target), total_final);
  }
};

TEST_F(CheckpointTest, RoundTripRestoresEveryRow) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  // Mutate some state first.
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 300;
  (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
  const int64_t total_before = Total(source);

  const std::string path = TempPath("roundtrip");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  EXPECT_EQ(wstats.rows, 1000u);  // 500 savings + 500 checking.
  EXPECT_GT(wstats.bytes, 0u);

  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  ASSERT_TRUE(loader.Load(path, &lstats).ok());
  EXPECT_EQ(lstats.rows, 1000u);
  EXPECT_EQ(Total(target), total_before);
  // Point lookups work through the rebuilt primary indexes.
  Index* savings = target.engine->catalog()->GetIndex("SAVINGS_PK");
  EXPECT_NE(savings->Lookup(123), nullptr);
}

TEST_F(CheckpointTest, CheckpointPlusLogSuffixRecovers) {
  const std::string log_dir = TempLogDir("suffix");
  const std::string ckpt_path = TempPath("suffix.ckpt");
  int64_t total_final = 0;
  {
    Setup source = MakeLoaded(LoggingKind::kValue, log_dir);
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 200;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    // Quiescent checkpoint mid-life...
    CheckpointManager ckpt(source.engine.get());
    CheckpointStats cstats;
    ASSERT_TRUE(ckpt.Write(ckpt_path, &cstats).ok());
    const Lsn ckpt_lsn = source.engine->log_manager()->appended_lsn();
    // ...then more transactions (the log suffix).
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    total_final = Total(source);
    ASSERT_TRUE(source.engine->log_manager()
                    ->WaitDurable(source.engine->log_manager()->appended_lsn())
                    .ok());

    // Persist the suffix position the recovery path would read from the
    // checkpoint metadata in a full system.
    std::ofstream meta(ckpt_path + ".lsn");
    meta << ckpt_lsn;
  }

  // Crash. Recover: load checkpoint, then replay only the records past the
  // checkpoint LSN — Replay skips everything at or below start_lsn.
  Lsn ckpt_lsn;
  std::ifstream meta(ckpt_path + ".lsn");
  meta >> ckpt_lsn;

  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  ASSERT_TRUE(loader.Load(ckpt_path, &lstats).ok());
  RecoveryManager recovery(target.engine.get());
  RecoveryStats rstats;
  ASSERT_TRUE(recovery.Replay(log_dir, &rstats, ckpt_lsn).ok());
  EXPECT_GT(rstats.txns_replayed, 0u);
  EXPECT_EQ(Total(target), total_final);
}

TEST_F(CheckpointTest, CorruptCheckpointIsRejected) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  const std::string path = TempPath("corrupt");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);  // Guaranteed change.
    f.seekp(64);
    f.write(&byte, 1);
  }
  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  EXPECT_EQ(loader.Load(path, &lstats).code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats stats;
  EXPECT_EQ(loader.Load("/nonexistent/nope.ckpt", &stats).code(),
            StatusCode::kIOError);
}

TEST_F(CheckpointTest, OnlineLifecycleNoWait) {
  RunOnlineLifecycle(CcScheme::kNoWait, LoggingKind::kValue, "online_nowait");
}

TEST_F(CheckpointTest, OnlineLifecycleMvto) {
  RunOnlineLifecycle(CcScheme::kMvto, LoggingKind::kValue, "online_mvto");
}

TEST_F(CheckpointTest, OnlineLifecycleCommandLogging) {
  RunOnlineLifecycle(CcScheme::kNoWait, LoggingKind::kCommand, "online_cmd");
}

TEST_F(CheckpointTest, BackgroundCheckpointerTakesCheckpoints) {
  const std::string log_dir = TempLogDir("background");
  const std::string ckpt_dir = TempCkptDir("background");
  int64_t total_final = 0;
  {
    EngineOptions options = OnlineOptions(CcScheme::kNoWait,
                                          LoggingKind::kValue, log_dir,
                                          ckpt_dir);
    options.checkpoint_interval_ms = 5;
    Setup source = MakeWith(std::move(options));
    source.engine->StartCheckpointer();
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 300;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    // The interval thread runs on wall-clock time; give it a bounded grace
    // period rather than assuming the workload outlasted one interval.
    for (int i = 0; i < 500; ++i) {
      if (source.engine->checkpointer()->checkpoints_taken() > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(source.engine->checkpointer()->checkpoints_taken(), 0u);
    ASSERT_TRUE(source.engine->checkpointer()->background_status().ok());
    total_final = Total(source);
    WaitAllDurable(source);
  }
  Setup target = MakeEmpty();
  RecoverOutcome outcome;
  ASSERT_TRUE(RecoverEngine(target.engine.get(), ckpt_dir, log_dir,
                            /*rebuilder=*/nullptr, &outcome)
                  .ok());
  EXPECT_TRUE(outcome.used_checkpoint);
  EXPECT_EQ(Total(target), total_final);
}

TEST_F(CheckpointTest, ReopenAfterTruncationResumesLsnSpace) {
  const std::string log_dir = TempLogDir("reopen");
  const std::string ckpt_dir = TempCkptDir("reopen");
  const EngineOptions options = OnlineOptions(
      CcScheme::kNoWait, LoggingKind::kValue, log_dir, ckpt_dir);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 250;

  int64_t total_first = 0;
  {
    Setup source = MakeWith(options);
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    ASSERT_TRUE(source.engine->TriggerCheckpoint(nullptr).ok());
    total_first = Total(source);
    WaitAllDurable(source);
  }
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(log_dir, &segments).ok());
  ASSERT_FALSE(segments.empty());
  ASSERT_GT(segments.front().index, 0u);  // The prefix really was retired.

  // Reopen over the truncated log: the MANIFEST's base bookkeeping must
  // place new appends after the existing suffix, and the checkpoint
  // sequence must resume rather than restart.
  int64_t total_second = 0;
  {
    Setup reopened = MakeEmptyFullKeyspace(options);
    RecoverOutcome outcome;
    ASSERT_TRUE(RecoverEngine(reopened.engine.get(), ckpt_dir, log_dir,
                              /*rebuilder=*/nullptr, &outcome)
                    .ok());
    ASSERT_TRUE(outcome.used_checkpoint);
    ASSERT_EQ(Total(reopened), total_first);
    (void)Driver::Run(reopened.engine.get(), reopened.workload.get(), driver);
    ASSERT_TRUE(reopened.engine->TriggerCheckpoint(nullptr).ok());
    total_second = Total(reopened);
    WaitAllDurable(reopened);
  }

  Setup target = MakeEmpty();
  RecoverOutcome outcome;
  ASSERT_TRUE(RecoverEngine(target.engine.get(), ckpt_dir, log_dir,
                            /*rebuilder=*/nullptr, &outcome)
                  .ok());
  EXPECT_TRUE(outcome.used_checkpoint);
  EXPECT_EQ(Total(target), total_second);
}

TEST_F(CheckpointTest, PrepareSweepsTornTmpAndOrphanCheckpoints) {
  const std::string log_dir = TempLogDir("sweep");
  const std::string ckpt_dir = TempCkptDir("sweep");
  const EngineOptions options = OnlineOptions(
      CcScheme::kNoWait, LoggingKind::kValue, log_dir, ckpt_dir);
  int64_t total_final = 0;
  {
    Setup source = MakeWith(options);
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 100;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    ASSERT_TRUE(source.engine->TriggerCheckpoint(nullptr).ok());
    total_final = Total(source);
    WaitAllDurable(source);
  }
  // Manufacture what a crash mid-install leaves behind: a torn tmp file
  // and a checkpoint the MANIFEST never adopted.
  const std::string torn_tmp = ckpt_dir + "/ckpt.000002.tmp";
  const std::string orphan = ckpt_dir + "/ckpt.000099";
  std::ofstream(torn_tmp) << "half a checkpoint";
  std::ofstream(orphan) << "garbage nobody installed";

  {
    // Reopening the engine runs Prepare(): the debris goes, the installed
    // checkpoint stays.
    Setup reopened = MakeEmptyWith(options);
    EXPECT_FALSE(FileExists(torn_tmp));
    EXPECT_FALSE(FileExists(orphan));
    EXPECT_TRUE(FileExists(ckpt_dir + "/" + CheckpointFileName(1)));
  }
  Setup target = MakeEmpty();
  RecoverOutcome outcome;
  ASSERT_TRUE(RecoverEngine(target.engine.get(), ckpt_dir, log_dir,
                            /*rebuilder=*/nullptr, &outcome)
                  .ok());
  EXPECT_TRUE(outcome.used_checkpoint);
  EXPECT_EQ(Total(target), total_final);
}

TEST_F(CheckpointTest, TruncatedCheckpointFileIsCorruption) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  const std::string path = TempPath("truncated");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  std::vector<uint8_t> image;
  ASSERT_TRUE(ReadFileFully(path, &image).ok());
  ASSERT_GT(image.size(), 64u);

  // Every cut must be *detected* — kCorruption, never a crash, a bad_alloc
  // from a bogus length, or a silent partial load.
  const size_t cuts[] = {0, 1, 8, 11, 19, 20, 64, image.size() / 2,
                         image.size() - 1};
  for (const size_t cut : cuts) {
    const std::string cut_path = path + ".cut";
    {
      std::ofstream f(cut_path, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(cut));
    }
    Setup target = MakeEmpty();
    CheckpointManager loader(target.engine.get());
    CheckpointStats lstats;
    EXPECT_EQ(loader.Load(cut_path, &lstats).code(), StatusCode::kCorruption)
        << "cut at " << cut << " of " << image.size();
  }
}

TEST_F(CheckpointTest, BodyBitFlipIsCorruption) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  const std::string path = TempPath("bodyflip");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  std::vector<uint8_t> image;
  ASSERT_TRUE(ReadFileFully(path, &image).ok());
  // Deep in the row payload area, well past the header the existing
  // corruption test covers.
  const size_t offset = image.size() - 24;
  image[offset] ^= 0x10;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  }
  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  EXPECT_EQ(loader.Load(path, &lstats).code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, CorruptManifestFailsLoudlyNeverFallsBack) {
  const std::string log_dir = TempLogDir("badmanifest");
  const std::string ckpt_dir = TempCkptDir("badmanifest");
  {
    Setup source = MakeWith(OnlineOptions(CcScheme::kNoWait,
                                          LoggingKind::kValue, log_dir,
                                          ckpt_dir));
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 100;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    ASSERT_TRUE(source.engine->TriggerCheckpoint(nullptr).ok());
    WaitAllDurable(source);
  }
  {
    std::fstream f(ManifestPath(ckpt_dir),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(12);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(12);
    f.write(&byte, 1);
  }
  // The log was truncated below the checkpoint, so falling back to plain
  // replay would silently lose the prefix. It must refuse instead.
  Setup target = MakeEmpty();
  RecoverOutcome outcome;
  EXPECT_EQ(RecoverEngine(target.engine.get(), ckpt_dir, log_dir,
                          /*rebuilder=*/nullptr, &outcome)
                .code(),
            StatusCode::kCorruption);
}

TEST_F(CheckpointTest, MissingManifestFallsBackToFullReplay) {
  const std::string log_dir = TempLogDir("nomanifest");
  int64_t total_final = 0;
  {
    Setup source = MakeLoaded(LoggingKind::kValue, log_dir);
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 100;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    total_final = Total(source);
    WaitAllDurable(source);
  }
  // Without a checkpoint the log only covers transactional updates, not the
  // initial (unlogged) bulk load — so fallback recovery starts from a
  // freshly loaded engine, as the pre-checkpoint workflow always did.
  Setup target = MakeLoaded(LoggingKind::kNone, "");
  RecoverOutcome outcome;
  ASSERT_TRUE(RecoverEngine(target.engine.get(),
                            TempCkptDir("nomanifest_empty"), log_dir,
                            /*rebuilder=*/nullptr, &outcome)
                  .ok());
  EXPECT_FALSE(outcome.used_checkpoint);
  EXPECT_GT(outcome.log.txns_replayed, 0u);
  EXPECT_EQ(Total(target), total_final);
}

// Regression for the checkpoint-coordinator lock discipline: the snapshot
// scan latches every table partition (LatchRank::kTablePartition), so a
// checkpoint must be initiated latch-free. Triggering one while the calling
// thread still holds any lower-ranked latch (here a row mini-latch) is a
// rank inversion — a would-be deadlock against writers that latch rows
// under the partition latch — and the debug checker aborts the process.
using CheckpointLatchRankDeathTest = CheckpointTest;

TEST_F(CheckpointLatchRankDeathTest, TriggerWhileHoldingRowLatchAborts) {
  if (!latch_rank::kEnabled) {
    GTEST_SKIP() << "built without NEXT700_DEBUG_LATCH_RANK";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EngineOptions options;
  options.cc_scheme = CcScheme::kNoWait;
  options.max_threads = 2;
  options.checkpoint_dir = TempCkptDir("rank_inversion");
  Setup setup = MakeWith(std::move(options));
  Index* index = setup.engine->catalog()->GetIndex("SAVINGS_PK");
  Row* row = index->Lookup(0);
  ASSERT_NE(row, nullptr);
  EXPECT_DEATH(
      {
        row->Latch();  // LatchRank::kRow — below the partition latches.
        (void)setup.engine->TriggerCheckpoint(nullptr);
      },
      "latch-rank violation");
}

}  // namespace
}  // namespace next700
