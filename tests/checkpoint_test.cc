#include "log/checkpoint.h"

#include <gtest/gtest.h>

#include <fstream>

#include "workload/driver.h"
#include "workload/smallbank.h"

namespace next700 {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/next700_ckpt_" + tag;
}

std::string TempLogDir(const char* tag) {
  const std::string dir = TempPath(tag) + ".logd";
  RemoveLogDir(dir);  // Logs accumulate across runs now; start clean.
  return dir;
}

class CheckpointTest : public ::testing::Test {
 protected:
  struct Setup {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<SmallBankWorkload> workload;
  };

  static Setup MakeLoaded(LoggingKind logging, const std::string& log_dir) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    options.logging = logging;
    options.log_dir = log_dir;
    Setup setup;
    setup.engine = std::make_unique<Engine>(options);
    SmallBankOptions bank;
    bank.num_accounts = 500;
    setup.workload = std::make_unique<SmallBankWorkload>(bank);
    setup.workload->Load(setup.engine.get());
    return setup;
  }

  /// Engine with the schema created but no rows (checkpoint target).
  static Setup MakeEmpty() {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    Setup setup;
    setup.engine = std::make_unique<Engine>(options);
    SmallBankOptions bank;
    bank.num_accounts = 1;
    setup.workload = std::make_unique<SmallBankWorkload>(bank);
    // Loading one account creates the schema; remove its rows afterwards so
    // the engine is schema-complete but empty.
    setup.workload->Load(setup.engine.get());
    for (const char* index_name : {"SAVINGS_PK", "CHECKING_PK"}) {
      Index* index = setup.engine->catalog()->GetIndex(index_name);
      Row* row = index->Lookup(0);
      NEXT700_CHECK(row != nullptr);
      index->Remove(0, row);
      row->table->FreeRow(row);
    }
    return setup;
  }

  static int64_t Total(Setup& setup) {
    return setup.workload->TotalMoney(setup.engine.get());
  }
};

TEST_F(CheckpointTest, RoundTripRestoresEveryRow) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  // Mutate some state first.
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 300;
  (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
  const int64_t total_before = Total(source);

  const std::string path = TempPath("roundtrip");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  EXPECT_EQ(wstats.rows, 1000u);  // 500 savings + 500 checking.
  EXPECT_GT(wstats.bytes, 0u);

  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  ASSERT_TRUE(loader.Load(path, &lstats).ok());
  EXPECT_EQ(lstats.rows, 1000u);
  EXPECT_EQ(Total(target), total_before);
  // Point lookups work through the rebuilt primary indexes.
  Index* savings = target.engine->catalog()->GetIndex("SAVINGS_PK");
  EXPECT_NE(savings->Lookup(123), nullptr);
}

TEST_F(CheckpointTest, CheckpointPlusLogSuffixRecovers) {
  const std::string log_dir = TempLogDir("suffix");
  const std::string ckpt_path = TempPath("suffix.ckpt");
  int64_t total_final = 0;
  {
    Setup source = MakeLoaded(LoggingKind::kValue, log_dir);
    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 200;
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    // Quiescent checkpoint mid-life...
    CheckpointManager ckpt(source.engine.get());
    CheckpointStats cstats;
    ASSERT_TRUE(ckpt.Write(ckpt_path, &cstats).ok());
    const Lsn ckpt_lsn = source.engine->log_manager()->appended_lsn();
    // ...then more transactions (the log suffix).
    (void)Driver::Run(source.engine.get(), source.workload.get(), driver);
    total_final = Total(source);
    ASSERT_TRUE(source.engine->log_manager()
                    ->WaitDurable(source.engine->log_manager()->appended_lsn())
                    .ok());

    // Persist the suffix position the recovery path would read from the
    // checkpoint metadata in a full system.
    std::ofstream meta(ckpt_path + ".lsn");
    meta << ckpt_lsn;
  }

  // Crash. Recover: load checkpoint, then replay only the records past the
  // checkpoint LSN — Replay skips everything at or below start_lsn.
  Lsn ckpt_lsn;
  std::ifstream meta(ckpt_path + ".lsn");
  meta >> ckpt_lsn;

  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  ASSERT_TRUE(loader.Load(ckpt_path, &lstats).ok());
  RecoveryManager recovery(target.engine.get());
  RecoveryStats rstats;
  ASSERT_TRUE(recovery.Replay(log_dir, &rstats, ckpt_lsn).ok());
  EXPECT_GT(rstats.txns_replayed, 0u);
  EXPECT_EQ(Total(target), total_final);
}

TEST_F(CheckpointTest, CorruptCheckpointIsRejected) {
  Setup source = MakeLoaded(LoggingKind::kNone, "");
  const std::string path = TempPath("corrupt");
  CheckpointManager writer(source.engine.get());
  CheckpointStats wstats;
  ASSERT_TRUE(writer.Write(path, &wstats).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);  // Guaranteed change.
    f.seekp(64);
    f.write(&byte, 1);
  }
  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats lstats;
  EXPECT_EQ(loader.Load(path, &lstats).code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  Setup target = MakeEmpty();
  CheckpointManager loader(target.engine.get());
  CheckpointStats stats;
  EXPECT_EQ(loader.Load("/nonexistent/nope.ckpt", &stats).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace next700
