#include "cc/snapshot_isolation.h"

#include <gtest/gtest.h>

#include "txn/engine.h"

namespace next700 {
namespace {

/// Harness for hand-interleaved two-transaction schedules: both contexts
/// are driven from the test thread (TxnContext slots are per-worker, not
/// per-OS-thread), which makes anomaly schedules deterministic.
class IsolationLevelTest : public ::testing::TestWithParam<CcScheme> {
 public:
  void SetUp() override {
    EngineOptions options;
    options.cc_scheme = GetParam();
    options.max_threads = 2;
    engine_ = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddInt64("val");
    table_ = engine_->CreateTable("t", std::move(schema));
    index_ = engine_->CreateIndex("t_pk", table_, IndexKind::kHash, 16);
    std::vector<uint8_t> buf(8);
    for (uint64_t key = 0; key < 4; ++key) {
      table_->schema().SetInt64(buf.data(), 0, 50);
      Row* row = engine_->LoadRow(table_, 0, key, buf.data());
      ASSERT_TRUE(index_->Insert(key, row).ok());
    }
  }

  Status Read(TxnContext* txn, uint64_t key, int64_t* out) {
    uint8_t buf[8];
    const Status s = engine_->Read(txn, index_, key, buf);
    if (s.ok()) *out = table_->schema().GetInt64(buf, 0);
    return s;
  }

  Status Write(TxnContext* txn, uint64_t key, int64_t value) {
    uint8_t buf[8];
    table_->schema().SetInt64(buf, 0, value);
    return engine_->Update(txn, index_, key, buf);
  }

  int64_t Committed(uint64_t key) {
    Row* row = index_->Lookup(key);
    return table_->schema().GetInt64(engine_->RawImage(row), 0);
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

/// Write skew: constraint is x + y >= 0 (x = key 0, y = key 1, both 50).
/// Each transaction checks the sum and, if >= 100, withdraws 100 from one
/// of the two rows. Serially, only one can succeed. The schedule
/// interleaves both reads before either commit.
///
/// Returns how many of the two transactions committed.
int RunWriteSkew(IsolationLevelTest* t, Engine* engine) {
  TxnContext* t1 = engine->Begin(0);
  TxnContext* t2 = engine->Begin(1);
  int64_t x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  // Both transactions read both rows under the initial state.
  if (!t->Read(t1, 0, &x1).ok() || !t->Read(t1, 1, &y1).ok()) {
    engine->Abort(t1);
    t1 = nullptr;
  }
  if (!t->Read(t2, 0, &x2).ok() || !t->Read(t2, 1, &y2).ok()) {
    engine->Abort(t2);
    t2 = nullptr;
  }
  int commits = 0;
  if (t1 != nullptr) {
    Status s = Status::OK();
    if (x1 + y1 >= 100) s = t->Write(t1, 0, x1 - 100);  // T1 drains x.
    if (s.ok()) s = engine->Commit(t1);
    if (s.ok()) {
      ++commits;
    } else {
      engine->Abort(t1);
    }
  }
  if (t2 != nullptr) {
    Status s = Status::OK();
    if (x2 + y2 >= 100) s = t->Write(t2, 1, y2 - 100);  // T2 drains y.
    if (s.ok()) s = engine->Commit(t2);
    if (s.ok()) {
      ++commits;
    } else {
      engine->Abort(t2);
    }
  }
  return commits;
}

TEST_P(IsolationLevelTest, WriteSkewOutcomeMatchesIsolationLevel) {
  const int commits = RunWriteSkew(this, engine_.get());
  const int64_t sum = Committed(0) + Committed(1);
  if (GetParam() == CcScheme::kSi) {
    // SI admits the anomaly: both commit, the constraint breaks. This is
    // the documented, deliberate behaviour of the weaker level.
    EXPECT_EQ(commits, 2);
    EXPECT_EQ(sum, -100);
  } else {
    // Serializable schemes: the outcome must be equivalent to SOME serial
    // order, so the constraint holds.
    EXPECT_GE(sum, 0);
    EXPECT_LE(commits, 2);
    if (commits == 2) {
      // Both committing serializably means the second saw the first.
      EXPECT_EQ(sum, 0);
    }
  }
}

/// Lost updates are forbidden even under SI (first-committer-wins).
TEST_P(IsolationLevelTest, ConcurrentBlindIncrementsNeverLoseUpdates) {
  TxnContext* t1 = engine_->Begin(0);
  TxnContext* t2 = engine_->Begin(1);
  int64_t v1 = 0, v2 = 0;
  Status s1 = Read(t1, 2, &v1);
  if (s1.ok()) s1 = Write(t1, 2, v1 + 1);
  Status s2 = Read(t2, 2, &v2);
  if (s2.ok()) s2 = Write(t2, 2, v2 + 1);
  if (s1.ok()) s1 = engine_->Commit(t1);
  if (!s1.ok()) engine_->Abort(t1);
  if (s2.ok()) s2 = engine_->Commit(t2);
  if (!s2.ok()) engine_->Abort(t2);
  const int committed = (s1.ok() ? 1 : 0) + (s2.ok() ? 1 : 0);
  EXPECT_EQ(Committed(2), 50 + committed);  // Every commit is reflected.
}

/// SI read-only transactions see a frozen snapshot even across commits.
TEST(SiSnapshotTest, ReadOnlySnapshotIsStable) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kSi;
  options.max_threads = 2;
  Engine engine(options);
  Schema schema;
  schema.AddInt64("val");
  Table* table = engine.CreateTable("t", std::move(schema));
  Index* index = engine.CreateIndex("t_pk", table, IndexKind::kHash, 16);
  uint8_t buf[8];
  table->schema().SetInt64(buf, 0, 7);
  Row* row = engine.LoadRow(table, 0, 1, buf);
  ASSERT_TRUE(index->Insert(1, row).ok());

  TxnContext* reader = engine.Begin(0);
  ASSERT_TRUE(engine.Read(reader, index, 1, buf).ok());
  EXPECT_EQ(table->schema().GetInt64(buf, 0), 7);

  // A writer commits a new value mid-flight.
  TxnContext* writer = engine.Begin(1);
  table->schema().SetInt64(buf, 0, 8);
  ASSERT_TRUE(engine.Update(writer, index, 1, buf).ok());
  ASSERT_TRUE(engine.Commit(writer).ok());

  // The reader still sees its snapshot; a fresh reader sees the update.
  ASSERT_TRUE(engine.Read(reader, index, 1, buf).ok());
  EXPECT_EQ(table->schema().GetInt64(buf, 0), 7);
  ASSERT_TRUE(engine.Commit(reader).ok());
  TxnContext* fresh = engine.Begin(0);
  ASSERT_TRUE(engine.Read(fresh, index, 1, buf).ok());
  EXPECT_EQ(table->schema().GetInt64(buf, 0), 8);
  ASSERT_TRUE(engine.Commit(fresh).ok());
}

INSTANTIATE_TEST_SUITE_P(
    SiVsSerializable, IsolationLevelTest,
    ::testing::Values(CcScheme::kSi, CcScheme::kMvto, CcScheme::kOcc,
                      CcScheme::kTicToc, CcScheme::kNoWait),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

}  // namespace
}  // namespace next700
