#include "log/log_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {
namespace {

/// Fresh (empty) log directory: opening a log no longer truncates history,
/// so tests must clear leftovers from previous runs themselves.
std::string TempLogDir(const char* tag) {
  std::string dir =
      std::string(::testing::TempDir()) + "/next700_" + tag + ".logd";
  RemoveLogDir(dir);
  return dir;
}

uint64_t TotalLogBytes(const std::string& dir) {
  std::vector<LogSegment> segments;
  NEXT700_CHECK(ListLogSegments(dir, &segments).ok());
  uint64_t total = 0;
  for (const LogSegment& s : segments) total += s.bytes;
  return total;
}

std::string OnlySegmentPath(const std::string& dir) {
  std::vector<LogSegment> segments;
  NEXT700_CHECK(ListLogSegments(dir, &segments).ok());
  NEXT700_CHECK(segments.size() == 1);
  return segments[0].path;
}

TEST(LogManagerTest, AppendAdvancesLsnAndBecomesDurable) {
  LogManagerOptions options;
  options.dir = TempLogDir("append");
  options.flush_interval_us = 100;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body{1, 2, 3, 4};
  const Lsn lsn1 = log.Append(LogRecordType::kTxnValue, body);
  const Lsn lsn2 = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_GT(lsn2, lsn1);
  EXPECT_TRUE(log.WaitDurable(lsn2).ok());
  EXPECT_GE(log.durable_lsn(), lsn2);
  log.Close();
  // On-disk bytes match appended bytes.
  EXPECT_EQ(TotalLogBytes(options.dir), lsn2);
}

TEST(LogManagerTest, GroupCommitBatchesFlushes) {
  LogManagerOptions options;
  options.dir = TempLogDir("group");
  options.flush_interval_us = 2000;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 7);
  Lsn last = 0;
  for (int i = 0; i < 100; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
  }
  EXPECT_TRUE(log.WaitDurable(last).ok());
  // 100 records must not require 100 physical flushes.
  EXPECT_LT(log.flush_count(), 50u);
  log.Close();
}

TEST(LogManagerTest, FdatasyncPolicyIssuesRealBarriers) {
  LogManagerOptions options;
  options.dir = TempLogDir("fdatasync");
  options.sync_policy = LogSyncPolicy::kFdatasync;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(32, 3);
  Lsn last = 0;
  for (int i = 0; i < 10; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(last).ok());
  }
  // Every flush that advanced durable_lsn_ carried a barrier.
  EXPECT_GT(log.sync_count(), 0u);
  EXPECT_EQ(log.sync_count(), log.flush_count());
  log.Close();
}

TEST(LogManagerTest, ODsyncPolicyCountsWritesAsBarriers) {
  LogManagerOptions options;
  options.dir = TempLogDir("odsync");
  options.sync_policy = LogSyncPolicy::kODsync;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(32, 3);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  ASSERT_TRUE(log.WaitDurable(lsn).ok());
  EXPECT_GT(log.sync_count(), 0u);
  log.Close();
}

TEST(LogManagerTest, RotatesSegmentsOnSizeThreshold) {
  LogManagerOptions options;
  options.dir = TempLogDir("rotate");
  options.segment_bytes = 256;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 9);
  Lsn last = 0;
  for (int i = 0; i < 20; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(last).ok());
  }
  log.Close();
  EXPECT_GT(log.segments_opened(), 1u);
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(options.dir, &segments).ok());
  EXPECT_EQ(segments.size(), log.segments_opened());
  EXPECT_EQ(TotalLogBytes(options.dir), last);
}

TEST(LogManagerTest, RetireSegmentsBelowDeletesWholePrefixOnly) {
  LogManagerOptions options;
  options.dir = TempLogDir("retire");
  options.segment_bytes = 256;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 9);
  Lsn last = 0;
  for (int i = 0; i < 20; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(last).ok());
  }
  const std::vector<SealedSegment> sealed = log.sealed_segments();
  ASSERT_GE(sealed.size(), 2u);
  // The sealed chain tiles the LSN space with no gaps.
  EXPECT_EQ(sealed.front().start_lsn, 0u);
  for (size_t i = 1; i < sealed.size(); ++i) {
    EXPECT_EQ(sealed[i].start_lsn, sealed[i - 1].end_lsn) << i;
  }
  // An LSN *inside* the second segment retires only the first: a segment
  // goes only when it sits wholly below the cut.
  int unlink_gaps = 0;
  ASSERT_TRUE(
      log.RetireSegmentsBelow(sealed[1].end_lsn - 1, [&] { ++unlink_gaps; })
          .ok());
  EXPECT_EQ(unlink_gaps, 1);
  std::vector<LogSegment> on_disk;
  ASSERT_TRUE(ListLogSegments(options.dir, &on_disk).ok());
  ASSERT_FALSE(on_disk.empty());
  EXPECT_EQ(on_disk.front().index, sealed[1].index);
  EXPECT_EQ(log.sealed_segments().front().index, sealed[1].index);
  // The live log keeps appending, unbothered.
  const Lsn more = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_TRUE(log.WaitDurable(more).ok());
  log.Close();
}

TEST(LogManagerTest, ReopenWithBaseResumesLsnSpaceOverTruncatedPrefix) {
  LogManagerOptions options;
  options.dir = TempLogDir("base_reopen");
  options.segment_bytes = 256;
  const std::vector<uint8_t> body(64, 5);
  Lsn end = 0;
  SealedSegment base;
  {
    LogManager log(options);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 20; ++i) {
      end = log.Append(LogRecordType::kTxnValue, body);
      ASSERT_TRUE(log.WaitDurable(end).ok());
    }
    const std::vector<SealedSegment> sealed = log.sealed_segments();
    ASSERT_GE(sealed.size(), 2u);
    base = log.BaseAfterRetire(sealed[0].end_lsn);
    EXPECT_EQ(base.index, sealed[1].index);
    EXPECT_EQ(base.start_lsn, sealed[0].end_lsn);
    ASSERT_TRUE(log.RetireSegmentsBelow(sealed[0].end_lsn, nullptr).ok());
    log.Close();
  }
  LogManagerOptions reopened = options;
  reopened.base_index = base.index;
  reopened.base_lsn = base.start_lsn;
  LogManager log(reopened);
  ASSERT_TRUE(log.Open().ok());
  // The LSN space continues where the *full* history ended — not at the
  // byte count of what happens to survive on disk.
  EXPECT_EQ(log.appended_lsn(), end);
  const Lsn more = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_GT(more, end);
  ASSERT_TRUE(log.WaitDurable(more).ok());
  log.Close();
}

TEST(LogManagerTest, OpenDeletesStaleSegmentsBelowBase) {
  // A crash between the MANIFEST update and the segment unlinks leaves
  // retired segments on disk; the next Open must finish the job.
  LogManagerOptions options;
  options.dir = TempLogDir("stale_base");
  options.segment_bytes = 256;
  const std::vector<uint8_t> body(64, 5);
  Lsn end = 0;
  SealedSegment base;
  {
    LogManager log(options);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 20; ++i) {
      end = log.Append(LogRecordType::kTxnValue, body);
      ASSERT_TRUE(log.WaitDurable(end).ok());
    }
    base = log.BaseAfterRetire(log.sealed_segments()[0].end_lsn);
    log.Close();  // "Crash" before the unlinks: everything still on disk.
  }
  LogManagerOptions reopened = options;
  reopened.base_index = base.index;
  reopened.base_lsn = base.start_lsn;
  {
    LogManager log(reopened);
    ASSERT_TRUE(log.Open().ok());
    EXPECT_EQ(log.appended_lsn(), end);
    log.Close();
  }
  std::vector<LogSegment> on_disk;
  ASSERT_TRUE(ListLogSegments(options.dir, &on_disk).ok());
  ASSERT_FALSE(on_disk.empty());
  EXPECT_EQ(on_disk.front().index, base.index);
}

TEST(LogManagerTest, ReopenResumesLsnSpaceAfterHistory) {
  LogManagerOptions options;
  options.dir = TempLogDir("reopen");
  const std::vector<uint8_t> body(16, 1);
  Lsn first_end = 0;
  {
    LogManager log(options);
    ASSERT_TRUE(log.Open().ok());
    first_end = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(first_end).ok());
    log.Close();
  }
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  // The LSN space continues after the surviving segment instead of
  // restarting at zero over truncated history.
  EXPECT_EQ(log.appended_lsn(), first_end);
  const Lsn second_end = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_GT(second_end, first_end);
  ASSERT_TRUE(log.WaitDurable(second_end).ok());
  log.Close();
  EXPECT_EQ(TotalLogBytes(options.dir), second_end);
}

TEST(LogManagerTest, ReopenTruncatesTornTailAtEveryByteBoundary) {
  LogManagerOptions options;
  options.dir = TempLogDir("reopen_torn");
  const std::vector<uint8_t> body(16, 4);
  Lsn valid_prefix = 0;  // Everything but the final frame.
  Lsn full_end = 0;
  {
    LogManager log(options);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 3; ++i) {
      valid_prefix = full_end;
      full_end = log.Append(LogRecordType::kTxnValue, body);
    }
    ASSERT_TRUE(log.WaitDurable(full_end).ok());
    log.Close();
  }
  std::ifstream in(OnlySegmentPath(options.dir), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_EQ(bytes.size(), full_end);
  const size_t last_frame_len = full_end - valid_prefix;

  // A crash can stop the final write after any byte. Reopening must cut
  // the torn frame back to the last valid boundary — once the reopened
  // manager appends a new segment, the torn one is no longer final and
  // recovery would reject its tail as corruption forever.
  for (size_t cut = 1; cut <= last_frame_len; ++cut) {
    const std::string torn = TempLogDir("reopen_torn_case");
    ASSERT_TRUE(EnsureLogDir(torn).ok());
    std::ofstream out(LogSegmentPath(torn, 0), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - cut));
    out.close();

    LogManagerOptions reopened = options;
    reopened.dir = torn;
    LogManager log(reopened);
    ASSERT_TRUE(log.Open().ok()) << "cut=" << cut;
    EXPECT_EQ(log.appended_lsn(), valid_prefix) << "cut=" << cut;
    const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(lsn).ok());
    log.Close();

    std::vector<LogSegment> segments;
    ASSERT_TRUE(ListLogSegments(torn, &segments).ok());
    ASSERT_EQ(segments.size(), 2u) << "cut=" << cut;
    // The torn frame is gone from disk, not just skipped in memory.
    EXPECT_EQ(segments[0].bytes, valid_prefix) << "cut=" << cut;
    EXPECT_EQ(TotalLogBytes(torn), lsn) << "cut=" << cut;
    RemoveLogDir(torn);
  }
}

TEST(LogManagerTest, ReopenRejectsCorruptFinalSegment) {
  LogManagerOptions options;
  options.dir = TempLogDir("reopen_corrupt");
  const std::vector<uint8_t> body(16, 4);
  Lsn end = 0;
  {
    LogManager log(options);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 3; ++i) {
      end = log.Append(LogRecordType::kTxnValue, body);
    }
    ASSERT_TRUE(log.WaitDurable(end).ok());
    log.Close();
  }
  // Flip a byte in the middle: a *complete* frame with a bad checksum was
  // flushed that way — truncating it would silently drop acked txns, so
  // Open must refuse instead.
  const std::string segment = OnlySegmentPath(options.dir);
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);
  char byte;
  f.read(&byte, 1);
  f.seekp(40);
  byte = static_cast<char>(byte ^ 0xFF);
  f.write(&byte, 1);
  f.close();

  LogManager log(options);
  EXPECT_EQ(log.Open().code(), StatusCode::kCorruption);
  // And nothing was truncated.
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(options.dir, &segments).ok());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].bytes, end);
}

TEST(LogManagerTest, WaitDurableReportsUnavailableWhenClosedEarly) {
  LogManagerOptions options;
  options.dir = TempLogDir("closed_early");
  options.flush_interval_us = 50;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(8, 2);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  Status waiter_status;
  std::thread waiter([&] {
    // An LSN past everything ever appended: only Close() can end the wait.
    waiter_status = log.WaitDurable(lsn + 1000);
  });
  ASSERT_TRUE(log.WaitDurable(lsn).ok());
  log.Close();
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kUnavailable);
}

TEST(LogManagerTest, ReentrantDurableCallbackDoesNotDeadlock) {
  LogManagerOptions options;
  options.dir = TempLogDir("reentrant_cb");
  options.flush_interval_us = 20;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  std::atomic<int> invocations{0};
  // A callback that re-registers itself from inside the invocation — the
  // pattern a server uses to swap its release function. This used to
  // self-deadlock on callback_mu_.
  std::function<void(Lsn)> reregister = [&](Lsn) {
    ++invocations;
    log.SetDurableCallback([&](Lsn) { ++invocations; });
  };
  log.SetDurableCallback(reregister);
  const std::vector<uint8_t> body(8, 5);
  Lsn last = 0;
  for (int i = 0; i < 5; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(last).ok());
  }
  // External re-registration still drains an in-flight invocation.
  log.SetDurableCallback(nullptr);
  EXPECT_GE(invocations.load(), 1);
  log.Close();
}

// --- Write-retry / error-path shims ----------------------------------------

/// PosixLogFile with a scripted RawWrite: exercises the retry loop without
/// touching the logic under test.
class ShimLogFile : public PosixLogFile {
 public:
  enum class Step { kEintr, kEagain, kShort, kEio, kOk };

  explicit ShimLogFile(std::vector<Step> script)
      : script_(std::move(script)) {}

 protected:
  ssize_t RawWrite(const uint8_t* data, size_t len) override {
    const Step step =
        cursor_ < script_.size() ? script_[cursor_++] : Step::kOk;
    switch (step) {
      case Step::kEintr:
        errno = EINTR;
        return -1;
      case Step::kEagain:
        errno = EAGAIN;
        return -1;
      case Step::kShort:
        return PosixLogFile::RawWrite(data, len < 3 ? len : 3);
      case Step::kEio:
        errno = EIO;
        return -1;
      case Step::kOk:
        break;
    }
    return PosixLogFile::RawWrite(data, len);
  }

 private:
  std::vector<Step> script_;
  size_t cursor_ = 0;
};

TEST(LogManagerTest, EintrEagainAndShortWritesAreRetried) {
  using Step = ShimLogFile::Step;
  LogManagerOptions options;
  options.dir = TempLogDir("eintr");
  options.file_factory = [] {
    return std::make_unique<ShimLogFile>(std::vector<Step>{
        Step::kEintr, Step::kEintr, Step::kShort, Step::kEagain,
        Step::kShort, Step::kEintr, Step::kOk});
  };
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 11);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  ASSERT_TRUE(log.WaitDurable(lsn).ok());
  log.Close();
  // Every byte landed despite the interruptions and short writes.
  EXPECT_EQ(TotalLogBytes(options.dir), lsn);
}

TEST(LogManagerTest, PersistentIoErrorIsStickyNotFatal) {
  using Step = ShimLogFile::Step;
  LogManagerOptions options;
  options.dir = TempLogDir("eio");
  options.file_factory = [] {
    // EIO forever: the device is gone.
    return std::make_unique<ShimLogFile>(
        std::vector<Step>(64, Step::kEio));
  };
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(16, 1);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_EQ(log.WaitDurable(lsn).code(), StatusCode::kIOError);
  // Sticky: later waiters fail too instead of hanging or aborting.
  EXPECT_EQ(log.WaitDurable(lsn).code(), StatusCode::kIOError);
  EXPECT_EQ(log.io_status().code(), StatusCode::kIOError);
  EXPECT_EQ(log.durable_lsn(), 0u);
  log.Close();
}

/// Tailing the durable frame stream while a writer keeps appending and
/// rotating segments under the reader — the log shipper's access pattern.
/// Every chunk must be whole frames, and the concatenation of all chunks
/// must be byte-identical to a quiesced read of the full range.
TEST(LogManagerTest, ReadFramesInRangeWhileAppendsContinue) {
  LogManagerOptions options;
  options.dir = TempLogDir("tail_read");
  options.segment_bytes = 512;  // Rotate often, under the reader.
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(48, 7);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) {
      const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
      if (i % 32 == 0) ASSERT_TRUE(log.WaitDurable(lsn).ok());
    }
    ASSERT_TRUE(log.WaitDurable(log.appended_lsn()).ok());
    done.store(true, std::memory_order_release);
  });

  std::vector<uint8_t> tailed;
  Lsn cursor = 0;
  while (!done.load(std::memory_order_acquire) ||
         cursor < log.durable_lsn()) {
    std::vector<uint8_t> chunk;
    Lsn end = cursor;
    ASSERT_TRUE(
        log.ReadFramesInRange(cursor, cursor + 4096, &chunk, &end).ok());
    ASSERT_EQ(end - cursor, chunk.size());
    if (chunk.empty()) {
      std::this_thread::yield();
      continue;
    }
    tailed.insert(tailed.end(), chunk.begin(), chunk.end());
    cursor = end;
  }
  writer.join();
  EXPECT_EQ(cursor, log.durable_lsn());

  std::vector<uint8_t> reference;
  Lsn ref_end = 0;
  ASSERT_TRUE(
      log.ReadFramesInRange(0, log.durable_lsn(), &reference, &ref_end)
          .ok());
  EXPECT_EQ(ref_end, log.durable_lsn());
  EXPECT_EQ(tailed, reference);
  log.Close();
}

/// A reader whose cursor fell below the retired prefix gets kNotFound (it
/// must re-bootstrap from a checkpoint); a cursor at or above the surviving
/// base keeps working.
TEST(LogManagerTest, ReadFramesInRangeBelowRetiredPrefixIsNotFound) {
  LogManagerOptions options;
  options.dir = TempLogDir("tail_retired");
  options.segment_bytes = 256;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 9);
  Lsn last = 0;
  for (int i = 0; i < 20; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
    ASSERT_TRUE(log.WaitDurable(last).ok());
  }
  const std::vector<SealedSegment> sealed = log.sealed_segments();
  ASSERT_GE(sealed.size(), 2u);
  const Lsn cut = sealed[0].end_lsn;
  ASSERT_TRUE(log.RetireSegmentsBelow(cut, nullptr).ok());

  std::vector<uint8_t> out;
  Lsn end = 0;
  EXPECT_TRUE(
      log.ReadFramesInRange(0, log.durable_lsn(), &out, &end).IsNotFound());
  ASSERT_TRUE(
      log.ReadFramesInRange(cut, log.durable_lsn(), &out, &end).ok());
  EXPECT_EQ(end, log.durable_lsn());
  EXPECT_EQ(out.size(), log.durable_lsn() - cut);
  log.Close();
}

// --- Recovery ---------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  static EngineOptions BaseOptions(LoggingKind logging,
                                   const std::string& dir) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    options.logging = logging;
    options.log_dir = dir;
    options.log_flush_interval_us = 50;
    return options;
  }

  /// Builds a fresh engine with the KV schema (and procedure) registered.
  static std::unique_ptr<Engine> MakeEngine(const EngineOptions& options,
                                            Table** table, Index** index) {
    auto engine = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("val");
    *table = engine->CreateTable("kv", std::move(schema));
    *index = engine->CreateIndex("kv_pk", *table, IndexKind::kHash, 256);
    // Procedure 1: add args[1] to row args[0] (creating it if missing).
    engine->RegisterProcedure(
        1, [table, index](Engine* e, TxnContext* txn, const uint8_t* args,
                          size_t len) -> Status {
          NEXT700_CHECK(len == 16);
          uint64_t key, delta;
          std::memcpy(&key, args, 8);
          std::memcpy(&delta, args + 8, 8);
          uint8_t buf[8];
          Status s = e->Read(txn, *index, key, buf);
          if (s.IsNotFound()) {
            (*table)->schema().SetUint64(buf, 0, delta);
            Result<Row*> row = e->Insert(txn, *table, 0, key, buf);
            NEXT700_RETURN_IF_ERROR(row.status());
            e->AddIndexInsert(txn, *index, key, row.value());
            return Status::OK();
          }
          NEXT700_RETURN_IF_ERROR(s);
          (*table)->schema().SetUint64(
              buf, 0, (*table)->schema().GetUint64(buf, 0) + delta);
          return e->Update(txn, *index, key, buf);
        });
    return engine;
  }

  static uint64_t Value(Engine* engine, Index* index, Table* table,
                        uint64_t key) {
    Row* row = index->Lookup(key);
    NEXT700_CHECK(row != nullptr);
    return table->schema().GetUint64(engine->RawImage(row), 0);
  }
};

TEST_F(RecoveryTest, ValueLogReplayRestoresState) {
  const std::string dir = TempLogDir("value_replay");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 20; ++key) {
      uint64_t args[2] = {key, key * 10};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
    // Update a few again so replay must take the latest image.
    for (uint64_t key = 0; key < 5; ++key) {
      uint64_t args[2] = {key, 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }  // Engine destruction closes (flushes) the log.

  Table* table;
  Index* index;
  EngineOptions clean = BaseOptions(LoggingKind::kNone, "");
  auto recovered = MakeEngine(clean, &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 25u);
  for (uint64_t key = 0; key < 20; ++key) {
    const uint64_t expected = key * 10 + (key < 5 ? 1 : 0);
    EXPECT_EQ(Value(recovered.get(), index, table, key), expected) << key;
  }
}

TEST_F(RecoveryTest, CommandLogReplayReexecutesProcedures) {
  const std::string dir = TempLogDir("command_replay");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kCommand, dir), &table, &index);
    for (int i = 0; i < 30; ++i) {
      uint64_t args[2] = {static_cast<uint64_t>(i % 3), 5};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 30u);
  for (uint64_t key = 0; key < 3; ++key) {
    EXPECT_EQ(Value(recovered.get(), index, table, key), 50u);
  }
}

TEST_F(RecoveryTest, CommandLogIsSmallerThanValueLog) {
  const std::string vdir = TempLogDir("size_value");
  const std::string cdir = TempLogDir("size_command");
  for (const auto& [kind, dir] :
       {std::pair{LoggingKind::kValue, vdir},
        std::pair{LoggingKind::kCommand, cdir}}) {
    Table* table;
    Index* index;
    auto engine = MakeEngine(BaseOptions(kind, dir), &table, &index);
    for (int i = 0; i < 50; ++i) {
      uint64_t args[2] = {static_cast<uint64_t>(i), 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  // Insert-heavy value logs carry full images; command logs only args. For
  // this tiny schema they are close, so just assert the ordering.
  EXPECT_GT(TotalLogBytes(vdir), 0u);
  EXPECT_LE(TotalLogBytes(cdir), TotalLogBytes(vdir));
}

TEST_F(RecoveryTest, SegmentRotationSurvivesReplay) {
  const std::string dir = TempLogDir("rotated_replay");
  EngineOptions options = BaseOptions(LoggingKind::kValue, dir);
  options.log_segment_bytes = 512;  // Tiny: force many rotations.
  {
    Table* table;
    Index* index;
    auto engine = MakeEngine(options, &table, &index);
    for (uint64_t key = 0; key < 40; ++key) {
      uint64_t args[2] = {key, key + 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(dir, &segments).ok());
  ASSERT_GT(segments.size(), 1u);

  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  EXPECT_EQ(stats.segments_read, segments.size());
  EXPECT_EQ(stats.txns_replayed, 40u);
  for (uint64_t key = 0; key < 40; ++key) {
    EXPECT_EQ(Value(recovered.get(), index, table, key), key + 1) << key;
  }
}

TEST_F(RecoveryTest, ReopenedLogAccumulatesHistoryAcrossRuns) {
  const std::string dir = TempLogDir("two_lives");
  for (int life = 0; life < 2; ++life) {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  // Both lives replay: the second Open appended after the first's segments
  // instead of truncating them. Each life starts from an empty engine, so
  // each logs a fresh insert image of 1; replay takes the latest image.
  EXPECT_EQ(stats.txns_replayed, 20u);
  EXPECT_GE(stats.segments_read, 2u);
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(Value(recovered.get(), index, table, key), 1u) << key;
  }
}

TEST_F(RecoveryTest, CrashTailSurvivesRestartRunRecoverCycle) {
  // The full adversarial sequence: crash (torn tail) -> restart and run
  // more transactions -> recover. The restart's Open() must truncate the
  // torn frame while its segment is still final; otherwise every later
  // replay reports "torn frame in non-final segment" and the acked
  // history is permanently unrecoverable.
  const std::string dir = TempLogDir("torn_restart");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  // Tear the final frame: key 9's txn loses its tail, as a crash would.
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(dir, &segments).ok());
  ASSERT_EQ(segments.size(), 1u);
  ASSERT_EQ(::truncate(segments[0].path.c_str(),
                       static_cast<off_t>(segments[0].bytes - 3)),
            0);

  {  // Restart: appends a second segment after the (truncated) first.
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  // 9 surviving txns from the first life + 10 from the second.
  EXPECT_EQ(stats.txns_replayed, 19u);
  EXPECT_GE(stats.segments_read, 2u);
  // The second life started from an empty engine, so its fresh insert
  // images (value 1) are the latest for every key — including key 9,
  // whose first-life txn was legitimately lost in the torn tail.
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(Value(recovered.get(), index, table, key), 1u) << key;
  }
}

TEST_F(RecoveryTest, TornTailStopsReplayCleanlyAtEveryByteBoundary) {
  const std::string dir = TempLogDir("torn");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  const std::string segment = OnlySegmentPath(dir);
  std::ifstream in(segment, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Find the final frame's start by walking the frame headers.
  size_t last_frame_start = 0;
  for (size_t pos = 0; pos < bytes.size();) {
    uint32_t body_len;
    std::memcpy(&body_len, bytes.data() + pos, 4);
    last_frame_start = pos;
    pos += kFrameOverheadBytes + body_len;
  }
  const size_t last_frame_len = bytes.size() - last_frame_start;
  ASSERT_GT(last_frame_len, 0u);

  // A crash can stop the final write after any byte: truncating the frame
  // at *every* boundary must lose exactly that one transaction.
  for (size_t cut = 1; cut <= last_frame_len; ++cut) {
    const std::string torn = TempLogDir("torn_case");
    ASSERT_TRUE(EnsureLogDir(torn).ok());
    std::ofstream out(LogSegmentPath(torn, 0), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - cut));
    out.close();

    Table* table;
    Index* index;
    auto recovered =
        MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
    RecoveryManager recovery(recovered.get());
    RecoveryStats stats;
    ASSERT_TRUE(recovery.Replay(torn, &stats).ok()) << "cut=" << cut;
    EXPECT_EQ(stats.txns_replayed, 9u) << "cut=" << cut;
    RemoveLogDir(torn);
  }
}

TEST_F(RecoveryTest, TornFrameInNonFinalSegmentIsCorruption) {
  const std::string dir = TempLogDir("torn_mid");
  {
    Table* table;
    Index* index;
    EngineOptions options = BaseOptions(LoggingKind::kValue, dir);
    options.log_segment_bytes = 512;
    auto engine = MakeEngine(options, &table, &index);
    for (uint64_t key = 0; key < 40; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  std::vector<LogSegment> segments;
  ASSERT_TRUE(ListLogSegments(dir, &segments).ok());
  ASSERT_GT(segments.size(), 1u);
  // Rotation happens on frame boundaries, so a truncated *non-final*
  // segment cannot be a legal crash artifact.
  ASSERT_EQ(::truncate(segments[0].path.c_str(),
                       static_cast<off_t>(segments[0].bytes - 3)),
            0);

  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  EXPECT_EQ(recovery.Replay(dir, &stats).code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, MidFileCorruptionIsReported) {
  const std::string dir = TempLogDir("corrupt");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, dir), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  // Flip a byte in the middle of the segment.
  const std::string segment = OnlySegmentPath(dir);
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);
  char byte;
  f.read(&byte, 1);
  f.seekp(40);
  byte = static_cast<char>(byte ^ 0xFF);
  f.write(&byte, 1);
  f.close();

  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  EXPECT_EQ(recovery.Replay(dir, &stats).code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, AsyncCommitTradesDurabilityWindow) {
  const std::string dir = TempLogDir("async");
  Table* table;
  Index* index;
  EngineOptions options = BaseOptions(LoggingKind::kValue, dir);
  options.sync_commit = false;
  auto engine = MakeEngine(options, &table, &index);
  for (uint64_t key = 0; key < 10; ++key) {
    uint64_t args[2] = {key, 3};
    ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
  }
  // Commits returned before durability; the log manager still flushes on
  // close, after which everything must be on disk.
  ASSERT_TRUE(engine->log_manager()
                  ->WaitDurable(engine->log_manager()->appended_lsn())
                  .ok());
  EXPECT_GE(engine->log_manager()->durable_lsn(),
            engine->log_manager()->appended_lsn());
}

/// Replay of a *live* log directory whose prefix was retired mid-run: the
/// replay must resume at the post-retirement base (mapping file offsets
/// back into the shared LSN space via base_index/base_lsn) and still
/// reconstruct every row whose latest image lies at or above the cut —
/// the path a checkpoint-bootstrapped recovery or promoted replica takes
/// while the primary's directory is still open.
TEST_F(RecoveryTest, ReplayResumesAcrossRetireBoundaryOnLiveDirectory) {
  const std::string dir = TempLogDir("retire_replay");
  Table* table;
  Index* index;
  EngineOptions options = BaseOptions(LoggingKind::kValue, dir);
  options.log_segment_bytes = 512;
  auto engine = MakeEngine(options, &table, &index);
  LogManager* log = engine->log_manager();

  // Phase 1: create keys 0..19 (value key*10), spilling over several
  // segments.
  for (uint64_t key = 0; key < 20; ++key) {
    uint64_t args[2] = {key, key * 10};
    ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
  }
  const std::vector<SealedSegment> sealed = log->sealed_segments();
  ASSERT_GE(sealed.size(), 2u);
  const Lsn cut = sealed[0].end_lsn;
  const SealedSegment base = log->BaseAfterRetire(cut);
  ASSERT_TRUE(log->RetireSegmentsBelow(cut, nullptr).ok());

  // Phase 2, after the retirement: touch *every* key so each row's latest
  // image sits above the cut, then keep the directory live (no Close).
  for (uint64_t key = 0; key < 20; ++key) {
    uint64_t args[2] = {key, 3};
    ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
  }
  ASSERT_TRUE(log->WaitDurable(log->appended_lsn()).ok());

  Table* rtable;
  Index* rindex;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &rtable, &rindex);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery
                  .Replay(dir, &stats, /*start_lsn=*/base.start_lsn,
                          /*log_base_index=*/base.index,
                          /*log_base_lsn=*/base.start_lsn)
                  .ok());
  EXPECT_GT(stats.segments_read, 1u);
  for (uint64_t key = 0; key < 20; ++key) {
    EXPECT_EQ(Value(recovered.get(), rindex, rtable, key), key * 10 + 3)
        << key;
  }
}

/// The async flusher path: with io_backend=kUring the flusher submits each
/// staged batch as a linked write+barrier through a private ring. The
/// durability contract and the on-disk bytes must be identical to the
/// synchronous device path.
TEST(LogManagerTest, UringFlusherWritesDurableBytes) {
  if (!io::UringSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
  }
  LogManagerOptions options;
  options.dir = TempLogDir("uring_flush");
  options.sync_policy = LogSyncPolicy::kFdatasync;
  options.flush_interval_us = 100;
  options.io_backend = io::IoBackendKind::kUring;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  EXPECT_STREQ(log.io_backend_name(), "uring");
  const std::vector<uint8_t> body(64, 3);
  Lsn last = 0;
  for (int i = 0; i < 200; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
  }
  ASSERT_TRUE(log.WaitDurable(last).ok());
  EXPECT_GT(log.sync_count(), 0u);
  // Device writes are visible through the same counter the sync path uses.
  EXPECT_GT(log.write_syscalls(), 0u);
  ASSERT_NE(log.io_counters(), nullptr);
  EXPECT_GT(log.io_counters()->write_ops.load(), 0u);
  EXPECT_GT(log.io_counters()->fsync_ops.load(), 0u);
  log.Close();
  EXPECT_EQ(TotalLogBytes(options.dir), last);
}

TEST(LogManagerTest, EpollKindKeepsSynchronousDevicePath) {
  LogManagerOptions options;
  options.dir = TempLogDir("sync_device");
  options.sync_policy = LogSyncPolicy::kFdatasync;
  options.io_backend = io::IoBackendKind::kEpoll;  // No ring for the log.
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  EXPECT_STREQ(log.io_backend_name(), "sync");
  EXPECT_EQ(log.io_counters(), nullptr);
  const std::vector<uint8_t> body(32, 9);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  ASSERT_TRUE(log.WaitDurable(lsn).ok());
  EXPECT_GT(log.write_syscalls(), 0u);
  log.Close();
  EXPECT_EQ(TotalLogBytes(options.dir), lsn);
}

/// The crash-fault seam survives the async spine: a custom file_factory
/// always wins over the ring, and its RawWrite/RawSync shims interpose on
/// every flusher batch (the default SubmitAppend routes through them), so
/// fault-injected writes behave identically under io_backend=kAuto.
TEST(LogManagerTest, FaultShimsInterposeUnderAsyncBackendOption) {
  using Step = ShimLogFile::Step;
  LogManagerOptions options;
  options.dir = TempLogDir("shim_async");
  options.io_backend = io::IoBackendKind::kAuto;
  options.file_factory = [] {
    return std::make_unique<ShimLogFile>(std::vector<Step>{
        Step::kEintr, Step::kShort, Step::kEagain, Step::kOk});
  };
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  // The custom device is in charge, whatever the ring probe said.
  EXPECT_STREQ(log.io_backend_name(), "sync");
  const std::vector<uint8_t> body(64, 13);
  const Lsn lsn = log.Append(LogRecordType::kTxnValue, body);
  ASSERT_TRUE(log.WaitDurable(lsn).ok());
  // The shim's write_count() feeds the same syscalls-per-txn counter; the
  // injected EINTR/short/EAGAIN retries mean strictly more than one write.
  EXPECT_GT(log.write_syscalls(), 1u);
  log.Close();
  EXPECT_EQ(TotalLogBytes(options.dir), lsn);
}

}  // namespace
}  // namespace next700
