#include "log/log_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {
namespace {

std::string TempLogPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/next700_" + tag + ".log";
}

TEST(LogManagerTest, AppendAdvancesLsnAndBecomesDurable) {
  LogManagerOptions options;
  options.path = TempLogPath("append");
  options.flush_interval_us = 100;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body{1, 2, 3, 4};
  const Lsn lsn1 = log.Append(LogRecordType::kTxnValue, body);
  const Lsn lsn2 = log.Append(LogRecordType::kTxnValue, body);
  EXPECT_GT(lsn2, lsn1);
  log.WaitDurable(lsn2);
  EXPECT_GE(log.durable_lsn(), lsn2);
  log.Close();
  // File size matches appended bytes.
  std::ifstream f(options.path, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<Lsn>(f.tellg()), lsn2);
}

TEST(LogManagerTest, GroupCommitBatchesFlushes) {
  LogManagerOptions options;
  options.path = TempLogPath("group");
  options.flush_interval_us = 2000;
  LogManager log(options);
  ASSERT_TRUE(log.Open().ok());
  const std::vector<uint8_t> body(64, 7);
  Lsn last = 0;
  for (int i = 0; i < 100; ++i) {
    last = log.Append(LogRecordType::kTxnValue, body);
  }
  log.WaitDurable(last);
  // 100 records must not require 100 physical flushes.
  EXPECT_LT(log.flush_count(), 50u);
  log.Close();
}

class RecoveryTest : public ::testing::Test {
 protected:
  static EngineOptions BaseOptions(LoggingKind logging,
                                   const std::string& path) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kNoWait;
    options.max_threads = 2;
    options.logging = logging;
    options.log_path = path;
    options.log_flush_interval_us = 50;
    return options;
  }

  /// Builds a fresh engine with the KV schema (and procedure) registered.
  static std::unique_ptr<Engine> MakeEngine(const EngineOptions& options,
                                            Table** table, Index** index) {
    auto engine = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("val");
    *table = engine->CreateTable("kv", std::move(schema));
    *index = engine->CreateIndex("kv_pk", *table, IndexKind::kHash, 256);
    // Procedure 1: add args[1] to row args[0] (creating it if missing).
    engine->RegisterProcedure(
        1, [table, index](Engine* e, TxnContext* txn, const uint8_t* args,
                          size_t len) -> Status {
          NEXT700_CHECK(len == 16);
          uint64_t key, delta;
          std::memcpy(&key, args, 8);
          std::memcpy(&delta, args + 8, 8);
          uint8_t buf[8];
          Status s = e->Read(txn, *index, key, buf);
          if (s.IsNotFound()) {
            (*table)->schema().SetUint64(buf, 0, delta);
            Result<Row*> row = e->Insert(txn, *table, 0, key, buf);
            NEXT700_RETURN_IF_ERROR(row.status());
            e->AddIndexInsert(txn, *index, key, row.value());
            return Status::OK();
          }
          NEXT700_RETURN_IF_ERROR(s);
          (*table)->schema().SetUint64(
              buf, 0, (*table)->schema().GetUint64(buf, 0) + delta);
          return e->Update(txn, *index, key, buf);
        });
    return engine;
  }

  static uint64_t Value(Engine* engine, Index* index, Table* table,
                        uint64_t key) {
    Row* row = index->Lookup(key);
    NEXT700_CHECK(row != nullptr);
    return table->schema().GetUint64(engine->RawImage(row), 0);
  }
};

TEST_F(RecoveryTest, ValueLogReplayRestoresState) {
  const std::string path = TempLogPath("value_replay");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, path), &table, &index);
    for (uint64_t key = 0; key < 20; ++key) {
      uint64_t args[2] = {key, key * 10};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
    // Update a few again so replay must take the latest image.
    for (uint64_t key = 0; key < 5; ++key) {
      uint64_t args[2] = {key, 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }  // Engine destruction closes (flushes) the log.

  Table* table;
  Index* index;
  EngineOptions clean = BaseOptions(LoggingKind::kNone, "");
  auto recovered = MakeEngine(clean, &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(path, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 25u);
  for (uint64_t key = 0; key < 20; ++key) {
    const uint64_t expected = key * 10 + (key < 5 ? 1 : 0);
    EXPECT_EQ(Value(recovered.get(), index, table, key), expected) << key;
  }
}

TEST_F(RecoveryTest, CommandLogReplayReexecutesProcedures) {
  const std::string path = TempLogPath("command_replay");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kCommand, path), &table, &index);
    for (int i = 0; i < 30; ++i) {
      uint64_t args[2] = {static_cast<uint64_t>(i % 3), 5};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(path, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 30u);
  for (uint64_t key = 0; key < 3; ++key) {
    EXPECT_EQ(Value(recovered.get(), index, table, key), 50u);
  }
}

TEST_F(RecoveryTest, CommandLogIsSmallerThanValueLog) {
  const std::string vpath = TempLogPath("size_value");
  const std::string cpath = TempLogPath("size_command");
  for (const auto& [kind, path] :
       {std::pair{LoggingKind::kValue, vpath},
        std::pair{LoggingKind::kCommand, cpath}}) {
    Table* table;
    Index* index;
    auto engine = MakeEngine(BaseOptions(kind, path), &table, &index);
    for (int i = 0; i < 50; ++i) {
      uint64_t args[2] = {static_cast<uint64_t>(i), 1};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  std::ifstream vf(vpath, std::ios::binary | std::ios::ate);
  std::ifstream cf(cpath, std::ios::binary | std::ios::ate);
  // Insert-heavy value logs carry full images; command logs only args. For
  // this tiny schema they are close, so just assert the ordering.
  EXPECT_GT(static_cast<size_t>(vf.tellg()), 0u);
  EXPECT_LE(static_cast<size_t>(cf.tellg()), static_cast<size_t>(vf.tellg()));
}

TEST_F(RecoveryTest, TornTailStopsReplayCleanly) {
  const std::string path = TempLogPath("torn");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, path), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  // Truncate mid-record to simulate a crash during the final write.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.close();
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - 7)), 0);

  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(path, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 9u);  // Final record lost, rest intact.
}

TEST_F(RecoveryTest, MidFileCorruptionIsReported) {
  const std::string path = TempLogPath("corrupt");
  {
    Table* table;
    Index* index;
    auto engine =
        MakeEngine(BaseOptions(LoggingKind::kValue, path), &table, &index);
    for (uint64_t key = 0; key < 10; ++key) {
      uint64_t args[2] = {key, 7};
      ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
    }
  }
  // Flip a byte in the middle of the file.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);
  char byte;
  f.read(&byte, 1);
  f.seekp(40);
  byte = static_cast<char>(byte ^ 0xFF);
  f.write(&byte, 1);
  f.close();

  Table* table;
  Index* index;
  auto recovered =
      MakeEngine(BaseOptions(LoggingKind::kNone, ""), &table, &index);
  RecoveryManager recovery(recovered.get());
  RecoveryStats stats;
  EXPECT_EQ(recovery.Replay(path, &stats).code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, AsyncCommitTradesDurabilityWindow) {
  const std::string path = TempLogPath("async");
  Table* table;
  Index* index;
  EngineOptions options = BaseOptions(LoggingKind::kValue, path);
  options.sync_commit = false;
  auto engine = MakeEngine(options, &table, &index);
  for (uint64_t key = 0; key < 10; ++key) {
    uint64_t args[2] = {key, 3};
    ASSERT_TRUE(engine->RunProcedure(1, 0, args, sizeof(args)).ok());
  }
  // Commits returned before durability; the log manager still flushes on
  // close, after which everything must be on disk.
  engine->log_manager()->WaitDurable(engine->log_manager()->appended_lsn());
  EXPECT_GE(engine->log_manager()->durable_lsn(),
            engine->log_manager()->appended_lsn());
}

}  // namespace
}  // namespace next700
