// Compile-fail case (clang only): calling a REQUIRES(mu) function without
// holding mu must not compile under -Wthread-safety -Werror.
#include "common/thread_safety.h"

namespace next700 {

class Queue {
 public:
  void PushLocked() REQUIRES(mu_) { ++size_; }
  void Push() {
    PushLocked();  // ERROR: caller does not hold mu_.
  }

 private:
  Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

void Touch(Queue* q) { q->Push(); }

}  // namespace next700
