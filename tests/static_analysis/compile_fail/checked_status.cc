// Positive control for the compile-fail harness: handling (or explicitly
// voiding) a Status compiles cleanly under -Werror=unused-result. If this
// file fails to build, the harness flags are broken, not the cases.
#include "common/status.h"

namespace next700 {

Status MightFail() { return Status::IOError("disk on fire"); }

int HandlesTheError() {
  Status s = MightFail();
  if (!s.ok()) return 1;
  (void)MightFail();  // Deliberate discard: this path only probes liveness.
  return 0;
}

}  // namespace next700
