// Compile-fail case (clang only): acquiring a capability and returning
// without releasing it must not compile under -Wthread-safety -Werror.
#include "common/thread_safety.h"

namespace next700 {

Mutex g_mu;

void LeaksTheLock() {
  g_mu.Lock();
  // ERROR: returns while still holding g_mu.
}

}  // namespace next700
