// Compile-fail case (clang only): writing a GUARDED_BY field without
// holding its mutex must not compile under -Wthread-safety -Werror.
#include "common/thread_safety.h"

namespace next700 {

class Counter {
 public:
  void Increment() {
    ++count_;  // ERROR: writing count_ requires holding mu_.
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

void Touch(Counter* c) { c->Increment(); }

}  // namespace next700
