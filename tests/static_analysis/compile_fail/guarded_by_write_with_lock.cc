// Positive control for the TSA harness: the same guarded write under a
// MutexLock compiles cleanly with -Wthread-safety -Werror. If this file
// fails to build, the preset flags are broken, not the cases.
#include "common/thread_safety.h"

namespace next700 {

class Counter {
 public:
  void Increment() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

void Touch(Counter* c) { c->Increment(); }

}  // namespace next700
