// Compile-fail case: discarding a Status must not compile under
// -Werror=unused-result (Status is [[nodiscard]]).
#include "common/status.h"

namespace next700 {

Status MightFail() { return Status::IOError("disk on fire"); }

int DropsTheError() {
  MightFail();  // ERROR: ignoring [[nodiscard]] return value.
  return 0;
}

}  // namespace next700
