// Lint negative fixture: raw std::mutex outside common/thread_safety.h
// must trip the raw-mutex rule.
#include <mutex>

static std::mutex g_mu;

int Locked() {
  std::lock_guard<std::mutex> lock(g_mu);
  return 1;
}
