// Lint negative fixture: installing a file with rename(2) and no prior
// fsync of the temporary must trip the rename-without-fsync rule.
#include <cstdio>

bool Install(const char* tmp, const char* path) {
  return ::rename(tmp, path) == 0;
}
