// Lint negative fixture: fsync while a latch guard is in scope must trip
// the blocking-under-latch rule.
#include <unistd.h>

struct SpinLatch {};
struct SpinLatchGuard {
  explicit SpinLatchGuard(SpinLatch*) {}
};

static SpinLatch g_latch;

void FlushUnderLatch(int fd) {
  SpinLatchGuard guard(&g_latch);
  fsync(fd);
}
