// Lint negative fixture: Status/Result without [[nodiscard]] must trip the
// nodiscard-status rule.
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class Result {
 public:
  bool ok() const { return true; }
};

#endif  // FIXTURE_STATUS_H_
