// Lint negative fixture: a naked allocation in src/cc (a transaction
// hot-path layer) must trip the naked-new rule.
struct Entry {
  int v;
};

Entry* MakeEntry() { return new Entry{42}; }
