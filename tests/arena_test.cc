#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace next700 {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  std::set<uintptr_t> starts;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(starts.insert(reinterpret_cast<uintptr_t>(p)).second);
    std::memset(p, i, 24);  // ASAN-visible if regions overlap.
  }
}

TEST(ArenaTest, AllocateCopyPreservesBytes) {
  Arena arena;
  const char src[] = "the quick brown fox";
  void* p = arena.AllocateCopy(src, sizeof(src));
  EXPECT_EQ(std::memcmp(p, src, sizeof(src)), 0);
}

TEST(ArenaTest, ResetRecyclesMemoryWithoutGrowth) {
  Arena arena(1024);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) arena.Allocate(64);
    arena.Reset();
  }
  // 10 * 64 fits one block; repeated rounds must not reserve more.
  EXPECT_LE(arena.bytes_reserved(), 2048u);
}

TEST(ArenaTest, OversizeAllocationsGetDedicatedBlocks) {
  Arena arena(256);
  void* big = arena.Allocate(10000);
  std::memset(big, 0xAB, 10000);
  void* small = arena.Allocate(16);
  EXPECT_NE(big, small);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaTest, UsageAccounting) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.Allocate(10);  // Rounded to 16.
  EXPECT_EQ(arena.bytes_used(), 16u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, ManyBlocksThenReset) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) arena.Allocate(100);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  for (int i = 0; i < 100; ++i) arena.Allocate(100);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // Fully recycled.
}

}  // namespace
}  // namespace next700
