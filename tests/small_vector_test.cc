#include "common/small_vector.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/arena.h"

namespace next700 {
namespace {

TEST(SmallVectorTest, StaysInlineUpToCapacity) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  // The inline buffer lives inside the object itself.
  EXPECT_GE(reinterpret_cast<const char*>(v.data()),
            reinterpret_cast<const char*>(&v));
  EXPECT_LT(reinterpret_cast<const char*>(v.data()),
            reinterpret_cast<const char*>(&v) + sizeof(v));
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, SpillsToHeapPastInlineCapacity) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, SpillsIntoArenaWhenBound) {
  Arena arena;
  SmallVector<uint64_t, 4> v(&arena);
  const size_t used_before = arena.bytes_used();
  for (uint64_t i = 0; i < 64; ++i) v.push_back(i);
  EXPECT_TRUE(v.spilled());
  EXPECT_GT(arena.bytes_used(), used_before);  // Growths came from the arena.
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(v[i], i);
  // Contract: drop the spill reference before the arena is reset.
  v.ResetToInline();
  arena.Reset();
}

TEST(SmallVectorTest, ClearKeepsSpilledCapacityForReuse) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 32; ++i) v.push_back(i);
  const size_t cap = v.capacity();
  const uint64_t* buf = v.data();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  for (uint64_t i = 0; i < 32; ++i) v.push_back(i * 2);
  EXPECT_EQ(v.data(), buf);  // Refill reused the same buffer: no realloc.
  EXPECT_EQ(v[31], 62u);
}

TEST(SmallVectorTest, ResetToInlineDropsSpill) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 32; ++i) v.push_back(i);
  ASSERT_TRUE(v.spilled());
  v.ResetToInline();
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  v.push_back(9);
  EXPECT_EQ(v[0], 9u);
}

TEST(SmallVectorTest, MoveStealsSpilledBuffer) {
  SmallVector<uint64_t, 4> a;
  for (uint64_t i = 0; i < 32; ++i) a.push_back(i);
  const uint64_t* buf = a.data();
  SmallVector<uint64_t, 4> b(std::move(a));
  EXPECT_EQ(b.data(), buf);  // No copy: ownership moved.
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_FALSE(a.spilled());
  for (uint64_t i = 0; i < 32; ++i) EXPECT_EQ(b[i], i);
}

TEST(SmallVectorTest, MoveCopiesInlineContents) {
  SmallVector<uint64_t, 8> a;
  a.push_back(1);
  a.push_back(2);
  SmallVector<uint64_t, 8> b(std::move(a));
  EXPECT_FALSE(b.spilled());
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 2u);
}

TEST(SmallVectorTest, EraseShiftsTailDown) {
  SmallVector<uint32_t, 8> v;
  for (uint32_t i = 0; i < 8; ++i) v.push_back(i);
  v.erase(v.begin() + 2, v.begin() + 5);
  ASSERT_EQ(v.size(), 5u);
  const uint32_t want[] = {0, 1, 5, 6, 7};
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], want[i]);
}

TEST(SmallVectorTest, AssignAppendAndEndInsert) {
  SmallVector<uint8_t, 4> v;
  const std::vector<uint8_t> src = {1, 2, 3, 4, 5, 6};
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 6u);
  const uint8_t more[] = {7, 8};
  v.append(more, 2);
  v.insert(v.end(), src.begin(), src.begin() + 1);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_EQ(v[5], 6u);
  EXPECT_EQ(v[7], 8u);
  EXPECT_EQ(v[8], 1u);
}

TEST(SmallVectorTest, ResizeValueInitializesNewElements) {
  SmallVector<uint64_t, 2> v;
  v.push_back(5);
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[0], 5u);
  for (size_t i = 1; i < 10; ++i) EXPECT_EQ(v[i], 0u);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 5u);
}

TEST(ArenaMarkTest, ResetToRewindsBumpPointer) {
  Arena arena(1024);
  arena.Allocate(100);
  const Arena::Mark mark = arena.Position();
  const size_t used_at_mark = arena.bytes_used();
  void* p1 = arena.Allocate(200);
  ASSERT_NE(p1, nullptr);
  EXPECT_GT(arena.bytes_used(), used_at_mark);
  arena.ResetTo(mark);
  EXPECT_EQ(arena.bytes_used(), used_at_mark);
  // The rewound region is handed out again.
  void* p2 = arena.Allocate(200);
  EXPECT_EQ(p2, p1);
}

TEST(ArenaMarkTest, ResetToAcrossBlockBoundary) {
  Arena arena(256);  // Tiny blocks: force block transitions.
  const Arena::Mark mark = arena.Position();
  for (int i = 0; i < 16; ++i) arena.Allocate(100);  // Spans many blocks.
  const size_t reserved = arena.bytes_reserved();
  arena.ResetTo(mark);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // Blocks kept, not freed.
  // Steady state: the same sequence reuses the same blocks.
  for (int i = 0; i < 16; ++i) arena.Allocate(100);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaMarkTest, LifoMarksNest) {
  Arena arena(512);
  arena.Allocate(64);
  const Arena::Mark outer = arena.Position();
  arena.Allocate(64);
  const Arena::Mark inner = arena.Position();
  arena.Allocate(64);
  arena.ResetTo(inner);
  EXPECT_EQ(arena.bytes_used(), 128u);
  arena.ResetTo(outer);
  EXPECT_EQ(arena.bytes_used(), 64u);
}

}  // namespace
}  // namespace next700
