#include "storage/schema.h"

#include <gtest/gtest.h>

#include <vector>

namespace next700 {
namespace {

TEST(SchemaTest, OffsetsAreAlignedAndPacked) {
  Schema s;
  EXPECT_EQ(s.AddUint64("id"), 0);
  EXPECT_EQ(s.AddChar("name", 10), 1);  // Padded to 16.
  EXPECT_EQ(s.AddDouble("price"), 2);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 24u);
  EXPECT_EQ(s.row_size(), 32u);
}

TEST(SchemaTest, TypedRoundTrip) {
  Schema s;
  s.AddInt64("i");
  s.AddUint64("u");
  s.AddDouble("d");
  s.AddChar("c", 8);
  std::vector<uint8_t> row(s.row_size());
  s.SetInt64(row.data(), 0, -42);
  s.SetUint64(row.data(), 1, 42);
  s.SetDouble(row.data(), 2, 3.5);
  s.SetChar(row.data(), 3, "hi");
  EXPECT_EQ(s.GetInt64(row.data(), 0), -42);
  EXPECT_EQ(s.GetUint64(row.data(), 1), 42u);
  EXPECT_DOUBLE_EQ(s.GetDouble(row.data(), 2), 3.5);
  EXPECT_EQ(s.GetChar(row.data(), 3), "hi");
}

TEST(SchemaTest, CharTruncatesAtCapacity) {
  Schema s;
  s.AddChar("c", 4);
  std::vector<uint8_t> row(s.row_size());
  s.SetChar(row.data(), 0, "abcdefgh");
  EXPECT_EQ(s.GetChar(row.data(), 0), "abcd");
}

TEST(SchemaTest, CharShorterValueIsNulPadded) {
  Schema s;
  s.AddChar("c", 8);
  std::vector<uint8_t> row(s.row_size(), 0xFF);
  s.SetChar(row.data(), 0, "ab");
  EXPECT_EQ(s.GetChar(row.data(), 0), "ab");
  s.SetChar(row.data(), 0, "");
  EXPECT_EQ(s.GetChar(row.data(), 0), "");
}

TEST(SchemaTest, ColumnIndexByName) {
  Schema s;
  s.AddUint64("alpha");
  s.AddUint64("beta");
  EXPECT_EQ(s.ColumnIndex("alpha"), 0);
  EXPECT_EQ(s.ColumnIndex("beta"), 1);
  EXPECT_EQ(s.ColumnIndex("gamma"), -1);
}

TEST(SchemaTest, FullWidthCharColumn) {
  Schema s;
  s.AddChar("c", 8);
  std::vector<uint8_t> row(s.row_size());
  s.SetChar(row.data(), 0, "12345678");  // Exactly the capacity: no NUL.
  EXPECT_EQ(s.GetChar(row.data(), 0), "12345678");
}

}  // namespace
}  // namespace next700
