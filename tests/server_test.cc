/// Loopback integration tests for the networked transaction service:
/// real sockets against a real engine, covering pipelined reply ordering,
/// group-commit-gated replies, admission control, and hostile input.

#include "server/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "faultlog/fault_injection.h"
#include "io/io_backend.h"
#include "server/client.h"
#include "server/loadgen.h"
#include "server/procs.h"

namespace next700 {
namespace server {
namespace {

constexpr uint64_t kRecords = 4096;

/// Every case runs against both async-I/O backends: the io_uring ring and
/// the batched-epoll fallback must be behaviorally identical at the
/// protocol level. Set by the fixture, read by StartService (gtest runs
/// cases serially, so a file-scope knob is race-free).
io::IoBackendKind g_io_backend = io::IoBackendKind::kAuto;

class ServerTest : public ::testing::TestWithParam<io::IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == io::IoBackendKind::kUring && !io::UringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
    }
    g_io_backend = GetParam();
  }
};

struct Service {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Server> server;
};

/// Log directories must be unique per test *instance*, not just per CC
/// scheme: `ctest -j` runs the epoll and uring instantiations of the same
/// case as concurrent processes, and a shared directory means one
/// process's RemoveLogDir races the other's open log ("cannot open log"
/// aborts).
std::string CurrentTestSlug() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string slug = std::string(info->name());
  for (char& c : slug) {
    if (c == '/') c = '_';
  }
  return slug;
}

Service StartService(CcScheme scheme, LoggingKind logging,
                     ServerOptions srv = {}, int partitions = 2,
                     std::function<void(EngineOptions&)> tweak = {}) {
  EngineOptions eng;
  eng.cc_scheme = scheme;
  eng.max_threads = srv.num_workers;
  eng.num_partitions = static_cast<uint32_t>(partitions);
  eng.logging = logging;
  eng.log_dir = std::string(::testing::TempDir()) + "/next700_server_" +
                CurrentTestSlug() + "_" + CcSchemeName(scheme) + ".logd";
  RemoveLogDir(eng.log_dir);  // Logs accumulate across runs; start clean.
  eng.log_io_backend = g_io_backend;
  srv.io_backend = g_io_backend;
  if (tweak) tweak(eng);
  Service service;
  service.engine = std::make_unique<Engine>(eng);
  KvServiceOptions kv;
  kv.num_records = kRecords;
  RegisterKvService(service.engine.get(), kv);
  service.server = std::make_unique<Server>(service.engine.get(), srv);
  EXPECT_TRUE(service.server->Start().ok());
  return service;
}

Request GetRequest(uint64_t request_id, uint64_t key,
                   bool declare_partition = false, int partitions = 2) {
  Request request;
  request.request_id = request_id;
  request.proc_id = kKvGet;
  WireWriter args(&request.args);
  args.PutU64(key);
  if (declare_partition) {
    request.partitions.push_back(
        KvPartitionOf(key, static_cast<uint32_t>(partitions)));
  }
  return request;
}

Request RmwRequest(uint64_t request_id, uint64_t key) {
  Request request;
  request.request_id = request_id;
  request.proc_id = kKvRmw;
  WireWriter args(&request.args);
  args.PutU16(1);
  args.PutU64(key);
  return request;
}

TEST_P(ServerTest, GetReturnsRowPayload) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 42), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.payload.size(), 64u);  // KvServiceOptions value_size.
}

TEST_P(ServerTest, PipelinedRepliesArriveInRequestOrder) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());

  // A burst of pipelined requests, mixing reads and writes; replies must
  // come back in exactly the order sent.
  constexpr int kBurst = 200;
  Rng rng(1);
  for (int i = 0; i < kBurst; ++i) {
    const uint64_t key = rng.NextUint64(kRecords);
    const Request request = (i % 3 == 0) ? RmwRequest(1000 + i, key)
                                         : GetRequest(1000 + i, key);
    ASSERT_TRUE(client.Send(request).ok());
  }
  for (int i = 0; i < kBurst; ++i) {
    Response response;
    ASSERT_TRUE(client.Recv(&response).ok());
    EXPECT_EQ(response.request_id, static_cast<uint64_t>(1000 + i));
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
}

TEST_P(ServerTest, RepliesAreOrderedEvenWhenRequestIdsRepeat) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  // The server orders replies by arrival, not by client-chosen ids — ids
  // may repeat and must be echoed back in arrival order regardless.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Send(GetRequest(7, static_cast<uint64_t>(i))).ok());
  }
  for (int i = 0; i < 10; ++i) {
    Response response;
    ASSERT_TRUE(client.Recv(&response).ok());
    EXPECT_EQ(response.request_id, 7u);
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
}

TEST_P(ServerTest, CommittedRepliesAreDurableWhenValueLogged) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kValue);
  LogManager* log = service.engine->log_manager();
  ASSERT_NE(log, nullptr);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());

  for (int i = 0; i < 100; ++i) {
    Response response;
    ASSERT_TRUE(
        client.Call(RmwRequest(static_cast<uint64_t>(i), 5), &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    // The group-commit contract: by the time the client holds the reply,
    // the commit record is on disk. durable_lsn is read *after* receipt,
    // so this would race only if the server released the reply early.
    EXPECT_GT(response.commit_lsn, 0u);
    EXPECT_LE(response.commit_lsn, log->durable_lsn());
  }
  EXPECT_GT(service.server->stats().replies_held_durable.load(), 0u);
}

TEST_P(ServerTest, GroupCommitDurabilityIsBackedByRealBarriers) {
  // The counting backend proves durable_lsn is advanced by actual
  // fdatasync barriers, not a sleep-based stand-in.
  FaultInjector injector;  // No faults registered: pure observation.
  Service service = StartService(
      CcScheme::kOcc, LoggingKind::kValue, {}, 2, [&](EngineOptions& eng) {
        eng.log_sync = LogSyncPolicy::kFdatasync;
        eng.log_file_factory = injector.factory();
      });
  LogManager* log = service.engine->log_manager();
  ASSERT_NE(log, nullptr);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  for (int i = 0; i < 50; ++i) {
    Response response;
    ASSERT_TRUE(
        client.Call(RmwRequest(static_cast<uint64_t>(i), 9), &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    EXPECT_GT(response.commit_lsn, 0u);
    EXPECT_LE(response.commit_lsn, log->durable_lsn());
  }
  EXPECT_GT(injector.syncs(), 0u);
  EXPECT_GT(injector.writes(), 0u);
  EXPECT_EQ(log->sync_count(), injector.syncs());
  service.server->Stop();
}

TEST_P(ServerTest, HstoreCompositionUsesPartitionedDispatch) {
  ServerOptions srv;
  srv.num_workers = 2;
  Service service =
      StartService(CcScheme::kHstore, LoggingKind::kNone, srv);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  for (uint64_t i = 0; i < 50; ++i) {
    Response response;
    ASSERT_TRUE(
        client.Call(GetRequest(i, i, /*declare_partition=*/true), &response)
            .ok());
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
}

TEST_P(ServerTest, UnknownProcedureAnswersNotFound) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Request request;
  request.request_id = 1;
  request.proc_id = 9999;
  Response response;
  ASSERT_TRUE(client.Call(request, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kNotFound);
}

TEST_P(ServerTest, OutOfRangePartitionAnswersInvalidArgument) {
  Service service = StartService(CcScheme::kHstore, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Request request = GetRequest(1, 0);
  request.partitions = {1000};  // Engine has 2 partitions.
  Response response;
  ASSERT_TRUE(client.Call(request, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
}

TEST_P(ServerTest, MalformedArgsAnswerInvalidArgumentAndConnectionSurvives) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Request request;
  request.request_id = 1;
  request.proc_id = kKvGet;  // kKvGet expects a u64 key; send 2 bytes.
  request.args = {1, 2};
  Response response;
  ASSERT_TRUE(client.Call(request, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
  // The framing was intact, so the connection must still work.
  ASSERT_TRUE(client.Call(GetRequest(2, 1), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_P(ServerTest, CorruptFramingClosesConnectionWithoutCrashing) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
    // Oversized frame header: unrecoverable, server must drop us.
    std::vector<uint8_t> wire;
    WireWriter writer(&wire);
    writer.PutU32(kMaxFrameBody + 1);
    writer.PutU8(static_cast<uint8_t>(FrameType::kRequest));
    ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());
    Response response;
    const Status s = client.Recv(&response, /*deadline_ms=*/5000);
    EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  }
  // The server survives and accepts new connections.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 1), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_GE(service.server->stats().connections_dropped.load(), 1u);
}

TEST_P(ServerTest, GarbageBytesNeverCrashTheServer) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone);
  Rng rng(20260806);
  for (int round = 0; round < 20; ++round) {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
    uint8_t garbage[512];
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Next());
    (void)client.SendRaw(garbage, sizeof(garbage));
    // Whatever happens — error response or drop — must not kill the server.
  }
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 1), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_P(ServerTest, OverloadAnswersResourceExhaustedWithoutCrashing) {
  ServerOptions srv;
  srv.num_workers = 1;
  srv.max_inflight = 4;
  srv.queue_capacity = 2;
  Service service = StartService(CcScheme::kOcc, LoggingKind::kNone, srv);

  LoadGenOptions load;
  load.port = service.server->port();
  load.connections = 4;
  load.pipeline_depth = 32;
  load.seconds = 0.5;
  load.num_records = kRecords;
  load.get_fraction = 0.0;
  load.put_fraction = 0.0;  // All RMW: keeps the lone worker busy.
  load.rmw_keys = 4;
  const LoadGenStats stats = RunLoadGen(load);
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_GT(stats.ok, 0u);
  // With a budget of 4 and 128 requests in flight, backpressure must have
  // engaged; overflowing the depth-2 queue also rejects some cleanly.
  const ServerStats& server_stats = service.server->stats();
  EXPECT_EQ(stats.resource_exhausted,
            server_stats.admission_rejects.load());

  // The server still works afterwards.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 1), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_P(ServerTest, LoadGenAgainstBothCompositions) {
  for (const CcScheme scheme : {CcScheme::kHstore, CcScheme::kOcc}) {
    ServerOptions srv;
    srv.num_workers = 2;
    Service service = StartService(scheme, LoggingKind::kValue, srv);
    LoadGenOptions load;
    load.port = service.server->port();
    load.connections = 2;
    load.pipeline_depth = 8;
    load.seconds = 0.5;
    load.num_records = kRecords;
    load.num_partitions = 2;
    load.declare_partitions = scheme == CcScheme::kHstore;
    load.get_fraction = 0.4;
    load.put_fraction = 0.3;
    load.rmw_keys = 2;
    const LoadGenStats stats = RunLoadGen(load);
    EXPECT_EQ(stats.transport_errors, 0u) << CcSchemeName(scheme);
    EXPECT_EQ(stats.other_errors, 0u) << CcSchemeName(scheme);
    EXPECT_GT(stats.ok, 0u) << CcSchemeName(scheme);
  }
}

TEST_P(ServerTest, StopWithConnectedClientsIsClean) {
  Service service = StartService(CcScheme::kOcc, LoggingKind::kValue);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.server->port()).ok());
  Response response;
  ASSERT_TRUE(client.Call(RmwRequest(1, 1), &response).ok());
  service.server->Stop();
  service.server->Stop();  // Idempotent.
}

INSTANTIATE_TEST_SUITE_P(
    IoBackends, ServerTest,
    ::testing::Values(io::IoBackendKind::kEpoll, io::IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<io::IoBackendKind>& info) {
      return std::string(io::IoBackendKindName(info.param));
    });

// Regression for the blocking-read deadline audit: a peer that sends part
// of a frame and then stalls must NOT park RecvFrame forever — the
// deadline applies to frame completion, not just to the first byte. (The
// original implementation armed poll() only while the decoder was empty,
// so a half-delivered header waited indefinitely.)
TEST(ClientDeadlineTest, HalfFrameThenStallHonorsRecvDeadline) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread peer([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    uint8_t scratch[256];
    ASSERT_GT(::read(fd, scratch, sizeof(scratch)), 0);  // Client's Hello.
    std::vector<uint8_t> ack;
    EncodeHelloAck(HelloAck{}, &ack);
    ASSERT_EQ(::send(fd, ack.data(), ack.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ack.size()));
    // Half a response frame, then silence: the header promises more bytes
    // than will ever arrive.
    Response response;
    response.request_id = 1;
    std::vector<uint8_t> frame;
    EncodeResponse(response, &frame);
    const size_t half = frame.size() / 2;
    ASSERT_EQ(::send(fd, frame.data(), half, MSG_NOSIGNAL),
              static_cast<ssize_t>(half));
    // Hold the socket open (stalled, not closed) until the client gives
    // up; its Close() surfaces here as EOF.
    ::read(fd, scratch, 1);
    ::close(fd);
  });

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  FrameType type;
  std::vector<uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  const Status stalled = client.RecvFrame(&type, &body, 200);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(stalled.IsDeadlineExceeded()) << stalled.ToString();
  EXPECT_GE(elapsed_ms, 150);   // Deadline honored, not an instant error...
  EXPECT_LT(elapsed_ms, 5000);  // ...and not an unbounded stall.
  // The decoder distinguishes "peer idle" from "peer stalled mid-frame".
  EXPECT_GT(client.buffered_bytes(), 0u);
  client.Close();
  peer.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace server
}  // namespace next700
