#include "workload/tpcc.h"

#include <gtest/gtest.h>

#include "workload/driver.h"

namespace next700 {
namespace {

TpccOptions SmallTpcc(uint32_t warehouses) {
  TpccOptions options;
  options.num_warehouses = warehouses;
  options.districts_per_warehouse = 4;
  options.customers_per_district = 120;
  options.num_items = 500;
  options.initial_orders_per_district = 120;
  return options;
}

TEST(TpccStaticTest, LastNameMatchesSpecSyllables) {
  EXPECT_EQ(TpccWorkload::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccWorkload::LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(TpccWorkload::LastName(999), "EINGEINGEING");
}

TEST(TpccStaticTest, KeyEncodingsAreInjective) {
  EXPECT_NE(DistrictKey(1, 2), DistrictKey(2, 1));
  EXPECT_NE(CustomerKey(1, 2, 3), CustomerKey(1, 3, 2));
  EXPECT_NE(OrderKey(1, 1, 5), OrderKey(1, 2, 5));
  EXPECT_NE(OrderLineKey(1, 1, 5, 1), OrderLineKey(1, 1, 5, 2));
  EXPECT_NE(StockKey(3, 7), StockKey(7, 3));
  // Order-line keys for consecutive orders do not overlap.
  EXPECT_LT(OrderLineKey(1, 1, 5, 99), OrderLineKey(1, 1, 6, 0));
}

TEST(TpccLoadTest, CardinalitiesMatchScale) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 1;
  Engine engine(eng);
  TpccWorkload workload(SmallTpcc(2));
  workload.Load(&engine);
  const auto& opt = workload.options();
  EXPECT_EQ(workload.warehouse_->ApproxRowCount(), 2u);
  EXPECT_EQ(workload.district_->ApproxRowCount(),
            2u * opt.districts_per_warehouse);
  EXPECT_EQ(workload.customer_->ApproxRowCount(),
            2u * opt.districts_per_warehouse * opt.customers_per_district);
  EXPECT_EQ(workload.item_->ApproxRowCount(), opt.num_items);
  EXPECT_EQ(workload.stock_->ApproxRowCount(), 2u * opt.num_items);
  EXPECT_EQ(workload.order_->ApproxRowCount(),
            2u * opt.districts_per_warehouse *
                opt.initial_orders_per_district);
  // ~30% of initial orders are undelivered.
  const uint64_t new_orders = workload.new_order_->ApproxRowCount();
  const uint64_t orders = workload.order_->ApproxRowCount();
  EXPECT_GT(new_orders, orders / 5);
  EXPECT_LT(new_orders, orders / 2);
  // Loaded state passes the audit.
  EXPECT_TRUE(workload.CheckConsistency(&engine).ok());
}

TEST(TpccLoadTest, CustomerByNameFindsLoadedNames) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 1;
  Engine engine(eng);
  TpccWorkload workload(SmallTpcc(1));
  workload.Load(&engine);
  // Customers 1..120 have sequential name numbers 0..119.
  std::vector<Row*> rows;
  workload.customer_by_name_->LookupAll(
      CustomerNameKey(1, 1, TpccWorkload::LastName(5)), &rows);
  EXPECT_FALSE(rows.empty());
}

class TpccSchemeTest : public ::testing::TestWithParam<CcScheme> {};

TEST_P(TpccSchemeTest, MixRunsAndStaysConsistent) {
  EngineOptions eng;
  eng.cc_scheme = GetParam();
  eng.max_threads = 4;
  eng.num_partitions = 2;
  Engine engine(eng);
  TpccWorkload workload(SmallTpcc(2));
  workload.Load(&engine);

  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 150;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  // All logical transactions finish as commits or deterministic user aborts
  // (1% New-Order rollbacks).
  EXPECT_EQ(stats.commits + stats.user_aborts, 600u);
  EXPECT_LT(stats.user_aborts, 60u);
  EXPECT_TRUE(workload.CheckConsistency(&engine).ok())
      << workload.CheckConsistency(&engine).ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TpccSchemeTest, ::testing::ValuesIn(AllCcSchemes()),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

TEST(TpccTest, NewOrderAdvancesDistrictCounter) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 1;
  Engine engine(eng);
  TpccWorkload workload(SmallTpcc(1));
  workload.Load(&engine);
  const Schema& ds = workload.district_->schema();
  auto next_o_id = [&](uint32_t d) {
    Row* row = workload.district_pk_->Lookup(DistrictKey(1, d));
    return ds.GetUint64(engine.RawImage(row), D_NEXT_O_ID);
  };
  uint64_t before_total = 0;
  for (uint32_t d = 1; d <= 4; ++d) before_total += next_o_id(d);

  // Run a New-Order-only mix.
  TpccOptions only_no = SmallTpcc(1);
  (void)only_no;
  DriverOptions driver;
  driver.num_threads = 1;
  driver.txns_per_thread = 0;  // Unused; run transactions directly instead.
  Rng rng(1);
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    // Direct procedure access via RunNextTxn would mix types; instead rely
    // on the public mix but count successful runs.
    const Status s = workload.RunNextTxn(&engine, 0, &rng);
    if (s.ok()) ++committed;
  }
  EXPECT_GT(committed, 0);
  uint64_t after_total = 0;
  for (uint32_t d = 1; d <= 4; ++d) after_total += next_o_id(d);
  EXPECT_GE(after_total, before_total);
  EXPECT_TRUE(workload.CheckConsistency(&engine).ok());
}

TEST(TpccTest, WithValueLoggingRunsClean) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/tpcc_value.logd";
  RemoveLogDir(dir);  // Logs accumulate across runs; start clean.
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 2;
  eng.logging = LoggingKind::kValue;
  eng.log_dir = dir;
  Engine engine(eng);
  TpccWorkload workload(SmallTpcc(1));
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 100;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits + stats.user_aborts, 200u);
  EXPECT_GT(stats.log_bytes, 0u);
  EXPECT_TRUE(workload.CheckConsistency(&engine).ok());
}

}  // namespace
}  // namespace next700
