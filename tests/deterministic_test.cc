#include "det/deterministic.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "index/hash_index.h"
#include "log/log_record.h"

namespace next700 {
namespace {

class DeterministicTest : public ::testing::Test {
 protected:
  DeterministicTest() {
    Schema s;
    s.AddInt64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
    index_ = std::make_unique<HashIndex>(table_.get(), 256);
    for (uint64_t key = 0; key < 64; ++key) {
      Row* row = table_->AllocateRow(0);
      row->primary_key = key;
      table_->schema().SetInt64(row->data(), 0, 100);
      NEXT700_CHECK(index_->Insert(key, row).ok());
    }
  }

  int64_t Value(uint64_t key) {
    return table_->schema().GetInt64(index_->Lookup(key)->data(), 0);
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<HashIndex> index_;
};

TEST_F(DeterministicTest, SingleTxnReadsAndWrites) {
  DeterministicEngine det(table_.get(), index_.get(), {.num_workers = 1});
  const Schema& s = table_->schema();
  const uint64_t ticket =
      det.Submit({1}, {2}, [&s](DetAccessor* db) {
        uint8_t buf[8];
        NEXT700_CHECK(db->Read(1, buf).ok());
        s.SetInt64(buf, 0, s.GetInt64(buf, 0) + 1);
        NEXT700_CHECK(db->Write(2, buf).ok());
      });
  det.Wait(ticket);
  EXPECT_EQ(Value(2), 101);
  EXPECT_EQ(det.executed(), 1u);
}

TEST_F(DeterministicTest, ConflictingIncrementsNeverLoseUpdates) {
  DeterministicEngine det(table_.get(), index_.get(), {.num_workers = 4});
  const Schema& s = table_->schema();
  constexpr int kTxns = 2000;
  Rng rng(9);
  for (int i = 0; i < kTxns; ++i) {
    const uint64_t key = rng.NextUint64(4);  // Four hot rows.
    det.Submit({}, {key}, [&s, key](DetAccessor* db) {
      uint8_t buf[8];
      NEXT700_CHECK(db->Read(key, buf).ok());
      s.SetInt64(buf, 0, s.GetInt64(buf, 0) + 1);
      NEXT700_CHECK(db->Write(key, buf).ok());
    });
  }
  det.WaitAll();
  int64_t total = 0;
  for (uint64_t key = 0; key < 4; ++key) total += Value(key) - 100;
  // Zero aborts by construction, and zero lost updates.
  EXPECT_EQ(total, kTxns);
}

TEST_F(DeterministicTest, ReadersShareWritersSerialize) {
  DeterministicEngine det(table_.get(), index_.get(), {.num_workers = 4});
  const Schema& s = table_->schema();
  // Writer keeps rows 10 and 11 equal; concurrent readers must never see
  // them differ, because conflicting txns execute in sequence order.
  std::atomic<int> torn{0};
  for (int i = 1; i <= 300; ++i) {
    det.Submit({}, {10, 11}, [&s, i](DetAccessor* db) {
      uint8_t buf[8];
      s.SetInt64(buf, 0, i);
      NEXT700_CHECK(db->Write(10, buf).ok());
      NEXT700_CHECK(db->Write(11, buf).ok());
    });
    det.Submit({10, 11}, {}, [&s, &torn](DetAccessor* db) {
      uint8_t a[8], b[8];
      NEXT700_CHECK(db->Read(10, a).ok());
      NEXT700_CHECK(db->Read(11, b).ok());
      if (s.GetInt64(a, 0) != s.GetInt64(b, 0)) ++torn;
    });
  }
  det.WaitAll();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(Value(10), 300);
}

TEST_F(DeterministicTest, FinalStateIsAFunctionOfSubmissionOrder) {
  const Schema& schema = table_->schema();
  auto run = [&](int workers) {
    // Fresh storage per run.
    Schema s2;
    s2.AddInt64("v");
    Table table(0, "t", std::move(s2), 1);
    HashIndex index(&table, 256);
    for (uint64_t key = 0; key < 16; ++key) {
      Row* row = table.AllocateRow(0);
      row->primary_key = key;
      table.schema().SetInt64(row->data(), 0, 0);
      NEXT700_CHECK(index.Insert(key, row).ok());
    }
    {
      DeterministicEngine det(&table, &index, {.num_workers = workers});
      Rng rng(1234);  // Same submission stream every run.
      for (int i = 0; i < 1500; ++i) {
        const uint64_t src = rng.NextUint64(16);
        const uint64_t dst = rng.NextUint64(16);
        const int64_t amount = static_cast<int64_t>(rng.NextRange(1, 9));
        det.Submit({}, {src, dst}, [&schema, src, dst,
                                    amount](DetAccessor* db) {
          uint8_t a[8], b[8];
          NEXT700_CHECK(db->Read(src, a).ok());
          NEXT700_CHECK(db->Read(dst, b).ok());
          schema.SetInt64(a, 0, schema.GetInt64(a, 0) - amount);
          schema.SetInt64(b, 0, schema.GetInt64(b, 0) + amount);
          NEXT700_CHECK(db->Write(src, a).ok());
          NEXT700_CHECK(db->Write(dst, b).ok());
        });
      }
      det.WaitAll();
    }
    std::map<uint64_t, uint64_t> fingerprint;
    table.ForEachRow([&](Row* row) {
      fingerprint[row->primary_key] =
          FnvHashBytes(row->data(), table.schema().row_size());
    });
    return fingerprint;
  };
  // Different worker counts, identical final state: determinism.
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST_F(DeterministicTest, LockFreeTxnsRunToo) {
  DeterministicEngine det(table_.get(), index_.get(), {.num_workers = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    det.Submit({}, {}, [&ran](DetAccessor*) { ++ran; });
  }
  det.WaitAll();
  EXPECT_EQ(ran.load(), 10);
}

TEST_F(DeterministicTest, DuplicateAndOverlappingKeySetsNormalize) {
  DeterministicEngine det(table_.get(), index_.get(), {.num_workers = 2});
  const Schema& s = table_->schema();
  // Key 5 appears in both sets and twice in each: one write lock suffices.
  const uint64_t ticket =
      det.Submit({5, 5, 6}, {5, 5}, [&s](DetAccessor* db) {
        uint8_t buf[8];
        NEXT700_CHECK(db->Read(5, buf).ok());
        NEXT700_CHECK(db->Read(6, buf).ok());
        s.SetInt64(buf, 0, 7);
        NEXT700_CHECK(db->Write(5, buf).ok());
      });
  det.Wait(ticket);
  EXPECT_EQ(Value(5), 7);
}

}  // namespace
}  // namespace next700
