#include <gtest/gtest.h>

#include "cc/occ_silo.h"
#include "cc/tictoc.h"
#include "storage/table.h"

namespace next700 {
namespace {

// --- Silo TID word -----------------------------------------------------------

TEST(TidWordTest, LockBitPacksAndUnpacks) {
  EXPECT_FALSE(tidword::IsLocked(0));
  EXPECT_TRUE(tidword::IsLocked(tidword::kLockBit));
  EXPECT_EQ(tidword::TidOf(tidword::kLockBit | 42), 42u);
  EXPECT_EQ(tidword::TidOf(42), 42u);
}

TEST(TidWordTest, RowLockRoundTrip) {
  Schema s;
  s.AddUint64("v");
  Table table(0, "t", std::move(s), 1);
  Row* row = table.AllocateRow(0);
  row->tid_word.store(7);
  EXPECT_TRUE(tidword::TryLock(row));
  EXPECT_FALSE(tidword::TryLock(row));  // Already locked.
  EXPECT_TRUE(tidword::IsLocked(row->tid_word.load()));
  EXPECT_EQ(tidword::TidOf(row->tid_word.load()), 7u);  // TID preserved.
  tidword::Unlock(row);
  EXPECT_EQ(row->tid_word.load(), 7u);
  tidword::Lock(row);
  tidword::UnlockWithTid(row, 9);
  EXPECT_EQ(row->tid_word.load(), 9u);
}

TEST(TidWordTest, StableLoadSpinsPastLock) {
  Schema s;
  s.AddUint64("v");
  Table table(0, "t", std::move(s), 1);
  Row* row = table.AllocateRow(0);
  row->tid_word.store(5);
  EXPECT_EQ(tidword::StableLoad(row), 5u);  // Unlocked: immediate.
}

// --- TicToc word -------------------------------------------------------------

TEST(TtWordTest, WtsRtsDeltaEncoding) {
  const uint64_t word = ttword::Make(/*wts=*/1000, /*rts=*/1007, false);
  EXPECT_EQ(ttword::WtsOf(word), 1000u);
  EXPECT_EQ(ttword::DeltaOf(word), 7u);
  EXPECT_EQ(ttword::RtsOf(word), 1007u);
  EXPECT_FALSE(ttword::IsLocked(word));
  const uint64_t locked = ttword::Make(1000, 1007, true);
  EXPECT_TRUE(ttword::IsLocked(locked));
  EXPECT_EQ(ttword::WtsOf(locked), 1000u);
  EXPECT_EQ(ttword::RtsOf(locked), 1007u);
}

TEST(TtWordTest, MaxDeltaIsRepresentable) {
  const uint64_t word = ttword::Make(50, 50 + ttword::kMaxDelta, false);
  EXPECT_EQ(ttword::DeltaOf(word), ttword::kMaxDelta);
  EXPECT_EQ(ttword::RtsOf(word), 50 + ttword::kMaxDelta);
}

TEST(TtWordTest, LargeWtsFitsIn48Bits) {
  const uint64_t big = (uint64_t{1} << 47) + 12345;
  const uint64_t word = ttword::Make(big, big + 3, false);
  EXPECT_EQ(ttword::WtsOf(word), big);
  EXPECT_EQ(ttword::RtsOf(word), big + 3);
}

}  // namespace
}  // namespace next700
