#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace next700 {
namespace server {
namespace {

Request SampleRequest() {
  Request request;
  request.request_id = 0x0123456789abcdefull;
  request.proc_id = 42;
  request.min_read_lsn = 0xfeedfacecafeull;
  request.partitions = {0, 3, 7};
  WireWriter args(&request.args);
  args.PutU64(999);
  args.PutString("hello");
  return request;
}

/// Feeds `bytes` through a FrameDecoder and hands the one expected frame to
/// `use` while the decoder (which owns frame.body) is still alive.
template <typename Fn>
void WithDecodedFrame(const std::vector<uint8_t>& bytes, Fn use) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  bool have = false;
  ASSERT_TRUE(decoder.Next(&frame, &have).ok());
  ASSERT_TRUE(have);
  use(frame);
}

TEST(ProtocolTest, RequestRoundTrip) {
  const Request request = SampleRequest();
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);

  Request decoded;
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kRequest);
    ASSERT_TRUE(DecodeRequest(frame.body, frame.body_len, &decoded).ok());
  });
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.proc_id, request.proc_id);
  EXPECT_EQ(decoded.min_read_lsn, request.min_read_lsn);
  EXPECT_EQ(decoded.partitions, request.partitions);
  EXPECT_EQ(decoded.args, request.args);
}

TEST(ProtocolTest, ResponseRoundTripAllStatusCodes) {
  for (uint8_t code = 0; IsValidWireStatus(code); ++code) {
    Response response;
    response.request_id = 7;
    response.status = static_cast<StatusCode>(code);
    response.commit_lsn = 123456789;
    response.payload = {9, 8, 7};
    std::vector<uint8_t> wire;
    EncodeResponse(response, &wire);

    Response decoded;
    WithDecodedFrame(wire, [&](const Frame& frame) {
      EXPECT_EQ(frame.type, FrameType::kResponse);
      ASSERT_TRUE(
          DecodeResponse(frame.body, frame.body_len, &decoded).ok());
    });
    EXPECT_EQ(decoded.request_id, response.request_id);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.commit_lsn, response.commit_lsn);
    EXPECT_EQ(decoded.payload, response.payload);
  }
  // The new codes must be representable on the wire.
  EXPECT_TRUE(
      IsValidWireStatus(static_cast<uint8_t>(StatusCode::kUnavailable)));
  EXPECT_TRUE(IsValidWireStatus(
      static_cast<uint8_t>(StatusCode::kDeadlineExceeded)));
  EXPECT_FALSE(IsValidWireStatus(255));
}

TEST(ProtocolTest, DecoderHandlesByteAtATimeDelivery) {
  const Request request = SampleRequest();
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);
  EncodeRequest(request, &wire);  // Two pipelined frames.

  FrameDecoder decoder;
  int frames = 0;
  for (uint8_t byte : wire) {
    decoder.Feed(&byte, 1);
    Frame frame;
    bool have = true;
    while (true) {
      ASSERT_TRUE(decoder.Next(&frame, &have).ok());
      if (!have) break;
      Request decoded;
      ASSERT_TRUE(DecodeRequest(frame.body, frame.body_len, &decoded).ok());
      EXPECT_EQ(decoded.request_id, request.request_id);
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ProtocolTest, TruncatedFrameWaitsForMoreBytes) {
  const Request request = SampleRequest();
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    bool have = true;
    ASSERT_TRUE(decoder.Next(&frame, &have).ok()) << "cut=" << cut;
    EXPECT_FALSE(have) << "cut=" << cut;
  }
}

TEST(ProtocolTest, OversizedFrameIsUnrecoverable) {
  std::vector<uint8_t> wire;
  WireWriter writer(&wire);
  writer.PutU32(kMaxFrameBody + 1);
  writer.PutU8(static_cast<uint8_t>(FrameType::kRequest));

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  bool have = false;
  const Status s = decoder.Next(&frame, &have);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(have);
}

TEST(ProtocolTest, UnknownFrameTypeIsUnrecoverable) {
  std::vector<uint8_t> wire;
  WireWriter writer(&wire);
  writer.PutU32(0);
  writer.PutU8(0xEE);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  bool have = false;
  EXPECT_TRUE(decoder.Next(&frame, &have).IsInvalidArgument());
}

TEST(ProtocolTest, RequestBodyDefectsAreRecoverable) {
  const Request request = SampleRequest();
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);
  const uint8_t* body = wire.data() + kFrameHeaderBytes;
  const size_t body_len = wire.size() - kFrameHeaderBytes;

  Request decoded;
  // Every truncation of a well-formed body must fail cleanly.
  for (size_t len = 0; len < body_len; ++len) {
    EXPECT_TRUE(DecodeRequest(body, len, &decoded).IsInvalidArgument())
        << "len=" << len;
  }
  // Trailing garbage beyond the declared argument length is rejected too
  // (args must consume the remainder exactly).
  std::vector<uint8_t> padded(body, body + body_len);
  padded.push_back(0);
  EXPECT_TRUE(
      DecodeRequest(padded.data(), padded.size(), &decoded)
          .IsInvalidArgument());
}

TEST(ProtocolTest, PartitionCountCeilingIsEnforced) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(1);                                  // request_id
  writer.PutU32(1);                                  // proc_id
  writer.PutU64(0);                                  // min_read_lsn
  writer.PutU16(kMaxPartitionsPerRequest + 1);       // too many partitions
  writer.PutU32(0);                                  // arg_len
  Request decoded;
  EXPECT_TRUE(
      DecodeRequest(body.data(), body.size(), &decoded).IsInvalidArgument());
}

TEST(ProtocolTest, ResponseRejectsOutOfRangeStatus) {
  Response response;
  response.request_id = 1;
  std::vector<uint8_t> wire;
  EncodeResponse(response, &wire);
  // Overwrite the status byte (offset: header + u64 request_id).
  wire[kFrameHeaderBytes + 8] = 200;
  Response decoded;
  EXPECT_TRUE(DecodeResponse(wire.data() + kFrameHeaderBytes,
                             wire.size() - kFrameHeaderBytes, &decoded)
                  .IsInvalidArgument());
}

/// Fuzz: single bit flips over a valid frame must never crash; the decoder
/// either still produces a frame (the flip hit the body or a benign header
/// bit) or reports a clean error.
TEST(ProtocolTest, BitFlipFuzz) {
  const Request request = SampleRequest();
  std::vector<uint8_t> pristine;
  EncodeRequest(request, &pristine);

  for (size_t bit = 0; bit < pristine.size() * 8; ++bit) {
    std::vector<uint8_t> wire = pristine;
    wire[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame frame;
    bool have = false;
    const Status s = decoder.Next(&frame, &have);
    if (!s.ok() || !have) continue;  // Clean reject or now-truncated frame.
    Request decoded;
    (void)DecodeRequest(frame.body, frame.body_len, &decoded);  // No crash.
  }
}

/// Fuzz: random garbage in random-sized chunks must never crash the decoder
/// and must never produce a frame claiming more bytes than were fed.
TEST(ProtocolTest, GarbageStreamFuzz) {
  Rng rng(20260806);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    size_t fed = 0;
    bool dead = false;
    while (fed < 4096 && !dead) {
      uint8_t chunk[64];
      const size_t n = 1 + rng.NextUint64(sizeof(chunk));
      for (size_t i = 0; i < n; ++i) {
        chunk[i] = static_cast<uint8_t>(rng.Next());
      }
      decoder.Feed(chunk, n);
      fed += n;
      Frame frame;
      bool have = true;
      while (have) {
        if (!decoder.Next(&frame, &have).ok()) {
          dead = true;  // Corrupt stream: connection would close here.
          break;
        }
        if (have) {
          EXPECT_LE(frame.body_len, kMaxFrameBody);
          Request decoded_request;
          Response decoded_response;
          (void)DecodeRequest(frame.body, frame.body_len, &decoded_request);
          (void)DecodeResponse(frame.body, frame.body_len,
                               &decoded_response);
        }
      }
    }
  }
}

/// Fuzz: mutate valid frames with random byte edits — closer to a confused
/// client than pure noise — and interleave them with intact frames.
TEST(ProtocolTest, MutatedFrameFuzz) {
  Rng rng(777);
  const Request request = SampleRequest();
  std::vector<uint8_t> pristine;
  EncodeRequest(request, &pristine);

  for (int round = 0; round < 500; ++round) {
    std::vector<uint8_t> wire = pristine;
    const int edits = 1 + static_cast<int>(rng.NextUint64(4));
    for (int e = 0; e < edits; ++e) {
      wire[rng.NextUint64(wire.size())] = static_cast<uint8_t>(rng.Next());
    }
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame frame;
    bool have = true;
    while (have) {
      if (!decoder.Next(&frame, &have).ok()) break;
      if (have) {
        Request decoded;
        (void)DecodeRequest(frame.body, frame.body_len, &decoded);
      }
    }
  }
}

TEST(ProtocolTest, HandshakeFramesRoundTrip) {
  Hello hello;
  hello.role = PeerRole::kReplica;
  std::vector<uint8_t> wire;
  EncodeHello(hello, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kHello);
    Hello decoded;
    ASSERT_TRUE(DecodeHello(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.magic, kWireMagic);
    EXPECT_EQ(decoded.version, kWireVersion);
    EXPECT_EQ(decoded.role, PeerRole::kReplica);
  });

  wire.clear();
  EncodeHelloAck(HelloAck{}, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kHelloAck);
    HelloAck decoded;
    ASSERT_TRUE(DecodeHelloAck(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.magic, kWireMagic);
    EXPECT_EQ(decoded.version, kWireVersion);
  });
}

/// A peer that is not next700 at all, speaks a different protocol version,
/// or claims an unknown role must be rejected loudly, not decoded as noise.
TEST(ProtocolTest, HandshakeRejectsForeignAndMixedVersionPeers) {
  Hello hello;
  std::vector<uint8_t> wire;
  EncodeHello(hello, &wire);
  const size_t body_off = kFrameHeaderBytes;

  Hello decoded;
  {
    std::vector<uint8_t> bad = wire;  // Wrong magic: not our protocol.
    bad[body_off] ^= 0xFF;
    EXPECT_TRUE(DecodeHello(bad.data() + body_off, bad.size() - body_off,
                            &decoded)
                    .IsInvalidArgument());
  }
  {
    std::vector<uint8_t> bad = wire;  // Version skew.
    bad[body_off + 4] = kWireVersion + 1;
    EXPECT_TRUE(DecodeHello(bad.data() + body_off, bad.size() - body_off,
                            &decoded)
                    .IsInvalidArgument());
  }
  {
    std::vector<uint8_t> bad = wire;  // Unknown role.
    bad[body_off + 5] = 7;
    EXPECT_TRUE(DecodeHello(bad.data() + body_off, bad.size() - body_off,
                            &decoded)
                    .IsInvalidArgument());
  }
  {
    std::vector<uint8_t> bad = wire;  // Same checks on the ack side.
    bad[body_off] ^= 0xFF;
    HelloAck ack;
    EXPECT_TRUE(DecodeHelloAck(bad.data() + body_off,
                               bad.size() - body_off - 1, &ack)
                    .IsInvalidArgument());
  }
}

TEST(ProtocolTest, ReplBatchRoundTripAndChecksum) {
  ReplBatch batch;
  batch.start_lsn = 4096;
  batch.primary_durable_lsn = 9999;
  for (int i = 0; i < 100; ++i) {
    batch.frames.push_back(static_cast<uint8_t>(i * 13));
  }
  std::vector<uint8_t> wire;
  EncodeReplBatch(batch, &wire);

  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kReplBatch);
    ReplBatch decoded;
    ASSERT_TRUE(DecodeReplBatch(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.start_lsn, batch.start_lsn);
    EXPECT_EQ(decoded.primary_durable_lsn, batch.primary_durable_lsn);
    EXPECT_EQ(decoded.frames, batch.frames);
    EXPECT_EQ(decoded.end_lsn(), batch.start_lsn + batch.frames.size());
  });

  // A flipped byte anywhere in the shipped log bytes is kCorruption — the
  // stream cannot be trusted and the replica must reconnect.
  std::vector<uint8_t> bad = wire;
  bad[kFrameHeaderBytes + 8 + 8 + 4 + 50] ^= 0x01;
  ReplBatch decoded;
  EXPECT_EQ(DecodeReplBatch(bad.data() + kFrameHeaderBytes,
                            bad.size() - kFrameHeaderBytes, &decoded)
                .code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, ReplAckRoundTrip) {
  ReplAck ack;
  ack.durable_lsn = 123456;
  ack.applied_lsn = 123000;
  std::vector<uint8_t> wire;
  EncodeReplAck(ack, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kReplAck);
    ReplAck decoded;
    ASSERT_TRUE(DecodeReplAck(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.durable_lsn, ack.durable_lsn);
    EXPECT_EQ(decoded.applied_lsn, ack.applied_lsn);
  });
}

// Pins the exact wire bytes of a request frame: a frame another
// implementation (or this one on a big-endian host) must produce
// byte-for-byte. Every multi-byte field is little-endian regardless of
// host order; a lane-order regression in Store/LoadLE shows up here as a
// literal byte diff, not just a round-trip that happens to cancel out.
TEST(ProtocolTest, GoldenRequestFrameBytes) {
  Request request;
  request.request_id = 0x1122334455667788ull;
  request.proc_id = 0xAABBCCDDu;
  request.min_read_lsn = 0x0102030405060708ull;
  request.partitions = {0x11223344u};
  request.args = {0xDE, 0xAD};
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);

  const uint8_t golden[] = {
      // Frame header: u32 body_len = 32, u8 type = kRequest(1).
      0x20, 0x00, 0x00, 0x00, 0x01,
      // request_id, LE.
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
      // proc_id, LE.
      0xDD, 0xCC, 0xBB, 0xAA,
      // min_read_lsn, LE.
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      // u16 partition count = 1, u32 arg_len = 2.
      0x01, 0x00, 0x02, 0x00, 0x00, 0x00,
      // partition id, LE.
      0x44, 0x33, 0x22, 0x11,
      // args verbatim.
      0xDE, 0xAD};
  ASSERT_EQ(wire.size(), sizeof(golden));
  EXPECT_EQ(0, std::memcmp(wire.data(), golden, sizeof(golden)));
}

// Same golden-byte pinning for the 2PC frames the shard router speaks:
// the coordinator and participants may be different builds, so their wire
// layout is contract, not implementation detail.
TEST(ProtocolTest, GoldenPrepareAndDecisionFrameBytes) {
  Prepare prepare;
  prepare.gtid = 0x0A0B0C0D0E0F1011ull;
  prepare.proc_id = 3;
  prepare.partitions = {7};
  prepare.args = {0x5A};
  std::vector<uint8_t> wire;
  EncodePrepare(prepare, &wire);
  const uint8_t golden_prepare[] = {
      // Frame header: u32 body_len = 23, u8 type = kPrepare(7).
      0x17, 0x00, 0x00, 0x00, 0x07,
      // gtid, LE.
      0x11, 0x10, 0x0F, 0x0E, 0x0D, 0x0C, 0x0B, 0x0A,
      // proc_id, LE.
      0x03, 0x00, 0x00, 0x00,
      // u16 partition count = 1, u32 arg_len = 1.
      0x01, 0x00, 0x01, 0x00, 0x00, 0x00,
      // partition id, LE.
      0x07, 0x00, 0x00, 0x00,
      // args verbatim.
      0x5A};
  ASSERT_EQ(wire.size(), sizeof(golden_prepare));
  EXPECT_EQ(0, std::memcmp(wire.data(), golden_prepare,
                           sizeof(golden_prepare)));

  Decision decision;
  decision.gtid = 0x0102030405060708ull;
  wire.clear();
  EncodeDecision(FrameType::kCommitDecision, decision, &wire);
  const uint8_t golden_commit[] = {
      // Frame header: u32 body_len = 8, u8 type = kCommitDecision(9).
      0x08, 0x00, 0x00, 0x00, 0x09,
      // gtid, LE.
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  ASSERT_EQ(wire.size(), sizeof(golden_commit));
  EXPECT_EQ(0, std::memcmp(wire.data(), golden_commit,
                           sizeof(golden_commit)));
}

TEST(ProtocolTest, TwoPhaseCommitFramesRoundTrip) {
  Prepare prepare;
  prepare.gtid = 0xD15EA5EDC0FFEEull;
  prepare.proc_id = 2;
  prepare.partitions = {1, 3, 5};
  WireWriter args(&prepare.args);
  args.PutU16(2);
  args.PutU64(10);
  args.PutU64(11);
  std::vector<uint8_t> wire;
  EncodePrepare(prepare, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kPrepare);
    Prepare decoded;
    ASSERT_TRUE(DecodePrepare(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.gtid, prepare.gtid);
    EXPECT_EQ(decoded.proc_id, prepare.proc_id);
    EXPECT_EQ(decoded.partitions, prepare.partitions);
    EXPECT_EQ(decoded.args, prepare.args);
  });

  Vote vote;
  vote.gtid = prepare.gtid;
  vote.status = StatusCode::kAborted;
  vote.prepare_lsn = 424242;
  wire.clear();
  EncodeVote(vote, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kVote);
    Vote decoded;
    ASSERT_TRUE(DecodeVote(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.gtid, vote.gtid);
    EXPECT_EQ(decoded.status, vote.status);
    EXPECT_EQ(decoded.prepare_lsn, vote.prepare_lsn);
  });

  for (const FrameType type :
       {FrameType::kCommitDecision, FrameType::kAbortDecision}) {
    Decision decision;
    decision.gtid = prepare.gtid;
    wire.clear();
    EncodeDecision(type, decision, &wire);
    WithDecodedFrame(wire, [&](const Frame& frame) {
      EXPECT_EQ(frame.type, type);
      Decision decoded;
      ASSERT_TRUE(
          DecodeDecision(frame.body, frame.body_len, &decoded).ok());
      EXPECT_EQ(decoded.gtid, decision.gtid);
    });
  }

  DecisionAck ack;
  ack.gtid = prepare.gtid;
  ack.status = StatusCode::kOk;
  wire.clear();
  EncodeDecisionAck(ack, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kDecisionAck);
    DecisionAck decoded;
    ASSERT_TRUE(
        DecodeDecisionAck(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.gtid, ack.gtid);
    EXPECT_EQ(decoded.status, ack.status);
  });

  wire.clear();
  EncodeInDoubtQuery(&wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kInDoubtQuery);
    EXPECT_EQ(frame.body_len, 0u);
  });

  InDoubtList list;
  list.gtids = {1, 0xFFFFFFFFFFFFFFFFull, 7};
  wire.clear();
  EncodeInDoubtList(list, &wire);
  WithDecodedFrame(wire, [&](const Frame& frame) {
    EXPECT_EQ(frame.type, FrameType::kInDoubtList);
    InDoubtList decoded;
    ASSERT_TRUE(
        DecodeInDoubtList(frame.body, frame.body_len, &decoded).ok());
    EXPECT_EQ(decoded.gtids, list.gtids);
  });
}

// The router's zero-copy peek must agree field-for-field with the owning
// decoder, point into the caller's buffer (no copy), and reject the same
// malformed bodies.
TEST(ProtocolTest, RequestViewMatchesDecodeRequest) {
  const Request request = SampleRequest();
  std::vector<uint8_t> wire;
  EncodeRequest(request, &wire);

  WithDecodedFrame(wire, [&](const Frame& frame) {
    RequestView view;
    ASSERT_TRUE(
        DecodeRequestView(frame.body, frame.body_len, &view).ok());
    EXPECT_EQ(view.request_id, request.request_id);
    EXPECT_EQ(view.proc_id, request.proc_id);
    EXPECT_EQ(view.min_read_lsn, request.min_read_lsn);
    ASSERT_EQ(view.args_len, request.args.size());
    EXPECT_EQ(0, std::memcmp(view.args, request.args.data(), view.args_len));
    // Zero-copy: the view aliases the frame body, no owned storage.
    EXPECT_GE(view.args, frame.body);
    EXPECT_LE(view.args + view.args_len, frame.body + frame.body_len);
  });

  // Defect parity with DecodeRequest on truncated bodies.
  WithDecodedFrame(wire, [&](const Frame& frame) {
    for (const size_t len :
         {size_t{0}, size_t{5}, static_cast<size_t>(frame.body_len - 1)}) {
      Request owned;
      RequestView view;
      EXPECT_FALSE(DecodeRequest(frame.body, len, &owned).ok());
      EXPECT_FALSE(DecodeRequestView(frame.body, len, &view).ok());
    }
  });
}

TEST(ProtocolTest, WireReaderNeverReadsPastEnd) {
  const uint8_t bytes[] = {1, 2, 3};
  WireReader reader(bytes, sizeof(bytes));
  uint64_t v64;
  EXPECT_FALSE(reader.GetU64(&v64));
  uint16_t v16;
  EXPECT_TRUE(reader.GetU16(&v16));
  std::vector<uint8_t> blob;
  EXPECT_FALSE(reader.GetBytes(&blob));  // Prefix alone is longer than rest.
  EXPECT_EQ(reader.remaining(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace next700
