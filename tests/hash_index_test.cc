#include "index/hash_index.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "storage/table.h"

namespace next700 {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  HashIndexTest() {
    Schema s;
    s.AddUint64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
  }

  Row* NewRow() { return table_->AllocateRow(0); }

  std::unique_ptr<Table> table_;
};

TEST_F(HashIndexTest, InsertAndLookup) {
  HashIndex index(table_.get(), 16);
  Row* row = NewRow();
  ASSERT_TRUE(index.Insert(42, row).ok());
  EXPECT_EQ(index.Lookup(42), row);
  EXPECT_EQ(index.Lookup(43), nullptr);
  EXPECT_EQ(index.size(), 1u);
}

TEST_F(HashIndexTest, DuplicateKeysAllowed) {
  HashIndex index(table_.get(), 16);
  Row* a = NewRow();
  Row* b = NewRow();
  ASSERT_TRUE(index.Insert(7, a).ok());
  ASSERT_TRUE(index.Insert(7, b).ok());
  std::vector<Row*> rows;
  index.LookupAll(7, &rows);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE((rows[0] == a && rows[1] == b) ||
              (rows[0] == b && rows[1] == a));
}

TEST_F(HashIndexTest, ExactPairRejectedOnReinsert) {
  HashIndex index(table_.get(), 16);
  Row* row = NewRow();
  ASSERT_TRUE(index.Insert(7, row).ok());
  EXPECT_TRUE(index.Insert(7, row).IsAlreadyExists());
}

TEST_F(HashIndexTest, InsertUniqueRejectsSecondRow) {
  HashIndex index(table_.get(), 16);
  ASSERT_TRUE(index.InsertUnique(7, NewRow()).ok());
  EXPECT_TRUE(index.InsertUnique(7, NewRow()).IsAlreadyExists());
  EXPECT_EQ(index.size(), 1u);
}

TEST_F(HashIndexTest, RemoveExactPair) {
  HashIndex index(table_.get(), 16);
  Row* a = NewRow();
  Row* b = NewRow();
  ASSERT_TRUE(index.Insert(7, a).ok());
  ASSERT_TRUE(index.Insert(7, b).ok());
  EXPECT_TRUE(index.Remove(7, a));
  EXPECT_FALSE(index.Remove(7, a));  // Already gone.
  EXPECT_EQ(index.Lookup(7), b);
  EXPECT_EQ(index.size(), 1u);
}

TEST_F(HashIndexTest, ScanIsNotSupported) {
  HashIndex index(table_.get(), 16);
  std::vector<Row*> rows;
  EXPECT_EQ(index.Scan(0, 10, 0, &rows).code(), StatusCode::kNotSupported);
  EXPECT_EQ(index.ScanReverse(10, 0, 0, &rows).code(),
            StatusCode::kNotSupported);
}

TEST_F(HashIndexTest, ManyKeysWithCollisions) {
  HashIndex index(table_.get(), 16);  // Tiny bucket array: long chains.
  constexpr uint64_t kKeys = 5000;
  std::vector<Row*> rows;
  for (uint64_t k = 0; k < kKeys; ++k) {
    rows.push_back(NewRow());
    ASSERT_TRUE(index.Insert(k, rows.back()).ok());
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(index.Lookup(k), rows[k]) << "key " << k;
  }
  EXPECT_EQ(index.size(), kKeys);
}

TEST_F(HashIndexTest, ConcurrentInsertsAndLookups) {
  HashIndex index(table_.get(), 1 << 12);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        Row* row = table_->AllocateRow(0);
        row->primary_key = key;
        ASSERT_TRUE(index.Insert(key, row).ok());
        Row* found = index.Lookup(key);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(found->primary_key, key);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.size(), kThreads * kPerThread);
}

TEST_F(HashIndexTest, IncrementalRehashGrowsBucketArray) {
  HashIndex index(table_.get(), 16);
  const uint64_t initial_buckets = index.num_buckets();
  constexpr uint64_t kKeys = 4096;
  std::vector<Row*> rows;
  for (uint64_t k = 0; k < kKeys; ++k) {
    rows.push_back(NewRow());
    ASSERT_TRUE(index.Insert(k, rows.back()).ok());
  }
  EXPECT_GT(index.num_rehashes(), 0u);
  EXPECT_GT(index.num_buckets(), initial_buckets);
  // Load factor back under control after the doublings.
  EXPECT_LE(index.size(),
            index.num_buckets() * HashIndex::kGrowLoadFactor);
  // Row pointers handed out before the rehashes are still what Lookup
  // returns — only Entry chain nodes moved.
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(index.Lookup(k), rows[k]) << "key " << k;
  }
}

TEST_F(HashIndexTest, DuplicatesAndRemovesSurviveRehash) {
  HashIndex index(table_.get(), 16);
  Row* dup_a = NewRow();
  Row* dup_b = NewRow();
  ASSERT_TRUE(index.Insert(7, dup_a).ok());
  ASSERT_TRUE(index.Insert(7, dup_b).ok());
  for (uint64_t k = 100; k < 2100; ++k) {
    ASSERT_TRUE(index.Insert(k, NewRow()).ok());
  }
  ASSERT_GT(index.num_rehashes(), 0u);
  std::vector<Row*> both;
  index.LookupAll(7, &both);
  EXPECT_EQ(both.size(), 2u);
  EXPECT_TRUE(index.Remove(7, dup_a));
  EXPECT_EQ(index.Lookup(7), dup_b);
  // Uniqueness is still enforced against the migrated chain.
  EXPECT_TRUE(index.InsertUnique(7, NewRow()).IsAlreadyExists());
}

TEST_F(HashIndexTest, ConcurrentInsertsAcrossManyRehashes) {
  // Small initial table + many writers: several doublings run while
  // lookups and inserts race the migration.
  HashIndex index(table_.get(), 16);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        Row* row = table_->AllocateRow(0);
        row->primary_key = key;
        ASSERT_TRUE(index.Insert(key, row).ok());
        // Read back a key inserted earlier by this thread (random-ish
        // offset) to exercise the successor chase on migrated buckets.
        const uint64_t probe =
            static_cast<uint64_t>(t) * kPerThread + (i * 7919) % (i + 1);
        Row* found = index.Lookup(probe);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(found->primary_key, probe);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.size(), kThreads * kPerThread);
  EXPECT_GT(index.num_rehashes(), 0u);
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    Row* found = index.Lookup(k);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(found->primary_key, k);
  }
}

TEST_F(HashIndexTest, ConcurrentInsertUniqueAdmitsExactlyOne) {
  HashIndex index(table_.get(), 64);
  constexpr int kThreads = 4;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (index.InsertUnique(static_cast<uint64_t>(i),
                               table_->AllocateRow(0))
                .ok()) {
          ++successes;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 1000);
  EXPECT_EQ(index.size(), 1000u);
}

}  // namespace
}  // namespace next700
