#include "workload/driver.h"

#include <gtest/gtest.h>

#include "workload/ycsb.h"

namespace next700 {
namespace {

struct DriverFixture {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<YcsbWorkload> workload;

  DriverFixture() {
    EngineOptions eng;
    eng.cc_scheme = CcScheme::kOcc;
    eng.max_threads = 4;
    engine = std::make_unique<Engine>(eng);
    YcsbOptions ycsb;
    ycsb.num_records = 1024;
    ycsb.ops_per_txn = 4;
    workload = std::make_unique<YcsbWorkload>(ycsb);
    workload->Load(engine.get());
  }
};

TEST(DriverTest, TimedModeMeasuresOnlyTheWindow) {
  DriverFixture f;
  DriverOptions options;
  options.num_threads = 2;
  options.warmup_seconds = 0.05;
  options.measure_seconds = 0.2;
  const RunStats stats = Driver::Run(f.engine.get(), f.workload.get(), options);
  EXPECT_GT(stats.commits, 0u);
  // Elapsed time tracks the requested window, not warmup + measure.
  EXPECT_GE(stats.elapsed_seconds, 0.18);
  EXPECT_LT(stats.elapsed_seconds, 1.0);
  // Latency samples were collected only for measured commits.
  EXPECT_LE(stats.commit_latency_ns.count(), stats.commits);
  EXPECT_GT(stats.commit_latency_ns.count(), 0u);
}

TEST(DriverTest, FixedModeRunsExactCounts) {
  DriverFixture f;
  DriverOptions options;
  options.num_threads = 3;
  options.txns_per_thread = 123;
  const RunStats stats = Driver::Run(f.engine.get(), f.workload.get(), options);
  EXPECT_EQ(stats.commits, 3u * 123u);
  EXPECT_EQ(stats.commit_latency_ns.count(), 3u * 123u);
}

TEST(DriverTest, BackToBackRunsReuseTheEngine) {
  DriverFixture f;
  DriverOptions options;
  options.num_threads = 2;
  options.txns_per_thread = 50;
  const RunStats first = Driver::Run(f.engine.get(), f.workload.get(), options);
  const RunStats second =
      Driver::Run(f.engine.get(), f.workload.get(), options);
  // Stats reset between runs: each reports its own work only.
  EXPECT_EQ(first.commits, 100u);
  EXPECT_EQ(second.commits, 100u);
}

TEST(DriverTest, SeedChangesChangeTheWorkStream) {
  DriverFixture f;
  DriverOptions options;
  options.num_threads = 1;
  options.txns_per_thread = 100;
  options.seed = 1;
  (void)Driver::Run(f.engine.get(), f.workload.get(), options);
  const RunStats a = f.engine->AggregateStats();
  options.seed = 2;
  (void)Driver::Run(f.engine.get(), f.workload.get(), options);
  const RunStats b = f.engine->AggregateStats();
  // Different key streams -> (almost surely) different read/write splits.
  EXPECT_TRUE(a.reads != b.reads || a.writes != b.writes);
}

}  // namespace
}  // namespace next700
