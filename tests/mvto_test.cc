#include "cc/mvto.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "txn/engine.h"
#include "workload/workload.h"

namespace next700 {
namespace {

class MvtoTest : public ::testing::Test {
 protected:
  void Init(bool gc_enabled) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kMvto;
    options.max_threads = 4;
    options.mvcc_gc = gc_enabled;
    engine_ = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("val");
    table_ = engine_->CreateTable("kv", std::move(schema));
    index_ = engine_->CreateIndex("kv_pk", table_, IndexKind::kHash, 64);
    std::vector<uint8_t> buf(8);
    for (uint64_t key = 0; key < 8; ++key) {
      table_->schema().SetUint64(buf.data(), 0, 100 + key);
      Row* row = engine_->LoadRow(table_, 0, key, buf.data());
      ASSERT_TRUE(index_->Insert(key, row).ok());
    }
  }

  uint64_t Read(TxnContext* txn, uint64_t key) {
    uint8_t buf[8];
    NEXT700_CHECK(engine_->Read(txn, index_, key, buf).ok());
    return table_->schema().GetUint64(buf, 0);
  }

  Status Write(TxnContext* txn, uint64_t key, uint64_t value) {
    uint8_t buf[8];
    table_->schema().SetUint64(buf, 0, value);
    return engine_->Update(txn, index_, key, buf);
  }

  Status CommitWrite(uint64_t key, uint64_t value) {
    TxnContext* txn = engine_->Begin(0);
    Status s = Write(txn, key, value);
    if (s.ok()) s = engine_->Commit(txn);
    if (!s.ok()) engine_->Abort(txn);
    return s;
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

TEST_F(MvtoTest, OldReaderSeesOldVersion) {
  Init(/*gc_enabled=*/true);
  // Start a reader *before* the writer commits; its timestamp precedes the
  // writer's version, so it must keep seeing the old value afterwards.
  TxnContext* reader = engine_->Begin(1);
  TxnContext* writer = engine_->Begin(2);
  ASSERT_TRUE(Write(writer, 0, 777).ok());
  ASSERT_TRUE(engine_->Commit(writer).ok());
  EXPECT_EQ(Read(reader, 0), 100u);  // Old snapshot.
  ASSERT_TRUE(engine_->Commit(reader).ok());
  // A fresh reader sees the new version.
  TxnContext* fresh = engine_->Begin(1);
  EXPECT_EQ(Read(fresh, 0), 777u);
  ASSERT_TRUE(engine_->Commit(fresh).ok());
}

TEST_F(MvtoTest, WriteBelowReadTimestampAborts) {
  Init(true);
  TxnContext* old_writer = engine_->Begin(1);   // ts = T1.
  TxnContext* young_reader = engine_->Begin(2);  // ts = T2 > T1.
  EXPECT_EQ(Read(young_reader, 3), 103u);        // Sets rts = T2 on v0.
  ASSERT_TRUE(engine_->Commit(young_reader).ok());
  // Old writer (T1 < T2) writing key 3 would invalidate that read.
  EXPECT_TRUE(Write(old_writer, 3, 5).IsAborted());
  engine_->Abort(old_writer);
}

TEST_F(MvtoTest, UncommittedVersionBlocksConflictingWriter) {
  Init(true);
  TxnContext* first = engine_->Begin(1);
  ASSERT_TRUE(Write(first, 4, 1).ok());
  TxnContext* second = engine_->Begin(2);
  EXPECT_TRUE(Write(second, 4, 2).IsAborted());
  engine_->Abort(second);
  ASSERT_TRUE(engine_->Commit(first).ok());
  TxnContext* check = engine_->Begin(2);
  EXPECT_EQ(Read(check, 4), 1u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(MvtoTest, AbortUnlinksInstalledVersion) {
  Init(true);
  Row* row = index_->Lookup(5);
  const size_t before = Mvto::ChainLength(row);
  TxnContext* txn = engine_->Begin(1);
  ASSERT_TRUE(Write(txn, 5, 9).ok());
  EXPECT_EQ(Mvto::ChainLength(row), before + 1);
  engine_->Abort(txn);
  EXPECT_EQ(Mvto::ChainLength(row), before);
  TxnContext* check = engine_->Begin(1);
  EXPECT_EQ(Read(check, 5), 105u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(MvtoTest, GcDisabledChainsGrow) {
  Init(/*gc_enabled=*/false);
  Row* row = index_->Lookup(0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(CommitWrite(0, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_GE(Mvto::ChainLength(row), 50u);
}

TEST_F(MvtoTest, GcEnabledChainsStayShort) {
  Init(/*gc_enabled=*/true);
  Row* row = index_->Lookup(0);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(CommitWrite(0, static_cast<uint64_t>(i)).ok());
  }
  // With no concurrent readers the watermark tracks the newest commit, so
  // only a handful of versions can survive.
  EXPECT_LE(Mvto::ChainLength(row), 4u);
}

TEST_F(MvtoTest, ReadersPinVersionsAgainstGc) {
  Init(true);
  TxnContext* pinner = engine_->Begin(3);  // Active txn holds the watermark.
  EXPECT_EQ(Read(pinner, 1), 101u);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(CommitWrite(1, static_cast<uint64_t>(i)).ok());
  }
  // The pinned snapshot must still be readable.
  EXPECT_EQ(Read(pinner, 1), 101u);
  ASSERT_TRUE(engine_->Commit(pinner).ok());
}

TEST_F(MvtoTest, ConcurrentReadersAndWritersKeepSnapshots) {
  Init(true);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  // Writer keeps keys 6 and 7 equal.
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 400; ++i) {
      Rng rng(i);
      (void)RunWithRetry(&rng, [&] {
        TxnContext* txn = engine_->Begin(0);
        Status s = Write(txn, 6, i);
        if (s.ok()) s = Write(txn, 7, i);
        if (s.ok()) s = engine_->Commit(txn);
        if (!s.ok()) engine_->Abort(txn);
        return s;
      });
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 1; r <= 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r));
      uint8_t buf[8];
      while (!stop.load()) {
        TxnContext* txn = engine_->Begin(r);
        Status s = engine_->Read(txn, index_, 6, buf);
        uint64_t a = 0, b = 0;
        if (s.ok()) {
          a = table_->schema().GetUint64(buf, 0);
          s = engine_->Read(txn, index_, 7, buf);
          if (s.ok()) b = table_->schema().GetUint64(buf, 0);
        }
        if (s.ok()) s = engine_->Commit(txn);
        if (!s.ok()) {
          engine_->Abort(txn);
          continue;
        }
        // Initial values are 106/107, then i/i; only compare once both
        // keys left their initial state.
        if (a > 10 && b > 10 && a != b) ++torn;
        if (a == b && a > 0) {
          // Consistent snapshot observed; nothing else to assert.
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace next700
