#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include "workload/driver.h"

namespace next700 {
namespace {

class YcsbSchemeTest : public ::testing::TestWithParam<CcScheme> {};

TEST_P(YcsbSchemeTest, FixedWorkRunCommitsEverything) {
  EngineOptions eng;
  eng.cc_scheme = GetParam();
  eng.max_threads = 4;
  eng.num_partitions = 4;
  Engine engine(eng);

  YcsbOptions ycsb;
  ycsb.num_records = 4096;
  ycsb.ops_per_txn = 8;
  ycsb.write_fraction = 0.5;
  ycsb.theta = 0.6;
  ycsb.partitioned = GetParam() == CcScheme::kHstore;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  EXPECT_EQ(workload.index()->size(), ycsb.num_records);

  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 200;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 800u);
  EXPECT_GT(stats.reads + stats.writes, 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.Throughput(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, YcsbSchemeTest, ::testing::ValuesIn(AllCcSchemes()),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

TEST(YcsbTest, ReadModifyWriteCountsAreExact) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 4;
  Engine engine(eng);
  YcsbOptions ycsb;
  ycsb.num_records = 1024;
  ycsb.ops_per_txn = 4;
  ycsb.write_fraction = 1.0;  // Every op increments field 0 of some row.
  ycsb.read_modify_write = true;
  ycsb.theta = 0.9;           // Hot keys: real conflicts.
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);

  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 250;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  ASSERT_EQ(stats.commits, 1000u);

  // Lost-update check: total increments across the table must equal the
  // committed op count exactly (keys started at key*131).
  const Schema& schema = workload.table()->schema();
  uint64_t total_increments = 0;
  workload.table()->ForEachRow([&](Row* row) {
    const uint64_t base = row->primary_key * 131;
    total_increments +=
        schema.GetUint64(engine.RawImage(row), 0) - base;
  });
  EXPECT_EQ(total_increments, 1000u * 4u);
}

TEST(YcsbTest, PartitionedModeRespectsHomePartitions) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kHstore;
  eng.max_threads = 2;
  eng.num_partitions = 8;
  Engine engine(eng);
  YcsbOptions ycsb;
  ycsb.num_records = 1024;
  ycsb.ops_per_txn = 8;
  ycsb.partitioned = true;
  ycsb.multi_partition_fraction = 0.3;
  ycsb.partitions_per_mp_txn = 3;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 300;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 600u);
  EXPECT_EQ(stats.aborts, 0u);  // Partition locks never conflict-abort.
}

TEST(YcsbTest, BTreeIndexVariantWorks) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 2;
  Engine engine(eng);
  YcsbOptions ycsb;
  ycsb.num_records = 2048;
  ycsb.index_kind = IndexKind::kBTree;
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 100;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits, 200u);
}

}  // namespace
}  // namespace next700
