#include "storage/table.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace next700 {
namespace {

Schema TwoColumnSchema() {
  Schema s;
  s.AddUint64("a");
  s.AddUint64("b");
  return s;
}

TEST(TableTest, AllocateInitializesHeader) {
  Table table(0, "t", TwoColumnSchema(), 2);
  Row* row = table.AllocateRow(1);
  EXPECT_EQ(row->table, &table);
  EXPECT_EQ(row->partition, 1u);
  EXPECT_FALSE(row->deleted());
  EXPECT_EQ(row->chain.load(), nullptr);
  EXPECT_EQ(row->tid_word.load(), 0u);
}

TEST(TableTest, RowsAreDistinctAndStable) {
  Table table(0, "t", TwoColumnSchema(), 1);
  std::set<Row*> rows;
  for (int i = 0; i < 10000; ++i) {
    Row* row = table.AllocateRow(0);
    EXPECT_TRUE(rows.insert(row).second);
    row->primary_key = static_cast<uint64_t>(i);
    std::memset(row->data(), i & 0xFF, table.row_size());
  }
  // Every row keeps its identity (no relocation).
  uint64_t expected = 0;
  for (Row* row : rows) {
    (void)row;
    ++expected;
  }
  EXPECT_EQ(table.ApproxRowCount(), expected);
}

TEST(TableTest, FreeRowRecyclesSlot) {
  Table table(0, "t", TwoColumnSchema(), 1);
  Row* a = table.AllocateRow(0);
  table.FreeRow(a);
  EXPECT_EQ(table.ApproxRowCount(), 0u);
  Row* b = table.AllocateRow(0);
  EXPECT_EQ(a, b);  // LIFO reuse.
  EXPECT_FALSE(b->deleted());
}

TEST(TableTest, ForEachRowSkipsFreedRows) {
  Table table(0, "t", TwoColumnSchema(), 1);
  Row* keep = table.AllocateRow(0);
  Row* drop = table.AllocateRow(0);
  table.FreeRow(drop);
  int seen = 0;
  Row* seen_row = nullptr;
  table.ForEachRow([&](Row* row) {
    ++seen;
    seen_row = row;
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(seen_row, keep);
}

TEST(TableTest, PartitionsAllocateIndependently) {
  Table table(0, "t", TwoColumnSchema(), 4);
  for (uint32_t p = 0; p < 4; ++p) {
    Row* row = table.AllocateRow(p);
    EXPECT_EQ(row->partition, p);
  }
  EXPECT_EQ(table.ApproxRowCount(), 4u);
}

TEST(TableTest, ConcurrentAllocationIsSafe) {
  Table table(0, "t", TwoColumnSchema(), 2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<Row*>> out(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &out, t] {
      for (int i = 0; i < kPerThread; ++i) {
        out[t].push_back(table.AllocateRow(t % 2));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<Row*> all;
  for (const auto& rows : out) {
    for (Row* row : rows) EXPECT_TRUE(all.insert(row).second);
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(TableTest, SpansMultipleSlabs) {
  Table table(0, "t", TwoColumnSchema(), 1);
  const size_t n = Table::kRowsPerSlab * 2 + 5;
  for (size_t i = 0; i < n; ++i) table.AllocateRow(0);
  size_t counted = 0;
  table.ForEachRow([&](Row*) { ++counted; });
  EXPECT_EQ(counted, n);
}

}  // namespace
}  // namespace next700
