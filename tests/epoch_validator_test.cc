#include <gtest/gtest.h>

#include <atomic>

#include "common/epoch.h"
#include "common/macros.h"

namespace next700 {
namespace {

std::atomic<int> g_freed{0};

void CountingFree(void* p) {
  ++g_freed;
  ::operator delete(p);
}

class EpochValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override { g_freed = 0; }
};

using EpochValidatorDeathTest = EpochValidatorTest;

TEST_F(EpochValidatorTest, FullValidationDefersFreesThroughQuarantine) {
  EpochManager em(1);
  em.set_validation(EpochValidation::kFull);
  void* p = ::operator new(64);
  em.Enter(0);
  em.Retire(0, p, CountingFree, 64);
  em.Exit(0);
  em.Maintain(0);
  // The grace period expired, but the block is parked (and poisoned) in the
  // quarantine instead of being freed.
  EXPECT_EQ(em.RetiredCount(), 0u);
  EXPECT_EQ(em.QuarantineCount(), 1u);
  EXPECT_EQ(g_freed.load(), 0);
  em.ReclaimAll();
  EXPECT_EQ(em.QuarantineCount(), 0u);
  EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(EpochValidatorTest, QuarantineOverflowVerifiesAndFreesOldest) {
  EpochManager em(1);
  em.set_validation(EpochValidation::kFull);
  const int kBlocks = static_cast<int>(EpochManager::kQuarantineDepth) + 8;
  for (int i = 0; i < kBlocks; ++i) {
    em.Enter(0);
    em.Retire(0, ::operator new(32), CountingFree, 32);
    em.Exit(0);
    em.Maintain(0);
  }
  // Everything past the quarantine depth has been canary-checked and freed.
  EXPECT_EQ(em.QuarantineCount(), EpochManager::kQuarantineDepth);
  EXPECT_EQ(g_freed.load(), kBlocks - static_cast<int>(
                                          EpochManager::kQuarantineDepth));
  em.ReclaimAll();
  EXPECT_EQ(g_freed.load(), kBlocks);
}

TEST_F(EpochValidatorTest, QuarantinedBlockIsPoisoned) {
#ifdef NEXT700_ASAN_ENABLED
  GTEST_SKIP() << "reading a quarantined block traps under ASan";
#else
  EpochManager em(1);
  em.set_validation(EpochValidation::kFull);
  auto* p = static_cast<unsigned char*>(::operator new(16));
  em.Enter(0);
  em.Retire(0, p, CountingFree, 16);
  em.Exit(0);
  em.Maintain(0);
  ASSERT_EQ(em.QuarantineCount(), 1u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(p[i], EpochManager::kPoisonByte) << "byte " << i;
  }
  em.ReclaimAll();
#endif
}

TEST_F(EpochValidatorTest, ChecksModeDoesNotChangeFreeTiming) {
  EpochManager em(1);
  em.set_validation(EpochValidation::kChecks);
  em.Enter(0);
  em.Retire(0, ::operator new(8), CountingFree, 8);
  em.Exit(0);
  em.Maintain(0);
  EXPECT_EQ(g_freed.load(), 1);
  EXPECT_EQ(em.QuarantineCount(), 0u);
}

TEST_F(EpochValidatorDeathTest, RetireWhileUnpinnedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EpochManager em(1);
        em.set_validation(EpochValidation::kChecks);
        em.Retire(0, ::operator new(8), CountingFree, 8);
      },
      "epoch-reclamation violation.*not pinned");
}

TEST_F(EpochValidatorDeathTest, DoubleRetireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EpochManager em(1);
        em.set_validation(EpochValidation::kChecks);
        void* p = ::operator new(8);
        em.Enter(0);
        em.Retire(0, p, CountingFree, 8);
        em.Retire(0, p, CountingFree, 8);
      },
      "epoch-reclamation violation.*double retire");
}

// Regression test for the class of bug the validator exists for: a thread
// keeps a stale pointer past its grace period and writes through it. The
// canary check (or ASan's poisoned-region trap) catches the write at the
// quarantine drain instead of letting it corrupt a reallocated block.
TEST_F(EpochValidatorDeathTest, UseAfterRetireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EpochManager em(1);
        em.set_validation(EpochValidation::kFull);
        auto* p = static_cast<unsigned char*>(::operator new(64));
        em.Enter(0);
        em.Retire(0, p, CountingFree, 64);
        em.Exit(0);
        em.Maintain(0);  // Grace period over: block poisoned + quarantined.
        p[5] = 0x12;     // Buggy late write through the stale pointer.
        em.ReclaimAll();  // Canary verification detects the modification.
      },
      "use-after-retire|use-after-poison");
}

}  // namespace
}  // namespace next700
