#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/timestamp.h"

namespace next700 {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  const Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

// --- Timestamp allocators ----------------------------------------------------

TEST(TimestampTest, AtomicAllocatorIsMonotonic) {
  AtomicTimestampAllocator alloc;
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const Timestamp ts = alloc.Allocate(0);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
  EXPECT_GT(alloc.Horizon(), prev);
}

TEST(TimestampTest, BatchedAllocatorUniquePerThreadMonotonic) {
  BatchedTimestampAllocator alloc(4);
  std::vector<std::vector<Timestamp>> out(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&alloc, &out, t] {
      Timestamp prev = 0;
      for (int i = 0; i < 10000; ++i) {
        const Timestamp ts = alloc.Allocate(t);
        EXPECT_GT(ts, prev);  // Per-thread monotonic.
        prev = ts;
        out[t].push_back(ts);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : out) {
    for (Timestamp ts : v) EXPECT_TRUE(all.insert(ts).second);  // Unique.
  }
  EXPECT_EQ(all.size(), 40000u);
}

TEST(TimestampTest, FactoryCreatesRequestedKind) {
  auto atomic =
      TimestampAllocator::Create(TimestampAllocatorKind::kAtomic, 2);
  auto batched =
      TimestampAllocator::Create(TimestampAllocatorKind::kBatched, 2);
  EXPECT_NE(atomic->Allocate(0), kInvalidTimestamp);
  EXPECT_NE(batched->Allocate(1), kInvalidTimestamp);
}

// --- Latches ----------------------------------------------------------------

TEST(LatchTest, SpinLatchMutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        SpinLatchGuard guard(&latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(LatchTest, TryLockFailsWhenHeld) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(LatchTest, RwLatchAllowsConcurrentReaders) {
  RwSpinLatch latch;
  latch.LockShared();
  latch.LockShared();  // Second reader does not block.
  latch.UnlockShared();
  latch.UnlockShared();
}

TEST(LatchTest, RwLatchWriterExcludesEverything) {
  RwSpinLatch latch;
  std::atomic<int> active_writers{0};
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        latch.LockExclusive();
        EXPECT_EQ(active_writers.fetch_add(1), 0);
        sum.fetch_add(1, std::memory_order_relaxed);
        active_writers.fetch_sub(1);
        latch.UnlockExclusive();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 20000);
}

}  // namespace
}  // namespace next700
