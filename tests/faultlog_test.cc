/// Death tests for the crash-fault-injection backend: each test forks,
/// lets the FaultInjectingLogFile kill the child at a scheduled physical
/// write, and then replays the surviving log in the parent to check the
/// recovery contract (see also tools/crashtest for the randomized driver).

#include "faultlog/fault_injection.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {
namespace {

constexpr int kCrashExit = 42;

std::string TempLogDir(const char* tag) {
  std::string dir =
      std::string(::testing::TempDir()) + "/next700_fault_" + tag + ".logd";
  RemoveLogDir(dir);
  return dir;
}

struct Db {
  std::unique_ptr<Engine> engine;
  Table* table = nullptr;
  Index* index = nullptr;
};

/// KV engine with procedure 1 = "set key args[0] to args[1]". sync_commit +
/// fdatasync, so a transaction that returns OK has passed WaitDurable: one
/// physical write (and barrier) per transaction.
Db MakeDb(LoggingKind logging, const std::string& dir,
          FaultInjector* injector) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kNoWait;
  options.max_threads = 1;
  options.logging = logging;
  options.log_dir = dir;
  options.sync_commit = true;
  options.log_flush_interval_us = 20;
  if (logging != LoggingKind::kNone) {
    options.log_sync = LogSyncPolicy::kFdatasync;
    if (injector != nullptr) options.log_file_factory = injector->factory();
  }
  Db db;
  db.engine = std::make_unique<Engine>(options);
  Schema schema;
  schema.AddUint64("val");
  db.table = db.engine->CreateTable("kv", std::move(schema));
  db.index = db.engine->CreateIndex("kv_pk", db.table, IndexKind::kHash, 64);
  Table* table = db.table;
  Index* index = db.index;
  db.engine->RegisterProcedure(
      1, [table, index](Engine* e, TxnContext* txn, const uint8_t* args,
                        size_t len) -> Status {
        NEXT700_CHECK(len == 16);
        uint64_t key, value;
        std::memcpy(&key, args, 8);
        std::memcpy(&value, args + 8, 8);
        uint8_t buf[8];
        Status s = e->ReadForUpdate(txn, index, key, buf);
        if (s.IsNotFound()) {
          table->schema().SetUint64(buf, 0, value);
          Result<Row*> row = e->Insert(txn, table, 0, key, buf);
          NEXT700_RETURN_IF_ERROR(row.status());
          e->AddIndexInsert(txn, index, key, row.value());
          return Status::OK();
        }
        NEXT700_RETURN_IF_ERROR(s);
        table->schema().SetUint64(buf, 0, value);
        return e->Update(txn, index, key, buf);
      });
  return db;
}

/// Runs `txns` sequential transactions (key i -> i + 100); under a crash
/// fault the process dies inside some commit's flush.
void RunWorkload(LoggingKind logging, const std::string& dir,
                 FaultInjector* injector, uint64_t txns) {
  Db db = MakeDb(logging, dir, injector);
  for (uint64_t i = 0; i < txns; ++i) {
    uint64_t args[2] = {i, i + 100};
    NEXT700_CHECK(db.engine->RunProcedure(1, 0, args, sizeof(args)).ok());
  }
}

uint64_t Value(Db& db, uint64_t key) {
  Row* row = db.index->Lookup(key);
  NEXT700_CHECK(row != nullptr);
  return db.table->schema().GetUint64(db.engine->RawImage(row), 0);
}

class FaultLogDeathTest : public ::testing::Test {};

TEST_F(FaultLogDeathTest, CrashBeforeWriteLosesOnlyUnackedTransactions) {
  for (const LoggingKind logging :
       {LoggingKind::kValue, LoggingKind::kCommand}) {
    const std::string dir = TempLogDir(
        logging == LoggingKind::kValue ? "crash_value" : "crash_command");
    EXPECT_EXIT(
        {
          FaultInjector injector;
          FaultPoint fault;
          fault.kind = FaultPoint::Kind::kCrashBeforeWrite;
          fault.write_index = 2;
          injector.AddFault(fault);
          RunWorkload(logging, dir, &injector, 10);
        },
        ::testing::ExitedWithCode(kCrashExit), "");

    // Writes 0 and 1 completed and were acknowledged; the crash hit the
    // third commit's flush. Exactly two transactions must survive.
    Db db = MakeDb(LoggingKind::kNone, "", nullptr);
    RecoveryManager recovery(db.engine.get());
    RecoveryStats stats;
    ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
    EXPECT_EQ(stats.txns_replayed, 2u);
    EXPECT_EQ(Value(db, 0), 100u);
    EXPECT_EQ(Value(db, 1), 101u);
    EXPECT_EQ(db.index->Lookup(2), nullptr);
  }
}

TEST_F(FaultLogDeathTest, TornWriteDropsTheTornTailOnly) {
  // Tear the third write after every prefix length seen in practice; the
  // torn frame must never replay, the acked prefix always must.
  for (const uint64_t tear : {0ull, 1ull, 4ull, 5ull, 13ull, 20ull}) {
    const std::string dir =
        TempLogDir(("torn_" + std::to_string(tear)).c_str());
    EXPECT_EXIT(
        {
          FaultInjector injector;
          FaultPoint fault;
          fault.kind = FaultPoint::Kind::kTornWrite;
          fault.write_index = 2;
          fault.tear_bytes = tear;
          injector.AddFault(fault);
          RunWorkload(LoggingKind::kValue, dir, &injector, 10);
        },
        ::testing::ExitedWithCode(kCrashExit), "");

    Db db = MakeDb(LoggingKind::kNone, "", nullptr);
    RecoveryManager recovery(db.engine.get());
    RecoveryStats stats;
    ASSERT_TRUE(recovery.Replay(dir, &stats).ok()) << "tear=" << tear;
    EXPECT_EQ(stats.txns_replayed, 2u) << "tear=" << tear;
    EXPECT_EQ(db.index->Lookup(2), nullptr) << "tear=" << tear;
  }
}

TEST_F(FaultLogDeathTest, BitFlipBelowTheTailIsDetectedNotReplayed) {
  const std::string dir = TempLogDir("bitflip");
  EXPECT_EXIT(
      {
        FaultInjector injector;
        FaultPoint flip;
        flip.kind = FaultPoint::Kind::kBitFlip;
        flip.write_index = 1;
        flip.flip_offset = 9;  // Inside the frame body.
        injector.AddFault(flip);
        // Keep running past the flip, then crash, so the damaged frame
        // sits below the log tail.
        FaultPoint crash;
        crash.kind = FaultPoint::Kind::kCrashBeforeWrite;
        crash.write_index = 5;
        injector.AddFault(crash);
        RunWorkload(LoggingKind::kValue, dir, &injector, 10);
      },
      ::testing::ExitedWithCode(kCrashExit), "");

  // The flipped frame is mid-log: replay must refuse to continue past it
  // rather than silently dropping acknowledged transactions.
  Db db = MakeDb(LoggingKind::kNone, "", nullptr);
  RecoveryManager recovery(db.engine.get());
  RecoveryStats stats;
  EXPECT_EQ(recovery.Replay(dir, &stats).code(), StatusCode::kCorruption);
}

TEST(FaultLogTest, InjectorCountsWritesAndBarriers) {
  const std::string dir = TempLogDir("counters");
  FaultInjector injector;  // No faults: transparent pass-through.
  {
    RunWorkload(LoggingKind::kValue, dir, &injector, 8);
  }
  // One commit = one flush = one write + one fdatasync barrier.
  EXPECT_EQ(injector.writes(), 8u);
  EXPECT_EQ(injector.syncs(), 8u);
}

}  // namespace
}  // namespace next700
