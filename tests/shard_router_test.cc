/// In-process shard-topology integration tests: two real shard servers
/// (each owning keys where key % 2 == shard_id) behind a real ShardRouter
/// over loopback sockets. Covers the single-shard fast path (verbatim
/// forwarding, counters), cross-shard 2PC atomicity, the kUnavailable
/// error path when a shard is down mid-batch, and router restart replaying
/// its durable decision log.

#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/procs.h"
#include "server/protocol.h"
#include "server/server.h"

namespace next700 {
namespace shard {
namespace {

constexpr uint32_t kNumShards = 2;
constexpr uint32_t kPartitions = 4;
constexpr uint64_t kRecords = 1024;

struct Topology {
  std::unique_ptr<Engine> engines[kNumShards];
  std::unique_ptr<server::Server> servers[kNumShards];
  std::unique_ptr<ShardRouter> router;

  ~Topology() {
    if (router != nullptr) router->Stop();
    for (auto& server : servers) {
      if (server != nullptr) server->Stop();
    }
  }
};

void StartShard(Topology* topo, uint32_t shard_id, const std::string& dir) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 2;
  eng.num_partitions = kPartitions;
  eng.logging = LoggingKind::kValue;
  RemoveLogDir(dir);
  eng.log_dir = dir;
  topo->engines[shard_id] = std::make_unique<Engine>(eng);
  server::KvServiceOptions kv;
  kv.num_records = kRecords;
  kv.num_shards = kNumShards;
  kv.shard_id = shard_id;
  server::RegisterKvService(topo->engines[shard_id].get(), kv);
  server::ServerOptions srv;
  srv.num_workers = 2;
  topo->servers[shard_id] = std::make_unique<server::Server>(
      topo->engines[shard_id].get(), srv);
  ASSERT_TRUE(topo->servers[shard_id]->Start().ok());
}

void StartTopology(Topology* topo, const std::string& base_dir) {
  ShardRouterOptions ropts;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    StartShard(topo, i, base_dir + "_s" + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
    ropts.shards.push_back(
        "127.0.0.1:" + std::to_string(topo->servers[i]->port()));
  }
  ropts.num_partitions = kPartitions;
  ropts.log_dir = base_dir + "_rt";
  ropts.vote_timeout_ms = 2000;
  topo->router = std::make_unique<ShardRouter>(ropts);
  ASSERT_TRUE(topo->router->Start().ok());
  ASSERT_TRUE(topo->router->WaitShardsConnected(15000));
}

std::string TempBase(const char* name) {
  return std::string(::testing::TempDir()) + "/next700_shardtest_" + name;
}

server::Request GetRequest(uint64_t request_id, uint64_t key) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvGet;
  server::WireWriter args(&request.args);
  args.PutU64(key);
  return request;
}

server::Request RmwRequest(uint64_t request_id,
                           const std::vector<uint64_t>& keys) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvRmw;
  server::WireWriter args(&request.args);
  args.PutU16(static_cast<uint16_t>(keys.size()));
  for (const uint64_t key : keys) args.PutU64(key);
  return request;
}

/// The kv row's counter lives in the first 8 payload bytes, seeded = key.
uint64_t CounterOf(const server::Response& response) {
  EXPECT_GE(response.payload.size(), sizeof(uint64_t));
  uint64_t counter = 0;
  std::memcpy(&counter, response.payload.data(), sizeof(counter));
  return counter;
}

TEST(ShardRouterTest, SingleShardFastPathForwardsBothShards) {
  Topology topo;
  StartTopology(&topo, TempBase("fastpath"));
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Keys on both shards route to their owner and read the seeded counter.
  for (const uint64_t key : {0ull, 1ull, 42ull, 43ull}) {
    server::Response response;
    ASSERT_TRUE(client.Call(GetRequest(key, key), &response).ok());
    EXPECT_EQ(response.status, StatusCode::kOk) << "key " << key;
    EXPECT_EQ(CounterOf(response), key);
  }
  // A single-shard rmw (both keys on shard 0) commits without 2PC.
  server::Response response;
  ASSERT_TRUE(client.Call(RmwRequest(100, {2, 4}), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 0u);
  EXPECT_GE(topo.router->stats().forwarded.load(), 5u);
}

TEST(ShardRouterTest, CrossShardRmwCommitsAtomically) {
  Topology topo;
  StartTopology(&topo, TempBase("cross"));
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Keys 6 and 7 live on different shards: this is a distributed txn.
  server::Response response;
  ASSERT_TRUE(client.Call(RmwRequest(1, {6, 7}), &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);
  // The reply's commit_lsn is the coordinator's durable decision LSN.
  EXPECT_GT(response.commit_lsn, 0u);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 1u);
  EXPECT_EQ(topo.router->stats().cross_shard_aborts.load(), 0u);

  // Both halves of the increment are visible through the fast path.
  ASSERT_TRUE(client.Call(GetRequest(2, 6), &response).ok());
  EXPECT_EQ(CounterOf(response), 6u + 1);
  ASSERT_TRUE(client.Call(GetRequest(3, 7), &response).ok());
  EXPECT_EQ(CounterOf(response), 7u + 1);
}

TEST(ShardRouterTest, PipelinedMixedTrafficKeepsRequestOrder) {
  Topology topo;
  StartTopology(&topo, TempBase("pipeline"));
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Pipeline a burst that alternates shards and includes a cross-shard
  // txn in the middle; the reorder buffer must deliver replies in
  // request order even though they complete on different shards.
  constexpr uint64_t kBurst = 20;
  for (uint64_t i = 0; i < kBurst; ++i) {
    if (i == 10) {
      ASSERT_TRUE(client.Send(RmwRequest(i, {8, 9})).ok());
    } else {
      ASSERT_TRUE(client.Send(GetRequest(i, i % 8)).ok());
    }
  }
  for (uint64_t i = 0; i < kBurst; ++i) {
    server::Response response;
    ASSERT_TRUE(client.Recv(&response, 10000).ok()) << "reply " << i;
    EXPECT_EQ(response.request_id, i);  // FIFO across shards.
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 1u);
}

TEST(ShardRouterTest, DownShardAnswersUnavailableAndRecovers) {
  Topology topo;
  StartTopology(&topo, TempBase("down"));
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  topo.servers[1]->Stop();

  // Requests for the dead shard answer kUnavailable (connection survives);
  // the live shard keeps serving. The router notices the dead shard
  // asynchronously, so poll until the error surfaces.
  server::Response response;
  bool saw_unavailable = false;
  StatusCode last = StatusCode::kOk;
  for (int attempt = 0; attempt < 100 && !saw_unavailable; ++attempt) {
    const Status got = client.Call(GetRequest(1, 1), &response, 10000);
    ASSERT_TRUE(got.ok()) << got.ToString();
    last = response.status;
    if (response.status == StatusCode::kUnavailable) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable) << "last status " << static_cast<int>(last);
  ASSERT_TRUE(client.Call(GetRequest(2, 0), &response, 10000).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);

  // A cross-shard txn with a dead participant must abort, not hang.
  ASSERT_TRUE(client.Call(RmwRequest(3, {0, 1}), &response, 30000).ok());
  EXPECT_NE(response.status, StatusCode::kOk);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 0u);
}

TEST(ShardRouterTest, RouterRestartReplaysDecisionLog) {
  const std::string base = TempBase("restart");
  Topology topo;
  StartTopology(&topo, base);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  {
    server::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", topo.router->port()).ok());
    server::Response response;
    ASSERT_TRUE(client.Call(RmwRequest(1, {10, 11}), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
  }
  topo.router->Stop();

  // A new router over the same decision log reconnects, finds no in-doubt
  // backlog (the decision was delivered), and keeps serving; the committed
  // increments are still visible.
  ShardRouterOptions ropts;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    ropts.shards.push_back(
        "127.0.0.1:" + std::to_string(topo.servers[i]->port()));
  }
  ropts.num_partitions = kPartitions;
  ropts.log_dir = base + "_rt";
  topo.router = std::make_unique<ShardRouter>(ropts);
  ASSERT_TRUE(topo.router->Start().ok());
  ASSERT_TRUE(topo.router->WaitShardsConnected(15000));

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  server::Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 10), &response).ok());
  EXPECT_EQ(CounterOf(response), 10u + 1);
  ASSERT_TRUE(client.Call(GetRequest(2, 11), &response).ok());
  EXPECT_EQ(CounterOf(response), 11u + 1);
  ASSERT_TRUE(client.Call(RmwRequest(3, {10, 11}), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
}

}  // namespace
}  // namespace shard
}  // namespace next700
