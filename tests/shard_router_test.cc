/// In-process shard-topology integration tests: two real shard servers
/// (each owning keys where key % 2 == shard_id) behind a real ShardRouter
/// over loopback sockets, parameterized over both io backends (uring
/// skipped where the kernel/sandbox denies rings). Covers the single-shard
/// fast path (verbatim forwarding, counters), cross-shard 2PC atomicity,
/// the kUnavailable error path when a shard is down mid-batch, router
/// restart replaying its durable decision log, and the event-loop
/// lifecycle: session churn must not grow live-session state (the old
/// thread-per-session tier leaked a session + thread handle per dead
/// client) and Stop() must return promptly even with a down shard (the old
/// reconnect path slept a blind 200 ms ignoring stop_).

#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/io_backend.h"
#include "server/client.h"
#include "server/procs.h"
#include "server/protocol.h"
#include "server/server.h"

namespace next700 {
namespace shard {
namespace {

constexpr uint32_t kNumShards = 2;
constexpr uint32_t kPartitions = 4;
constexpr uint64_t kRecords = 1024;

struct Topology {
  std::unique_ptr<Engine> engines[kNumShards];
  std::unique_ptr<server::Server> servers[kNumShards];
  std::unique_ptr<ShardRouter> router;

  ~Topology() {
    if (router != nullptr) router->Stop();
    for (auto& server : servers) {
      if (server != nullptr) server->Stop();
    }
  }
};

class ShardRouterTest : public ::testing::TestWithParam<io::IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == io::IoBackendKind::kUring && !io::UringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
    }
  }
};

/// Log directories must be unique per test *instance*, not just per case:
/// `ctest -j` runs the epoll and uring instantiations of the same case as
/// concurrent processes, and a shared directory means one process's
/// RemoveLogDir races the other's open log. The test-info name carries the
/// param suffix ("Case/epoll").
std::string TempBase() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string slug = std::string(info->name());
  for (char& c : slug) {
    if (c == '/') c = '_';
  }
  return std::string(::testing::TempDir()) + "/next700_shardtest_" + slug;
}

void StartShard(Topology* topo, uint32_t shard_id, const std::string& dir) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 2;
  eng.num_partitions = kPartitions;
  eng.logging = LoggingKind::kValue;
  RemoveLogDir(dir);
  eng.log_dir = dir;
  topo->engines[shard_id] = std::make_unique<Engine>(eng);
  server::KvServiceOptions kv;
  kv.num_records = kRecords;
  kv.num_shards = kNumShards;
  kv.shard_id = shard_id;
  server::RegisterKvService(topo->engines[shard_id].get(), kv);
  server::ServerOptions srv;
  srv.num_workers = 2;
  topo->servers[shard_id] = std::make_unique<server::Server>(
      topo->engines[shard_id].get(), srv);
  ASSERT_TRUE(topo->servers[shard_id]->Start().ok());
}

void StartTopology(Topology* topo, const std::string& base_dir,
                   io::IoBackendKind io_backend) {
  ShardRouterOptions ropts;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    StartShard(topo, i, base_dir + "_s" + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
    ropts.shards.push_back(
        "127.0.0.1:" + std::to_string(topo->servers[i]->port()));
  }
  ropts.num_partitions = kPartitions;
  ropts.log_dir = base_dir + "_rt";
  ropts.vote_timeout_ms = 2000;
  ropts.io_backend = io_backend;
  topo->router = std::make_unique<ShardRouter>(ropts);
  ASSERT_TRUE(topo->router->Start().ok());
  ASSERT_TRUE(topo->router->WaitShardsConnected(15000));
}

server::Request GetRequest(uint64_t request_id, uint64_t key) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvGet;
  server::WireWriter args(&request.args);
  args.PutU64(key);
  return request;
}

server::Request RmwRequest(uint64_t request_id,
                           const std::vector<uint64_t>& keys) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvRmw;
  server::WireWriter args(&request.args);
  args.PutU16(static_cast<uint16_t>(keys.size()));
  for (const uint64_t key : keys) args.PutU64(key);
  return request;
}

/// The kv row's counter lives in the first 8 payload bytes, seeded = key.
uint64_t CounterOf(const server::Response& response) {
  EXPECT_GE(response.payload.size(), sizeof(uint64_t));
  uint64_t counter = 0;
  std::memcpy(&counter, response.payload.data(), sizeof(counter));
  return counter;
}

TEST_P(ShardRouterTest, SingleShardFastPathForwardsBothShards) {
  Topology topo;
  StartTopology(&topo, TempBase(), GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Keys on both shards route to their owner and read the seeded counter.
  for (const uint64_t key : {0ull, 1ull, 42ull, 43ull}) {
    server::Response response;
    ASSERT_TRUE(client.Call(GetRequest(key, key), &response).ok());
    EXPECT_EQ(response.status, StatusCode::kOk) << "key " << key;
    EXPECT_EQ(CounterOf(response), key);
  }
  // A single-shard rmw (both keys on shard 0) commits without 2PC.
  server::Response response;
  ASSERT_TRUE(client.Call(RmwRequest(100, {2, 4}), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 0u);
  EXPECT_GE(topo.router->stats().forwarded.load(), 5u);
}

TEST_P(ShardRouterTest, CrossShardRmwCommitsAtomically) {
  Topology topo;
  StartTopology(&topo, TempBase(), GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Keys 6 and 7 live on different shards: this is a distributed txn.
  server::Response response;
  ASSERT_TRUE(client.Call(RmwRequest(1, {6, 7}), &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);
  // The reply's commit_lsn is the coordinator's durable decision LSN.
  EXPECT_GT(response.commit_lsn, 0u);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 1u);
  EXPECT_EQ(topo.router->stats().cross_shard_aborts.load(), 0u);

  // Both halves of the increment are visible through the fast path.
  ASSERT_TRUE(client.Call(GetRequest(2, 6), &response).ok());
  EXPECT_EQ(CounterOf(response), 6u + 1);
  ASSERT_TRUE(client.Call(GetRequest(3, 7), &response).ok());
  EXPECT_EQ(CounterOf(response), 7u + 1);
}

TEST_P(ShardRouterTest, PipelinedMixedTrafficKeepsRequestOrder) {
  Topology topo;
  StartTopology(&topo, TempBase(), GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  // Pipeline a burst that alternates shards and includes a cross-shard
  // txn in the middle; the reorder buffer must deliver replies in
  // request order even though they complete on different shards (and the
  // cross-shard one on the coordinator pool).
  constexpr uint64_t kBurst = 20;
  for (uint64_t i = 0; i < kBurst; ++i) {
    if (i == 10) {
      ASSERT_TRUE(client.Send(RmwRequest(i, {8, 9})).ok());
    } else {
      ASSERT_TRUE(client.Send(GetRequest(i, i % 8)).ok());
    }
  }
  for (uint64_t i = 0; i < kBurst; ++i) {
    server::Response response;
    ASSERT_TRUE(client.Recv(&response, 10000).ok()) << "reply " << i;
    EXPECT_EQ(response.request_id, i);  // FIFO across shards.
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 1u);
}

TEST_P(ShardRouterTest, DownShardAnswersUnavailableAndRecovers) {
  Topology topo;
  StartTopology(&topo, TempBase(), GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  topo.servers[1]->Stop();

  // Requests for the dead shard answer kUnavailable (connection survives);
  // the live shard keeps serving. The router notices the dead shard
  // asynchronously, so poll until the error surfaces.
  server::Response response;
  bool saw_unavailable = false;
  StatusCode last = StatusCode::kOk;
  for (int attempt = 0; attempt < 100 && !saw_unavailable; ++attempt) {
    const Status got = client.Call(GetRequest(1, 1), &response, 10000);
    ASSERT_TRUE(got.ok()) << got.ToString();
    last = response.status;
    if (response.status == StatusCode::kUnavailable) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable) << "last status " << static_cast<int>(last);
  ASSERT_TRUE(client.Call(GetRequest(2, 0), &response, 10000).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);

  // A cross-shard txn with a dead participant must abort, not hang.
  ASSERT_TRUE(client.Call(RmwRequest(3, {0, 1}), &response, 30000).ok());
  EXPECT_NE(response.status, StatusCode::kOk);
  EXPECT_EQ(topo.router->stats().cross_shard_commits.load(), 0u);
}

TEST_P(ShardRouterTest, RouterRestartReplaysDecisionLog) {
  const std::string base = TempBase();
  Topology topo;
  StartTopology(&topo, base, GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  {
    server::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", topo.router->port()).ok());
    server::Response response;
    ASSERT_TRUE(client.Call(RmwRequest(1, {10, 11}), &response).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
  }
  topo.router->Stop();

  // A new router over the same decision log reconnects, finds no in-doubt
  // backlog (the decision was delivered), and keeps serving; the committed
  // increments are still visible.
  ShardRouterOptions ropts;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    ropts.shards.push_back(
        "127.0.0.1:" + std::to_string(topo.servers[i]->port()));
  }
  ropts.num_partitions = kPartitions;
  ropts.log_dir = base + "_rt";
  ropts.io_backend = GetParam();
  topo.router = std::make_unique<ShardRouter>(ropts);
  ASSERT_TRUE(topo.router->Start().ok());
  ASSERT_TRUE(topo.router->WaitShardsConnected(15000));

  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", topo.router->port()).ok());
  server::Response response;
  ASSERT_TRUE(client.Call(GetRequest(1, 10), &response).ok());
  EXPECT_EQ(CounterOf(response), 10u + 1);
  ASSERT_TRUE(client.Call(GetRequest(2, 11), &response).ok());
  EXPECT_EQ(CounterOf(response), 11u + 1);
  ASSERT_TRUE(client.Call(RmwRequest(3, {10, 11}), &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
}

// Lifecycle regression: the old AcceptLoop pushed a ClientSession and a
// thread handle per connection and never reaped either, so a
// connect/disconnect storm grew both without bound. The event-loop tier
// must free every closed session: after the churn, closed catches up with
// accepted (disconnect handling is asynchronous, so poll briefly).
TEST_P(ShardRouterTest, SessionChurnReapsClosedSessions) {
  Topology topo;
  StartTopology(&topo, TempBase(), GetParam());
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  constexpr int kCycles = 40;
  for (int i = 0; i < kCycles; ++i) {
    server::Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", topo.router->port()).ok());
    server::Response response;
    ASSERT_TRUE(client.Call(GetRequest(i, i % 8), &response).ok());
    EXPECT_EQ(response.status, StatusCode::kOk);
    client.Close();
  }

  const ShardRouterStats& stats = topo.router->stats();
  EXPECT_GE(stats.sessions_accepted.load(), static_cast<uint64_t>(kCycles));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stats.sessions_closed.load() < stats.sessions_accepted.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.sessions_closed.load(), stats.sessions_accepted.load())
      << "live sessions leaked after disconnects";
}

// Lifecycle regression: the old ShardLoop slept a blind 200 ms between
// reconnect attempts ignoring stop_, and WaitShardsConnected poll-slept.
// With every shard down (nothing listening on the target ports) Stop()
// must still return promptly — the loops park in Reap with a backoff
// deadline and a Wakeup unparks them.
TEST_P(ShardRouterTest, StopIsPromptWithDownShards) {
  ShardRouterOptions ropts;
  // Port 1 is privileged and never has a listener in these sandboxes:
  // connects fail fast with ECONNREFUSED and the links sit in backoff.
  ropts.shards = {"127.0.0.1:1", "127.0.0.1:1"};
  ropts.num_partitions = kPartitions;
  ropts.log_dir = TempBase() + "_rt";
  RemoveLogDir(ropts.log_dir);
  ropts.io_backend = GetParam();
  ShardRouter router(ropts);
  ASSERT_TRUE(router.Start().ok());
  EXPECT_FALSE(router.WaitShardsConnected(150));

  // Let a few reconnect cycles run so Stop lands mid-backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  router.Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 100) << "Stop() took " << elapsed.count()
                                  << " ms with down shards";
}

INSTANTIATE_TEST_SUITE_P(
    IoBackends, ShardRouterTest,
    ::testing::Values(io::IoBackendKind::kEpoll, io::IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<io::IoBackendKind>& info) {
      return std::string(io::IoBackendKindName(info.param));
    });

}  // namespace
}  // namespace shard
}  // namespace next700
