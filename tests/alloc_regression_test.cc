/// \file
/// Allocation regression guard for the zero-allocation hot path (PR "per-
/// worker arenas, inline access sets, batched timestamps"). Global operator
/// new is replaced with a counting shim, transactions run inline on the
/// test thread, and the steady-state YCSB read-only path must perform
/// exactly zero heap allocations under SILO and MVTO.
///
/// This file is its own test binary (see tests/CMakeLists.txt): replacing
/// operator new is binary-global, and the main suite should not run under
/// the shim.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "workload/ycsb.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace next700 {
namespace {

uint64_t SteadyStateAllocations(CcScheme scheme) {
  EngineOptions options;
  options.cc_scheme = scheme;
  options.max_threads = 1;
  Engine engine(options);
  YcsbOptions ycsb;
  ycsb.num_records = 1 << 12;
  ycsb.ops_per_txn = 16;
  ycsb.write_fraction = 0.0;  // Read-only: the acceptance path.
  YcsbWorkload workload(ycsb);
  workload.Load(&engine);

  Rng rng(7);
  // Warm-up grows the arena, the version pools, and the thread-local
  // workload scratch to their steady-state footprint.
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(workload.RunNextTxn(&engine, 0, &rng).ok());
  }
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(workload.RunNextTxn(&engine, 0, &rng).ok());
  }
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(AllocRegressionTest, SiloReadOnlyHotPathIsAllocationFree) {
  EXPECT_EQ(SteadyStateAllocations(CcScheme::kOcc), 0u);
}

TEST(AllocRegressionTest, MvtoReadOnlyHotPathIsAllocationFree) {
  EXPECT_EQ(SteadyStateAllocations(CcScheme::kMvto), 0u);
}

// Sanity-check the shim itself: a vector growth must be visible, otherwise
// the two tests above would pass vacuously.
TEST(AllocRegressionTest, ShimCountsAllocations) {
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::vector<uint64_t>* v = new std::vector<uint64_t>();
  v->resize(1024);
  delete v;
  EXPECT_GE(g_allocs.load(std::memory_order_relaxed) - before, 2u);
}

}  // namespace
}  // namespace next700
