#include "log/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "log/log_file.h"

namespace next700 {
namespace {

std::string TempDirFor(const char* tag) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/next700_manifest_" + tag;
  RemoveDirContents(dir);
  NEXT700_CHECK(EnsureLogDir(dir).ok());
  return dir;
}

CheckpointManifest Sample() {
  CheckpointManifest m;
  m.checkpoint_seq = 7;
  m.checkpoint_file = CheckpointFileName(7);
  m.start_lsn = 123456;
  m.log_base_index = 3;
  m.log_base_lsn = 98304;
  return m;
}

TEST(ManifestTest, MissingIsNotFound) {
  const std::string dir = TempDirFor("missing");
  CheckpointManifest m;
  EXPECT_TRUE(ReadManifest(dir, &m).IsNotFound());
}

TEST(ManifestTest, RoundTrip) {
  const std::string dir = TempDirFor("roundtrip");
  ASSERT_TRUE(WriteManifestAtomic(dir, Sample()).ok());
  CheckpointManifest read;
  ASSERT_TRUE(ReadManifest(dir, &read).ok());
  EXPECT_EQ(read.checkpoint_seq, 7u);
  EXPECT_EQ(read.checkpoint_file, CheckpointFileName(7));
  EXPECT_EQ(read.start_lsn, 123456u);
  EXPECT_EQ(read.log_base_index, 3u);
  EXPECT_EQ(read.log_base_lsn, 98304u);
}

TEST(ManifestTest, AtomicReplaceKeepsOldUntilRename) {
  const std::string dir = TempDirFor("replace");
  ASSERT_TRUE(WriteManifestAtomic(dir, Sample()).ok());
  CheckpointManifest next = Sample();
  next.checkpoint_seq = 8;
  next.checkpoint_file = CheckpointFileName(8);
  next.start_lsn = 222222;
  // At "before-rename" the new bytes sit in the tmp file only; a reader
  // (i.e. a crashed-and-restarted process) must still see the old record.
  bool checked = false;
  const Status s = WriteManifestAtomic(
      dir, next, [&](const char* point) {
        if (std::string(point) != "before-rename") return;
        CheckpointManifest mid;
        ASSERT_TRUE(ReadManifest(dir, &mid).ok());
        EXPECT_EQ(mid.checkpoint_seq, 7u);
        checked = true;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(checked);
  CheckpointManifest after;
  ASSERT_TRUE(ReadManifest(dir, &after).ok());
  EXPECT_EQ(after.checkpoint_seq, 8u);
  EXPECT_EQ(after.start_lsn, 222222u);
}

TEST(ManifestTest, BitFlipIsCorruption) {
  const std::string dir = TempDirFor("flip");
  ASSERT_TRUE(WriteManifestAtomic(dir, Sample()).ok());
  std::vector<uint8_t> data;
  ASSERT_TRUE(ReadFileFully(ManifestPath(dir), &data).ok());
  // Every byte matters — header, name, LSNs, checksum itself.
  for (const size_t offset :
       {size_t{0}, size_t{9}, data.size() / 2, data.size() - 1}) {
    std::vector<uint8_t> damaged = data;
    damaged[offset] ^= 0x40;
    {
      std::ofstream f(ManifestPath(dir), std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(damaged.data()),
              static_cast<std::streamsize>(damaged.size()));
    }
    CheckpointManifest m;
    EXPECT_EQ(ReadManifest(dir, &m).code(), StatusCode::kCorruption)
        << "flip at " << offset;
  }
}

TEST(ManifestTest, TruncationIsCorruption) {
  const std::string dir = TempDirFor("truncate");
  ASSERT_TRUE(WriteManifestAtomic(dir, Sample()).ok());
  std::vector<uint8_t> data;
  ASSERT_TRUE(ReadFileFully(ManifestPath(dir), &data).ok());
  for (const size_t cut :
       {size_t{0}, size_t{1}, size_t{15}, size_t{16}, data.size() / 2,
        data.size() - 1}) {
    {
      std::ofstream f(ManifestPath(dir), std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(cut));
    }
    CheckpointManifest m;
    EXPECT_EQ(ReadManifest(dir, &m).code(), StatusCode::kCorruption)
        << "cut at " << cut;
  }
}

TEST(ManifestTest, NoTmpFileLeftBehind) {
  const std::string dir = TempDirFor("tmp");
  ASSERT_TRUE(WriteManifestAtomic(dir, Sample()).ok());
  EXPECT_EQ(std::fopen((ManifestPath(dir) + ".tmp").c_str(), "rb"), nullptr);
}

}  // namespace
}  // namespace next700
