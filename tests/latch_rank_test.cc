#include "common/latch_rank.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/latch.h"

namespace next700 {
namespace {

class LatchRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!latch_rank::kEnabled) {
      GTEST_SKIP() << "built without NEXT700_DEBUG_LATCH_RANK";
    }
  }
};

using LatchRankDeathTest = LatchRankTest;

TEST_F(LatchRankTest, DescendingAcquisitionIsAllowed) {
  SpinLatch catalog(LatchRank::kCatalog);
  SpinLatch table(LatchRank::kTablePartition);
  SpinLatch shard(LatchRank::kLockShard);
  catalog.Lock();
  table.Lock();
  shard.Lock();
  EXPECT_EQ(latch_rank::HeldCount(), 3);
  shard.Unlock();
  table.Unlock();
  catalog.Unlock();
  EXPECT_EQ(latch_rank::HeldCount(), 0);
}

TEST_F(LatchRankTest, EqualRankCouplingIsAllowed) {
  // Lock coupling holds parent and child index-node latches together; the
  // sorted write sets of Silo/TicToc hold many row latches. Both are legal.
  RwSpinLatch parent(LatchRank::kIndexNode);
  RwSpinLatch child(LatchRank::kIndexNode);
  parent.LockExclusive();
  child.LockExclusive();
  parent.UnlockExclusive();  // Crabbing releases the ancestor first.
  child.UnlockExclusive();
  EXPECT_EQ(latch_rank::HeldCount(), 0);
}

TEST_F(LatchRankTest, UnrankedLatchesAreExempt) {
  SpinLatch logical_lock;  // e.g. an H-Store partition lock: kNone.
  SpinLatch table(LatchRank::kTablePartition);
  logical_lock.Lock();
  table.Lock();  // Would be an inversion if the first latch were ranked.
  EXPECT_EQ(latch_rank::HeldCount(), 1);
  table.Unlock();
  logical_lock.Unlock();
}

TEST_F(LatchRankTest, TryLockRecordsOnlyOnSuccess) {
  SpinLatch latch(LatchRank::kRow);
  ASSERT_TRUE(latch.TryLock());
  EXPECT_EQ(latch_rank::HeldCount(), 1);
  EXPECT_FALSE(latch.TryLock());
  EXPECT_EQ(latch_rank::HeldCount(), 1);
  latch.Unlock();
  EXPECT_EQ(latch_rank::HeldCount(), 0);
}

/// Worker for the stress tests. `seed_inversion` is the deliberate-bug test
/// hook: one iteration acquires row-then-table, inverting the hierarchy.
void WorkerLoop(SpinLatch* table, SpinLatch* row, int iters,
                bool seed_inversion) {
  for (int i = 0; i < iters; ++i) {
    if (seed_inversion && i == iters / 2) {
      row->Lock();
      table->Lock();  // Inversion: rank(table) > rank(row) while row held.
      table->Unlock();
      row->Unlock();
    } else {
      table->Lock();
      row->Lock();
      row->Unlock();
      table->Unlock();
    }
  }
}

TEST_F(LatchRankTest, MultiThreadedStressWithoutInversionPasses) {
  SpinLatch table(LatchRank::kTablePartition);
  SpinLatch row(LatchRank::kRow);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(WorkerLoop, &table, &row, 2000, false);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(latch_rank::HeldCount(), 0);
}

TEST_F(LatchRankDeathTest, SeededInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpinLatch table(LatchRank::kTablePartition);
        SpinLatch row(LatchRank::kRow);
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
          threads.emplace_back(WorkerLoop, &table, &row, 1000,
                               /*seed_inversion=*/t == 3);
        }
        for (auto& t : threads) t.join();
      },
      "latch-rank violation");
}

TEST_F(LatchRankDeathTest, SingleThreadInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpinLatch shard(LatchRank::kLockShard);
        SpinLatch catalog(LatchRank::kCatalog);
        shard.Lock();
        catalog.Lock();  // Catalog ranks above lock shards.
      },
      "latch-rank violation");
}

}  // namespace
}  // namespace next700
