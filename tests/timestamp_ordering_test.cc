#include "cc/timestamp_ordering.h"

#include <gtest/gtest.h>

#include "txn/engine.h"

namespace next700 {
namespace {

class TimestampOrderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cc_scheme = CcScheme::kTimestamp;
    options.max_threads = 3;
    engine_ = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("v");
    table_ = engine_->CreateTable("t", std::move(schema));
    index_ = engine_->CreateIndex("t_pk", table_, IndexKind::kHash, 16);
    uint8_t buf[8];
    table_->schema().SetUint64(buf, 0, 100);
    Row* row = engine_->LoadRow(table_, 0, 1, buf);
    ASSERT_TRUE(index_->Insert(1, row).ok());
  }

  Status BlindWrite(TxnContext* txn, uint64_t value) {
    uint8_t buf[8];
    table_->schema().SetUint64(buf, 0, value);
    return engine_->Update(txn, index_, 1, buf);
  }

  uint64_t Committed() {
    Row* row = index_->Lookup(1);
    return table_->schema().GetUint64(engine_->RawImage(row), 0);
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
};

TEST_F(TimestampOrderingTest, ReadBelowCommittedWriteAborts) {
  TxnContext* old_reader = engine_->Begin(0);  // ts = T1.
  TxnContext* young_writer = engine_->Begin(1);  // ts = T2 > T1.
  ASSERT_TRUE(BlindWrite(young_writer, 7).ok());
  ASSERT_TRUE(engine_->Commit(young_writer).ok());  // wts(row) = T2.
  uint8_t buf[8];
  // Reading a value written "in the future" contradicts T1's position.
  EXPECT_TRUE(engine_->Read(old_reader, index_, 1, buf).IsAborted());
  engine_->Abort(old_reader);
}

TEST_F(TimestampOrderingTest, ThomasWriteRuleSkipsStaleBlindWrite) {
  TxnContext* older = engine_->Begin(0);   // ts = T1.
  TxnContext* younger = engine_->Begin(1);  // ts = T2 > T1.
  ASSERT_TRUE(BlindWrite(younger, 22).ok());
  ASSERT_TRUE(engine_->Commit(younger).ok());  // wts = T2.
  // The older blind write commits fine but is silently skipped: the newer
  // value must survive (write order equals timestamp order).
  ASSERT_TRUE(BlindWrite(older, 11).ok());
  ASSERT_TRUE(engine_->Commit(older).ok());
  EXPECT_EQ(Committed(), 22u);
}

TEST_F(TimestampOrderingTest, WriteBelowReadTimestampAborts) {
  TxnContext* older = engine_->Begin(0);   // ts = T1.
  TxnContext* younger = engine_->Begin(1);  // ts = T2 > T1.
  uint8_t buf[8];
  ASSERT_TRUE(engine_->Read(younger, index_, 1, buf).ok());  // rts = T2.
  ASSERT_TRUE(engine_->Commit(younger).ok());
  // T1 < rts: this write would invalidate T2's read. The scheme may refuse
  // it eagerly at Write (fast-fail check) or at commit validation; either
  // way the transaction must abort and the value must survive.
  Status s = BlindWrite(older, 5);
  if (s.ok()) s = engine_->Commit(older);
  EXPECT_TRUE(s.IsAborted());
  engine_->Abort(older);
  EXPECT_EQ(Committed(), 100u);
}

TEST_F(TimestampOrderingTest, InOrderOperationsAllSucceed) {
  for (uint64_t i = 1; i <= 20; ++i) {
    TxnContext* txn = engine_->Begin(0);
    uint8_t buf[8];
    ASSERT_TRUE(engine_->Read(txn, index_, 1, buf).ok());
    ASSERT_TRUE(BlindWrite(txn, i).ok());
    ASSERT_TRUE(engine_->Commit(txn).ok());
  }
  EXPECT_EQ(Committed(), 20u);
}

}  // namespace
}  // namespace next700
