#include "workload/tatp.h"

#include <gtest/gtest.h>

#include "workload/driver.h"

namespace next700 {
namespace {

TEST(TatpStaticTest, KeyEncodingsAreDisjoint) {
  EXPECT_NE(TatpAccessInfoKey(1, 1), TatpAccessInfoKey(1, 2));
  EXPECT_NE(TatpAccessInfoKey(1, 4), TatpAccessInfoKey(2, 1));
  EXPECT_NE(TatpSpecialFacilityKey(5, 2), TatpSpecialFacilityKey(5, 3));
  EXPECT_NE(TatpCallForwardingKey(1, 1, 0), TatpCallForwardingKey(1, 1, 8));
  EXPECT_NE(TatpCallForwardingKey(1, 1, 16), TatpCallForwardingKey(1, 2, 0));
}

TEST(TatpLoadTest, CardinalitiesAreInSpecRanges) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kOcc;
  eng.max_threads = 1;
  Engine engine(eng);
  TatpOptions options;
  options.num_subscribers = 2000;
  TatpWorkload workload(options);
  workload.Load(&engine);
  EXPECT_EQ(workload.subscriber_->ApproxRowCount(), 2000u);
  // 1..4 access-info and special-facility rows per subscriber.
  const uint64_t ai = workload.access_info_->ApproxRowCount();
  EXPECT_GE(ai, 2000u);
  EXPECT_LE(ai, 8000u);
  const uint64_t sf = workload.special_facility_->ApproxRowCount();
  EXPECT_GE(sf, 2000u);
  EXPECT_LE(sf, 8000u);
  // 0..3 call-forwarding rows per facility.
  EXPECT_LE(workload.call_forwarding_->ApproxRowCount(), sf * 3);
  // Every subscriber row resolves through the index.
  EXPECT_NE(workload.subscriber_pk_->Lookup(1), nullptr);
  EXPECT_NE(workload.subscriber_pk_->Lookup(2000), nullptr);
  EXPECT_EQ(workload.subscriber_pk_->Lookup(2001), nullptr);
}

class TatpSchemeTest : public ::testing::TestWithParam<CcScheme> {};

TEST_P(TatpSchemeTest, MixRunsToCompletion) {
  EngineOptions eng;
  eng.cc_scheme = GetParam();
  eng.max_threads = 4;
  eng.num_partitions = 4;
  Engine engine(eng);
  TatpOptions options;
  options.num_subscribers = 2000;
  TatpWorkload workload(options);
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 250;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  // Every logical txn commits or ends in a deterministic business abort
  // (missing facility / existing CF row / no destination).
  EXPECT_EQ(stats.commits + stats.user_aborts, 1000u);
  EXPECT_GT(stats.commits, stats.user_aborts);  // Most should commit.
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TatpSchemeTest, ::testing::ValuesIn(AllCcSchemes()),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

TEST(TatpTest, InsertDeleteCallForwardingRoundTrip) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 1;
  Engine engine(eng);
  TatpOptions options;
  options.num_subscribers = 50;
  // Force the churn profiles only.
  options.pct_get_subscriber_data = 0;
  options.pct_get_new_destination = 0;
  options.pct_get_access_data = 0;
  options.pct_update_subscriber_data = 0;
  options.pct_update_location = 0;
  options.pct_insert_call_forwarding = 50;
  options.pct_delete_call_forwarding = 50;
  TatpWorkload workload(options);
  workload.Load(&engine);
  const uint64_t before = workload.call_forwarding_->ApproxRowCount();
  DriverOptions driver;
  driver.num_threads = 1;
  driver.txns_per_thread = 400;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_EQ(stats.commits + stats.user_aborts, 400u);
  EXPECT_GT(stats.inserts, 0u);
  // Index size tracks the live rows (inserts minus deletes applied).
  const uint64_t live = workload.call_forwarding_pk_->size();
  EXPECT_GT(live, 0u);
  (void)before;
}

}  // namespace
}  // namespace next700
