#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cc/lock_manager.h"
#include "storage/table.h"
#include "txn/engine.h"
#include "workload/workload.h"

namespace next700 {
namespace {

class WoundWaitTest : public ::testing::Test {
 protected:
  WoundWaitTest() : lm_(DeadlockPolicy::kWoundWait) {
    Schema s;
    s.AddUint64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
    row_a_ = table_->AllocateRow(0);
    row_b_ = table_->AllocateRow(0);
  }

  std::unique_ptr<TxnContext> MakeTxn(int thread_id, uint64_t id,
                                      Timestamp ts) {
    auto txn = std::make_unique<TxnContext>(thread_id);
    txn->set_txn_id(id);
    txn->set_ts(ts);
    return txn;
  }

  LockManager lm_;
  std::unique_ptr<Table> table_;
  Row* row_a_;
  Row* row_b_;
};

TEST_F(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  auto older = MakeTxn(0, 1, /*ts=*/10);
  auto younger = MakeTxn(1, 2, /*ts=*/20);
  ASSERT_TRUE(lm_.Acquire(younger.get(), row_a_, LockMode::kExclusive).ok());
  EXPECT_FALSE(younger->wounded());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm_.Acquire(older.get(), row_a_, LockMode::kExclusive).ok());
    acquired.store(true);
  });
  // The older requester wounds the younger holder and waits.
  while (!younger->wounded()) CpuRelax();
  EXPECT_FALSE(acquired.load());
  // Victim cleans up (as its next CC operation would).
  lm_.ReleaseAll(younger.get());
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm_.ReleaseAll(older.get());
}

TEST_F(WoundWaitTest, YoungerRequesterWaitsWithoutWounding) {
  auto older = MakeTxn(0, 1, /*ts=*/10);
  auto younger = MakeTxn(1, 2, /*ts=*/20);
  ASSERT_TRUE(lm_.Acquire(older.get(), row_a_, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(
        lm_.Acquire(younger.get(), row_a_, LockMode::kExclusive).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(older->wounded());  // Young never wounds.
  EXPECT_FALSE(acquired.load());
  lm_.ReleaseAll(older.get());
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm_.ReleaseAll(younger.get());
}

TEST_F(WoundWaitTest, WoundedWaiterAbortsItsRequest) {
  auto holder = MakeTxn(0, 1, /*ts=*/5);  // Oldest: holds row_a.
  auto victim = MakeTxn(1, 2, /*ts=*/20);
  auto wounder = MakeTxn(2, 3, /*ts=*/10);
  ASSERT_TRUE(lm_.Acquire(holder.get(), row_a_, LockMode::kExclusive).ok());

  // Victim blocks waiting for row_a.
  std::atomic<int> victim_result{-1};
  std::thread victim_thread([&] {
    const Status s = lm_.Acquire(victim.get(), row_a_, LockMode::kExclusive);
    victim_result.store(s.ok() ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A middle-aged transaction arrives: wounds the younger queued victim.
  std::atomic<bool> wounder_done{false};
  std::thread wounder_thread([&] {
    EXPECT_TRUE(
        lm_.Acquire(wounder.get(), row_a_, LockMode::kExclusive).ok());
    wounder_done.store(true);
  });
  victim_thread.join();
  EXPECT_EQ(victim_result.load(), 0);  // Aborted while waiting.
  lm_.ReleaseAll(victim.get());
  lm_.ReleaseAll(holder.get());  // Oldest finishes; wounder proceeds.
  wounder_thread.join();
  EXPECT_TRUE(wounder_done.load());
  lm_.ReleaseAll(wounder.get());
}

/// End-to-end: a hot read-modify-write mix under WOUND_WAIT keeps the
/// no-lost-update guarantee (the per-scheme suite also covers this; this
/// test pins the wound path specifically with maximum contention).
TEST(WoundWaitEngineTest, HotCounterSurvivesWoundStorm) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kWoundWait;
  options.max_threads = 4;
  Engine engine(options);
  Schema schema;
  schema.AddUint64("v");
  Table* table = engine.CreateTable("t", std::move(schema));
  Index* index = engine.CreateIndex("t_pk", table, IndexKind::kHash, 4);
  uint8_t zero[8] = {};
  Row* row = engine.LoadRow(table, 0, 0, zero);
  ASSERT_TRUE(index->Insert(0, row).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const Status s = RunWithRetry(&rng, [&] {
          TxnContext* txn = engine.Begin(t);
          uint8_t buf[8];
          Status st = engine.ReadForUpdate(txn, index, 0, buf);
          if (st.ok()) {
            table->schema().SetUint64(buf, 0,
                                      table->schema().GetUint64(buf, 0) + 1);
            st = engine.Update(txn, index, 0, buf);
          }
          if (st.ok()) st = engine.Commit(txn);
          if (!st.ok()) engine.Abort(txn);
          return st;
        });
        ASSERT_TRUE(s.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table->schema().GetUint64(engine.RawImage(row), 0),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace next700
