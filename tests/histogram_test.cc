#include "common/histogram.h"

#include <gtest/gtest.h>

namespace next700 {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  // Percentile answers a bucket upper bound near the value.
  EXPECT_GE(h.Percentile(0.5), 1000u);
  EXPECT_LE(h.Percentile(0.5), 1100u);
}

TEST(HistogramTest, PercentilesOrderedAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const uint64_t p50 = h.Percentile(0.50);
  const uint64_t p95 = h.Percentile(0.95);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Bounded relative error (~6% plus one bucket).
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.10);
  EXPECT_NEAR(static_cast<double>(p95), 9500.0, 9500.0 * 0.10);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, MergeCombinesPopulations) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_LE(a.Percentile(0.25), 16u);
  EXPECT_GE(a.Percentile(0.75), 900000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(~uint64_t{0} >> 1);
  h.Record(uint64_t{1} << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Percentile(1.0), uint64_t{1} << 62);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  for (int i = 0; i < 42; ++i) h.Record(100);
  EXPECT_NE(h.Summary().find("count=42"), std::string::npos);
}

}  // namespace
}  // namespace next700
