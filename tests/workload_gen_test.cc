#include <gtest/gtest.h>

#include "common/stats.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace next700 {
namespace {

// --- Stats aggregation -------------------------------------------------------

TEST(StatsTest, RunStatsAddsThreadStats) {
  ThreadStats a;
  a.commits = 10;
  a.aborts = 2;
  a.reads = 100;
  a.commit_latency_ns.Record(500);
  ThreadStats b;
  b.commits = 5;
  b.aborts = 3;
  b.writes = 7;
  b.commit_latency_ns.Record(1500);
  RunStats run;
  run.Add(a);
  run.Add(b);
  run.elapsed_seconds = 3.0;
  EXPECT_EQ(run.commits, 15u);
  EXPECT_EQ(run.aborts, 5u);
  EXPECT_EQ(run.reads, 100u);
  EXPECT_EQ(run.writes, 7u);
  EXPECT_DOUBLE_EQ(run.Throughput(), 5.0);
  EXPECT_DOUBLE_EQ(run.AbortRatio(), 0.25);
  EXPECT_EQ(run.commit_latency_ns.count(), 2u);
  EXPECT_NE(run.ToString().find("commits=15"), std::string::npos);
}

TEST(StatsTest, EmptyRunStatsAreSane) {
  RunStats run;
  EXPECT_DOUBLE_EQ(run.Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(run.AbortRatio(), 0.0);
}

// --- TPC-C input generation ---------------------------------------------------

class TpccGenTest : public ::testing::Test {
 protected:
  /// Exercises the public generator surface through RunNextTxn on a tiny
  /// loaded instance; the properties below are checked via loader bounds.
  static TpccOptions Opt(uint32_t warehouses) {
    TpccOptions options;
    options.num_warehouses = warehouses;
    options.districts_per_warehouse = 10;
    options.customers_per_district = 30;
    options.num_items = 100;
    options.initial_orders_per_district = 30;
    return options;
  }
};

TEST_F(TpccGenTest, LastNameTableCoversAllSyllableCombos) {
  // All 1000 name numbers produce nonempty, composable names, and equal
  // numbers produce equal names (the index key derivation depends on it).
  for (uint32_t n = 0; n < 1000; ++n) {
    const std::string name = TpccWorkload::LastName(n);
    EXPECT_GE(name.size(), 9u);
    EXPECT_LE(name.size(), 15u);
    EXPECT_EQ(name, TpccWorkload::LastName(n));
  }
  EXPECT_NE(TpccWorkload::LastName(0), TpccWorkload::LastName(1));
}

TEST_F(TpccGenTest, NuRandRespectsCustomerScaleDown) {
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t c = NuRand(&rng, 1023, 1, 30, 91);
    ASSERT_GE(c, 1u);
    ASSERT_LE(c, 30u);
  }
}

// --- YCSB partitioned generation ----------------------------------------------

TEST(YcsbGenTest, PartitionedKeysLandInDeclaredPartitions) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kHstore;
  eng.max_threads = 2;
  eng.num_partitions = 8;
  Engine engine(eng);
  YcsbOptions options;
  options.num_records = 4096;
  options.ops_per_txn = 8;
  options.partitioned = true;
  options.multi_partition_fraction = 0.5;
  options.partitions_per_mp_txn = 3;
  YcsbWorkload workload(options);
  workload.Load(&engine);
  // The engine-level check: HSTORE DCHECKs that every accessed row belongs
  // to a declared partition. Running a batch therefore validates the
  // generator; any stray key would abort the process in debug builds and
  // corrupt partition-isolation in release (caught by 0 conflicts).
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(workload.RunNextTxn(&engine, 0, &rng).ok());
  }
  const RunStats stats = engine.AggregateStats();
  EXPECT_EQ(stats.commits, 200u);
  EXPECT_EQ(stats.aborts, 0u);
}

TEST(YcsbGenTest, PartitionOfMatchesEnginePartitioning) {
  EngineOptions eng;
  eng.num_partitions = 4;
  Engine engine(eng);
  YcsbOptions options;
  options.num_records = 64;
  YcsbWorkload workload(options);
  workload.Load(&engine);
  workload.table()->ForEachRow([&](Row* row) {
    EXPECT_EQ(row->partition, workload.PartitionOf(row->primary_key));
  });
}

}  // namespace
}  // namespace next700
