#include "cc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/table.h"

namespace next700 {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() {
    Schema s;
    s.AddUint64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
    row_a_ = table_->AllocateRow(0);
    row_b_ = table_->AllocateRow(0);
  }

  std::unique_ptr<TxnContext> MakeTxn(int thread_id, uint64_t id,
                                      Timestamp ts) {
    auto txn = std::make_unique<TxnContext>(thread_id);
    txn->set_txn_id(id);
    txn->set_ts(ts);
    return txn;
  }

  std::unique_ptr<Table> table_;
  Row* row_a_;
  Row* row_b_;
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  LockManager lm(DeadlockPolicy::kNoWait);
  auto t1 = MakeTxn(0, 1, 1);
  auto t2 = MakeTxn(1, 2, 2);
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kShared).ok());
  lm.ReleaseAll(t1.get());
  lm.ReleaseAll(t2.get());
}

TEST_F(LockManagerTest, ExclusiveConflictAbortsUnderNoWait) {
  LockManager lm(DeadlockPolicy::kNoWait);
  auto t1 = MakeTxn(0, 1, 1);
  auto t2 = MakeTxn(1, 2, 2);
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kShared).IsAborted());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kExclusive).IsAborted());
  lm.ReleaseAll(t1.get());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kExclusive).ok());
  lm.ReleaseAll(t2.get());
}

TEST_F(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm(DeadlockPolicy::kNoWait);
  auto t1 = MakeTxn(0, 1, 1);
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kExclusive).ok());  // Upgrade.
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_EQ(t1->held_locks().size(), 1u);
  lm.ReleaseAll(t1.get());
}

TEST_F(LockManagerTest, UpgradeConflictAbortsUnderNoWait) {
  LockManager lm(DeadlockPolicy::kNoWait);
  auto t1 = MakeTxn(0, 1, 1);
  auto t2 = MakeTxn(1, 2, 2);
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kExclusive).IsAborted());
  lm.ReleaseAll(t1.get());
  lm.ReleaseAll(t2.get());
}

TEST_F(LockManagerTest, WaitDieYoungerRequesterDies) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  auto older = MakeTxn(0, 1, /*ts=*/10);
  auto younger = MakeTxn(1, 2, /*ts=*/20);
  EXPECT_TRUE(lm.Acquire(older.get(), row_a_, LockMode::kExclusive).ok());
  // Younger requester conflicts with an older holder: dies immediately.
  EXPECT_TRUE(lm.Acquire(younger.get(), row_a_, LockMode::kExclusive).IsAborted());
  lm.ReleaseAll(older.get());
}

TEST_F(LockManagerTest, WaitDieOlderRequesterWaits) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  auto older = MakeTxn(0, 1, /*ts=*/10);
  auto younger = MakeTxn(1, 2, /*ts=*/20);
  EXPECT_TRUE(lm.Acquire(younger.get(), row_a_, LockMode::kExclusive).ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(older.get(), row_a_, LockMode::kExclusive).ok());
    acquired.store(true);
  });
  // Give the waiter time to block; it must not finish while younger holds.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(younger.get());
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(older.get());
}

TEST_F(LockManagerTest, DlDetectResolvesTwoTxnDeadlock) {
  LockManager lm(DeadlockPolicy::kDlDetect);
  auto t1 = MakeTxn(0, 1, 1);
  auto t2 = MakeTxn(1, 2, 2);
  ASSERT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(t2.get(), row_b_, LockMode::kExclusive).ok());

  std::atomic<int> aborted{0};
  std::atomic<int> succeeded{0};
  auto cross = [&](TxnContext* txn, Row* row) {
    const Status s = lm.Acquire(txn, row, LockMode::kExclusive);
    if (s.IsAborted()) {
      ++aborted;
      lm.ReleaseAll(txn);  // Break the cycle.
    } else {
      ++succeeded;
    }
  };
  std::thread a(cross, t1.get(), row_b_);
  std::thread b(cross, t2.get(), row_a_);
  a.join();
  b.join();
  // Exactly one side of the cycle must have been killed.
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_EQ(succeeded.load(), 1);
  lm.ReleaseAll(t1.get());
  lm.ReleaseAll(t2.get());
}

TEST_F(LockManagerTest, ReleaseWakesSharedGroup) {
  LockManager lm(DeadlockPolicy::kDlDetect);
  auto writer = MakeTxn(0, 1, 1);
  ASSERT_TRUE(lm.Acquire(writer.get(), row_a_, LockMode::kExclusive).ok());

  constexpr int kReaders = 3;
  std::atomic<int> read_ok{0};
  std::vector<std::thread> readers;
  std::vector<std::unique_ptr<TxnContext>> txns;
  for (int i = 0; i < kReaders; ++i) {
    txns.push_back(std::make_unique<TxnContext>(i + 1));
    txns.back()->set_txn_id(static_cast<uint64_t>(i) + 10);
    txns.back()->set_ts(static_cast<Timestamp>(i) + 10);
  }
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      if (lm.Acquire(txns[i].get(), row_a_, LockMode::kShared).ok()) {
        ++read_ok;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lm.ReleaseAll(writer.get());
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_ok.load(), kReaders);
  for (auto& txn : txns) lm.ReleaseAll(txn.get());
}

TEST_F(LockManagerTest, HeldLocksListMatchesAcquisitions) {
  LockManager lm(DeadlockPolicy::kNoWait);
  auto t1 = MakeTxn(0, 1, 1);
  EXPECT_TRUE(lm.Acquire(t1.get(), row_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(t1.get(), row_b_, LockMode::kExclusive).ok());
  EXPECT_EQ(t1->held_locks().size(), 2u);
  lm.ReleaseAll(t1.get());
  EXPECT_TRUE(t1->held_locks().empty());
  // Everything is free again.
  auto t2 = MakeTxn(1, 2, 2);
  EXPECT_TRUE(lm.Acquire(t2.get(), row_a_, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(t2.get(), row_b_, LockMode::kExclusive).ok());
  lm.ReleaseAll(t2.get());
}

}  // namespace
}  // namespace next700
