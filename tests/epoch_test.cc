#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace next700 {
namespace {

std::atomic<int> g_freed{0};

void CountingDeleter(void* p) {
  ++g_freed;
  delete static_cast<int*>(p);
}

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override { g_freed = 0; }
};

TEST_F(EpochTest, RetiredObjectSurvivesWhilePinned) {
  EpochManager em(2);
  em.Enter(1);  // Thread 1 pins the current epoch.
  em.Enter(0);
  em.Retire(0, new int(1), CountingDeleter);
  em.Exit(0);
  em.Maintain(0);
  // Thread 1 is pinned at an epoch <= the retire epoch: nothing freed.
  EXPECT_EQ(g_freed.load(), 0);
  em.Exit(1);
  em.Maintain(0);
  EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(EpochTest, ReclaimAllFreesEverything) {
  {
    EpochManager em(1);
    em.Enter(0);
    for (int i = 0; i < 10; ++i) em.Retire(0, new int(i), CountingDeleter);
    em.Exit(0);
  }  // Destructor reclaims.
  EXPECT_EQ(g_freed.load(), 10);
}

TEST_F(EpochTest, MaintainWithNoPinsFrees) {
  EpochManager em(4);
  em.Enter(0);
  em.Retire(0, new int(7), CountingDeleter);
  em.Exit(0);
  em.Maintain(0);
  EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(EpochTest, RetiredCountTracksBacklog) {
  EpochManager em(2);
  em.Enter(0);
  em.Retire(0, new int(0), CountingDeleter);
  em.Retire(0, new int(1), CountingDeleter);
  EXPECT_EQ(em.RetiredCount(), 2u);
  em.Exit(0);
  em.Maintain(0);
  EXPECT_EQ(em.RetiredCount(), 0u);
}

TEST_F(EpochTest, ConcurrentEnterExitSmoke) {
  constexpr int kThreads = 4;
  EpochManager em(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&em, t] {
      for (int i = 0; i < 2000; ++i) {
        EpochGuard guard(&em, t);
        em.Retire(t, new int(i), CountingDeleter);
        if (i % 64 == 0) em.Maintain(t);
      }
      em.Maintain(t);
    });
  }
  for (auto& t : threads) t.join();
  em.ReclaimAll();
  EXPECT_EQ(g_freed.load(), kThreads * 2000);
}

}  // namespace
}  // namespace next700
