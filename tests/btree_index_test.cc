#include "index/btree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"

namespace next700 {
namespace {

class BTreeIndexTest : public ::testing::Test {
 protected:
  BTreeIndexTest() {
    Schema s;
    s.AddUint64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
    index_ = std::make_unique<BTreeIndex>(table_.get());
  }

  Row* NewRow(uint64_t key) {
    Row* row = table_->AllocateRow(0);
    row->primary_key = key;
    return row;
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<BTreeIndex> index_;
};

TEST_F(BTreeIndexTest, EmptyTreeBehaves) {
  EXPECT_EQ(index_->Lookup(1), nullptr);
  std::vector<Row*> rows;
  EXPECT_TRUE(index_->Scan(0, 100, 0, &rows).ok());
  EXPECT_TRUE(rows.empty());
  EXPECT_FALSE(index_->Remove(1, nullptr));
  EXPECT_EQ(index_->Height(), 1);
}

TEST_F(BTreeIndexTest, InsertLookupAcrossSplits) {
  constexpr uint64_t kKeys = 10000;
  std::vector<Row*> rows(kKeys);
  // Insert in a scrambled order to exercise non-append splits.
  for (uint64_t i = 0; i < kKeys; ++i) {
    const uint64_t key = (i * 2654435761u) % kKeys;
    if (rows[key] != nullptr) continue;
    rows[key] = NewRow(key);
    ASSERT_TRUE(index_->Insert(key, rows[key]).ok());
  }
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (rows[key] == nullptr) {
      rows[key] = NewRow(key);
      ASSERT_TRUE(index_->Insert(key, rows[key]).ok());
    }
  }
  EXPECT_EQ(index_->size(), kKeys);
  EXPECT_GT(index_->Height(), 2);
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_EQ(index_->Lookup(key), rows[key]) << key;
  }
}

TEST_F(BTreeIndexTest, ScanReturnsSortedRange) {
  for (uint64_t key = 0; key < 1000; ++key) {
    ASSERT_TRUE(index_->Insert(key * 2, NewRow(key * 2)).ok());  // Evens.
  }
  std::vector<Row*> rows;
  ASSERT_TRUE(index_->Scan(100, 200, 0, &rows).ok());
  ASSERT_EQ(rows.size(), 51u);  // 100, 102, ..., 200.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i]->primary_key, 100 + 2 * i);
  }
}

TEST_F(BTreeIndexTest, ScanHonorsLimit) {
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(index_->Insert(key, NewRow(key)).ok());
  }
  std::vector<Row*> rows;
  ASSERT_TRUE(index_->Scan(10, 90, 5, &rows).ok());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front()->primary_key, 10u);
  EXPECT_EQ(rows.back()->primary_key, 14u);
}

TEST_F(BTreeIndexTest, ScanReverseReturnsDescendingTail) {
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(index_->Insert(key, NewRow(key)).ok());
  }
  std::vector<Row*> rows;
  ASSERT_TRUE(index_->ScanReverse(50, 10, 3, &rows).ok());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0]->primary_key, 50u);
  EXPECT_EQ(rows[1]->primary_key, 49u);
  EXPECT_EQ(rows[2]->primary_key, 48u);
}

TEST_F(BTreeIndexTest, DuplicateKeysAllSurface) {
  std::vector<Row*> dups;
  for (int i = 0; i < 100; ++i) {
    dups.push_back(NewRow(7));
    ASSERT_TRUE(index_->Insert(7, dups.back()).ok());
  }
  ASSERT_TRUE(index_->Insert(6, NewRow(6)).ok());
  ASSERT_TRUE(index_->Insert(8, NewRow(8)).ok());
  std::vector<Row*> rows;
  index_->LookupAll(7, &rows);
  EXPECT_EQ(rows.size(), 100u);
  std::sort(rows.begin(), rows.end());
  std::sort(dups.begin(), dups.end());
  EXPECT_EQ(rows, dups);
}

TEST_F(BTreeIndexTest, InsertUniqueDetectsDuplicatesAcrossLeaves) {
  // Fill so that equal keys land near leaf boundaries.
  for (uint64_t key = 0; key < 5000; ++key) {
    ASSERT_TRUE(index_->InsertUnique(key, NewRow(key)).ok());
  }
  for (uint64_t key = 0; key < 5000; key += 97) {
    EXPECT_TRUE(index_->InsertUnique(key, NewRow(key)).IsAlreadyExists());
  }
  EXPECT_EQ(index_->size(), 5000u);
}

TEST_F(BTreeIndexTest, RemoveMaintainsOrder) {
  std::vector<Row*> rows;
  for (uint64_t key = 0; key < 2000; ++key) {
    rows.push_back(NewRow(key));
    ASSERT_TRUE(index_->Insert(key, rows.back()).ok());
  }
  for (uint64_t key = 0; key < 2000; key += 2) {
    EXPECT_TRUE(index_->Remove(key, rows[key]));
  }
  EXPECT_EQ(index_->size(), 1000u);
  std::vector<Row*> remaining;
  ASSERT_TRUE(index_->Scan(0, 1999, 0, &remaining).ok());
  ASSERT_EQ(remaining.size(), 1000u);
  for (size_t i = 0; i < remaining.size(); ++i) {
    EXPECT_EQ(remaining[i]->primary_key, 2 * i + 1);
  }
}

TEST_F(BTreeIndexTest, RemoveWrongRowFails) {
  Row* a = NewRow(5);
  ASSERT_TRUE(index_->Insert(5, a).ok());
  EXPECT_FALSE(index_->Remove(5, NewRow(5)));
  EXPECT_TRUE(index_->Remove(5, a));
}

TEST_F(BTreeIndexTest, ConcurrentInsertersDisjointRanges) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(index_->Insert(key, NewRow(key)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(index_->size(), kThreads * kPerThread);
  std::vector<Row*> all;
  ASSERT_TRUE(index_->Scan(0, kThreads * kPerThread, 0, &all).ok());
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i]->primary_key, i);
  }
}

TEST_F(BTreeIndexTest, ConcurrentMixedReadersAndWriters) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_key{0};
  std::thread writer([&] {
    for (uint64_t key = 0; key < 30000; ++key) {
      ASSERT_TRUE(index_->Insert(key, NewRow(key)).ok());
      // Publish only after the insert completed so readers can rely on
      // every key below the horizon being present.
      next_key.store(key + 1, std::memory_order_release);
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t horizon = next_key.load(std::memory_order_acquire);
        if (horizon == 0) continue;
        const uint64_t key = rng.NextUint64(horizon);
        Row* row = index_->Lookup(key);
        // Keys below the horizon were fully inserted before the horizon
        // advanced past them.
        ASSERT_NE(row, nullptr);
        ASSERT_EQ(row->primary_key, key);
        std::vector<Row*> rows;
        ASSERT_TRUE(index_->Scan(key, key + 64, 0, &rows).ok());
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace next700
