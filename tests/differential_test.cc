#include <gtest/gtest.h>

#include <map>

#include "log/log_record.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace next700 {
namespace {

/// Differential testing across the engine family: a single-threaded run of
/// the same seeded workload must produce byte-identical final state on
/// every scheme (with one worker there is no concurrency, so *any* correct
/// scheme degenerates to the same serial execution). A divergent scheme
/// has a bug in its execute/commit plumbing, independent of concurrency.
class DifferentialTest : public ::testing::Test {
 protected:
  /// Runs the canonical workload and returns a fingerprint of the table:
  /// pk -> hash of payload.
  static std::map<uint64_t, uint64_t> RunAndFingerprint(CcScheme scheme) {
    EngineOptions eng;
    eng.cc_scheme = scheme;
    eng.max_threads = 1;
    Engine engine(eng);
    YcsbOptions ycsb;
    ycsb.num_records = 2048;
    ycsb.ops_per_txn = 8;
    ycsb.write_fraction = 0.5;
    ycsb.theta = 0.8;
    ycsb.read_modify_write = true;  // Deterministic data (counter bumps).
    YcsbWorkload workload(ycsb);
    workload.Load(&engine);
    DriverOptions driver;
    driver.num_threads = 1;
    driver.txns_per_thread = 500;
    driver.seed = 777;
    const RunStats stats = Driver::Run(&engine, &workload, driver);
    NEXT700_CHECK(stats.commits == 500);
    NEXT700_CHECK(stats.aborts == 0);  // Single-threaded: no conflicts.

    std::map<uint64_t, uint64_t> fingerprint;
    const uint32_t row_size = workload.table()->schema().row_size();
    workload.table()->ForEachRow([&](Row* row) {
      fingerprint[row->primary_key] =
          FnvHashBytes(engine.RawImage(row), row_size);
    });
    return fingerprint;
  }
};

TEST_F(DifferentialTest, AllSchemesAgreeOnSerialExecution) {
  const auto reference = RunAndFingerprint(CcScheme::kNoWait);
  ASSERT_EQ(reference.size(), 2048u);
  for (CcScheme scheme : AllCcSchemes()) {
    if (scheme == CcScheme::kNoWait) continue;
    const auto fingerprint = RunAndFingerprint(scheme);
    EXPECT_EQ(fingerprint, reference)
        << "scheme " << CcSchemeName(scheme)
        << " diverged from NO_WAIT on an identical serial history";
  }
}

TEST_F(DifferentialTest, RunsAreReproducibleAcrossProcessRestarts) {
  // Same scheme, same seed, twice: identical state. Guards the workload
  /// generators against hidden nondeterminism (clocks, addresses).
  const auto a = RunAndFingerprint(CcScheme::kOcc);
  const auto b = RunAndFingerprint(CcScheme::kOcc);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace next700
