#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "index/btree_index.h"
#include "storage/table.h"

namespace next700 {
namespace {

/// Randomized differential test: the B+-tree against std::multimap as an
/// oracle, over a mixed insert / remove / lookup / scan operation stream.
/// Parameterized on the seed so several independent streams run.
class BTreeOracleTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  BTreeOracleTest() {
    Schema s;
    s.AddUint64("v");
    table_ = std::make_unique<Table>(0, "t", std::move(s), 1);
    index_ = std::make_unique<BTreeIndex>(table_.get());
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<BTreeIndex> index_;
};

TEST_P(BTreeOracleTest, MatchesMultimapUnderRandomOps) {
  Rng rng(GetParam());
  std::multimap<uint64_t, Row*> oracle;
  constexpr uint64_t kKeySpace = 512;  // Small: plenty of duplicates.
  constexpr int kOps = 20000;

  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.NextUint64(kKeySpace);
    switch (rng.NextUint64(5)) {
      case 0:
      case 1: {  // Insert (40%).
        Row* row = table_->AllocateRow(0);
        row->primary_key = key;
        ASSERT_TRUE(index_->Insert(key, row).ok());
        oracle.emplace(key, row);
        break;
      }
      case 2: {  // Remove one instance if present (20%).
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_FALSE(index_->Remove(key, nullptr));
        } else {
          ASSERT_TRUE(index_->Remove(key, it->second));
          oracle.erase(it);
        }
        break;
      }
      case 3: {  // LookupAll (20%).
        std::vector<Row*> got;
        index_->LookupAll(key, &got);
        auto [lo, hi] = oracle.equal_range(key);
        std::vector<Row*> expected;
        for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
        std::sort(got.begin(), got.end());
        std::sort(expected.begin(), expected.end());
        ASSERT_EQ(got, expected) << "key " << key;
        break;
      }
      default: {  // Range scan (20%).
        const uint64_t lo = key;
        const uint64_t hi = std::min(kKeySpace, lo + rng.NextUint64(64));
        std::vector<Row*> got;
        ASSERT_TRUE(index_->Scan(lo, hi, 0, &got).ok());
        // Oracle scan: keys ascending; within a key, order-insensitive.
        auto it = oracle.lower_bound(lo);
        std::vector<Row*> expected;
        while (it != oracle.end() && it->first <= hi) {
          expected.push_back(it->second);
          ++it;
        }
        ASSERT_EQ(got.size(), expected.size());
        // Verify ascending key order of the scan result.
        for (size_t j = 1; j < got.size(); ++j) {
          ASSERT_LE(got[j - 1]->primary_key, got[j]->primary_key);
        }
        std::sort(got.begin(), got.end());
        std::sort(expected.begin(), expected.end());
        ASSERT_EQ(got, expected);
        break;
      }
    }
    if (i % 4096 == 0) {
      ASSERT_EQ(index_->size(), oracle.size());
    }
  }
  ASSERT_EQ(index_->size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracleTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace next700
