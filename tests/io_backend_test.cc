/// Unit tests for the async I/O spine (src/io): one parameterized suite run
/// against both backends, so the epoll fallback and the raw io_uring ring
/// are held to the same completion-queue contract — round trips, EOF,
/// partial-writev resume, short-submission retry under a tiny ring, accept
/// persistence, write+fsync linking, cross-thread wakeup, and cancel
/// semantics. The uring leg skips (loudly) where the kernel or sandbox
/// denies io_uring_setup.

#include "io/io_backend.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace next700 {
namespace io {
namespace {

/// Nonblocking AF_UNIX stream pair — the shape of fd both backends are
/// built for (the epoll fallback attempts ops at submit and parks on
/// readiness, which requires O_NONBLOCK).
void MakeSocketPair(int fds[2]) {
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds));
}

/// Reaps until `pred` says the test has seen everything it needs, failing
/// on timeout. Collected events accumulate into `out`.
template <typename Pred>
bool ReapUntil(IoBackend* io, std::vector<IoEvent>* out, Pred pred,
               int rounds = 2000) {
  IoEvent events[32];
  for (int i = 0; i < rounds; ++i) {
    if (pred(*out)) return true;
    const int n = io->Reap(events, 32, /*timeout_ms=*/10);
    EXPECT_GE(n, 0) << "backend broke: " << n;
    if (n < 0) return false;
    for (int j = 0; j < n; ++j) out->push_back(events[j]);
  }
  return pred(*out);
}

bool HasOp(const std::vector<IoEvent>& events, IoEvent::Op op,
           uint64_t user_data) {
  for (const IoEvent& e : events) {
    if (e.op == op && e.user_data == user_data) return true;
  }
  return false;
}

const IoEvent* FindOp(const std::vector<IoEvent>& events, IoEvent::Op op,
                      uint64_t user_data) {
  for (const IoEvent& e : events) {
    if (e.op == op && e.user_data == user_data) return &e;
  }
  return nullptr;
}

class IoBackendTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kUring && !UringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/sandbox";
    }
  }

  std::unique_ptr<IoBackend> Make(unsigned queue_depth = 64) {
    std::unique_ptr<IoBackend> io;
    const Status status = CreateIoBackend(GetParam(), &io, queue_depth);
    EXPECT_TRUE(status.ok()) << status.message();
    if (io != nullptr) {
      EXPECT_EQ(io->kind(), GetParam());
    }
    return io;
  }
};

TEST_P(IoBackendTest, ReadWriteRoundTrip) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);
  int fds[2];
  MakeSocketPair(fds);

  uint8_t read_buf[64] = {0};
  const char msg[] = "spine";
  ASSERT_TRUE(io->SubmitRead(fds[0], read_buf, sizeof(read_buf), 1).ok());
  ASSERT_TRUE(
      io->SubmitWrite(fds[1], reinterpret_cast<const uint8_t*>(msg),
                      sizeof(msg), 2)
          .ok());

  std::vector<IoEvent> events;
  ASSERT_TRUE(ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
    return HasOp(e, IoEvent::Op::kRead, 1) && HasOp(e, IoEvent::Op::kWrite, 2);
  }));
  const IoEvent* read_ev = FindOp(events, IoEvent::Op::kRead, 1);
  const IoEvent* write_ev = FindOp(events, IoEvent::Op::kWrite, 2);
  ASSERT_NE(read_ev, nullptr);
  ASSERT_NE(write_ev, nullptr);
  EXPECT_EQ(write_ev->result, static_cast<int32_t>(sizeof(msg)));
  EXPECT_EQ(read_ev->result, static_cast<int32_t>(sizeof(msg)));
  EXPECT_EQ(std::memcmp(read_buf, msg, sizeof(msg)), 0);

  EXPECT_GE(io->counters().read_ops.load(), 1u);
  EXPECT_GE(io->counters().write_ops.load(), 1u);
  EXPECT_GE(io->counters().submissions.load(), 2u);
  EXPECT_GE(io->counters().syscalls.load(), 1u);

  io->CancelFd(fds[0]);
  io->CancelFd(fds[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(IoBackendTest, ReadCompletesWithZeroOnPeerEof) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);
  int fds[2];
  MakeSocketPair(fds);

  uint8_t read_buf[16];
  ASSERT_TRUE(io->SubmitRead(fds[0], read_buf, sizeof(read_buf), 9).ok());
  ::close(fds[1]);

  std::vector<IoEvent> events;
  ASSERT_TRUE(ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
    return HasOp(e, IoEvent::Op::kRead, 9);
  }));
  EXPECT_EQ(FindOp(events, IoEvent::Op::kRead, 9)->result, 0);

  io->CancelFd(fds[0]);
  ::close(fds[0]);
}

/// The contract the server's reply path depends on: a gather write into a
/// full socket completes short, and resubmitting from the first unsent
/// byte eventually delivers every byte, bit-exact, with no duplication.
TEST_P(IoBackendTest, PartialWritevResumeDeliversEveryByte) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);
  int fds[2];
  MakeSocketPair(fds);
  // Shrink the send buffer so the first writev cannot complete whole.
  const int sndbuf = 4096;
  ::setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

  // 8 frames x 64 KiB, each with a distinct fill byte so duplicated or
  // dropped ranges change the content, not just the length.
  constexpr size_t kFrames = 8;
  constexpr size_t kFrameLen = 64 * 1024;
  std::vector<std::vector<uint8_t>> frames(kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    frames[i].assign(kFrameLen, static_cast<uint8_t>(0xA0 + i));
  }
  const size_t total = kFrames * kFrameLen;

  size_t sent = 0;
  bool write_inflight = false;
  struct iovec iov[kFrames];
  std::vector<uint8_t> received;
  received.reserve(total);
  uint8_t drain[16 * 1024];
  int completions = 0;

  IoEvent events[16];
  for (int round = 0; round < 20000 && received.size() < total; ++round) {
    if (!write_inflight && sent < total) {
      // Rebuild the iovec from the first unsent byte — exactly what
      // Connection::BuildIovec does after ConsumeWritten.
      int iovcnt = 0;
      size_t off = sent;
      for (size_t i = 0; i < kFrames; ++i) {
        if (off >= kFrameLen) {
          off -= kFrameLen;
          continue;
        }
        iov[iovcnt].iov_base = frames[i].data() + off;
        iov[iovcnt].iov_len = kFrameLen - off;
        ++iovcnt;
        off = 0;
      }
      ASSERT_TRUE(io->SubmitWritev(fds[1], iov, iovcnt, 5).ok());
      write_inflight = true;
    }
    const int n = io->Reap(events, 16, /*timeout_ms=*/5);
    ASSERT_GE(n, 0);
    for (int i = 0; i < n; ++i) {
      if (events[i].op != IoEvent::Op::kWrite) continue;
      ASSERT_GT(events[i].result, 0) << "write failed: " << events[i].result;
      sent += static_cast<size_t>(events[i].result);
      write_inflight = false;
      ++completions;
    }
    // Drain the reader side so the writer can make progress.
    ssize_t r;
    while ((r = ::read(fds[0], drain, sizeof(drain))) > 0) {
      received.insert(received.end(), drain, drain + r);
    }
  }

  ASSERT_EQ(sent, total);
  ASSERT_EQ(received.size(), total);
  EXPECT_GT(completions, 1) << "send buffer never forced a short writev";
  for (size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(std::memcmp(received.data() + i * kFrameLen, frames[i].data(),
                          kFrameLen),
              0)
        << "frame " << i << " corrupted";
  }

  io->CancelFd(fds[0]);
  io->CancelFd(fds[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

/// More submissions than the ring has SQEs: the backend must flush and
/// retry internally rather than dropping or failing submissions.
TEST_P(IoBackendTest, ShortSubmissionRetrySurvivesTinyQueue) {
  std::unique_ptr<IoBackend> io = Make(/*queue_depth=*/2);
  ASSERT_NE(io, nullptr);
  const int null_fd = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
  ASSERT_GE(null_fd, 0);

  constexpr int kOps = 64;
  const uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        io->SubmitWrite(null_fd, payload, sizeof(payload), 100 + i).ok())
        << "submission " << i << " failed under a depth-2 ring";
  }

  std::vector<IoEvent> events;
  ASSERT_TRUE(ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
    return e.size() >= kOps;
  }));
  int writes = 0;
  for (const IoEvent& e : events) {
    if (e.op != IoEvent::Op::kWrite) continue;
    EXPECT_GE(e.user_data, 100u);
    EXPECT_LT(e.user_data, 100u + kOps);
    EXPECT_EQ(e.result, static_cast<int32_t>(sizeof(payload)));
    ++writes;
  }
  EXPECT_EQ(writes, kOps);

  io->CancelFd(null_fd);
  ::close(null_fd);
}

TEST_P(IoBackendTest, AcceptIsPersistentAcrossConnections) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);

  const int listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(0, ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)));
  ASSERT_EQ(0, ::listen(listen_fd, 16));
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(0, ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                             &addr_len));

  ASSERT_TRUE(io->SubmitAccept(listen_fd, 77).ok());

  // Two sequential connects against ONE SubmitAccept: both backends keep
  // the accept armed (multishot on uring, internal re-arm on epoll).
  std::vector<int> accepted;
  std::vector<int> clients;
  for (int round = 0; round < 2; ++round) {
    const int client = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(client, 0);
    ASSERT_EQ(0, ::connect(client, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)));
    clients.push_back(client);
    std::vector<IoEvent> events;
    ASSERT_TRUE(
        ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
          return HasOp(e, IoEvent::Op::kAccept, 77);
        }));
    const IoEvent* accept_ev = FindOp(events, IoEvent::Op::kAccept, 77);
    ASSERT_GE(accept_ev->result, 0);
    accepted.push_back(accept_ev->result);
  }
  EXPECT_GE(io->counters().accept_ops.load(), 2u);

  // The accepted sockets are live: a byte written at the client arrives.
  const uint8_t ping = 0x5A;
  ASSERT_EQ(1, ::write(clients[0], &ping, 1));
  uint8_t got = 0;
  ASSERT_TRUE(io->SubmitRead(accepted[0], &got, 1, 88).ok());
  std::vector<IoEvent> events;
  ASSERT_TRUE(ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
    return HasOp(e, IoEvent::Op::kRead, 88);
  }));
  EXPECT_EQ(FindOp(events, IoEvent::Op::kRead, 88)->result, 1);
  EXPECT_EQ(got, ping);

  for (int fd : accepted) {
    io->CancelFd(fd);
    ::close(fd);
  }
  for (int fd : clients) ::close(fd);
  io->CancelFd(listen_fd);
  ::close(listen_fd);
}

/// The log path's shape: a file write linked to a durability barrier.
TEST_P(IoBackendTest, LinkedWritePlusFsyncLandsOnDisk) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);
  const std::string path =
      std::string(::testing::TempDir()) + "/next700_io_fsync_" +
      IoBackendKindName(GetParam()) + ".bin";
  ::unlink(path.c_str());
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);

  std::vector<uint8_t> record(4096);
  std::iota(record.begin(), record.end(), 0);
  ASSERT_TRUE(io->SubmitWrite(fd, record.data(), record.size(), 11,
                              /*link=*/true)
                  .ok());
  ASSERT_TRUE(io->SubmitFsync(fd, /*datasync=*/true, 12).ok());

  std::vector<IoEvent> events;
  ASSERT_TRUE(ReapUntil(io.get(), &events, [](const std::vector<IoEvent>& e) {
    return HasOp(e, IoEvent::Op::kWrite, 11) &&
           HasOp(e, IoEvent::Op::kFsync, 12);
  }));
  EXPECT_EQ(FindOp(events, IoEvent::Op::kWrite, 11)->result,
            static_cast<int32_t>(record.size()));
  EXPECT_EQ(FindOp(events, IoEvent::Op::kFsync, 12)->result, 0);
  EXPECT_GE(io->counters().fsync_ops.load(), 1u);

  io->CancelFd(fd);
  ::close(fd);

  std::vector<uint8_t> back(record.size());
  const int rfd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  ASSERT_GE(rfd, 0);
  ASSERT_EQ(static_cast<ssize_t>(back.size()),
            ::read(rfd, back.data(), back.size()));
  ::close(rfd);
  EXPECT_EQ(back, record);
  ::unlink(path.c_str());
}

TEST_P(IoBackendTest, WakeupUnblocksBlockingReapFromAnotherThread) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);

  std::thread waker([&io] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    io->Wakeup();
  });
  IoEvent events[4];
  // Blocks until the wakeup arrives; a hang here fails via test timeout.
  // Reap may return 0 spuriously on EINTR (callers loop), so retry.
  int n = 0;
  for (int attempt = 0; attempt < 100 && n == 0; ++attempt) {
    n = io->Reap(events, 4, /*timeout_ms=*/-1);
  }
  waker.join();
  ASSERT_GE(n, 1);
  EXPECT_TRUE(HasOp(std::vector<IoEvent>(events, events + n),
                    IoEvent::Op::kWakeup, events[0].user_data) ||
              events[0].op == IoEvent::Op::kWakeup);
  EXPECT_GE(io->counters().waits.load(), 1u);
}

TEST_P(IoBackendTest, CancelFdDropsPendingCompletions) {
  std::unique_ptr<IoBackend> io = Make();
  ASSERT_NE(io, nullptr);
  int fds[2];
  MakeSocketPair(fds);

  uint8_t read_buf[16];
  ASSERT_TRUE(io->SubmitRead(fds[0], read_buf, sizeof(read_buf), 21).ok());
  io->CancelFd(fds[0]);

  // Data arriving after the cancel must never surface as a completion for
  // the cancelled cookie — and the backend must stay healthy for
  // unrelated work afterwards.
  const uint8_t late = 0x7F;
  ASSERT_EQ(1, ::write(fds[1], &late, 1));
  IoEvent events[8];
  const int n = io->Reap(events, 8, /*timeout_ms=*/50);
  ASSERT_GE(n, 0);
  for (int i = 0; i < n; ++i) {
    EXPECT_FALSE(events[i].op == IoEvent::Op::kRead &&
                 events[i].user_data == 21)
        << "completion surfaced for a cancelled fd";
  }
  ::close(fds[0]);
  ::close(fds[1]);

  int fresh[2];
  MakeSocketPair(fresh);
  const char msg[] = "ok";
  uint8_t buf[8] = {0};
  ASSERT_TRUE(io->SubmitRead(fresh[0], buf, sizeof(buf), 31).ok());
  ASSERT_TRUE(io->SubmitWrite(fresh[1], reinterpret_cast<const uint8_t*>(msg),
                              sizeof(msg), 32)
                  .ok());
  std::vector<IoEvent> collected;
  ASSERT_TRUE(
      ReapUntil(io.get(), &collected, [](const std::vector<IoEvent>& e) {
        return HasOp(e, IoEvent::Op::kRead, 31);
      }));
  EXPECT_EQ(std::memcmp(buf, msg, sizeof(msg)), 0);
  io->CancelFd(fresh[0]);
  io->CancelFd(fresh[1]);
  ::close(fresh[0]);
  ::close(fresh[1]);
}

TEST_P(IoBackendTest, AutoKindResolvesToARealBackend) {
  std::unique_ptr<IoBackend> io;
  ASSERT_TRUE(CreateIoBackend(IoBackendKind::kAuto, &io).ok());
  ASSERT_NE(io, nullptr);
  EXPECT_NE(io->kind(), IoBackendKind::kAuto);
  if (UringSupported()) {
    EXPECT_EQ(io->kind(), IoBackendKind::kUring);
  } else {
    EXPECT_EQ(io->kind(), IoBackendKind::kEpoll);
  }
}

INSTANTIATE_TEST_SUITE_P(IoBackends, IoBackendTest,
                         ::testing::Values(IoBackendKind::kEpoll,
                                           IoBackendKind::kUring),
                         [](const ::testing::TestParamInfo<IoBackendKind>& i) {
                           return std::string(IoBackendKindName(i.param));
                         });

}  // namespace
}  // namespace io
}  // namespace next700
