#include <gtest/gtest.h>

#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {
namespace {

/// Secondary indexes are workload-defined, so value-log replay exposes a
/// rebuild hook instead of guessing keys. This test drives that hook.
class RebuilderTest : public ::testing::Test {
 protected:
  struct Db {
    std::unique_ptr<Engine> engine;
    Table* table;
    Index* primary;
    Index* by_value;  // Secondary: value field -> row.
  };

  static Db Make(LoggingKind logging, const std::string& dir) {
    EngineOptions options;
    options.cc_scheme = CcScheme::kOcc;
    options.max_threads = 1;
    options.logging = logging;
    options.log_dir = dir;
    Db db;
    db.engine = std::make_unique<Engine>(options);
    Schema schema;
    schema.AddUint64("value");
    db.table = db.engine->CreateTable("t", std::move(schema));
    db.primary =
        db.engine->CreateIndex("t_pk", db.table, IndexKind::kHash, 256);
    db.by_value =
        db.engine->CreateIndex("t_by_value", db.table, IndexKind::kBTree, 256);
    return db;
  }

  static void InsertRow(Db& db, uint64_t key, uint64_t value) {
    TxnContext* txn = db.engine->Begin(0);
    uint8_t buf[8];
    db.table->schema().SetUint64(buf, 0, value);
    Result<Row*> row = db.engine->Insert(txn, db.table, 0, key, buf);
    ASSERT_TRUE(row.ok());
    db.engine->AddIndexInsert(txn, db.primary, key, row.value());
    db.engine->AddIndexInsert(txn, db.by_value, value, row.value());
    ASSERT_TRUE(db.engine->Commit(txn).ok());
  }
};

TEST_F(RebuilderTest, SecondaryIndexRebuiltDuringValueReplay) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/rebuilder.logd";
  RemoveLogDir(dir);  // Logs accumulate across runs; start clean.
  {
    Db source = Make(LoggingKind::kValue, dir);
    for (uint64_t key = 0; key < 50; ++key) {
      InsertRow(source, key, 1000 + key * 2);
    }
  }

  Db target = Make(LoggingKind::kNone, "");
  RecoveryManager recovery(target.engine.get());
  recovery.set_secondary_rebuilder([&target](Engine* engine, Row* row) {
    const uint64_t value =
        target.table->schema().GetUint64(engine->RawImage(row), 0);
    NEXT700_CHECK(target.by_value->Insert(value, row).ok());
  });
  RecoveryStats stats;
  ASSERT_TRUE(recovery.Replay(dir, &stats).ok());
  EXPECT_EQ(stats.txns_replayed, 50u);

  // Both access paths resolve, including ordered scans on the secondary.
  EXPECT_NE(target.primary->Lookup(7), nullptr);
  Row* via_secondary = target.by_value->Lookup(1000 + 7 * 2);
  ASSERT_NE(via_secondary, nullptr);
  EXPECT_EQ(via_secondary->primary_key, 7u);
  std::vector<Row*> range;
  ASSERT_TRUE(target.by_value->Scan(1000, 1010, 0, &range).ok());
  EXPECT_EQ(range.size(), 6u);  // Values 1000,1002,...,1010.
}

}  // namespace
}  // namespace next700
