#include "workload/smallbank.h"

#include <gtest/gtest.h>

#include "workload/driver.h"

namespace next700 {
namespace {

class SmallBankSchemeTest : public ::testing::TestWithParam<CcScheme> {};

TEST_P(SmallBankSchemeTest, MoneyIsConservedUnderContention) {
  EngineOptions eng;
  eng.cc_scheme = GetParam();
  eng.max_threads = 4;
  eng.num_partitions = 2;
  Engine engine(eng);

  SmallBankOptions bank;
  bank.num_accounts = 100;  // Tiny: heavy conflicts.
  bank.theta = 0.6;
  // Only money-moving and reading transactions: the total is invariant.
  bank.pct_balance = 20;
  bank.pct_deposit_checking = 0;
  bank.pct_transact_savings = 0;
  bank.pct_write_check = 0;
  bank.pct_amalgamate = 30;
  bank.pct_send_payment = 50;
  SmallBankWorkload workload(bank);
  workload.Load(&engine);
  ASSERT_EQ(workload.TotalMoney(&engine), workload.InitialTotal());

  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 500;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(workload.TotalMoney(&engine), workload.InitialTotal());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SmallBankSchemeTest, ::testing::ValuesIn(AllCcSchemes()),
    [](const ::testing::TestParamInfo<CcScheme>& info) {
      return CcSchemeName(info.param);
    });

TEST(SmallBankTest, FullMixRuns) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kTicToc;
  eng.max_threads = 2;
  Engine engine(eng);
  SmallBankWorkload workload(SmallBankOptions{.num_accounts = 1000});
  workload.Load(&engine);
  DriverOptions driver;
  driver.num_threads = 2;
  driver.txns_per_thread = 500;
  const RunStats stats = Driver::Run(&engine, &workload, driver);
  // Every logical transaction either commits or is a legitimate user abort
  // (insufficient funds).
  EXPECT_EQ(stats.commits + stats.user_aborts, 1000u);
}

TEST(SmallBankTest, DepositsChangeTheTotalPredictably) {
  EngineOptions eng;
  eng.cc_scheme = CcScheme::kNoWait;
  eng.max_threads = 1;
  Engine engine(eng);
  SmallBankOptions bank;
  bank.num_accounts = 10;
  bank.pct_balance = 0;
  bank.pct_deposit_checking = 100;
  bank.pct_transact_savings = 0;
  bank.pct_amalgamate = 0;
  bank.pct_write_check = 0;
  bank.pct_send_payment = 0;
  SmallBankWorkload workload(bank);
  workload.Load(&engine);
  const int64_t before = workload.TotalMoney(&engine);
  DriverOptions driver;
  driver.num_threads = 1;
  driver.txns_per_thread = 50;
  (void)Driver::Run(&engine, &workload, driver);
  // Deposits are 1..100 cents each: total must have increased by [50,5000].
  const int64_t delta = workload.TotalMoney(&engine) - before;
  EXPECT_GE(delta, 50);
  EXPECT_LE(delta, 5000);
}

}  // namespace
}  // namespace next700
