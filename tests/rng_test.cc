#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace next700 {
namespace {

TEST(RngTest, BoundedValuesStayInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(7), 7u);
    const uint64_t v = rng.NextRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SameSeedReproduces) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(3);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUint64(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(4);
  ZipfGenerator zipf(1000, 0.0, /*scramble=*/false);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next(&rng)];
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  // Uniform expectation is 200; a hot key would be far above that.
  EXPECT_LT(max_count, 400);
}

TEST(ZipfTest, HighThetaConcentratesMass) {
  Rng rng(5);
  ZipfGenerator zipf(100000, 0.9, /*scramble=*/false);
  constexpr int kDraws = 100000;
  int top_ten = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(&rng) < 10) ++top_ten;
  }
  // With theta=0.9 the 10 hottest of 100k keys draw a large share; uniform
  // would give 0.01%.
  EXPECT_GT(top_ten, kDraws / 10);
}

TEST(ZipfTest, ValuesStayInRange) {
  Rng rng(6);
  for (const double theta : {0.0, 0.5, 0.99}) {
    ZipfGenerator zipf(333, theta);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 333u);
  }
}

TEST(ZipfTest, ScramblingSpreadsHotKeys) {
  Rng rng(7);
  ZipfGenerator scrambled(100000, 0.9, /*scramble=*/true);
  // The hottest scrambled key should not be key 0 with high probability;
  // more importantly draws must remain in range and skewed.
  std::vector<int> counts(100000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[scrambled.Next(&rng)];
  int max_count = 0;
  size_t argmax = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > max_count) {
      max_count = counts[i];
      argmax = i;
    }
  }
  EXPECT_GT(max_count, 1000);  // Still heavily skewed.
  EXPECT_NE(argmax, 0u);       // But not concentrated at rank 0.
}

TEST(NuRandTest, StaysInRangeAndCoversIt) {
  Rng rng(8);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = NuRand(&rng, 255, 1, 3000, 123);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 3000u);
    if (v < 100) saw_low = true;
    if (v > 2900) saw_high = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(FnvTest, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(FnvHash64(42), FnvHash64(42));
  EXPECT_NE(FnvHash64(1), FnvHash64(2));
}

}  // namespace
}  // namespace next700
