# Empty dependencies file for bench_f9_recovery.
# This may be replaced when dependencies are built.
