file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_recovery.dir/bench_f9_recovery.cc.o"
  "CMakeFiles/bench_f9_recovery.dir/bench_f9_recovery.cc.o.d"
  "bench_f9_recovery"
  "bench_f9_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
