# Empty compiler generated dependencies file for bench_f5_write_ratio.
# This may be replaced when dependencies are built.
