file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_write_ratio.dir/bench_f5_write_ratio.cc.o"
  "CMakeFiles/bench_f5_write_ratio.dir/bench_f5_write_ratio.cc.o.d"
  "bench_f5_write_ratio"
  "bench_f5_write_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_write_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
