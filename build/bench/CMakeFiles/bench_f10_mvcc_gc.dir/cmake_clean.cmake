file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_mvcc_gc.dir/bench_f10_mvcc_gc.cc.o"
  "CMakeFiles/bench_f10_mvcc_gc.dir/bench_f10_mvcc_gc.cc.o.d"
  "bench_f10_mvcc_gc"
  "bench_f10_mvcc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_mvcc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
