# Empty compiler generated dependencies file for bench_f10_mvcc_gc.
# This may be replaced when dependencies are built.
