file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_ycsb_high_contention.dir/bench_f2_ycsb_high_contention.cc.o"
  "CMakeFiles/bench_f2_ycsb_high_contention.dir/bench_f2_ycsb_high_contention.cc.o.d"
  "bench_f2_ycsb_high_contention"
  "bench_f2_ycsb_high_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_ycsb_high_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
