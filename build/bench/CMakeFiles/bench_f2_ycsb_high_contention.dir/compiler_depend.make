# Empty compiler generated dependencies file for bench_f2_ycsb_high_contention.
# This may be replaced when dependencies are built.
