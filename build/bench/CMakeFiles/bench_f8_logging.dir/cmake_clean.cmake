file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_logging.dir/bench_f8_logging.cc.o"
  "CMakeFiles/bench_f8_logging.dir/bench_f8_logging.cc.o.d"
  "bench_f8_logging"
  "bench_f8_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
