# Empty dependencies file for bench_f8_logging.
# This may be replaced when dependencies are built.
