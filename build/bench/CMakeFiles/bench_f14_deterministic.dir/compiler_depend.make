# Empty compiler generated dependencies file for bench_f14_deterministic.
# This may be replaced when dependencies are built.
