file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_deterministic.dir/bench_f14_deterministic.cc.o"
  "CMakeFiles/bench_f14_deterministic.dir/bench_f14_deterministic.cc.o.d"
  "bench_f14_deterministic"
  "bench_f14_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
