file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_skew_sweep.dir/bench_f3_skew_sweep.cc.o"
  "CMakeFiles/bench_f3_skew_sweep.dir/bench_f3_skew_sweep.cc.o.d"
  "bench_f3_skew_sweep"
  "bench_f3_skew_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_skew_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
