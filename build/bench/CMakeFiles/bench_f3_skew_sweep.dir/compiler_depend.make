# Empty compiler generated dependencies file for bench_f3_skew_sweep.
# This may be replaced when dependencies are built.
