# Empty dependencies file for bench_f4_abort_rates.
# This may be replaced when dependencies are built.
