file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_abort_rates.dir/bench_f4_abort_rates.cc.o"
  "CMakeFiles/bench_f4_abort_rates.dir/bench_f4_abort_rates.cc.o.d"
  "bench_f4_abort_rates"
  "bench_f4_abort_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_abort_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
