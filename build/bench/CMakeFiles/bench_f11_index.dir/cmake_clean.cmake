file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_index.dir/bench_f11_index.cc.o"
  "CMakeFiles/bench_f11_index.dir/bench_f11_index.cc.o.d"
  "bench_f11_index"
  "bench_f11_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
