# Empty compiler generated dependencies file for bench_f11_index.
# This may be replaced when dependencies are built.
