# Empty compiler generated dependencies file for bench_a1_ts_allocator.
# This may be replaced when dependencies are built.
