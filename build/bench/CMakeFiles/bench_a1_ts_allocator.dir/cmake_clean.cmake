file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_ts_allocator.dir/bench_a1_ts_allocator.cc.o"
  "CMakeFiles/bench_a1_ts_allocator.dir/bench_a1_ts_allocator.cc.o.d"
  "bench_a1_ts_allocator"
  "bench_a1_ts_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_ts_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
