# Empty dependencies file for bench_f7_hstore_crossover.
# This may be replaced when dependencies are built.
