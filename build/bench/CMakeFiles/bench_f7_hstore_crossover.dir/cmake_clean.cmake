file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_hstore_crossover.dir/bench_f7_hstore_crossover.cc.o"
  "CMakeFiles/bench_f7_hstore_crossover.dir/bench_f7_hstore_crossover.cc.o.d"
  "bench_f7_hstore_crossover"
  "bench_f7_hstore_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_hstore_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
