file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_latency_tail.dir/bench_f12_latency_tail.cc.o"
  "CMakeFiles/bench_f12_latency_tail.dir/bench_f12_latency_tail.cc.o.d"
  "bench_f12_latency_tail"
  "bench_f12_latency_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_latency_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
