# Empty dependencies file for bench_w1_tatp.
# This may be replaced when dependencies are built.
