file(REMOVE_RECURSE
  "CMakeFiles/bench_w1_tatp.dir/bench_w1_tatp.cc.o"
  "CMakeFiles/bench_w1_tatp.dir/bench_w1_tatp.cc.o.d"
  "bench_w1_tatp"
  "bench_w1_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_w1_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
