# Empty compiler generated dependencies file for bench_f1_ycsb_low_contention.
# This may be replaced when dependencies are built.
