file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_ycsb_low_contention.dir/bench_f1_ycsb_low_contention.cc.o"
  "CMakeFiles/bench_f1_ycsb_low_contention.dir/bench_f1_ycsb_low_contention.cc.o.d"
  "bench_f1_ycsb_low_contention"
  "bench_f1_ycsb_low_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_ycsb_low_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
