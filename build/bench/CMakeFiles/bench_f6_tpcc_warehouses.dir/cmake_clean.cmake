file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_tpcc_warehouses.dir/bench_f6_tpcc_warehouses.cc.o"
  "CMakeFiles/bench_f6_tpcc_warehouses.dir/bench_f6_tpcc_warehouses.cc.o.d"
  "bench_f6_tpcc_warehouses"
  "bench_f6_tpcc_warehouses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_tpcc_warehouses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
