# Empty dependencies file for bench_f6_tpcc_warehouses.
# This may be replaced when dependencies are built.
