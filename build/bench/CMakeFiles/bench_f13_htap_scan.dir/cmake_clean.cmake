file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_htap_scan.dir/bench_f13_htap_scan.cc.o"
  "CMakeFiles/bench_f13_htap_scan.dir/bench_f13_htap_scan.cc.o.d"
  "bench_f13_htap_scan"
  "bench_f13_htap_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_htap_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
