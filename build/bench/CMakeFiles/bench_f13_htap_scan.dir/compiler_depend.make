# Empty compiler generated dependencies file for bench_f13_htap_scan.
# This may be replaced when dependencies are built.
