# Empty dependencies file for bench_a2_index_choice.
# This may be replaced when dependencies are built.
