file(REMOVE_RECURSE
  "libnext700.a"
)
