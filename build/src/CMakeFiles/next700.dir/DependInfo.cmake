
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/cc.cc" "src/CMakeFiles/next700.dir/cc/cc.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/cc.cc.o.d"
  "/root/repo/src/cc/hstore.cc" "src/CMakeFiles/next700.dir/cc/hstore.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/hstore.cc.o.d"
  "/root/repo/src/cc/lock_manager.cc" "src/CMakeFiles/next700.dir/cc/lock_manager.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/lock_manager.cc.o.d"
  "/root/repo/src/cc/mvto.cc" "src/CMakeFiles/next700.dir/cc/mvto.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/mvto.cc.o.d"
  "/root/repo/src/cc/occ_silo.cc" "src/CMakeFiles/next700.dir/cc/occ_silo.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/occ_silo.cc.o.d"
  "/root/repo/src/cc/snapshot_isolation.cc" "src/CMakeFiles/next700.dir/cc/snapshot_isolation.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/snapshot_isolation.cc.o.d"
  "/root/repo/src/cc/tictoc.cc" "src/CMakeFiles/next700.dir/cc/tictoc.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/tictoc.cc.o.d"
  "/root/repo/src/cc/timestamp_ordering.cc" "src/CMakeFiles/next700.dir/cc/timestamp_ordering.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/timestamp_ordering.cc.o.d"
  "/root/repo/src/cc/two_phase_locking.cc" "src/CMakeFiles/next700.dir/cc/two_phase_locking.cc.o" "gcc" "src/CMakeFiles/next700.dir/cc/two_phase_locking.cc.o.d"
  "/root/repo/src/common/arena.cc" "src/CMakeFiles/next700.dir/common/arena.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/arena.cc.o.d"
  "/root/repo/src/common/epoch.cc" "src/CMakeFiles/next700.dir/common/epoch.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/epoch.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/next700.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/next700.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/next700.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/next700.dir/common/status.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/status.cc.o.d"
  "/root/repo/src/common/timestamp.cc" "src/CMakeFiles/next700.dir/common/timestamp.cc.o" "gcc" "src/CMakeFiles/next700.dir/common/timestamp.cc.o.d"
  "/root/repo/src/det/deterministic.cc" "src/CMakeFiles/next700.dir/det/deterministic.cc.o" "gcc" "src/CMakeFiles/next700.dir/det/deterministic.cc.o.d"
  "/root/repo/src/index/btree_index.cc" "src/CMakeFiles/next700.dir/index/btree_index.cc.o" "gcc" "src/CMakeFiles/next700.dir/index/btree_index.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "src/CMakeFiles/next700.dir/index/hash_index.cc.o" "gcc" "src/CMakeFiles/next700.dir/index/hash_index.cc.o.d"
  "/root/repo/src/log/checkpoint.cc" "src/CMakeFiles/next700.dir/log/checkpoint.cc.o" "gcc" "src/CMakeFiles/next700.dir/log/checkpoint.cc.o.d"
  "/root/repo/src/log/log_manager.cc" "src/CMakeFiles/next700.dir/log/log_manager.cc.o" "gcc" "src/CMakeFiles/next700.dir/log/log_manager.cc.o.d"
  "/root/repo/src/log/recovery.cc" "src/CMakeFiles/next700.dir/log/recovery.cc.o" "gcc" "src/CMakeFiles/next700.dir/log/recovery.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/next700.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/next700.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/row.cc" "src/CMakeFiles/next700.dir/storage/row.cc.o" "gcc" "src/CMakeFiles/next700.dir/storage/row.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/next700.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/next700.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/next700.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/next700.dir/storage/table.cc.o.d"
  "/root/repo/src/txn/engine.cc" "src/CMakeFiles/next700.dir/txn/engine.cc.o" "gcc" "src/CMakeFiles/next700.dir/txn/engine.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/next700.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/smallbank.cc" "src/CMakeFiles/next700.dir/workload/smallbank.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/smallbank.cc.o.d"
  "/root/repo/src/workload/tatp.cc" "src/CMakeFiles/next700.dir/workload/tatp.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/tatp.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/next700.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/tpcc_txns.cc" "src/CMakeFiles/next700.dir/workload/tpcc_txns.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/tpcc_txns.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/next700.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/next700.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
