# Empty compiler generated dependencies file for next700.
# This may be replaced when dependencies are built.
