
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arena_test.cc" "tests/CMakeFiles/next700_tests.dir/arena_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/arena_test.cc.o.d"
  "/root/repo/tests/btree_index_test.cc" "tests/CMakeFiles/next700_tests.dir/btree_index_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/btree_index_test.cc.o.d"
  "/root/repo/tests/btree_oracle_test.cc" "tests/CMakeFiles/next700_tests.dir/btree_oracle_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/btree_oracle_test.cc.o.d"
  "/root/repo/tests/cc_schemes_test.cc" "tests/CMakeFiles/next700_tests.dir/cc_schemes_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/cc_schemes_test.cc.o.d"
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/next700_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/next700_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/deterministic_test.cc" "tests/CMakeFiles/next700_tests.dir/deterministic_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/deterministic_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/next700_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/driver_test.cc" "tests/CMakeFiles/next700_tests.dir/driver_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/driver_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/next700_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/epoch_test.cc" "tests/CMakeFiles/next700_tests.dir/epoch_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/epoch_test.cc.o.d"
  "/root/repo/tests/hash_index_test.cc" "tests/CMakeFiles/next700_tests.dir/hash_index_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/hash_index_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/next700_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/hstore_test.cc" "tests/CMakeFiles/next700_tests.dir/hstore_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/hstore_test.cc.o.d"
  "/root/repo/tests/lock_manager_test.cc" "tests/CMakeFiles/next700_tests.dir/lock_manager_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/lock_manager_test.cc.o.d"
  "/root/repo/tests/log_test.cc" "tests/CMakeFiles/next700_tests.dir/log_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/log_test.cc.o.d"
  "/root/repo/tests/mvto_test.cc" "tests/CMakeFiles/next700_tests.dir/mvto_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/mvto_test.cc.o.d"
  "/root/repo/tests/recovery_rebuilder_test.cc" "tests/CMakeFiles/next700_tests.dir/recovery_rebuilder_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/recovery_rebuilder_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/next700_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/next700_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/si_anomaly_test.cc" "tests/CMakeFiles/next700_tests.dir/si_anomaly_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/si_anomaly_test.cc.o.d"
  "/root/repo/tests/smallbank_test.cc" "tests/CMakeFiles/next700_tests.dir/smallbank_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/smallbank_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/next700_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/tatp_test.cc" "tests/CMakeFiles/next700_tests.dir/tatp_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/tatp_test.cc.o.d"
  "/root/repo/tests/tidword_test.cc" "tests/CMakeFiles/next700_tests.dir/tidword_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/tidword_test.cc.o.d"
  "/root/repo/tests/timestamp_ordering_test.cc" "tests/CMakeFiles/next700_tests.dir/timestamp_ordering_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/timestamp_ordering_test.cc.o.d"
  "/root/repo/tests/tpcc_test.cc" "tests/CMakeFiles/next700_tests.dir/tpcc_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/tpcc_test.cc.o.d"
  "/root/repo/tests/workload_gen_test.cc" "tests/CMakeFiles/next700_tests.dir/workload_gen_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/workload_gen_test.cc.o.d"
  "/root/repo/tests/wound_wait_test.cc" "tests/CMakeFiles/next700_tests.dir/wound_wait_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/wound_wait_test.cc.o.d"
  "/root/repo/tests/ycsb_test.cc" "tests/CMakeFiles/next700_tests.dir/ycsb_test.cc.o" "gcc" "tests/CMakeFiles/next700_tests.dir/ycsb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/next700.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
