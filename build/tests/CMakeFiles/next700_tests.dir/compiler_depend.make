# Empty compiler generated dependencies file for next700_tests.
# This may be replaced when dependencies are built.
