file(REMOVE_RECURSE
  "CMakeFiles/next700_run.dir/next700_run.cc.o"
  "CMakeFiles/next700_run.dir/next700_run.cc.o.d"
  "next700_run"
  "next700_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/next700_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
