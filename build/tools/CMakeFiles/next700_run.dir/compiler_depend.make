# Empty compiler generated dependencies file for next700_run.
# This may be replaced when dependencies are built.
