# Empty compiler generated dependencies file for example_htap_reporting.
# This may be replaced when dependencies are built.
