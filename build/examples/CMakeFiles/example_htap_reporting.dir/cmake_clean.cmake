file(REMOVE_RECURSE
  "CMakeFiles/example_htap_reporting.dir/htap_reporting.cpp.o"
  "CMakeFiles/example_htap_reporting.dir/htap_reporting.cpp.o.d"
  "example_htap_reporting"
  "example_htap_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_htap_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
