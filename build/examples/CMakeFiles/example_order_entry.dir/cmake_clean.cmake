file(REMOVE_RECURSE
  "CMakeFiles/example_order_entry.dir/order_entry.cpp.o"
  "CMakeFiles/example_order_entry.dir/order_entry.cpp.o.d"
  "example_order_entry"
  "example_order_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_order_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
