# Empty compiler generated dependencies file for example_order_entry.
# This may be replaced when dependencies are built.
