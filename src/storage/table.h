#ifndef NEXT700_STORAGE_TABLE_H_
#define NEXT700_STORAGE_TABLE_H_

/// \file
/// Partitioned in-memory table heaps. Rows are allocated from per-partition
/// slabs so that (a) allocation is contention-free when workers stay in
/// their home partition and (b) the H-Store-style engine gets physical
/// partitioning for free. Rows never move once allocated; indexes and
/// version chains hold stable Row pointers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/macros.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace next700 {

class Table {
 public:
  static constexpr size_t kRowsPerSlab = 4096;

  Table(uint32_t table_id, std::string name, Schema schema,
        uint32_t num_partitions);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }
  uint32_t row_size() const { return schema_.row_size(); }

  /// Marks the table read-only after loading (e.g. TPC-C ITEM). The
  /// H-Store scheme exempts such tables from partition-ownership checks,
  /// modelling replicated read-only reference data.
  bool read_only() const { return read_only_; }
  void set_read_only(bool read_only) { read_only_ = read_only; }

  /// Allocates an uninitialized row in `partition`. Thread-safe. The caller
  /// owns initialization of payload and CC metadata before publishing the
  /// row through an index.
  Row* AllocateRow(uint32_t partition);

  /// Returns an aborted, never-published row to the partition free list.
  void FreeRow(Row* row);

  /// Rows currently allocated (including deleted-but-not-reclaimed ones).
  uint64_t ApproxRowCount() const;

  /// Iterates every allocated row of one partition (the checkpointer scans
  /// partition by partition so single-version schemes only need brief
  /// per-partition quiesce windows). Holds the partition's allocation latch
  /// for the duration, so concurrent AllocateRow/FreeRow stay consistent.
  template <typename Fn>
  void ForEachRowInPartition(uint32_t partition, Fn&& fn) const {
    const auto& part = partitions_[partition];
    SpinLatchGuard guard(&part->latch);
    for (const auto& slab : part->slabs) {
      const size_t rows_here = (&slab == &part->slabs.back())
                                   ? part->next_in_slab
                                   : kRowsPerSlab;
      for (size_t i = 0; i < rows_here; ++i) {
        Row* row = RowAt(slab.get(), i);
        // Skip rows returned to the free list (never published).
        if ((row->flags.load(std::memory_order_acquire) & kRowFree) != 0) {
          continue;
        }
        fn(row);
      }
    }
  }

  /// Iterates every allocated row (sequential scan; used by audits and
  /// recovery, not by the transaction paths).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (uint32_t p = 0; p < num_partitions(); ++p) {
      ForEachRowInPartition(p, fn);
    }
  }

 private:
  struct Partition {
    SpinLatch latch{LatchRank::kTablePartition};
    std::vector<std::unique_ptr<uint8_t[]>> slabs GUARDED_BY(latch);
    // Forces slab creation on first use.
    size_t next_in_slab GUARDED_BY(latch) = kRowsPerSlab;
    std::vector<Row*> free_rows GUARDED_BY(latch);
    std::atomic<uint64_t> live_rows{0};
  };

  size_t slot_size() const { return sizeof(Row) + schema_.row_size(); }

  Row* RowAt(uint8_t* slab, size_t i) const {
    return reinterpret_cast<Row*>(slab + i * slot_size());
  }

  uint32_t id_;
  std::string name_;
  Schema schema_;
  bool read_only_ = false;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace next700

#endif  // NEXT700_STORAGE_TABLE_H_
