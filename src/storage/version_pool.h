#ifndef NEXT700_STORAGE_VERSION_POOL_H_
#define NEXT700_STORAGE_VERSION_POOL_H_

/// \file
/// Per-worker recycling allocator for multi-version chain nodes. MVTO and SI
/// create one Version per write and retire one per garbage-collect; routing
/// both through a size-class freelist makes the steady state allocation-free
/// — the global allocator is touched only while the working set of versions
/// is still growing.
///
/// Recycling is epoch-gated: Retire() hands the block to the EpochManager,
/// and only when every pinned thread has moved past the retiring epoch does
/// the block return to the freelist for reuse. A version is therefore never
/// recycled while a reader that could still dereference it is pinned, which
/// both keeps the kFull validation poison checks meaningful and leaves room
/// to relax the row-latched chain walks later without changing reclamation.
///
/// Block layout: [VersionBlockHeader][Version][payload]. The header records
/// the owning pool (nullptr for plain heap blocks, e.g. loader-allocated
/// versions) and the block size; it sits *before* the Version so the epoch
/// validator's poison fill — which covers exactly the retired
/// [Version, end-of-payload) range — never clobbers routing state.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/epoch.h"
#include "common/latch.h"
#include "common/macros.h"
#include "storage/row.h"

namespace next700 {

class VersionPool;

/// Hidden prefix of every Version block (pooled or not).
struct VersionBlockHeader {
  VersionPool* pool;  // nullptr: free straight to the global allocator.
  uint32_t klass;     // Size class within the owning pool.
  uint32_t bytes;     // Total block size, header included.
};

class VersionPool {
 public:
  /// Size-class granularity; blocks round up to a multiple of this.
  static constexpr size_t kGranule = 64;
  /// Classes cover blocks up to kGranule * kNumClasses bytes (header +
  /// Version + payload); larger rows fall back to the heap per allocation.
  static constexpr size_t kNumClasses = 20;

  VersionPool(EpochManager* epochs, int thread_id);
  ~VersionPool();
  VersionPool(const VersionPool&) = delete;
  VersionPool& operator=(const VersionPool&) = delete;

  /// Pops a recycled block of the right size class, falling back to the
  /// heap while the pool is still warming up.
  Version* Allocate(uint32_t payload_size);

  /// Epoch-gated release: the block returns to the freelist once every
  /// pinned thread has moved past the current epoch. Must be called by the
  /// owning thread while pinned (enforced under epoch validation).
  void Retire(Version* v);

  /// Heap-allocates an unpooled block with the shared header layout
  /// (Version::Allocate delegates here).
  static Version* AllocateUnpooled(uint32_t payload_size);

  /// Epoch deleter / direct release: routes a block back to its owning
  /// pool's freelist, or to the global allocator for unpooled blocks.
  static void ReleaseBlock(void* version);

  /// Allocations served from the freelist since construction.
  uint64_t recycled_hits() const {
    return recycled_hits_.load(std::memory_order_relaxed);
  }
  /// Allocations that had to touch the global allocator.
  uint64_t heap_allocs() const {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= sizeof(VersionBlockHeader),
                "freelist link must fit in the block header");

  void PushFree(VersionBlockHeader* header);

  EpochManager* epochs_;
  int thread_id_;
  // Pushes can arrive from other threads (kFull-validation quarantine
  // drains run on whichever thread overflows it), so the freelists are
  // latched; unranked like the epoch-internal latch since pushes can happen
  // under a row mini-latch.
  SpinLatch latch_;
  FreeNode* free_[kNumClasses] GUARDED_BY(latch_) = {};
  std::atomic<uint64_t> recycled_hits_{0};
  std::atomic<uint64_t> heap_allocs_{0};
};

}  // namespace next700

#endif  // NEXT700_STORAGE_VERSION_POOL_H_
