#include "storage/table.h"

#include <new>

namespace next700 {

Table::Table(uint32_t table_id, std::string name, Schema schema,
             uint32_t num_partitions)
    : id_(table_id), name_(std::move(name)), schema_(std::move(schema)) {
  NEXT700_CHECK(num_partitions > 0);
  partitions_.reserve(num_partitions);
  for (uint32_t i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

Table::~Table() {
  // Run Row destructors (atomics are trivially destructible, but version
  // chains are owned by the MVCC layer which retires them through the epoch
  // manager; any remaining chain nodes are freed here).
  ForEachRow([](Row* row) {
    Version* v = row->chain.load(std::memory_order_relaxed);
    while (v != nullptr) {
      Version* next = v->next;
      Version::Free(v);
      v = next;
    }
  });
}

Row* Table::AllocateRow(uint32_t partition) {
  NEXT700_DCHECK(partition < partitions_.size());
  Partition& part = *partitions_[partition];
  Row* row = nullptr;
  {
    SpinLatchGuard guard(&part.latch);
    if (!part.free_rows.empty()) {
      row = part.free_rows.back();
      part.free_rows.pop_back();
    } else {
      if (part.next_in_slab == kRowsPerSlab) {
        // lint: allow-naked-new — this IS the slab arena rows live in.
        part.slabs.emplace_back(new uint8_t[slot_size() * kRowsPerSlab]);
        part.next_in_slab = 0;
      }
      row = RowAt(part.slabs.back().get(), part.next_in_slab++);
    }
  }
  new (row) Row();
  row->table = this;
  row->partition = partition;
  part.live_rows.fetch_add(1, std::memory_order_relaxed);
  return row;
}

void Table::FreeRow(Row* row) {
  NEXT700_DCHECK(row->table == this);
  Partition& part = *partitions_[row->partition];
  // The row was never published (aborted insert) or has been fully retired
  // by its owner, so any leftover version chain is private: free it here so
  // recycled slots do not leak versions.
  Version* v = row->chain.exchange(nullptr, std::memory_order_relaxed);
  while (v != nullptr) {
    Version* next = v->next;
    Version::Free(v);
    v = next;
  }
  row->flags.store(kRowFree, std::memory_order_release);
  part.live_rows.fetch_sub(1, std::memory_order_relaxed);
  SpinLatchGuard guard(&part.latch);
  part.free_rows.push_back(row);
}

uint64_t Table::ApproxRowCount() const {
  uint64_t total = 0;
  for (const auto& part : partitions_) {
    total += part->live_rows.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace next700
