#include "storage/version_pool.h"

#include <new>

namespace next700 {

namespace {

constexpr size_t kMaxPooledBytes =
    VersionPool::kGranule * VersionPool::kNumClasses;

Version* PlaceVersion(void* mem, VersionPool* pool, uint32_t klass,
                      uint32_t bytes) {
  auto* header = static_cast<VersionBlockHeader*>(mem);
  header->pool = pool;
  header->klass = klass;
  header->bytes = bytes;
  return new (header + 1) Version();
}

}  // namespace

VersionPool::VersionPool(EpochManager* epochs, int thread_id)
    : epochs_(epochs), thread_id_(thread_id) {}

VersionPool::~VersionPool() {
  for (FreeNode*& head : free_) {
    while (head != nullptr) {
      FreeNode* next = head->next;
      ::operator delete(head);
      head = next;
    }
  }
}

Version* VersionPool::Allocate(uint32_t payload_size) {
  const size_t want =
      sizeof(VersionBlockHeader) + sizeof(Version) + payload_size;
  if (NEXT700_UNLIKELY(want > kMaxPooledBytes)) {
    heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    return AllocateUnpooled(payload_size);
  }
  const size_t klass = (want + kGranule - 1) / kGranule - 1;
  const size_t bytes = (klass + 1) * kGranule;
  VersionBlockHeader* header = nullptr;
  latch_.Lock();
  if (free_[klass] != nullptr) {
    FreeNode* node = free_[klass];
    free_[klass] = node->next;
    header = reinterpret_cast<VersionBlockHeader*>(node);
  }
  latch_.Unlock();
  if (header != nullptr) {
    recycled_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    // lint: allow-naked-new — pool warm-up; steady state recycles blocks.
    header = static_cast<VersionBlockHeader*>(::operator new(bytes));
  }
  return PlaceVersion(header, this, static_cast<uint32_t>(klass),
                      static_cast<uint32_t>(bytes));
}

void VersionPool::Retire(Version* v) {
  auto* header = reinterpret_cast<VersionBlockHeader*>(v) - 1;
  epochs_->Retire(thread_id_, v, &VersionPool::ReleaseBlock,
                  header->bytes - sizeof(VersionBlockHeader));
}

Version* VersionPool::AllocateUnpooled(uint32_t payload_size) {
  const size_t bytes =
      sizeof(VersionBlockHeader) + sizeof(Version) + payload_size;
  // lint: allow-naked-new — unpooled fallback for oversized payloads.
  void* mem = ::operator new(bytes);
  return PlaceVersion(mem, /*pool=*/nullptr, /*klass=*/0,
                      static_cast<uint32_t>(bytes));
}

void VersionPool::ReleaseBlock(void* version) {
  auto* v = static_cast<Version*>(version);
  auto* header = reinterpret_cast<VersionBlockHeader*>(v) - 1;
  VersionPool* pool = header->pool;
  if (pool == nullptr) {
    v->~Version();
    ::operator delete(header);
    return;
  }
  pool->PushFree(header);
}

void VersionPool::PushFree(VersionBlockHeader* header) {
  const uint32_t klass = header->klass;
  NEXT700_DCHECK(klass < kNumClasses);
  // The freelist link overlays the header's pool field; klass/bytes survive
  // and are rewritten on reuse anyway.
  auto* node = reinterpret_cast<FreeNode*>(header);
  latch_.Lock();
  node->next = free_[klass];
  free_[klass] = node;
  latch_.Unlock();
}

}  // namespace next700
