#include "storage/catalog.h"

#include "index/btree_index.h"
#include "index/hash_index.h"

namespace next700 {

Table* Catalog::CreateTable(std::string name, Schema schema,
                            uint32_t partitions) {
  SpinLatchGuard ddl(&ddl_latch_);
  NEXT700_CHECK_MSG(GetTable(name) == nullptr, "duplicate table name");
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(
      std::make_unique<Table>(id, std::move(name), std::move(schema),
                              partitions));
  primary_index_by_table_.push_back(nullptr);
  return tables_.back().get();
}

Index* Catalog::CreateIndex(std::string name, Table* table, IndexKind kind,
                            uint64_t capacity_hint) {
  SpinLatchGuard ddl(&ddl_latch_);
  NEXT700_CHECK_MSG(GetIndex(name) == nullptr, "duplicate index name");
  std::unique_ptr<Index> index;
  switch (kind) {
    case IndexKind::kHash:
      index = std::make_unique<HashIndex>(table, capacity_hint);
      break;
    case IndexKind::kBTree:
      index = std::make_unique<BTreeIndex>(table);
      break;
  }
  indexes_.push_back(std::move(index));
  index_names_.push_back(std::move(name));
  Index* out = indexes_.back().get();
  if (primary_index_by_table_[table->id()] == nullptr) {
    primary_index_by_table_[table->id()] = out;
  }
  return out;
}

Table* Catalog::GetTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return nullptr;
}

Table* Catalog::GetTable(uint32_t id) const {
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

Index* Catalog::GetIndex(std::string_view name) const {
  for (size_t i = 0; i < index_names_.size(); ++i) {
    if (index_names_[i] == name) return indexes_[i].get();
  }
  return nullptr;
}

Index* Catalog::PrimaryIndex(const Table* table) const {
  return primary_index_by_table_[table->id()];
}

}  // namespace next700
