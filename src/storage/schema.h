#ifndef NEXT700_STORAGE_SCHEMA_H_
#define NEXT700_STORAGE_SCHEMA_H_

/// \file
/// Typed, fixed-size row schemas. All engine components treat payloads as
/// opaque byte arrays of Schema::row_size() bytes; the accessors here are a
/// convenience layer for workloads and examples.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace next700 {

enum class ColumnType {
  kInt64,
  kUint64,
  kDouble,
  kChar,  // Fixed-capacity, NUL-padded string.
};

struct Column {
  std::string name;
  ColumnType type;
  /// Payload bytes. 8 for the numeric types; the capacity for kChar.
  uint32_t size;
};

/// Immutable column layout. Column offsets are assigned in declaration
/// order, 8-byte aligned.
class Schema {
 public:
  Schema() = default;

  /// Builder-style column registration; returns the column index.
  int AddInt64(std::string name);
  int AddUint64(std::string name);
  int AddDouble(std::string name);
  int AddChar(std::string name, uint32_t capacity);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  uint32_t offset(int i) const { return offsets_[i]; }
  uint32_t row_size() const { return row_size_; }

  /// Index of the column called `name`; -1 when absent.
  int ColumnIndex(std::string_view name) const;

  // --- Typed accessors over a raw payload -------------------------------

  int64_t GetInt64(const uint8_t* row, int col) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kInt64);
    int64_t v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  uint64_t GetUint64(const uint8_t* row, int col) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kUint64);
    uint64_t v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  double GetDouble(const uint8_t* row, int col) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kDouble);
    double v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  std::string_view GetChar(const uint8_t* row, int col) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kChar);
    const char* base = reinterpret_cast<const char*>(row + offsets_[col]);
    return std::string_view(base, strnlen(base, columns_[col].size));
  }

  void SetInt64(uint8_t* row, int col, int64_t v) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kInt64);
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetUint64(uint8_t* row, int col, uint64_t v) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kUint64);
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetDouble(uint8_t* row, int col, double v) const {
    NEXT700_DCHECK(columns_[col].type == ColumnType::kDouble);
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetChar(uint8_t* row, int col, std::string_view v) const;

 private:
  int AddColumn(std::string name, ColumnType type, uint32_t size);

  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_size_ = 0;
};

}  // namespace next700

#endif  // NEXT700_STORAGE_SCHEMA_H_
