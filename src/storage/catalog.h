#ifndef NEXT700_STORAGE_CATALOG_H_
#define NEXT700_STORAGE_CATALOG_H_

/// \file
/// Name/id registry for tables and indexes. DDL (table and index creation)
/// is serialized by the catalog latch — the top of the latch hierarchy —
/// so concurrent setup is safe; lookups afterwards are read-only and
/// lock-free.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/latch.h"
#include "common/macros.h"
#include "index/index.h"
#include "storage/table.h"

namespace next700 {

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; aborts on duplicate names.
  Table* CreateTable(std::string name, Schema schema, uint32_t partitions);

  /// Registers an index over `table`. The first index created for a table
  /// becomes its primary index (used by recovery).
  Index* CreateIndex(std::string name, Table* table, IndexKind kind,
                     uint64_t capacity_hint);

  // Lookups are deliberately latch-free: DDL is a setup phase that finishes
  // before concurrent transactions start (the registries are append-only and
  // never reloaded), a phase discipline TSA cannot express — hence the
  // NO_THREAD_SAFETY_ANALYSIS on the readers while every *writer* remains
  // statically checked against ddl_latch_.
  Table* GetTable(std::string_view name) const NO_THREAD_SAFETY_ANALYSIS;
  Table* GetTable(uint32_t id) const NO_THREAD_SAFETY_ANALYSIS;
  Index* GetIndex(std::string_view name) const NO_THREAD_SAFETY_ANALYSIS;

  /// Primary index of `table` (nullptr if the table has none).
  Index* PrimaryIndex(const Table* table) const NO_THREAD_SAFETY_ANALYSIS;

  int num_tables() const NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<int>(tables_.size());
  }
  int num_indexes() const NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<int>(indexes_.size());
  }
  Table* table_at(int i) const NO_THREAD_SAFETY_ANALYSIS {
    return tables_[i].get();
  }
  Index* index_at(int i) const NO_THREAD_SAFETY_ANALYSIS {
    return indexes_[i].get();
  }

 private:
  /// Serializes DDL. Top of the latch hierarchy: DDL may fan out into
  /// table-partition and index latches while building initial structures.
  SpinLatch ddl_latch_{LatchRank::kCatalog};
  std::vector<std::unique_ptr<Table>> tables_ GUARDED_BY(ddl_latch_);
  std::vector<std::unique_ptr<Index>> indexes_ GUARDED_BY(ddl_latch_);
  std::vector<std::string> index_names_ GUARDED_BY(ddl_latch_);
  std::vector<Index*> primary_index_by_table_ GUARDED_BY(ddl_latch_);
};

}  // namespace next700

#endif  // NEXT700_STORAGE_CATALOG_H_
