#include "storage/schema.h"

#include <algorithm>

namespace next700 {

int Schema::AddColumn(std::string name, ColumnType type, uint32_t size) {
  NEXT700_CHECK_MSG(ColumnIndex(name) < 0, "duplicate column name");
  const uint32_t aligned = (size + 7) & ~uint32_t{7};
  offsets_.push_back(row_size_);
  columns_.push_back(Column{std::move(name), type, size});
  row_size_ += aligned;
  return static_cast<int>(columns_.size()) - 1;
}

int Schema::AddInt64(std::string name) {
  return AddColumn(std::move(name), ColumnType::kInt64, 8);
}

int Schema::AddUint64(std::string name) {
  return AddColumn(std::move(name), ColumnType::kUint64, 8);
}

int Schema::AddDouble(std::string name) {
  return AddColumn(std::move(name), ColumnType::kDouble, 8);
}

int Schema::AddChar(std::string name, uint32_t capacity) {
  return AddColumn(std::move(name), ColumnType::kChar, capacity);
}

int Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::SetChar(uint8_t* row, int col, std::string_view v) const {
  NEXT700_DCHECK(columns_[col].type == ColumnType::kChar);
  const uint32_t cap = columns_[col].size;
  const size_t n = std::min<size_t>(v.size(), cap);
  std::memcpy(row + offsets_[col], v.data(), n);
  std::memset(row + offsets_[col] + n, 0, cap - n);
}

}  // namespace next700
