#ifndef NEXT700_STORAGE_ROW_H_
#define NEXT700_STORAGE_ROW_H_

/// \file
/// In-memory row slots. Every row carries one header shared by all
/// concurrency-control plugins; each scheme uses only the fields it needs,
/// which keeps the plugins stateless and lets one storage layout serve the
/// whole design space (the "composability" the keynote calls for):
///
///   * tid_word — Silo/TicToc packed word (lock bit + version/timestamps).
///   * rts/wts  — timestamp-ordering read/write timestamps.
///   * chain    — newest-first multi-version chain head (MVTO).
///   * mini-latch — short critical sections for T/O and MVTO installs.

#include <atomic>
#include <cstdint>

#include "common/latch.h"
#include "common/macros.h"
#include "common/thread_safety.h"
#include "common/timestamp.h"

namespace next700 {

class Table;

/// One entry of a newest-first version chain (multi-version schemes).
struct Version {
  Timestamp wts = kInvalidTimestamp;     // Creation timestamp.
  std::atomic<Timestamp> rts{0};         // Largest reader timestamp.
  std::atomic<bool> committed{false};
  bool is_delete = false;                // Version is a tombstone.
  uint64_t writer_id = 0;                // Owning txn while uncommitted.
  Version* next = nullptr;               // Older version.
  // Payload of Schema::row_size() bytes follows the struct.

  uint8_t* data() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* data() const {
    return reinterpret_cast<const uint8_t*>(this + 1);
  }

  static Version* Allocate(uint32_t payload_size);
  static void Free(void* v);
};

/// Row flags (plain bitmask in `flags`).
inline constexpr uint32_t kRowDeleted = 1u << 0;
/// Set while the slot sits on a table free list (aborted insert).
inline constexpr uint32_t kRowFree = 1u << 1;

// The row is its own capability: the mini-latch guards T/O and MVTO
// installs. The CC metadata fields stay unannotated because they are
// atomics read lock-free by concurrent readers and written under the latch
// — a mixed discipline GUARDED_BY cannot express.
struct CAPABILITY("row") Row {
  // --- Concurrency-control metadata ------------------------------------
  std::atomic<uint64_t> tid_word{0};  // Silo/TicToc packed word.
  std::atomic<Timestamp> wts{0};      // T/O write timestamp.
  std::atomic<Timestamp> rts{0};      // T/O read timestamp.
  std::atomic<Version*> chain{nullptr};

  // --- Identity ----------------------------------------------------------
  Table* table = nullptr;
  uint64_t primary_key = 0;  // Encoded key; used by logging and recovery.
  uint32_t partition = 0;
  std::atomic<uint32_t> flags{0};

  // Byte-sized test-and-set latch guarding T/O & MVTO metadata+payload.
  std::atomic<uint8_t> mini_latch{0};

  uint8_t* data() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* data() const {
    return reinterpret_cast<const uint8_t*>(this + 1);
  }

  void Latch() ACQUIRE() {
    latch_rank::OnAcquire(&mini_latch, LatchRank::kRow);
    while (mini_latch.exchange(1, std::memory_order_acquire) != 0) {
      CpuRelax();
    }
    NEXT700_TSAN_ACQUIRE(&mini_latch);
  }
  bool TryLatch() TRY_ACQUIRE(true) {
    if (mini_latch.exchange(1, std::memory_order_acquire) == 0) {
      latch_rank::OnAcquire(&mini_latch, LatchRank::kRow);
      NEXT700_TSAN_ACQUIRE(&mini_latch);
      return true;
    }
    return false;
  }
  void Unlatch() RELEASE() {
    latch_rank::OnRelease(&mini_latch);
    NEXT700_TSAN_RELEASE(&mini_latch);
    mini_latch.store(0, std::memory_order_release);
  }

  bool deleted() const {
    return (flags.load(std::memory_order_acquire) & kRowDeleted) != 0;
  }
  void set_deleted(bool on) {
    if (on) {
      flags.fetch_or(kRowDeleted, std::memory_order_release);
    } else {
      flags.fetch_and(~kRowDeleted, std::memory_order_release);
    }
  }
};

/// RAII row mini-latch guard.
class SCOPED_CAPABILITY RowLatchGuard {
 public:
  explicit RowLatchGuard(Row* row) ACQUIRE(row) : row_(row) { row_->Latch(); }
  ~RowLatchGuard() RELEASE() { row_->Unlatch(); }
  RowLatchGuard(const RowLatchGuard&) = delete;
  RowLatchGuard& operator=(const RowLatchGuard&) = delete;

 private:
  Row* row_;
};

}  // namespace next700

#endif  // NEXT700_STORAGE_ROW_H_
