#include "storage/row.h"

#include "storage/version_pool.h"

namespace next700 {

// Every Version block — pooled or not — carries a VersionBlockHeader prefix,
// so one release path serves loader-allocated versions, pool-recycled
// versions, and pool blocks freed during teardown alike.

Version* Version::Allocate(uint32_t payload_size) {
  return VersionPool::AllocateUnpooled(payload_size);
}

void Version::Free(void* v) {
  VersionPool::ReleaseBlock(v);
}

}  // namespace next700
