#include "storage/row.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace next700 {

Version* Version::Allocate(uint32_t payload_size) {
  void* mem = ::operator new(sizeof(Version) + payload_size);
  return new (mem) Version();
}

void Version::Free(void* v) {
  static_cast<Version*>(v)->~Version();
  ::operator delete(v);
}

}  // namespace next700
