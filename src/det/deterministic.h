#ifndef NEXT700_DET_DETERMINISTIC_H_
#define NEXT700_DET_DETERMINISTIC_H_

/// \file
/// Calvin-style deterministic transaction execution (Thomson et al.,
/// SIGMOD 2012) — one of the "new designs" the keynote points at. The
/// deal: transactions declare their read/write key sets up front and a
/// sequencer fixes a global order *before* execution. Locks are then
/// granted strictly in sequence order through per-row FIFO queues, so
///   * there are no deadlocks and no aborts — ever;
///   * conflicting transactions execute in sequence order, making the
///     final state a pure function of the submission order (replication
///     and recovery become "re-run the input log");
///   * non-conflicting transactions run concurrently on a worker pool.
///
/// The cost is the up-front key declaration (workloads whose access sets
/// depend on reads need reconnaissance, which is out of scope here) and
/// sequencer overhead on uncontended work — exactly the trade-off the
/// deterministic-vs-nondeterministic experiment (F14) measures.
///
/// This engine deliberately bypasses the ConcurrencyControl plugin layer:
/// determinism *is* the concurrency control. It shares the storage and
/// index substrates with everything else.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "index/index.h"
#include "storage/table.h"

namespace next700 {

class DeterministicEngine;

/// The data interface handed to transaction logic. Only keys declared in
/// the submitted access sets may be touched (DCHECK-enforced).
class DetAccessor {
 public:
  /// Copies the row payload for `key` into `out`; kNotFound if absent.
  Status Read(uint64_t key, uint8_t* out);

  /// Overwrites the full row payload for `key` (declared as a write).
  Status Write(uint64_t key, const void* data);

 private:
  friend class DeterministicEngine;
  DetAccessor(DeterministicEngine* engine, const struct DetTxn* txn)
      : engine_(engine), txn_(txn) {}

  DeterministicEngine* engine_;
  const struct DetTxn* txn_;
};

/// Transaction logic; runs exactly once, with every declared lock held.
using DetLogic = std::function<void(DetAccessor* db)>;

/// One sequenced transaction (internal, exposed for the accessor).
struct DetTxn {
  uint64_t seq = 0;
  std::vector<uint64_t> read_keys;   // Sorted, unique.
  std::vector<uint64_t> write_keys;  // Sorted, unique.
  DetLogic logic;
  int pending_locks = 0;       // Guarded by the engine mutex.
  bool done = false;           // Guarded by the engine mutex.
};

class DeterministicEngine {
 public:
  struct Options {
    int num_workers = 2;
  };

  /// Executes over one table through its primary index (the usual Calvin
  /// formulation is per-record too; multi-table support would thread an
  /// (index, key) pair through the queues instead of a key).
  DeterministicEngine(Table* table, Index* index, Options options);
  ~DeterministicEngine();
  DeterministicEngine(const DeterministicEngine&) = delete;
  DeterministicEngine& operator=(const DeterministicEngine&) = delete;

  /// Sequences a transaction and returns its ticket (= global sequence
  /// number). Key vectors may contain duplicates; they are normalized.
  /// The logic runs asynchronously on the worker pool.
  uint64_t Submit(std::vector<uint64_t> read_keys,
                  std::vector<uint64_t> write_keys, DetLogic logic);

  /// Blocks until the given ticket has executed.
  void Wait(uint64_t ticket);

  /// Blocks until every submitted transaction has executed.
  void WaitAll();

  uint64_t executed() const;

  Table* table() const { return table_; }

 private:
  friend class DetAccessor;

  struct QueueEntry {
    DetTxn* txn;
    bool is_write;
    bool granted = false;
  };

  struct RowQueue {
    std::deque<QueueEntry> entries;
  };

  /// Recomputes the grant prefix of `queue` (head write alone, or every
  /// lead read), collecting transactions whose last lock just arrived.
  void GrantFront(RowQueue* queue, std::vector<DetTxn*>* newly_ready)
      REQUIRES(mu_);

  /// Appends `txn`'s request for `key` to the row queue and re-grants.
  void EnqueueLockRequest(DetTxn* txn, uint64_t key, bool is_write,
                          std::vector<DetTxn*>* newly_ready) REQUIRES(mu_);

  /// Removes `txn`'s (granted) entry for `key` and advances the queue.
  void ReleaseKey(DetTxn* txn, uint64_t key,
                  std::vector<DetTxn*>* newly_ready) REQUIRES(mu_);

  void WorkerLoop();

  Status AccessorRead(const DetTxn* txn, uint64_t key, uint8_t* out);
  Status AccessorWrite(const DetTxn* txn, uint64_t key, const void* data);

  Table* table_;
  Index* index_;
  Options options_;

  mutable Mutex mu_;
  CondVar ready_cv_;
  CondVar done_cv_;
  std::unordered_map<uint64_t, RowQueue> lock_table_ GUARDED_BY(mu_);
  std::deque<DetTxn*> ready_ GUARDED_BY(mu_);
  /// Ownership, append-only.
  std::vector<std::unique_ptr<DetTxn>> txns_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  uint64_t executed_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace next700

#endif  // NEXT700_DET_DETERMINISTIC_H_
