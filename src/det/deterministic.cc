#include "det/deterministic.h"

#include <algorithm>
#include <cstring>

namespace next700 {

Status DetAccessor::Read(uint64_t key, uint8_t* out) {
  return engine_->AccessorRead(txn_, key, out);
}

Status DetAccessor::Write(uint64_t key, const void* data) {
  return engine_->AccessorWrite(txn_, key, data);
}

DeterministicEngine::DeterministicEngine(Table* table, Index* index,
                                         Options options)
    : table_(table), index_(index), options_(options) {
  NEXT700_CHECK(options_.num_workers >= 1);
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DeterministicEngine::~DeterministicEngine() {
  WaitAll();
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  ready_cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

namespace {
void Normalize(std::vector<uint64_t>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}
}  // namespace

uint64_t DeterministicEngine::Submit(std::vector<uint64_t> read_keys,
                                     std::vector<uint64_t> write_keys,
                                     DetLogic logic) {
  Normalize(&read_keys);
  Normalize(&write_keys);
  // A key both read and written is a write.
  read_keys.erase(
      std::remove_if(read_keys.begin(), read_keys.end(),
                     [&](uint64_t k) {
                       return std::binary_search(write_keys.begin(),
                                                 write_keys.end(), k);
                     }),
      read_keys.end());

  auto owned = std::make_unique<DetTxn>();
  DetTxn* txn = owned.get();
  txn->read_keys = std::move(read_keys);
  txn->write_keys = std::move(write_keys);
  txn->logic = std::move(logic);

  bool is_ready;
  uint64_t ticket;
  {
    MutexLock lock(&mu_);
    ticket = txn->seq = next_seq_++;
    txn->pending_locks = static_cast<int>(txn->read_keys.size() +
                                          txn->write_keys.size());
    const bool lock_free = txn->pending_locks == 0;
    txns_.push_back(std::move(owned));

    // Enqueue lock requests in sequence order (we hold the mutex, so the
    // enqueue order across rows is consistent with the sequence). GrantFront
    // adds the txn to newly_ready when its last lock is granted, so only
    // txns with no locks at all need the explicit push.
    std::vector<DetTxn*> newly_ready;
    for (uint64_t key : txn->read_keys) {
      EnqueueLockRequest(txn, key, /*is_write=*/false, &newly_ready);
    }
    for (uint64_t key : txn->write_keys) {
      EnqueueLockRequest(txn, key, /*is_write=*/true, &newly_ready);
    }
    if (lock_free) newly_ready.push_back(txn);
    for (DetTxn* ready : newly_ready) ready_.push_back(ready);
    is_ready = !ready_.empty();
  }
  if (is_ready) ready_cv_.NotifyAll();
  return ticket;
}

void DeterministicEngine::EnqueueLockRequest(
    DetTxn* txn, uint64_t key, bool is_write,
    std::vector<DetTxn*>* newly_ready) {
  RowQueue& queue = lock_table_[key];
  queue.entries.push_back(QueueEntry{txn, is_write, false});
  GrantFront(&queue, newly_ready);
}

void DeterministicEngine::ReleaseKey(DetTxn* txn, uint64_t key,
                                     std::vector<DetTxn*>* newly_ready) {
  auto it = lock_table_.find(key);
  NEXT700_DCHECK(it != lock_table_.end());
  auto& entries = it->second.entries;
  for (auto entry = entries.begin(); entry != entries.end(); ++entry) {
    if (entry->txn == txn) {
      entries.erase(entry);
      break;
    }
  }
  if (entries.empty()) {
    lock_table_.erase(it);
  } else {
    GrantFront(&it->second, newly_ready);
  }
}

void DeterministicEngine::GrantFront(RowQueue* queue,
                                     std::vector<DetTxn*>* newly_ready) {
  // Grant prefix: an exclusive head runs alone; otherwise every leading
  // read is granted together.
  for (auto& entry : queue->entries) {
    if (entry.is_write) {
      if (&entry != &queue->entries.front()) break;  // Write must be head.
      if (!entry.granted) {
        entry.granted = true;
        if (--entry.txn->pending_locks == 0) newly_ready->push_back(entry.txn);
      }
      break;
    }
    if (!entry.granted) {
      entry.granted = true;
      if (--entry.txn->pending_locks == 0) newly_ready->push_back(entry.txn);
    }
  }
}

void DeterministicEngine::WorkerLoop() {
  for (;;) {
    DetTxn* txn;
    {
      MutexLock lock(&mu_);
      while (!stop_ && ready_.empty()) ready_cv_.Wait(&mu_);
      if (ready_.empty()) return;  // stop_ and drained.
      txn = ready_.front();
      ready_.pop_front();
    }

    DetAccessor accessor(this, txn);
    txn->logic(&accessor);

    // Release: remove this txn's entries (each is inside its queue's grant
    // prefix) and advance the queues.
    std::vector<DetTxn*> newly_ready;
    {
      MutexLock lock(&mu_);
      for (uint64_t key : txn->read_keys) ReleaseKey(txn, key, &newly_ready);
      for (uint64_t key : txn->write_keys) ReleaseKey(txn, key, &newly_ready);
      txn->done = true;
      ++executed_;
      for (DetTxn* ready : newly_ready) ready_.push_back(ready);
    }
    done_cv_.NotifyAll();
    if (!newly_ready.empty()) ready_cv_.NotifyAll();
  }
}

void DeterministicEngine::Wait(uint64_t ticket) {
  MutexLock lock(&mu_);
  NEXT700_DCHECK(ticket >= 1 && ticket <= txns_.size());
  while (!txns_[ticket - 1]->done) done_cv_.Wait(&mu_);
}

void DeterministicEngine::WaitAll() {
  MutexLock lock(&mu_);
  while (executed_ != txns_.size()) done_cv_.Wait(&mu_);
}

uint64_t DeterministicEngine::executed() const {
  MutexLock lock(&mu_);
  return executed_;
}

Status DeterministicEngine::AccessorRead(const DetTxn* txn, uint64_t key,
                                         uint8_t* out) {
  (void)txn;
  NEXT700_DCHECK(
      std::binary_search(txn->read_keys.begin(), txn->read_keys.end(), key) ||
      std::binary_search(txn->write_keys.begin(), txn->write_keys.end(),
                         key));
  Row* row = index_->Lookup(key);
  if (row == nullptr || row->deleted()) return Status::NotFound("no row");
  std::memcpy(out, row->data(), table_->schema().row_size());
  return Status::OK();
}

Status DeterministicEngine::AccessorWrite(const DetTxn* txn, uint64_t key,
                                          const void* data) {
  (void)txn;
  NEXT700_DCHECK(std::binary_search(txn->write_keys.begin(),
                                    txn->write_keys.end(), key));
  Row* row = index_->Lookup(key);
  if (row == nullptr || row->deleted()) return Status::NotFound("no row");
  std::memcpy(row->data(), data, table_->schema().row_size());
  return Status::OK();
}

}  // namespace next700
