/// \file
/// Raw io_uring backend — no liburing. Ring setup, mmap layout, and
/// submission/completion bookkeeping are done directly against the kernel
/// ABI (syscall numbers + <linux/io_uring.h> structs), so the repo carries
/// no new dependency. Feature posture:
///  - requires IORING_FEAT_EXT_ARG (5.11+) so Reap timeouts are native;
///    anything older reports unsupported and kAuto falls back to epoll;
///  - multishot accept (5.19+) is probed at runtime: the first -EINVAL
///    completion flips the listener to oneshot-with-resubmit;
///  - a slab of registered buffers serves read paths via READ_FIXED where
///    registration succeeds (locked-memory limits can refuse it), with
///    plain READ as the per-op fallback.
///
/// Ring head/tail words are shared with the kernel; they are accessed with
/// __atomic acquire/release builtins (TSan-visible, fence-free on x86).

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "io/backend_internal.h"
#include "io/io_backend.h"

// Constants newer than some build environments' headers; values are kernel
// ABI and therefore stable.
#ifndef IORING_ACCEPT_MULTISHOT
#define IORING_ACCEPT_MULTISHOT (1U << 0)
#endif
#ifndef IORING_CQE_F_MORE
#define IORING_CQE_F_MORE (1U << 1)
#endif
#ifndef IORING_ASYNC_CANCEL_ALL
#define IORING_ASYNC_CANCEL_ALL (1U << 0)
#endif
#ifndef IORING_ASYNC_CANCEL_FD
#define IORING_ASYNC_CANCEL_FD (1U << 1)
#endif
#ifndef IORING_FEAT_EXT_ARG
#define IORING_FEAT_EXT_ARG (1U << 8)
#endif
#ifndef IORING_ENTER_EXT_ARG
#define IORING_ENTER_EXT_ARG (1U << 3)
#endif

namespace next700 {
namespace io {

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, size_t arg_sz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, arg_sz));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// Local mirrors of post-5.11 uapi structs so older headers still compile;
// layouts are kernel ABI.
struct KernelTimespec {
  int64_t tv_sec;
  long long tv_nsec;
};
struct GetEventsArg {
  uint64_t sigmask;
  uint32_t sigmask_sz;
  uint32_t pad;
  uint64_t ts;
};

/// Cookies reserved for backend-internal operations. Documented contract:
/// callers keep their user_data below this range.
constexpr uint64_t kWakeCookie = ~uint64_t{0};
constexpr uint64_t kCancelCookie = ~uint64_t{0} - 1;

constexpr unsigned kFixedBufCount = 32;
constexpr size_t kFixedBufSize = 64 * 1024;

class UringBackend final : public IoBackend {
 public:
  ~UringBackend() override {
    if (sq_ring_ptr_ != nullptr) ::munmap(sq_ring_ptr_, sq_ring_bytes_);
    if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != sq_ring_ptr_) {
      ::munmap(cq_ring_ptr_, cq_ring_bytes_);
    }
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Init(unsigned queue_depth) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(queue_depth < 2 ? 2 : queue_depth, &params);
    if (ring_fd_ < 0) {
      return Status::Unavailable("io_uring_setup denied: " +
                                 std::string(std::strerror(errno)));
    }
    if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
      return Status::Unavailable(
          "io_uring lacks EXT_ARG (kernel < 5.11); using the epoll path");
    }
    sq_entries_ = params.sq_entries;
    cq_entries_ = params.cq_entries;

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(__u32);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
      sq_ring_bytes_ = cq_ring_bytes_;
    }
    sq_ring_ptr_ =
        ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) {
      sq_ring_ptr_ = nullptr;
      return Status::IOError("io_uring sq ring mmap failed");
    }
    if (single_mmap) {
      cq_ring_ptr_ = sq_ring_ptr_;
    } else {
      cq_ring_ptr_ =
          ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ptr_ == MAP_FAILED) {
        cq_ring_ptr_ = nullptr;
        return Status::IOError("io_uring cq ring mmap failed");
      }
    }
    sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return Status::IOError("io_uring sqe array mmap failed");
    }

    auto* sq_base = static_cast<uint8_t*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_mask_ =
        *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    auto* cq_base = static_cast<uint8_t*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_mask_ =
        *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq_base +
                                                   params.cq_off.cqes);
    sq_tail_local_ = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);

    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return Status::IOError("eventfd failed");

    // Registered read buffers: best-effort (RLIMIT_MEMLOCK can refuse).
    fixed_slab_.resize(kFixedBufCount * kFixedBufSize);
    std::vector<struct iovec> iovs(kFixedBufCount);
    for (unsigned i = 0; i < kFixedBufCount; ++i) {
      iovs[i].iov_base = fixed_slab_.data() + i * kFixedBufSize;
      iovs[i].iov_len = kFixedBufSize;
    }
    if (SysIoUringRegister(ring_fd_, IORING_REGISTER_BUFFERS, iovs.data(),
                           kFixedBufCount) == 0) {
      fixed_ok_ = true;
      for (unsigned i = 0; i < kFixedBufCount; ++i) {
        free_bufs_.push_back(static_cast<int>(i));
      }
    } else {
      fixed_slab_.clear();
      fixed_slab_.shrink_to_fit();
    }

    SubmitWakeRead();
    return Status::OK();
  }

  IoBackendKind kind() const override { return IoBackendKind::kUring; }

  Status SubmitAccept(int listen_fd, uint64_t user_data) override {
    listen_fd_ = listen_fd;
    accept_ud_ = user_data;
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    return ArmAccept();
  }

  Status SubmitRead(int fd, uint8_t* buf, size_t len,
                    uint64_t user_data) override {
    struct io_uring_sqe* sqe = nullptr;
    NEXT700_RETURN_IF_ERROR(GetSqe(&sqe));
    const int buf_index = FixedIndexOf(buf, len);
    sqe->opcode = buf_index >= 0 ? IORING_OP_READ_FIXED : IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(buf);
    sqe->len = static_cast<uint32_t>(len);
    sqe->off = static_cast<uint64_t>(-1);
    if (buf_index >= 0) sqe->buf_index = static_cast<uint16_t>(buf_index);
    sqe->user_data = user_data;
    pending_[user_data] = PendingOp{IoEvent::Op::kRead, fd};
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    PushSqe();
    return Status::OK();
  }

  Status SubmitWritev(int fd, const struct iovec* iov, int iovcnt,
                      uint64_t user_data, bool link) override {
    struct io_uring_sqe* sqe = nullptr;
    NEXT700_RETURN_IF_ERROR(GetSqe(&sqe));
    sqe->opcode = IORING_OP_WRITEV;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(iov);
    sqe->len = static_cast<uint32_t>(iovcnt);
    sqe->off = static_cast<uint64_t>(-1);
    if (link) sqe->flags |= IOSQE_IO_LINK;
    sqe->user_data = user_data;
    pending_[user_data] = PendingOp{IoEvent::Op::kWrite, fd};
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    PushSqe();
    return Status::OK();
  }

  Status SubmitWrite(int fd, const uint8_t* buf, size_t len,
                     uint64_t user_data, bool link) override {
    struct io_uring_sqe* sqe = nullptr;
    NEXT700_RETURN_IF_ERROR(GetSqe(&sqe));
    sqe->opcode = IORING_OP_WRITE;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(buf);
    sqe->len = static_cast<uint32_t>(len);
    sqe->off = static_cast<uint64_t>(-1);
    if (link) sqe->flags |= IOSQE_IO_LINK;
    sqe->user_data = user_data;
    pending_[user_data] = PendingOp{IoEvent::Op::kWrite, fd};
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    PushSqe();
    return Status::OK();
  }

  Status SubmitFsync(int fd, bool datasync, uint64_t user_data) override {
    struct io_uring_sqe* sqe = nullptr;
    NEXT700_RETURN_IF_ERROR(GetSqe(&sqe));
    sqe->opcode = IORING_OP_FSYNC;
    sqe->fd = fd;
    sqe->fsync_flags = datasync ? IORING_FSYNC_DATASYNC : 0;
    sqe->user_data = user_data;
    pending_[user_data] = PendingOp{IoEvent::Op::kFsync, fd};
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    PushSqe();
    return Status::OK();
  }

  void CancelFd(int fd) override {
    bool had_pending = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.fd == fd) {
        had_pending = true;
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (fd == listen_fd_) {
      listen_fd_ = -1;
      had_pending = accept_armed_ || had_pending;
      accept_armed_ = false;
    }
    if (!had_pending) return;
    struct io_uring_sqe* sqe = nullptr;
    if (!GetSqe(&sqe).ok()) return;  // Ring broken; close() wins anyway.
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = fd;
    sqe->cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
    sqe->user_data = kCancelCookie;
    PushSqe();
    // Flush before the caller closes (and the kernel could reuse) the fd:
    // the cancel must target *this* fd's ops, not a successor's.
    (void)FlushSq();
  }

  int Reap(IoEvent* events, int max_events, int timeout_ms) override {
    const Status flushed = FlushSq();
    if (!flushed.ok()) return -EIO;
    PumpCq();
    if (ready_.empty() && timeout_ms != 0) {
      counters_.waits.fetch_add(1, std::memory_order_relaxed);
      counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
      int rc;
      if (timeout_ms < 0) {
        rc = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS,
                             nullptr, 0);
      } else {
        KernelTimespec ts;
        ts.tv_sec = timeout_ms / 1000;
        ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
        GetEventsArg arg;
        std::memset(&arg, 0, sizeof(arg));
        arg.ts = reinterpret_cast<uint64_t>(&ts);
        rc = SysIoUringEnter(ring_fd_, 0, 1,
                             IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                             &arg, sizeof(arg));
      }
      if (rc < 0 && errno != ETIME && errno != EINTR && errno != EBUSY &&
          errno != EAGAIN) {
        return -errno;
      }
      PumpCq();
    }
    int out = 0;
    while (out < max_events && !ready_.empty()) {
      events[out++] = ready_.front();
      ready_.pop_front();
    }
    return out;
  }

  void Wakeup() override {
    const uint64_t one = 1;
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  uint8_t* AcquireReadBuffer(size_t* size) override {
    if (!fixed_ok_ || free_bufs_.empty()) return nullptr;
    const int idx = free_bufs_.back();
    free_bufs_.pop_back();
    *size = kFixedBufSize;
    return fixed_slab_.data() + static_cast<size_t>(idx) * kFixedBufSize;
  }

  void ReleaseReadBuffer(uint8_t* buf) override {
    if (!fixed_ok_ || buf == nullptr) return;
    free_bufs_.push_back(
        static_cast<int>((buf - fixed_slab_.data()) / kFixedBufSize));
  }

 private:
  struct PendingOp {
    IoEvent::Op op;
    int fd;
  };

  int FixedIndexOf(const uint8_t* buf, size_t len) const {
    if (!fixed_ok_ || fixed_slab_.empty()) return -1;
    if (buf < fixed_slab_.data() ||
        buf + len > fixed_slab_.data() + fixed_slab_.size()) {
      return -1;
    }
    const size_t off = static_cast<size_t>(buf - fixed_slab_.data());
    const size_t idx = off / kFixedBufSize;
    // The read must stay inside one registered buffer.
    if (off + len > (idx + 1) * kFixedBufSize) return -1;
    return static_cast<int>(idx);
  }

  /// Hands out the next free SQE, flushing (with bounded retry) when the
  /// ring is full — the short-submission path: a full SQ or a backed-up CQ
  /// is drained and retried instead of failing the submit.
  Status GetSqe(struct io_uring_sqe** out) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      if (sq_tail_local_ - head < sq_entries_) {
        struct io_uring_sqe* sqe = &sqes_[sq_tail_local_ & sq_mask_];
        std::memset(sqe, 0, sizeof(*sqe));
        *out = sqe;
        return Status::OK();
      }
      NEXT700_RETURN_IF_ERROR(FlushSq());
    }
    return Status::IOError("io_uring submission queue stayed full");
  }

  void PushSqe() {
    sq_array_[sq_tail_local_ & sq_mask_] = sq_tail_local_ & sq_mask_;
    ++sq_tail_local_;
    ++unsubmitted_;
  }

  Status FlushSq() {
    if (unsubmitted_ == 0) return Status::OK();
    __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
    int busy_retries = 0;
    while (unsubmitted_ > 0) {
      counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
      const int rc =
          SysIoUringEnter(ring_fd_, unsubmitted_, 0, 0, nullptr, 0);
      if (rc >= 0) {
        unsubmitted_ -= static_cast<unsigned>(rc);
        if (rc == 0) {
          if (++busy_retries > 64) {
            return Status::IOError("io_uring_enter made no progress");
          }
          PumpCq();  // A full CQ blocks submission; make room.
        }
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EBUSY || errno == EAGAIN) {
        if (++busy_retries > 64) {
          return Status::IOError("io_uring_enter kept returning EBUSY");
        }
        PumpCq();
        continue;
      }
      return Status::IOError(std::string("io_uring_enter failed: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  /// Moves every available CQE into ready_, handling internal cookies and
  /// multishot-accept re-arming.
  void PumpCq() {
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    for (;;) {
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) break;
      bool rearm_accept = false;
      bool rearm_wake = false;
      while (head != tail) {
        const struct io_uring_cqe* cqe = &cqes_[head & cq_mask_];
        HandleCqe(*cqe, &rearm_accept, &rearm_wake);
        ++head;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      // Re-arm only after the CQ slots are released: the resubmission may
      // complete inline into the slots we just freed.
      if (rearm_wake) SubmitWakeRead();
      if (rearm_accept && listen_fd_ >= 0) (void)ArmAccept();
    }
  }

  void HandleCqe(const struct io_uring_cqe& cqe, bool* rearm_accept,
                 bool* rearm_wake) {
    if (cqe.user_data == kCancelCookie) return;
    if (cqe.user_data == kWakeCookie) {
      *rearm_wake = true;
      ready_.push_back(IoEvent{0, IoEvent::Op::kWakeup, 0});
      return;
    }
    if (accept_armed_ && cqe.user_data == accept_ud_) {
      if (cqe.res == -EINVAL && multishot_ok_ && !accept_completed_once_) {
        // Kernel too old for IORING_ACCEPT_MULTISHOT: fall back to oneshot
        // accepts resubmitted per completion. No event surfaces.
        multishot_ok_ = false;
        accept_armed_ = false;
        *rearm_accept = true;
        return;
      }
      accept_completed_once_ = true;
      if (!multishot_ok_ || (cqe.flags & IORING_CQE_F_MORE) == 0) {
        accept_armed_ = false;
        *rearm_accept = true;
      }
      if (cqe.res >= 0) {
        counters_.accept_ops.fetch_add(1, std::memory_order_relaxed);
      }
      ready_.push_back(
          IoEvent{cqe.user_data, IoEvent::Op::kAccept, cqe.res});
      return;
    }
    auto it = pending_.find(cqe.user_data);
    if (it == pending_.end()) return;  // Cancelled op's residue.
    const IoEvent::Op op = it->second.op;
    pending_.erase(it);
    switch (op) {
      case IoEvent::Op::kRead:
        counters_.read_ops.fetch_add(1, std::memory_order_relaxed);
        break;
      case IoEvent::Op::kWrite:
        counters_.write_ops.fetch_add(1, std::memory_order_relaxed);
        break;
      case IoEvent::Op::kFsync:
        counters_.fsync_ops.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
    ready_.push_back(IoEvent{cqe.user_data, op, cqe.res});
  }

  Status ArmAccept() {
    struct io_uring_sqe* sqe = nullptr;
    NEXT700_RETURN_IF_ERROR(GetSqe(&sqe));
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = listen_fd_;
    sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    if (multishot_ok_) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->user_data = accept_ud_;
    accept_armed_ = true;
    PushSqe();
    return Status::OK();
  }

  void SubmitWakeRead() {
    struct io_uring_sqe* sqe = nullptr;
    if (!GetSqe(&sqe).ok()) return;
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd_;
    sqe->addr = reinterpret_cast<uint64_t>(&wake_buf_);
    sqe->len = sizeof(wake_buf_);
    sqe->off = static_cast<uint64_t>(-1);
    sqe->user_data = kWakeCookie;
    PushSqe();
  }

  int ring_fd_ = -1;
  int wake_fd_ = -1;
  uint64_t wake_buf_ = 0;

  void* sq_ring_ptr_ = nullptr;
  void* cq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_tail_local_ = 0;
  unsigned unsubmitted_ = 0;

  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;
  unsigned cq_mask_ = 0;
  unsigned cq_entries_ = 0;

  int listen_fd_ = -1;
  uint64_t accept_ud_ = 0;
  bool accept_armed_ = false;
  bool accept_completed_once_ = false;
  bool multishot_ok_ = true;

  bool fixed_ok_ = false;
  std::vector<uint8_t> fixed_slab_;
  std::vector<int> free_bufs_;

  std::unordered_map<uint64_t, PendingOp> pending_;
  std::deque<IoEvent> ready_;
};

}  // namespace

bool UringSupported() {
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = SysIoUringSetup(2, &params);
  if (fd < 0) return false;
  const bool ok = (params.features & IORING_FEAT_EXT_ARG) != 0;
  ::close(fd);
  return ok;
}

Status CreateUringBackend(std::unique_ptr<IoBackend>* out,
                          unsigned queue_depth) {
  auto backend = std::make_unique<UringBackend>();
  NEXT700_RETURN_IF_ERROR(backend->Init(queue_depth));
  *out = std::move(backend);
  return Status::OK();
}

}  // namespace io
}  // namespace next700
