#ifndef NEXT700_IO_BACKEND_INTERNAL_H_
#define NEXT700_IO_BACKEND_INTERNAL_H_

/// \file
/// Internal factory seams between io_backend.cc and the two backend
/// translation units. Not part of the public surface — callers go through
/// CreateIoBackend.

#include <memory>

#include "common/status.h"
#include "io/io_backend.h"

namespace next700 {
namespace io {

Status CreateEpollBackend(std::unique_ptr<IoBackend>* out,
                          unsigned queue_depth);
Status CreateUringBackend(std::unique_ptr<IoBackend>* out,
                          unsigned queue_depth);

}  // namespace io
}  // namespace next700

#endif  // NEXT700_IO_BACKEND_INTERNAL_H_
