#ifndef NEXT700_IO_IO_BACKEND_H_
#define NEXT700_IO_IO_BACKEND_H_

/// \file
/// The async I/O spine: a submission/completion-queue abstraction shared by
/// the network event loop and the log-device flusher. Callers *submit*
/// operations (read, writev, accept, fsync) tagged with a user_data cookie
/// and later *reap* completions — the syscall-per-operation readiness model
/// is gone from the callers, which lets one backend amortize many
/// operations per kernel entry.
///
/// Two implementations:
///  - `uring`: a liburing-free raw io_uring ring (syscall wrappers + ring
///    mmap). Feature-probed at startup: multishot accept and registered
///    read buffers are used where the kernel supports them, with runtime
///    fallbacks where it does not. Write + fsync pairs can be linked into
///    a single submission (the log path's group-commit barrier).
///  - `epoll`: a portable fallback that keeps epoll underneath but
///    preserves the completion-queue surface: submitted writevs are
///    attempted immediately (one gather syscall for every frame queued on
///    a connection) and parked on EPOLLOUT only when the socket is full;
///    accepts and reads are drained per readiness event.
///
/// Threading contract: Submit*/Reap/CancelFd belong to one owner thread
/// (the event loop, or the log flusher — each owner builds its own
/// backend). Wakeup() is the only thread-safe entry point; it surfaces as
/// an Op::kWakeup completion in the owner's Reap. Multi-loop owners (the
/// server's worker loops, the shard router's session loops) fan work
/// across backends by handing descriptors or results to the target loop
/// through their own mailbox and calling that loop's Wakeup() — fds and
/// submissions never migrate between live backends.
///
/// Buffer lifetime: buffers and iovec arrays handed to Submit* must stay
/// valid (and un-moved) until the matching completion is reaped or the fd
/// is cancelled — both backends may hold raw pointers to them.

#include <sys/uio.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace next700 {
namespace io {

enum class IoBackendKind : uint8_t {
  kAuto = 0,   // uring if the kernel allows it, else epoll.
  kUring = 1,  // io_uring, failing loudly where unsupported.
  kEpoll = 2,  // portable batched-epoll fallback.
};

const char* IoBackendKindName(IoBackendKind kind);

/// Parses "auto" / "uring" / "epoll"; returns false on anything else.
bool ParseIoBackendKind(const std::string& name, IoBackendKind* out);

/// One reaped completion.
struct IoEvent {
  enum class Op : uint8_t { kRead, kWrite, kAccept, kFsync, kWakeup };
  uint64_t user_data = 0;
  Op op = Op::kRead;
  /// Bytes transferred (read/write), the new fd (accept), 0 (fsync), or a
  /// negated errno on failure — io_uring CQE conventions in both backends.
  int32_t result = 0;
};

/// Monotonic relaxed counters, readable from any thread. `syscalls` counts
/// actual kernel entries (read/write/accept/fsync/epoll_wait/io_uring_enter),
/// so ops/syscalls is the batching ratio the async spine exists to improve.
struct IoCounters {
  std::atomic<uint64_t> read_ops{0};
  std::atomic<uint64_t> write_ops{0};    // write + writev completions.
  std::atomic<uint64_t> accept_ops{0};
  std::atomic<uint64_t> fsync_ops{0};
  std::atomic<uint64_t> submissions{0};  // Operations submitted.
  std::atomic<uint64_t> syscalls{0};     // Kernel entries issued.
  std::atomic<uint64_t> waits{0};        // Blocking reap waits (wakeups).
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;
  const char* name() const { return IoBackendKindName(kind()); }

  /// Arms a persistent (multishot) accept on `listen_fd`: every accepted
  /// socket arrives as an Op::kAccept completion carrying the new fd,
  /// already nonblocking and close-on-exec. Re-arming is internal.
  virtual Status SubmitAccept(int listen_fd, uint64_t user_data) = 0;

  /// One outstanding read of up to `len` bytes into `buf`. Completes with
  /// bytes read (0 = peer EOF) or a negated errno.
  virtual Status SubmitRead(int fd, uint8_t* buf, size_t len,
                            uint64_t user_data) = 0;

  /// Gather-write. Completes with bytes written, possibly short — the
  /// caller resumes by consuming and resubmitting the remainder. `link`
  /// orders the *next* submitted op on this backend after this one where
  /// the backend supports linking (uring); the epoll backend executes
  /// submissions in order anyway.
  virtual Status SubmitWritev(int fd, const struct iovec* iov, int iovcnt,
                              uint64_t user_data, bool link = false) = 0;

  virtual Status SubmitWrite(int fd, const uint8_t* buf, size_t len,
                             uint64_t user_data, bool link = false) = 0;

  /// Durability barrier (fdatasync when `datasync`). The epoll backend
  /// performs it synchronously at submit and queues the completion.
  virtual Status SubmitFsync(int fd, bool datasync, uint64_t user_data) = 0;

  /// Forgets/cancels every pending operation on `fd`. Call before
  /// close(2): a ring holds a reference to the file, and the epoll backend
  /// holds per-fd state, so closing without cancelling leaks both.
  /// Completions already reaped into the caller's batch may still mention
  /// the fd; callers drop those by cookie lookup.
  virtual void CancelFd(int fd) = 0;

  /// Reaps up to `max_events` completions. timeout_ms: -1 blocks until at
  /// least one completion (or a Wakeup), 0 polls, >0 bounds the wait.
  /// Returns the number of events written, 0 on timeout, or a negated
  /// errno on a broken backend.
  virtual int Reap(IoEvent* events, int max_events, int timeout_ms) = 0;

  /// Thread-safe: wakes a blocked Reap, surfacing one Op::kWakeup event.
  virtual void Wakeup() = 0;

  /// Optional registered-buffer pool (uring fixed buffers). Returns null
  /// when the backend has no pool or it is exhausted; callers fall back to
  /// heap buffers. Reads from a pool buffer skip the per-op pin/unpin.
  virtual uint8_t* AcquireReadBuffer(size_t* size) {
    (void)size;
    return nullptr;
  }
  virtual void ReleaseReadBuffer(uint8_t* buf) { (void)buf; }

  const IoCounters& counters() const { return counters_; }

 protected:
  IoCounters counters_;
};

/// True if this kernel/sandbox lets us set up an io_uring ring.
bool UringSupported();

/// Builds the backend for `kind`. kAuto probes io_uring and falls back to
/// epoll (the fallback is recorded in *out's kind()); kUring fails with
/// kUnavailable where the kernel or sandbox denies io_uring_setup, so CI
/// can skip loudly instead of silently testing the wrong backend.
/// `queue_depth` sizes the ring / pending tables (tests shrink it to
/// exercise the short-submission retry path).
Status CreateIoBackend(IoBackendKind kind, std::unique_ptr<IoBackend>* out,
                       unsigned queue_depth = 256);

}  // namespace io
}  // namespace next700

#endif  // NEXT700_IO_IO_BACKEND_H_
