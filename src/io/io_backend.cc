#include "io/io_backend.h"

#include "io/backend_internal.h"

namespace next700 {
namespace io {

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kAuto:
      return "auto";
    case IoBackendKind::kUring:
      return "uring";
    case IoBackendKind::kEpoll:
      return "epoll";
  }
  return "unknown";
}

bool ParseIoBackendKind(const std::string& name, IoBackendKind* out) {
  if (name == "auto") {
    *out = IoBackendKind::kAuto;
  } else if (name == "uring") {
    *out = IoBackendKind::kUring;
  } else if (name == "epoll") {
    *out = IoBackendKind::kEpoll;
  } else {
    return false;
  }
  return true;
}

Status CreateIoBackend(IoBackendKind kind, std::unique_ptr<IoBackend>* out,
                       unsigned queue_depth) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return CreateEpollBackend(out, queue_depth);
    case IoBackendKind::kUring:
      return CreateUringBackend(out, queue_depth);
    case IoBackendKind::kAuto: {
      const Status uring = CreateUringBackend(out, queue_depth);
      if (uring.ok()) return uring;
      return CreateEpollBackend(out, queue_depth);
    }
  }
  return Status::InvalidArgument("unknown io backend kind");
}

}  // namespace io
}  // namespace next700
