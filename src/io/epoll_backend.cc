/// \file
/// Portable completion-queue emulation over epoll. The readiness model
/// stays inside this file; callers see submit/reap. Batching levers:
///  - a submitted writev is attempted immediately (one gather syscall for
///    everything queued) and parks on EPOLLOUT only when the socket is
///    full, so the common case is zero epoll round-trips per flush;
///  - reads are attempted at submit and per readiness event;
///  - accept readiness drains the backlog in one loop, one completion per
///    accepted socket.
/// Level-triggered spin control: an fd whose readiness fires with no
/// pending operation is lazily disarmed until the next submit re-arms it.

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "io/backend_internal.h"
#include "io/io_backend.h"

namespace next700 {
namespace io {

namespace {

class EpollBackend final : public IoBackend {
 public:
  ~EpollBackend() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      return Status::IOError("epoll backend setup failed: " +
                             std::string(std::strerror(errno)));
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    return Status::OK();
  }

  IoBackendKind kind() const override { return IoBackendKind::kEpoll; }

  Status SubmitAccept(int listen_fd, uint64_t user_data) override {
    FdState& st = fds_[listen_fd];
    st.is_listener = true;
    st.accept_ud = user_data;
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    Rearm(listen_fd, &st, st.armed | EPOLLIN);
    return Status::OK();
  }

  Status SubmitRead(int fd, uint8_t* buf, size_t len,
                    uint64_t user_data) override {
    FdState& st = fds_[fd];
    if (st.read_pending) {
      return Status::InvalidArgument("read already pending on fd");
    }
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    if (st.err_pending != 0) {
      ready_.push_back(IoEvent{user_data, IoEvent::Op::kRead,
                               -st.err_pending});
      return Status::OK();
    }
    st.read_pending = true;
    st.read_buf = buf;
    st.read_len = len;
    st.read_ud = user_data;
    if (!AttemptRead(fd, &st)) Rearm(fd, &st, st.armed | EPOLLIN);
    return Status::OK();
  }

  Status SubmitWritev(int fd, const struct iovec* iov, int iovcnt,
                      uint64_t user_data, bool link) override {
    (void)link;  // Submissions execute in order here anyway.
    FdState& st = fds_[fd];
    if (st.write_pending) {
      return Status::InvalidArgument("write already pending on fd");
    }
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    if (st.err_pending != 0) {
      ready_.push_back(IoEvent{user_data, IoEvent::Op::kWrite,
                               -st.err_pending});
      return Status::OK();
    }
    st.write_pending = true;
    st.write_iov = iov;
    st.write_iovcnt = iovcnt;
    st.write_ud = user_data;
    if (!AttemptWrite(fd, &st)) Rearm(fd, &st, st.armed | EPOLLOUT);
    return Status::OK();
  }

  Status SubmitWrite(int fd, const uint8_t* buf, size_t len,
                     uint64_t user_data, bool link) override {
    FdState& st = fds_[fd];
    st.single_iov.iov_base = const_cast<uint8_t*>(buf);
    st.single_iov.iov_len = len;
    return SubmitWritev(fd, &st.single_iov, 1, user_data, link);
  }

  Status SubmitFsync(int fd, bool datasync, uint64_t user_data) override {
    // epoll cannot wait on fsync; issue the barrier synchronously and queue
    // its completion so the caller's reap loop stays uniform.
    counters_.submissions.fetch_add(1, std::memory_order_relaxed);
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    counters_.fsync_ops.fetch_add(1, std::memory_order_relaxed);
    const int rc = datasync ? ::fdatasync(fd) : ::fsync(fd);
    ready_.push_back(
        IoEvent{user_data, IoEvent::Op::kFsync, rc == 0 ? 0 : -errno});
    return Status::OK();
  }

  void CancelFd(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    if (it->second.armed != 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    }
    fds_.erase(it);
  }

  int Reap(IoEvent* events, int max_events, int timeout_ms) override {
    if (ready_.empty()) {
      epoll_event evs[64];
      if (timeout_ms != 0) {
        counters_.waits.fetch_add(1, std::memory_order_relaxed);
      }
      counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
      const int n = ::epoll_wait(epoll_fd_, evs, 64, timeout_ms);
      if (n < 0) return errno == EINTR ? 0 : -errno;
      for (int i = 0; i < n; ++i) {
        ProcessReadiness(evs[i].data.fd, evs[i].events);
      }
    }
    int out = 0;
    while (out < max_events && !ready_.empty()) {
      events[out++] = ready_.front();
      ready_.pop_front();
    }
    return out;
  }

  void Wakeup() override {
    const uint64_t one = 1;
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

 private:
  struct FdState {
    bool is_listener = false;
    uint64_t accept_ud = 0;
    int err_pending = 0;  // EPOLLERR/EPOLLHUP seen with nothing pending.
    bool read_pending = false;
    uint8_t* read_buf = nullptr;
    size_t read_len = 0;
    uint64_t read_ud = 0;
    bool write_pending = false;
    const struct iovec* write_iov = nullptr;
    int write_iovcnt = 0;
    uint64_t write_ud = 0;
    struct iovec single_iov {};  // Backing store for SubmitWrite.
    uint32_t armed = 0;  // Event mask currently registered with epoll.
  };

  void Rearm(int fd, FdState* st, uint32_t mask) {
    if (mask == st->armed) return;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = mask;
    ev.data.fd = fd;
    const int op = mask == 0          ? EPOLL_CTL_DEL
                   : st->armed == 0   ? EPOLL_CTL_ADD
                                      : EPOLL_CTL_MOD;
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    ::epoll_ctl(epoll_fd_, op, fd, mask == 0 ? nullptr : &ev);
    st->armed = mask;
  }

  /// One read attempt; queues the completion and returns true unless the
  /// socket had nothing (EAGAIN), which leaves the op pending.
  bool AttemptRead(int fd, FdState* st) {
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::read(fd, st->read_buf, st->read_len);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && errno == EINTR) return false;  // Readiness will retry.
    counters_.read_ops.fetch_add(1, std::memory_order_relaxed);
    st->read_pending = false;
    ready_.push_back(IoEvent{st->read_ud, IoEvent::Op::kRead,
                             n >= 0 ? static_cast<int32_t>(n) : -errno});
    return true;
  }

  /// One gather-write attempt; mirrors io_uring short-write semantics (a
  /// partial transfer completes with its byte count; the caller
  /// resubmits). sendmsg instead of writev for MSG_NOSIGNAL: a peer that
  /// closed mid-reply must surface as -EPIPE on the completion, not kill
  /// the process with SIGPIPE. Non-socket fds (the backend's unit tests
  /// drive it against regular files) answer sendmsg with ENOTSOCK and
  /// fall back to plain writev, which cannot raise SIGPIPE on a file.
  bool AttemptWrite(int fd, FdState* st) {
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = const_cast<struct iovec*>(st->write_iov);
    msg.msg_iovlen = static_cast<size_t>(st->write_iovcnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::writev(fd, st->write_iov, st->write_iovcnt);
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && errno == EINTR) return false;
    counters_.write_ops.fetch_add(1, std::memory_order_relaxed);
    st->write_pending = false;
    ready_.push_back(IoEvent{st->write_ud, IoEvent::Op::kWrite,
                             n >= 0 ? static_cast<int32_t>(n) : -errno});
    return true;
  }

  void DrainAccepts(int fd, FdState* st) {
    for (;;) {
      counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
      const int client =
          ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        // Transient (ECONNABORTED, EMFILE, ...): surface one error event so
        // the owner can count it; the listener stays armed.
        ready_.push_back(
            IoEvent{st->accept_ud, IoEvent::Op::kAccept, -errno});
        return;
      }
      counters_.accept_ops.fetch_add(1, std::memory_order_relaxed);
      ready_.push_back(IoEvent{st->accept_ud, IoEvent::Op::kAccept, client});
    }
  }

  void ProcessReadiness(int fd, uint32_t mask) {
    if (fd == wake_fd_) {
      uint64_t drained;
      counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      ready_.push_back(IoEvent{0, IoEvent::Op::kWakeup, 0});
      return;
    }
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
    FdState* st = &it->second;
    if (st->is_listener) {
      DrainAccepts(fd, st);
      return;
    }
    const bool broken = (mask & (EPOLLERR | EPOLLHUP)) != 0;
    if (mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
      if (st->read_pending) {
        if (!AttemptRead(fd, st) && broken) {
          // HUP with a blocked read: the peer is gone; deliver EOF.
          st->read_pending = false;
          ready_.push_back(IoEvent{st->read_ud, IoEvent::Op::kRead, 0});
        }
      }
    }
    if (mask & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
      if (st->write_pending) {
        if (!AttemptWrite(fd, st) && broken) {
          st->write_pending = false;
          ready_.push_back(
              IoEvent{st->write_ud, IoEvent::Op::kWrite, -EPIPE});
        }
      }
    }
    if (broken && !st->read_pending && !st->write_pending) {
      // Nothing outstanding to fail: park the error for the next submit and
      // disarm so the level-triggered error cannot spin the loop.
      st->err_pending = ECONNRESET;
      Rearm(fd, st, 0);
      return;
    }
    // Lazy spin control + parked-op arming in one recompute: EPOLLIN stays
    // only while a read is pending (or this is a listener), EPOLLOUT only
    // while a write is parked.
    uint32_t want = 0;
    if (st->read_pending) want |= EPOLLIN;
    if (st->write_pending) want |= EPOLLOUT;
    Rearm(fd, st, want);
  }

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, FdState> fds_;
  std::deque<IoEvent> ready_;
};

}  // namespace

Status CreateEpollBackend(std::unique_ptr<IoBackend>* out,
                          unsigned queue_depth) {
  (void)queue_depth;  // No ring to size; tables grow on demand.
  auto backend = std::make_unique<EpollBackend>();
  NEXT700_RETURN_IF_ERROR(backend->Init());
  *out = std::move(backend);
  return Status::OK();
}

}  // namespace io
}  // namespace next700
