#ifndef NEXT700_SHARD_SHARD_ROUTER_H_
#define NEXT700_SHARD_SHARD_ROUTER_H_

/// \file
/// Shard router / two-phase-commit coordinator: presents the ordinary
/// next700 wire protocol to clients and spreads the "kv" stored-procedure
/// suite across N independent engine processes (shards), each owning the
/// keys where key % N == shard_id.
///
/// Single-shard requests take the fast path: the router parses just enough
/// of the argument encoding to pick the owning shard, then forwards the
/// client's frame bytes verbatim — no coordinator state, no extra round
/// trip — and relays the shard's response back in per-connection request
/// order. Requests it cannot route (unknown proc id, malformed arguments)
/// go to shard 0 verbatim so error behavior matches a direct connection.
///
/// A kKvRmw whose keys span shards becomes a distributed transaction: the
/// router splits the key set per shard, drives Prepare against every
/// participant, and on unanimous yes votes hardens a kCoordDecision record
/// in its own durable log *before* releasing the client reply or any
/// commit decision (the decision is the commit point). Aborts are not
/// logged — the protocol is presumed-abort: a gtid absent from the
/// decision log did not commit. On (re)connecting to a shard the router
/// asks for the shard's in-doubt gtids and replays decisions from the log
/// scan, which is how participants that crashed after preparing get
/// resolved. A participant that misses its vote deadline is aborted
/// (breaking the cross-shard deadlock of parked prepared transactions).
///
/// Threading: the session tier is N event-loop threads on the src/io/
/// IoBackend spine (uring or batched epoll — the same contract the server
/// uses). Loop 0 owns the persistent accept and round-robins accepted
/// sockets across loops; each loop owns its share of client sessions plus
/// one *forwarding connection per shard*, multiplexed through one backend
/// instance via submitted reads and gathered writev completions. The fast
/// path never leaves its loop: forwards staged across one read burst go
/// out with one gather write per shard link, forward replies pair with a
/// per-link FIFO expectation deque, and the per-session ticket reorder
/// buffer releases client responses in request order with one coalesced
/// writev per session per reap batch. Shard links reconnect with jittered
/// backoff driven by reap timeouts (never a blind sleep), and a link
/// resolves the shard's in-doubt backlog before accepting forwards.
///
/// Cross-shard 2PC runs on a small dedicated coordinator pool — blocking
/// threads with their own shard connections — so event loops never block
/// on votes; the finished reply is posted back to the owning loop through
/// its inbox + Wakeup, and the session's reorder buffer slots it into
/// order. A shared (committed, active) gtid map keeps a reconnecting
/// link's in-doubt sweep from aborting a transaction a coordinator thread
/// is still driving. Stop() is prompt: every blocking wait is sliced
/// against stop_, and WaitShardsConnected parks on a condvar with a
/// deadline rather than a poll loop.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "io/io_backend.h"
#include "log/log_manager.h"
#include "server/client.h"
#include "server/connection.h"
#include "server/protocol.h"

namespace next700 {
namespace shard {

struct ShardRouterOptions {
  std::string listen_host = "127.0.0.1";
  /// 0 = kernel-assigned; read the bound port back with port().
  uint16_t listen_port = 0;
  /// One "host:port" per shard; position in the vector is the shard id.
  std::vector<std::string> shards;
  /// The *global* partition count every shard's engine was configured
  /// with. Forwarded frames carry global partition ids verbatim; prepare
  /// frames derive their per-shard partition sets from this.
  uint32_t num_partitions = 8;
  /// Directory of the coordinator decision log. Commit decisions are
  /// durable here before any reply or decision leaves the router.
  std::string log_dir;
  /// How long the coordinator waits for votes before presuming abort.
  int64_t vote_timeout_ms = 5000;
  /// How long the coordinator waits for decision acks before replying
  /// anyway (the decision is already durable; a slow participant resolves
  /// through in-doubt recovery).
  int64_t ack_timeout_ms = 5000;
  /// Crash hook: _exit(42) right after the prepares of the Nth cross-shard
  /// transaction hit the wire — before the decision is logged. The
  /// crashtest harness uses this to create coordinator in-doubt windows.
  uint64_t crash_after_prepares_sent = 0;
  /// Async backend for the event-loop session tier (kAuto probes uring,
  /// falls back to epoll).
  io::IoBackendKind io_backend = io::IoBackendKind::kAuto;
  /// Event-loop thread count; 0 = auto (min(4, cores/2), at least 1).
  int num_loops = 0;
  /// Blocking 2PC coordinator threads (cross-shard transactions only).
  int coordinator_threads = 2;
};

struct ShardRouterStats {
  std::atomic<uint64_t> forwarded{0};
  std::atomic<uint64_t> cross_shard_commits{0};
  std::atomic<uint64_t> cross_shard_aborts{0};
  std::atomic<uint64_t> vote_timeouts{0};
  std::atomic<uint64_t> resolved_in_doubt{0};
  /// Session lifecycle: live sessions == accepted - closed. The churn test
  /// pins this to zero after disconnect storms (the old thread-per-session
  /// tier leaked a session object + thread handle per dead client).
  std::atomic<uint64_t> sessions_accepted{0};
  std::atomic<uint64_t> sessions_closed{0};
  /// Transient accept4 failures (EMFILE/ENFILE/...) that disarmed the
  /// accept and backed off instead of busy-spinning on readiness.
  std::atomic<uint64_t> accept_errors{0};
  /// Outbound batching on the event loops: frames_batched / writev_batches
  /// is the gather ratio of the fast path.
  std::atomic<uint64_t> writev_batches{0};
  std::atomic<uint64_t> frames_batched{0};
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scans the decision log for prior commits, opens it for appending,
  /// binds the listen socket, and starts the event loops + coordinator
  /// pool. Shard links are established asynchronously; use
  /// WaitShardsConnected() for a deterministic ready point.
  Status Start();
  void Stop();

  /// Bound listen port (after Start()).
  uint16_t port() const { return port_; }

  /// Blocks until every loop's link to every shard is up (its in-doubt
  /// backlog resolved) or `timeout_ms` elapses. Returns true when all
  /// links are up.
  bool WaitShardsConnected(int64_t timeout_ms);

  const ShardRouterStats& stats() const { return stats_; }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(options_.shards.size());
  }

  /// Resolved event-loop count (after Start()).
  uint32_t num_loops() const { return static_cast<uint32_t>(loops_.size()); }

  /// Kernel entries issued by the event-loop backends (live counters plus
  /// those of loops already stopped). Excludes the blocking coordinator
  /// pool — this measures the fast path's syscall budget. Safe to call
  /// while running or after Stop(); not concurrently *with* Stop().
  uint64_t io_syscalls() const;

 private:
  struct RouterLoop;
  struct ShardLink;
  struct Coordinator;

  /// A cross-shard kKvRmw handed from an event loop to the coordinator
  /// pool. Identifies the reply slot by (loop, session id, ticket) — never
  /// by pointer, so a session that dies mid-2PC just drops the result.
  struct CrossShardJob {
    uint32_t loop_index = 0;
    uint64_t session_id = 0;
    uint64_t ticket = 0;
    uint64_t request_id = 0;
    /// Per-shard key slices (index == shard id; empty == not a participant).
    std::vector<std::vector<uint64_t>> shard_keys;
  };

  /// Finished 2PC reply, posted back to the owning loop's inbox.
  struct CoordinatorResult {
    uint64_t session_id = 0;
    uint64_t ticket = 0;
    std::vector<uint8_t> encoded;
  };

  /// What the next reply frame on a shard link answers. The shard server
  /// guarantees per-connection FIFO replies, so a deque of these, pushed
  /// in send order by the owning loop, always matches.
  struct Expectation {
    uint64_t session_id = 0;
    uint64_t ticket = 0;
    /// Echoed in the kUnavailable reply when the link dies with the
    /// forward in flight — a reply with a made-up request id would
    /// desynchronize clients that match responses by id.
    uint64_t request_id = 0;
  };

  // --- Event loop ---------------------------------------------------------
  void LoopRun(RouterLoop* loop);
  int ComputeReapTimeout(RouterLoop* loop) const;
  void ProcessTimers(RouterLoop* loop);
  void DrainInbox(RouterLoop* loop);
  void FlushDirty(RouterLoop* loop);
  void MarkDirty(RouterLoop* loop, uint64_t conn_id);
  void StartConnWrite(RouterLoop* loop, server::Connection* conn);

  // --- Accept path (loop 0) ----------------------------------------------
  void HandleAccept(RouterLoop* loop, int32_t result);
  void AdoptSession(RouterLoop* loop, int fd);

  // --- Client sessions ----------------------------------------------------
  void StartSessionRead(RouterLoop* loop, server::Connection* conn);
  void HandleSessionRead(RouterLoop* loop, server::Connection* conn,
                         int32_t result);
  void HandleSessionWrite(RouterLoop* loop, server::Connection* conn,
                          int32_t result);
  /// Decodes and routes buffered frames; returns false when the session
  /// was closed.
  bool DrainSessionFrames(RouterLoop* loop, server::Connection* conn);
  bool MaybeCloseDrained(RouterLoop* loop, server::Connection* conn);
  void CloseSession(RouterLoop* loop, uint64_t session_id);
  /// FlushOrdered + dirty-mark + drained-close check after a Complete().
  void ReleaseSessionReplies(RouterLoop* loop, server::Connection* conn);
  void ReplyError(RouterLoop* loop, server::Connection* conn, uint64_t ticket,
                  uint64_t request_id, StatusCode code);

  /// Routes one decoded client request. Single-shard forwards are staged
  /// on the owning loop's shard link (one gather write per link per reap
  /// batch); cross-shard kKvRmw is handed to the coordinator pool.
  void RouteRequest(RouterLoop* loop, server::Connection* conn,
                    uint64_t ticket, const server::Frame& frame);
  void StageForward(RouterLoop* loop, server::Connection* conn,
                    uint64_t ticket, uint32_t shard_id,
                    const server::Frame& frame, uint64_t request_id);

  // --- Shard links (per loop, event-driven) -------------------------------
  void StartConnectLink(RouterLoop* loop, ShardLink* link);
  void HandleLinkRead(RouterLoop* loop, ShardLink* link, int32_t result);
  void HandleLinkWrite(RouterLoop* loop, ShardLink* link, int32_t result);
  void StartLinkRead(RouterLoop* loop, ShardLink* link);
  /// Returns false when the link was torn down mid-drain.
  bool DrainLinkFrames(RouterLoop* loop, ShardLink* link);
  bool HandleLinkHandshakeFrame(RouterLoop* loop, ShardLink* link,
                                server::FrameType type,
                                const std::vector<uint8_t>& body);
  bool HandleLinkForwardReply(RouterLoop* loop, ShardLink* link,
                              server::FrameType type,
                              const std::vector<uint8_t>& body);
  void LinkUp(RouterLoop* loop, ShardLink* link);
  /// Fails outstanding expectations with kUnavailable and schedules a
  /// jittered reconnect.
  void TeardownLink(RouterLoop* loop, ShardLink* link);

  // --- Coordinator pool (blocking 2PC) ------------------------------------
  void CoordinatorRun(Coordinator* coord);
  void RunCrossShard(Coordinator* coord, const CrossShardJob& job);
  bool EnsureShardClient(Coordinator* coord, uint32_t shard_id);
  /// In-doubt sweep over a fresh blocking connection; skips gtids a live
  /// coordinator still owns (the active set).
  Status ResolveInDoubtOn(server::Client* client);
  void PostResult(uint32_t loop_index, CoordinatorResult result);
  /// Bounded RecvFrame that slices the wait against stop_.
  Status RecvFrameSliced(server::Client* client, server::FrameType* type,
                         std::vector<uint8_t>* body, int64_t deadline_ms);

  /// committed/active check for one in-doubt gtid, one critical section:
  /// *commit set => replay commit; active set => skip (a live coordinator
  /// owns the outcome); neither => presumed abort.
  void ClassifyInDoubt(uint64_t gtid, bool* commit, bool* skip);

  uint64_t NextGtid() {
    return gtid_base_ + gtid_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  ShardRouterOptions options_;
  ShardRouterStats stats_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  /// Parsed options_.shards.
  std::vector<std::pair<std::string, uint16_t>> shard_addrs_;

  std::unique_ptr<LogManager> decision_log_;
  uint64_t gtid_base_ = 0;
  std::atomic<uint64_t> gtid_seq_{0};
  std::atomic<uint64_t> cross_shard_started_{0};

  mutable Mutex committed_mu_;
  /// Every gtid with a durable commit decision (log scan + runtime).
  std::unordered_set<uint64_t> committed_ GUARDED_BY(committed_mu_);
  /// Gtids whose 2PC a coordinator thread is currently driving. Guarded by
  /// the same mutex as committed_ so an in-doubt sweep classifies a gtid
  /// (committed / active / presumed-abort) in one atomic look — without
  /// this a link reconnect could presume-abort a healthy transaction whose
  /// commit decision is still being logged.
  std::unordered_set<uint64_t> active_gtids_ GUARDED_BY(committed_mu_);

  /// Link-up accounting for WaitShardsConnected.
  mutable Mutex shards_mu_;
  CondVar shards_cv_;
  uint32_t links_up_ GUARDED_BY(shards_mu_) = 0;

  std::vector<std::unique_ptr<RouterLoop>> loops_;
  std::atomic<uint32_t> accept_rr_{0};
  /// Syscalls of backends already destroyed (accumulated in Stop()).
  std::atomic<uint64_t> io_syscalls_retired_{0};

  // Cross-shard job queue feeding the coordinator pool.
  mutable Mutex jobs_mu_;
  CondVar jobs_cv_;
  std::deque<CrossShardJob> jobs_ GUARDED_BY(jobs_mu_);
  bool jobs_stopped_ GUARDED_BY(jobs_mu_) = false;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
};

}  // namespace shard
}  // namespace next700

#endif  // NEXT700_SHARD_SHARD_ROUTER_H_
