#ifndef NEXT700_SHARD_SHARD_ROUTER_H_
#define NEXT700_SHARD_SHARD_ROUTER_H_

/// \file
/// Shard router / two-phase-commit coordinator: presents the ordinary
/// next700 wire protocol to clients and spreads the "kv" stored-procedure
/// suite across N independent engine processes (shards), each owning the
/// keys where key % N == shard_id.
///
/// Single-shard requests take the fast path: the router parses just enough
/// of the argument encoding to pick the owning shard, then forwards the
/// client's frame bytes verbatim — no coordinator state, no extra round
/// trip — and relays the shard's response back in per-connection request
/// order. Requests it cannot route (unknown proc id, malformed arguments)
/// go to shard 0 verbatim so error behavior matches a direct connection.
///
/// A kKvRmw whose keys span shards becomes a distributed transaction: the
/// router splits the key set per shard, drives Prepare against every
/// participant, and on unanimous yes votes hardens a kCoordDecision record
/// in its own durable log *before* releasing the client reply or any
/// commit decision (the decision is the commit point). Aborts are not
/// logged — the protocol is presumed-abort: a gtid absent from the
/// decision log did not commit. On (re)connecting to a shard the router
/// asks for the shard's in-doubt gtids and replays decisions from the log
/// scan, which is how participants that crashed after preparing get
/// resolved. A participant that misses its vote deadline is aborted
/// (breaking the cross-shard deadlock of parked prepared transactions); a
/// late yes vote for an aborted gtid is answered with an immediate
/// kAbortDecision so the parked worker unwinds.
///
/// Threading: one accept thread, one blocking session thread per client
/// connection, one connection + reader thread per shard. Cross-shard
/// transactions run synchronously on the session thread (votes are
/// delivered by shard reader threads); a reorder buffer keyed by
/// per-session ticket keeps client responses in request order even when
/// consecutive requests complete on different shards. This is a routing
/// tier, not the measured engine — clarity beats micro-optimization here.
/// The fast path's syscall budget is still engineered: forwards are
/// staged per shard across one client read burst and sent with one
/// gather write, and shard replies are drained from the decoder and
/// released as one coalesced write per session per burst. The N3
/// benchmark tracks the router-vs-direct throughput ratio (~10% tax with
/// the router on its own cores; capped near 0.5 when it shares one core
/// with the shards — EXPERIMENTS.md N3 has the accounting).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "log/log_manager.h"
#include "server/client.h"
#include "server/protocol.h"

namespace next700 {
namespace shard {

struct ShardRouterOptions {
  std::string listen_host = "127.0.0.1";
  /// 0 = kernel-assigned; read the bound port back with port().
  uint16_t listen_port = 0;
  /// One "host:port" per shard; position in the vector is the shard id.
  std::vector<std::string> shards;
  /// The *global* partition count every shard's engine was configured
  /// with. Forwarded frames carry global partition ids verbatim; prepare
  /// frames derive their per-shard partition sets from this.
  uint32_t num_partitions = 8;
  /// Directory of the coordinator decision log. Commit decisions are
  /// durable here before any reply or decision leaves the router.
  std::string log_dir;
  /// How long the coordinator waits for votes before presuming abort.
  int64_t vote_timeout_ms = 5000;
  /// How long the coordinator waits for decision acks before replying
  /// anyway (the decision is already durable; a slow participant resolves
  /// through in-doubt recovery).
  int64_t ack_timeout_ms = 5000;
  /// Crash hook: _exit(42) right after the prepares of the Nth cross-shard
  /// transaction hit the wire — before the decision is logged. The
  /// crashtest harness uses this to create coordinator in-doubt windows.
  uint64_t crash_after_prepares_sent = 0;
};

struct ShardRouterStats {
  std::atomic<uint64_t> forwarded{0};
  std::atomic<uint64_t> cross_shard_commits{0};
  std::atomic<uint64_t> cross_shard_aborts{0};
  std::atomic<uint64_t> vote_timeouts{0};
  std::atomic<uint64_t> resolved_in_doubt{0};
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scans the decision log for prior commits, opens it for appending,
  /// binds the listen socket, and starts the accept + shard threads.
  /// Shard connections are established asynchronously; use
  /// WaitShardsConnected() for a deterministic ready point.
  Status Start();
  void Stop();

  /// Bound listen port (after Start()).
  uint16_t port() const { return port_; }

  /// Blocks until every shard connection is up (its in-doubt backlog
  /// resolved) or `timeout_ms` elapses. Returns true when all shards are
  /// reachable.
  bool WaitShardsConnected(int64_t timeout_ms);

  const ShardRouterStats& stats() const { return stats_; }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(options_.shards.size());
  }

 private:
  struct GlobalTxn;
  struct ClientSession;
  struct ShardConn;
  struct ForwardBatch;
  struct ReplyBatch;

  /// What the next reply frame on a shard connection answers. The shard
  /// server guarantees per-connection FIFO replies, so a deque of these,
  /// pushed under the same mutex that serializes sends, always matches.
  struct Expectation {
    enum Kind : uint8_t { kForward, kVote, kDecisionAck, kStrayAck };
    Kind kind = kForward;
    std::shared_ptr<ClientSession> session;  // kForward
    uint64_t ticket = 0;                     // kForward
    /// kForward: echoed in the kUnavailable reply when the shard dies
    /// with the forward in flight — a reply with a made-up request id
    /// would desynchronize clients that match responses by id.
    uint64_t request_id = 0;
    std::shared_ptr<GlobalTxn> txn;          // kVote / kDecisionAck
  };

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<ClientSession> session);
  void ShardLoop(ShardConn* sc);

  /// Connect + handshake + in-doubt resolution; marks the shard up.
  bool ConnectShard(ShardConn* sc);
  Status ResolveInDoubt(ShardConn* sc);
  /// Fails every outstanding expectation and marks the shard down.
  void ShardDown(ShardConn* sc);

  /// Pairs one shard reply frame with the head expectation. Forwarded
  /// responses are staged into `replies` (flushed per burst, one send per
  /// client session); votes and decision acks are delivered immediately.
  /// Returns false when the pairing broke and the connection was torn
  /// down.
  bool DispatchShardFrame(ShardConn* sc, server::FrameType type,
                          const std::vector<uint8_t>& body,
                          ReplyBatch* replies);

  /// Routes one decoded client request; returns false when the client
  /// connection is beyond saving and the session must close. Single-shard
  /// forwards are staged into `batch` (one gather send per shard per read
  /// burst — the fast path's syscall budget); cross-shard transactions
  /// flush the batch and run inline.
  bool RouteRequest(const std::shared_ptr<ClientSession>& session,
                    uint64_t ticket, const server::Frame& frame,
                    ForwardBatch* batch);
  void StageForward(const std::shared_ptr<ClientSession>& session,
                    uint64_t ticket, uint32_t shard_id,
                    const server::Frame& frame, uint64_t request_id,
                    ForwardBatch* batch);
  /// Sends every staged forward, one syscall per shard, expectations
  /// queued in wire order. Failed shards get per-request kUnavailable
  /// replies.
  void FlushForwards(const std::shared_ptr<ClientSession>& session,
                     ForwardBatch* batch);
  void RunCrossShard(const std::shared_ptr<ClientSession>& session,
                     uint64_t ticket, uint64_t request_id,
                     const std::vector<std::vector<uint64_t>>& shard_keys);

  /// Sends a frame on a shard connection and queues its expectation as one
  /// atomic step. False if the shard is down or the send failed.
  bool SendToShard(ShardConn* sc, const std::vector<uint8_t>& bytes,
                   Expectation expectation);
  /// Batch variant: one gather send for `bytes`, all expectations queued
  /// under the same lock so the deque order matches the wire order.
  bool SendBatchToShard(ShardConn* sc, const std::vector<uint8_t>& bytes,
                        std::vector<Expectation>* expectations);

  void ReplyError(const std::shared_ptr<ClientSession>& session,
                  uint64_t ticket, uint64_t request_id, StatusCode code);

  uint64_t NextGtid() {
    return gtid_base_ + gtid_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  ShardRouterOptions options_;
  ShardRouterStats stats_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::unique_ptr<LogManager> decision_log_;
  uint64_t gtid_base_ = 0;
  std::atomic<uint64_t> gtid_seq_{0};
  std::atomic<uint64_t> cross_shard_started_{0};

  mutable Mutex committed_mu_;
  /// Every gtid with a durable commit decision (log scan + runtime).
  std::unordered_set<uint64_t> committed_ GUARDED_BY(committed_mu_);

  std::vector<std::unique_ptr<ShardConn>> shard_conns_;

  mutable Mutex sessions_mu_;
  std::vector<std::thread> session_threads_ GUARDED_BY(sessions_mu_);
  std::vector<std::shared_ptr<ClientSession>> sessions_
      GUARDED_BY(sessions_mu_);
};

}  // namespace shard
}  // namespace next700

#endif  // NEXT700_SHARD_SHARD_ROUTER_H_
