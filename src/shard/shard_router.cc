#include "shard/shard_router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/macros.h"
#include "log/recovery.h"
#include "server/procs.h"

namespace next700 {
namespace shard {

using server::FrameType;
using server::PeerRole;

namespace {

/// user_data cookies: the accept uses a fixed cookie; reads and writes pack
/// the connection id (sessions and shard links share one id space per
/// loop, ids start at 1) with the low bit as the read/write discriminator.
constexpr uint64_t kAcceptUd = 1;
uint64_t ReadUd(uint64_t id) { return id << 1; }
uint64_t WriteUd(uint64_t id) { return (id << 1) | 1; }

constexpr size_t kReadBufBytes = 64 * 1024;
constexpr int kMaxEvents = 256;

/// Shard-link reconnect backoff (jittered doubling).
constexpr uint64_t kLinkBackoffMinMs = 20;
constexpr uint64_t kLinkBackoffMaxMs = 1000;
/// Accept-error backoff (EMFILE and friends; satellite of the old
/// busy-spin bug — the listener is disarmed while backing off).
constexpr uint64_t kAcceptBackoffMinMs = 10;
constexpr uint64_t kAcceptBackoffMaxMs = 200;

/// Wall-clock nanoseconds — deliberately not the monotonic clock: gtids
/// must stay unique across router restarts, and the monotonic epoch resets
/// at boot.
uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t MonotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Re-frames a (type, body) pair exactly as the sender framed it — header
/// plus body is byte-identical to the original frame, which is what lets
/// the router relay shard responses without re-encoding.
void AppendFrame(FrameType type, const uint8_t* body, size_t body_len,
                 std::vector<uint8_t>* out) {
  uint8_t header[server::kFrameHeaderBytes];
  server::StoreLE32(static_cast<uint32_t>(body_len), header);
  header[4] = static_cast<uint8_t>(type);
  out->insert(out->end(), header, header + sizeof(header));
  out->insert(out->end(), body, body + body_len);
}

bool ParseHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return false;
  *host = addr.substr(0, colon);
  const long p = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

uint32_t ResolveNumLoops(int requested) {
  if (requested > 0) return static_cast<uint32_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, std::min(4u, hw / 2));
}

}  // namespace

/// One forwarding connection from an event loop to a shard server. The
/// owning loop is the only thread that touches it; the state machine runs
/// off read/write completions. A link accepts forwards only in kUp (after
/// handshake + in-doubt resolution); anything staged while down answers
/// kUnavailable immediately, which keeps the reply stream strictly
/// pairable against the expectation deque.
struct ShardRouter::ShardLink {
  enum class State : uint8_t {
    kDown,     // No connection; retry at retry_deadline_ms.
    kHello,    // Connect + Hello + InDoubtQuery sent; awaiting HelloAck.
    kResolve,  // Awaiting the in-doubt list, then its decision acks.
    kUp,       // Forwarding.
  };

  uint32_t shard_id = 0;
  State state = State::kDown;
  /// The framed transport (outbound queue, decoder, inflight flags);
  /// null while kDown. A fresh Connection (and a fresh id) per connect
  /// attempt keeps stale completions from a dead socket unroutable.
  std::unique_ptr<server::Connection> conn;
  /// FIFO of what each kUp reply frame answers (shard servers reply in
  /// per-connection request order).
  std::deque<Expectation> expect;
  /// Decision acks still owed from in-doubt resolution; -1 until the list
  /// arrives.
  int resolve_pending = -1;
  uint64_t retry_deadline_ms = 0;
  uint64_t backoff_ms = 0;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
};

/// One event-loop thread: an IoBackend instance plus every session and
/// shard link it owns. Only the owning thread touches anything outside
/// `mu`; other threads reach in through the inbox + Wakeup.
struct ShardRouter::RouterLoop {
  uint32_t index = 0;
  std::unique_ptr<io::IoBackend> io;
  std::thread thread;

  uint64_t next_id = 1;
  std::unordered_map<uint64_t, std::unique_ptr<server::Connection>> sessions;
  std::vector<std::unique_ptr<ShardLink>> links;  // index == shard id
  std::unordered_map<uint64_t, ShardLink*> links_by_id;
  /// Connections owed a writev at batch end (ids; flush_pending dedupes).
  std::vector<uint64_t> dirty;

  // Accept state (loop 0 only).
  bool accept_armed = false;
  uint64_t accept_rearm_deadline_ms = 0;
  uint64_t accept_backoff_ms = 0;

  // Cross-thread inbox, drained on Op::kWakeup.
  Mutex mu;
  std::vector<int> pending_fds GUARDED_BY(mu);
  std::vector<CoordinatorResult> pending_results GUARDED_BY(mu);
};

/// One blocking 2PC coordinator thread with its own shard connections
/// (lazily connected; each connect runs the in-doubt sweep first).
struct ShardRouter::Coordinator {
  std::thread thread;
  std::vector<std::unique_ptr<server::Client>> clients;  // index == shard id
};

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK_MSG(!options_.shards.empty(), "router needs >= 1 shard");
  NEXT700_CHECK_MSG(!options_.log_dir.empty(),
                    "router needs a decision log dir");
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  NEXT700_CHECK(!running_);
  gtid_base_ = WallNanos();

  // Prior commit decisions first (the scan reads the existing segments),
  // then open the log for appending (which starts a fresh segment).
  struct stat st;
  if (::stat(options_.log_dir.c_str(), &st) == 0) {
    std::vector<uint64_t> committed;
    NEXT700_RETURN_IF_ERROR(
        ScanCoordinatorDecisions(options_.log_dir, &committed));
    MutexLock lock(&committed_mu_);
    committed_.insert(committed.begin(), committed.end());
  }
  LogManagerOptions log_options;
  log_options.dir = options_.log_dir;
  log_options.sync_policy = LogSyncPolicy::kFdatasync;
  decision_log_ = std::make_unique<LogManager>(log_options);
  NEXT700_RETURN_IF_ERROR(decision_log_->Open());

  for (size_t i = 0; i < options_.shards.size(); ++i) {
    std::string host;
    uint16_t shard_port = 0;
    if (!ParseHostPort(options_.shards[i], &host, &shard_port)) {
      return Status::InvalidArgument("bad shard address: " +
                                     options_.shards[i]);
    }
    shard_addrs_.emplace_back(std::move(host), shard_port);
  }

  // Event loops (and their backends) before the listen socket so a
  // backend-creation failure (kUring on an old kernel) leaks nothing.
  const uint32_t nloops = ResolveNumLoops(options_.num_loops);
  for (uint32_t i = 0; i < nloops; ++i) {
    auto loop = std::make_unique<RouterLoop>();
    loop->index = i;
    NEXT700_RETURN_IF_ERROR(
        io::CreateIoBackend(options_.io_backend, &loop->io));
    for (uint32_t s = 0; s < num_shards(); ++s) {
      auto link = std::make_unique<ShardLink>();
      link->shard_id = s;
      link->rng ^= i * 2654435761ull + s + 1;
      loop->links.push_back(std::move(link));
    }
    loops_.push_back(std::move(loop));
  }

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (::inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad listen host: " + options_.listen_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    return Status::IOError("bind/listen failed: " +
                           std::string(strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  // Arm loop 0's persistent accept before its thread starts (no
  // concurrency yet, so the single-owner contract holds).
  NEXT700_RETURN_IF_ERROR(loops_[0]->io->SubmitAccept(listen_fd_, kAcceptUd));
  loops_[0]->accept_armed = true;

  stop_.store(false, std::memory_order_release);
  {
    MutexLock lock(&shards_mu_);
    links_up_ = 0;
  }
  {
    MutexLock lock(&jobs_mu_);
    jobs_stopped_ = false;
  }
  const int ncoord = std::max(1, options_.coordinator_threads);
  for (int i = 0; i < ncoord; ++i) {
    auto coord = std::make_unique<Coordinator>();
    Coordinator* raw = coord.get();
    raw->thread = std::thread([this, raw] { CoordinatorRun(raw); });
    coordinators_.push_back(std::move(coord));
  }
  for (auto& loop : loops_) {
    RouterLoop* raw = loop.get();
    raw->thread = std::thread([this, raw] { LoopRun(raw); });
  }
  running_ = true;
  return Status::OK();
}

void ShardRouter::Stop() {
  if (loops_.empty() && coordinators_.empty() && listen_fd_ < 0) {
    if (decision_log_ != nullptr) decision_log_->Close();
    return;
  }
  stop_.store(true, std::memory_order_release);

  // Coordinators first: they post into loop inboxes and Wakeup loop
  // backends, so the loops (and their backends) must outlive them.
  {
    MutexLock lock(&jobs_mu_);
    jobs_stopped_ = true;
  }
  jobs_cv_.NotifyAll();
  for (auto& coord : coordinators_) {
    if (coord->thread.joinable()) coord->thread.join();
  }

  for (auto& loop : loops_) {
    if (loop->io != nullptr) loop->io->Wakeup();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  {
    MutexLock lock(&shards_mu_);
  }
  shards_cv_.NotifyAll();  // Unpark WaitShardsConnected; it observes stop_.

  // Loop threads are joined: this thread owns their state now.
  for (auto& loop : loops_) {
    for (auto& [id, conn] : loop->sessions) {
      ::close(conn->fd());
      stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
    }
    loop->sessions.clear();
    for (auto& link : loop->links) {
      if (link->conn != nullptr) {
        ::close(link->conn->fd());
        link->conn.reset();
      }
    }
    loop->links_by_id.clear();
    {
      MutexLock lock(&loop->mu);
      for (const int fd : loop->pending_fds) ::close(fd);
      loop->pending_fds.clear();
      loop->pending_results.clear();
    }
    if (loop->io != nullptr) {
      io_syscalls_retired_.fetch_add(
          loop->io->counters().syscalls.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      loop->io.reset();
    }
  }
  loops_.clear();
  coordinators_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (decision_log_ != nullptr) decision_log_->Close();
  running_ = false;
}

bool ShardRouter::WaitShardsConnected(int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const uint32_t target =
      static_cast<uint32_t>(loops_.size()) * num_shards();
  MutexLock lock(&shards_mu_);
  while (links_up_ < target && !stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    shards_cv_.WaitFor(&shards_mu_, deadline - now);
  }
  return links_up_ >= target;
}

uint64_t ShardRouter::io_syscalls() const {
  uint64_t total = io_syscalls_retired_.load(std::memory_order_relaxed);
  for (const auto& loop : loops_) {
    if (loop->io != nullptr) {
      total += loop->io->counters().syscalls.load(std::memory_order_relaxed);
    }
  }
  return total;
}

// --- Event loop ----------------------------------------------------------

void ShardRouter::LoopRun(RouterLoop* loop) {
  std::vector<io::IoEvent> events(kMaxEvents);
  while (!stop_.load(std::memory_order_acquire)) {
    ProcessTimers(loop);
    FlushDirty(loop);
    const int n =
        loop->io->Reap(events.data(), kMaxEvents, ComputeReapTimeout(loop));
    if (n < 0) break;  // Broken backend; Stop() cleans up.
    for (int i = 0; i < n; ++i) {
      if (stop_.load(std::memory_order_acquire)) return;
      const io::IoEvent& ev = events[i];
      switch (ev.op) {
        case io::IoEvent::Op::kWakeup:
          DrainInbox(loop);
          break;
        case io::IoEvent::Op::kAccept:
          HandleAccept(loop, ev.result);
          break;
        case io::IoEvent::Op::kRead:
        case io::IoEvent::Op::kWrite: {
          const uint64_t id = ev.user_data >> 1;
          const bool is_write = (ev.user_data & 1) != 0;
          auto sit = loop->sessions.find(id);
          if (sit != loop->sessions.end()) {
            server::Connection* conn = sit->second.get();
            if (is_write) {
              HandleSessionWrite(loop, conn, ev.result);
            } else {
              HandleSessionRead(loop, conn, ev.result);
            }
            break;
          }
          auto lit = loop->links_by_id.find(id);
          if (lit != loop->links_by_id.end()) {
            if (is_write) {
              HandleLinkWrite(loop, lit->second, ev.result);
            } else {
              HandleLinkRead(loop, lit->second, ev.result);
            }
          }
          // Neither: a stale completion for a connection already torn
          // down. Drop it.
          break;
        }
        case io::IoEvent::Op::kFsync:
          break;  // The router submits no fsyncs on the loop backends.
      }
    }
  }
}

int ShardRouter::ComputeReapTimeout(RouterLoop* loop) const {
  uint64_t next = UINT64_MAX;
  for (const auto& link : loop->links) {
    if (link->state == ShardLink::State::kDown) {
      next = std::min(next, link->retry_deadline_ms);
    }
  }
  if (loop->index == 0 && !loop->accept_armed) {
    next = std::min(next, loop->accept_rearm_deadline_ms);
  }
  if (next == UINT64_MAX) return -1;  // Nothing timed; block until an event.
  const uint64_t now = MonotonicMs();
  if (next <= now) return 0;
  return static_cast<int>(std::min<uint64_t>(next - now, 60 * 1000));
}

void ShardRouter::ProcessTimers(RouterLoop* loop) {
  const uint64_t now = MonotonicMs();
  for (auto& link : loop->links) {
    if (link->state == ShardLink::State::kDown &&
        link->retry_deadline_ms <= now) {
      StartConnectLink(loop, link.get());
    }
  }
  if (loop->index == 0 && !loop->accept_armed &&
      loop->accept_rearm_deadline_ms <= now) {
    if (loop->io->SubmitAccept(listen_fd_, kAcceptUd).ok()) {
      loop->accept_armed = true;
    } else {
      loop->accept_rearm_deadline_ms = now + kAcceptBackoffMaxMs;
    }
  }
}

void ShardRouter::DrainInbox(RouterLoop* loop) {
  std::vector<int> fds;
  std::vector<CoordinatorResult> results;
  {
    MutexLock lock(&loop->mu);
    fds.swap(loop->pending_fds);
    results.swap(loop->pending_results);
  }
  for (const int fd : fds) AdoptSession(loop, fd);
  for (CoordinatorResult& result : results) {
    auto it = loop->sessions.find(result.session_id);
    if (it == loop->sessions.end()) continue;  // Session died mid-2PC.
    it->second->Complete(result.ticket, std::move(result.encoded));
    ReleaseSessionReplies(loop, it->second.get());
  }
}

void ShardRouter::MarkDirty(RouterLoop* loop, uint64_t conn_id) {
  loop->dirty.push_back(conn_id);
}

void ShardRouter::FlushDirty(RouterLoop* loop) {
  if (loop->dirty.empty()) return;
  // Swap first: teardown/error paths may re-dirty connections.
  std::vector<uint64_t> ids;
  ids.swap(loop->dirty);
  for (const uint64_t id : ids) {
    auto sit = loop->sessions.find(id);
    if (sit != loop->sessions.end()) {
      server::Connection* conn = sit->second.get();
      conn->set_flush_pending(false);
      if (!conn->write_inflight() && conn->has_pending_writes()) {
        StartConnWrite(loop, conn);
      }
      continue;
    }
    auto lit = loop->links_by_id.find(id);
    if (lit != loop->links_by_id.end()) {
      ShardLink* link = lit->second;
      link->conn->set_flush_pending(false);
      if (!link->conn->write_inflight() && link->conn->has_pending_writes()) {
        StartConnWrite(loop, link->conn.get());
      }
    }
  }
}

void ShardRouter::StartConnWrite(RouterLoop* loop, server::Connection* conn) {
  const int iovcnt = conn->BuildIovec(conn->iov());
  if (iovcnt == 0) return;
  const Status submitted = loop->io->SubmitWritev(conn->fd(), conn->iov(),
                                                  iovcnt, WriteUd(conn->id()));
  if (!submitted.ok()) {
    // Surface the failure through the completion path so session close and
    // link teardown stay in one place.
    auto lit = loop->links_by_id.find(conn->id());
    if (lit != loop->links_by_id.end()) {
      TeardownLink(loop, lit->second);
    } else {
      CloseSession(loop, conn->id());
    }
    return;
  }
  conn->set_write_inflight(true);
  stats_.writev_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.frames_batched.fetch_add(static_cast<uint64_t>(iovcnt),
                                  std::memory_order_relaxed);
}

// --- Accept path ---------------------------------------------------------

void ShardRouter::HandleAccept(RouterLoop* loop, int32_t result) {
  if (result < 0) {
    if (result == -ECONNABORTED || result == -EAGAIN || result == -EINTR) {
      return;  // The peer gave up or a spurious wake; the accept stays armed.
    }
    // EMFILE/ENFILE/ENOMEM...: a level-triggered listener would report
    // readiness forever, so disarm and re-arm after a growing backoff
    // instead of spinning a core until an fd frees.
    stats_.accept_errors.fetch_add(1, std::memory_order_relaxed);
    loop->io->CancelFd(listen_fd_);
    loop->accept_armed = false;
    loop->accept_backoff_ms =
        loop->accept_backoff_ms == 0
            ? kAcceptBackoffMinMs
            : std::min(loop->accept_backoff_ms * 2, kAcceptBackoffMaxMs);
    loop->accept_rearm_deadline_ms = MonotonicMs() + loop->accept_backoff_ms;
    return;
  }
  loop->accept_backoff_ms = 0;
  const uint32_t target_index =
      accept_rr_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(loops_.size());
  RouterLoop* target = loops_[target_index].get();
  if (target == loop) {
    AdoptSession(loop, result);
    return;
  }
  {
    MutexLock lock(&target->mu);
    target->pending_fds.push_back(result);
  }
  target->io->Wakeup();
}

void ShardRouter::AdoptSession(RouterLoop* loop, int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const uint64_t id = loop->next_id++;
  auto conn = std::make_unique<server::Connection>(fd, id);
  server::Connection* raw = conn.get();
  loop->sessions.emplace(id, std::move(conn));
  stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
  StartSessionRead(loop, raw);
}

// --- Client sessions -----------------------------------------------------

void ShardRouter::StartSessionRead(RouterLoop* loop,
                                   server::Connection* conn) {
  uint8_t* buf = conn->EnsureReadBuffer(kReadBufBytes);
  const Status submitted =
      loop->io->SubmitRead(conn->fd(), buf, kReadBufBytes, ReadUd(conn->id()));
  if (!submitted.ok()) {
    CloseSession(loop, conn->id());
    return;
  }
  conn->set_read_inflight(true);
}

void ShardRouter::HandleSessionRead(RouterLoop* loop,
                                    server::Connection* conn,
                                    int32_t result) {
  conn->set_read_inflight(false);
  if (result == 0) {
    // Peer EOF: drain what is buffered, then close once every admitted
    // request has been answered and written.
    conn->set_draining();
    if (DrainSessionFrames(loop, conn)) MaybeCloseDrained(loop, conn);
    return;
  }
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      StartSessionRead(loop, conn);
      return;
    }
    CloseSession(loop, conn->id());
    return;
  }
  conn->decoder()->Feed(conn->read_buf(), static_cast<size_t>(result));
  if (!DrainSessionFrames(loop, conn)) return;
  StartSessionRead(loop, conn);
}

void ShardRouter::HandleSessionWrite(RouterLoop* loop,
                                     server::Connection* conn,
                                     int32_t result) {
  conn->set_write_inflight(false);
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      if (conn->has_pending_writes()) StartConnWrite(loop, conn);
      return;
    }
    CloseSession(loop, conn->id());
    return;
  }
  conn->ConsumeWritten(static_cast<size_t>(result));
  if (conn->has_pending_writes()) {
    StartConnWrite(loop, conn);  // Short write: resume the remainder.
    return;
  }
  MaybeCloseDrained(loop, conn);
}

bool ShardRouter::DrainSessionFrames(RouterLoop* loop,
                                     server::Connection* conn) {
  for (;;) {
    server::Frame frame;
    bool have = false;
    if (!conn->decoder()->Next(&frame, &have).ok()) {
      CloseSession(loop, conn->id());
      return false;
    }
    if (!have) return true;
    if (!conn->handshaken()) {
      server::Hello hello;
      if (frame.type != FrameType::kHello ||
          !server::DecodeHello(frame.body, frame.body_len, &hello).ok() ||
          hello.role != PeerRole::kClient) {
        CloseSession(loop, conn->id());
        return false;
      }
      conn->set_handshaken();
      conn->set_peer(PeerRole::kClient);
      std::vector<uint8_t> ack;
      server::EncodeHelloAck(server::HelloAck{}, &ack);
      conn->EnqueueRaw(ack.data(), ack.size());
      if (!conn->flush_pending()) {
        conn->set_flush_pending(true);
        MarkDirty(loop, conn->id());
      }
      continue;
    }
    if (frame.type != FrameType::kRequest) {
      CloseSession(loop, conn->id());
      return false;
    }
    RouteRequest(loop, conn, conn->AdmitRequest(), frame);
  }
}

bool ShardRouter::MaybeCloseDrained(RouterLoop* loop,
                                    server::Connection* conn) {
  if (!conn->draining()) return false;
  if (conn->pending_responses() != 0) return false;
  if (conn->has_pending_writes() || conn->write_inflight()) return false;
  if (conn->decoder()->buffered_bytes() != 0) return false;
  CloseSession(loop, conn->id());
  return true;
}

void ShardRouter::CloseSession(RouterLoop* loop, uint64_t session_id) {
  auto it = loop->sessions.find(session_id);
  if (it == loop->sessions.end()) return;
  server::Connection* conn = it->second.get();
  loop->io->CancelFd(conn->fd());
  ::close(conn->fd());
  loop->sessions.erase(it);
  stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  // Link expectations and in-flight coordinator jobs that still name this
  // session id resolve to nothing at lookup time — no dangling state.
}

void ShardRouter::ReleaseSessionReplies(RouterLoop* loop,
                                        server::Connection* conn) {
  if (conn->FlushOrdered() > 0 && !conn->flush_pending()) {
    conn->set_flush_pending(true);
    MarkDirty(loop, conn->id());
  }
  MaybeCloseDrained(loop, conn);
}

void ShardRouter::ReplyError(RouterLoop* loop, server::Connection* conn,
                             uint64_t ticket, uint64_t request_id,
                             StatusCode code) {
  server::Response response;
  response.request_id = request_id;
  response.status = code;
  std::vector<uint8_t> encoded;
  server::EncodeResponse(response, &encoded);
  conn->Complete(ticket, std::move(encoded));
  ReleaseSessionReplies(loop, conn);
}

// --- Routing -------------------------------------------------------------

void ShardRouter::RouteRequest(RouterLoop* loop, server::Connection* conn,
                               uint64_t ticket, const server::Frame& frame) {
  server::RequestView request;
  if (!server::DecodeRequestView(frame.body, frame.body_len, &request).ok()) {
    // Let a real engine produce the error response so clients see exactly
    // what a direct connection would have said.
    StageForward(loop, conn, ticket, 0, frame, 0);
    return;
  }
  const uint32_t num_shards = this->num_shards();
  server::WireReader args(request.args, request.args_len);
  if (request.proc_id == server::kKvGet || request.proc_id == server::kKvPut) {
    uint64_t key;
    const uint32_t target =
        args.GetU64(&key) ? server::KvShardOf(key, num_shards) : 0;
    StageForward(loop, conn, ticket, target, frame, request.request_id);
    return;
  }
  if (request.proc_id != server::kKvRmw) {
    StageForward(loop, conn, ticket, 0, frame, request.request_id);
    return;
  }
  uint16_t nkeys = 0;
  if (!args.GetU16(&nkeys) || nkeys == 0 ||
      args.remaining() != nkeys * sizeof(uint64_t)) {
    StageForward(loop, conn, ticket, 0, frame, request.request_id);
    return;
  }
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  uint32_t shards_touched = 0;
  uint32_t single = 0;
  for (uint16_t i = 0; i < nkeys; ++i) {
    uint64_t key;
    NEXT700_CHECK(args.GetU64(&key));
    const uint32_t shard = server::KvShardOf(key, num_shards);
    if (shard_keys[shard].empty()) {
      ++shards_touched;
      single = shard;
    }
    shard_keys[shard].push_back(key);
  }
  if (shards_touched == 1) {
    StageForward(loop, conn, ticket, single, frame, request.request_id);
    return;
  }
  // Cross-shard: hand the 2PC run to the coordinator pool — the event loop
  // never blocks on votes. The reply comes back through this loop's inbox
  // and the session's reorder buffer slots it into request order.
  CrossShardJob job;
  job.loop_index = loop->index;
  job.session_id = conn->id();
  job.ticket = ticket;
  job.request_id = request.request_id;
  job.shard_keys = std::move(shard_keys);
  bool queued = false;
  {
    MutexLock lock(&jobs_mu_);
    if (!jobs_stopped_) {
      jobs_.push_back(std::move(job));
      queued = true;
    }
  }
  if (queued) {
    jobs_cv_.NotifyOne();
  } else {
    ReplyError(loop, conn, ticket, request.request_id,
               StatusCode::kUnavailable);
  }
}

void ShardRouter::StageForward(RouterLoop* loop, server::Connection* conn,
                               uint64_t ticket, uint32_t shard_id,
                               const server::Frame& frame,
                               uint64_t request_id) {
  ShardLink* link = loop->links[shard_id].get();
  if (link->state != ShardLink::State::kUp) {
    // The client survives; only this request fails. Accepting forwards on
    // a link mid-handshake would interleave them ahead of the in-doubt
    // decisions and break reply pairing.
    ReplyError(loop, conn, ticket, request_id, StatusCode::kUnavailable);
    return;
  }
  std::vector<uint8_t> bytes;
  AppendFrame(frame.type, frame.body, frame.body_len, &bytes);
  link->conn->EnqueueRaw(bytes.data(), bytes.size());
  Expectation expectation;
  expectation.session_id = conn->id();
  expectation.ticket = ticket;
  expectation.request_id = request_id;
  link->expect.push_back(expectation);
  if (!link->conn->flush_pending()) {
    // Every forward staged on this link within one reap batch rides the
    // same gather write — the fast path's syscall budget.
    link->conn->set_flush_pending(true);
    MarkDirty(loop, link->conn->id());
  }
  stats_.forwarded.fetch_add(1, std::memory_order_relaxed);
}

// --- Shard links ---------------------------------------------------------

void ShardRouter::StartConnectLink(RouterLoop* loop, ShardLink* link) {
  const auto& [host, shard_port] = shard_addrs_[link->shard_id];
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    TeardownLink(loop, link);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(shard_port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    TeardownLink(loop, link);
    return;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    TeardownLink(loop, link);
    return;
  }
  const uint64_t id = loop->next_id++;
  link->conn = std::make_unique<server::Connection>(fd, id);
  loop->links_by_id.emplace(id, link);
  link->state = ShardLink::State::kHello;
  link->resolve_pending = -1;
  // Queue the handshake + in-doubt query now; the backend parks the writev
  // until the (possibly still in-progress) connect makes the socket
  // writable, and a failed connect surfaces as the write error. The read
  // is armed off the first write completion.
  std::vector<uint8_t> bytes;
  server::Hello hello;
  hello.role = PeerRole::kCoordinator;
  server::EncodeHello(hello, &bytes);
  server::EncodeInDoubtQuery(&bytes);
  link->conn->EnqueueRaw(bytes.data(), bytes.size());
  link->conn->set_flush_pending(true);
  MarkDirty(loop, id);
}

void ShardRouter::StartLinkRead(RouterLoop* loop, ShardLink* link) {
  server::Connection* conn = link->conn.get();
  uint8_t* buf = conn->EnsureReadBuffer(kReadBufBytes);
  const Status submitted =
      loop->io->SubmitRead(conn->fd(), buf, kReadBufBytes, ReadUd(conn->id()));
  if (!submitted.ok()) {
    TeardownLink(loop, link);
    return;
  }
  conn->set_read_inflight(true);
}

void ShardRouter::HandleLinkWrite(RouterLoop* loop, ShardLink* link,
                                  int32_t result) {
  server::Connection* conn = link->conn.get();
  conn->set_write_inflight(false);
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      if (conn->has_pending_writes()) StartConnWrite(loop, conn);
      return;
    }
    TeardownLink(loop, link);
    return;
  }
  conn->ConsumeWritten(static_cast<size_t>(result));
  if (conn->has_pending_writes()) {
    StartConnWrite(loop, conn);
    if (link->conn == nullptr) return;  // Submit failure tore the link down.
  }
  if (!conn->read_inflight()) StartLinkRead(loop, link);
}

void ShardRouter::HandleLinkRead(RouterLoop* loop, ShardLink* link,
                                 int32_t result) {
  server::Connection* conn = link->conn.get();
  conn->set_read_inflight(false);
  if (result == 0) {
    TeardownLink(loop, link);
    return;
  }
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      StartLinkRead(loop, link);
      return;
    }
    TeardownLink(loop, link);
    return;
  }
  conn->decoder()->Feed(conn->read_buf(), static_cast<size_t>(result));
  if (!DrainLinkFrames(loop, link)) return;  // Torn down mid-drain.
  StartLinkRead(loop, link);
}

bool ShardRouter::DrainLinkFrames(RouterLoop* loop, ShardLink* link) {
  for (;;) {
    server::Frame frame;
    bool have = false;
    if (!link->conn->decoder()->Next(&frame, &have).ok()) {
      TeardownLink(loop, link);
      return false;
    }
    if (!have) return true;
    const std::vector<uint8_t> body(frame.body, frame.body + frame.body_len);
    bool alive;
    if (link->state == ShardLink::State::kUp) {
      alive = HandleLinkForwardReply(loop, link, frame.type, body);
    } else {
      alive = HandleLinkHandshakeFrame(loop, link, frame.type, body);
    }
    if (!alive) return false;
  }
}

bool ShardRouter::HandleLinkHandshakeFrame(RouterLoop* loop, ShardLink* link,
                                           FrameType type,
                                           const std::vector<uint8_t>& body) {
  if (link->state == ShardLink::State::kHello) {
    server::HelloAck ack;
    if (type != FrameType::kHelloAck ||
        !server::DecodeHelloAck(body.data(), body.size(), &ack).ok()) {
      TeardownLink(loop, link);
      return false;
    }
    link->state = ShardLink::State::kResolve;
    return true;
  }
  NEXT700_CHECK(link->state == ShardLink::State::kResolve);
  if (link->resolve_pending < 0) {
    // First frame after the HelloAck answers the in-doubt query.
    server::InDoubtList list;
    if (type != FrameType::kInDoubtList ||
        !server::DecodeInDoubtList(body.data(), body.size(), &list).ok()) {
      TeardownLink(loop, link);
      return false;
    }
    int sent = 0;
    std::vector<uint8_t> enc;
    for (const uint64_t gtid : list.gtids) {
      bool commit = false;
      bool skip = false;
      ClassifyInDoubt(gtid, &commit, &skip);
      if (skip) continue;  // A live coordinator thread owns this outcome.
      server::Decision decision;
      decision.gtid = gtid;
      enc.clear();
      server::EncodeDecision(commit ? FrameType::kCommitDecision
                                    : FrameType::kAbortDecision,
                             decision, &enc);
      link->conn->EnqueueRaw(enc.data(), enc.size());
      ++sent;
    }
    link->resolve_pending = sent;
    if (sent == 0) {
      LinkUp(loop, link);
      return true;
    }
    if (!link->conn->flush_pending()) {
      link->conn->set_flush_pending(true);
      MarkDirty(loop, link->conn->id());
    }
    return true;
  }
  server::DecisionAck ack;
  if (type != FrameType::kDecisionAck ||
      !server::DecodeDecisionAck(body.data(), body.size(), &ack).ok()) {
    TeardownLink(loop, link);
    return false;
  }
  stats_.resolved_in_doubt.fetch_add(1, std::memory_order_relaxed);
  if (--link->resolve_pending == 0) LinkUp(loop, link);
  return true;
}

bool ShardRouter::HandleLinkForwardReply(RouterLoop* loop, ShardLink* link,
                                         FrameType type,
                                         const std::vector<uint8_t>& body) {
  if (link->expect.empty() || type != FrameType::kResponse) {
    // A reply nothing asked for (or the wrong kind): the FIFO contract is
    // broken and the stream can no longer be paired up.
    TeardownLink(loop, link);
    return false;
  }
  const Expectation e = link->expect.front();
  link->expect.pop_front();
  auto it = loop->sessions.find(e.session_id);
  if (it == loop->sessions.end()) return true;  // Session already closed.
  std::vector<uint8_t> out;
  AppendFrame(type, body.data(), body.size(), &out);
  it->second->Complete(e.ticket, std::move(out));
  ReleaseSessionReplies(loop, it->second.get());
  return true;
}

void ShardRouter::LinkUp(RouterLoop* loop, ShardLink* link) {
  (void)loop;
  link->state = ShardLink::State::kUp;
  link->backoff_ms = 0;
  {
    MutexLock lock(&shards_mu_);
    ++links_up_;
  }
  shards_cv_.NotifyAll();
}

void ShardRouter::TeardownLink(RouterLoop* loop, ShardLink* link) {
  if (link->state == ShardLink::State::kUp) {
    MutexLock lock(&shards_mu_);
    --links_up_;
  }
  if (link->conn != nullptr) {
    loop->io->CancelFd(link->conn->fd());
    ::close(link->conn->fd());
    loop->links_by_id.erase(link->conn->id());
    link->conn.reset();
  }
  std::deque<Expectation> orphans;
  orphans.swap(link->expect);
  link->resolve_pending = -1;
  link->state = ShardLink::State::kDown;
  link->backoff_ms = link->backoff_ms == 0
                         ? kLinkBackoffMinMs
                         : std::min(link->backoff_ms * 2, kLinkBackoffMaxMs);
  const uint64_t half = link->backoff_ms / 2;
  link->retry_deadline_ms =
      MonotonicMs() + half + XorShift64(&link->rng) % (half + 1);
  for (const Expectation& e : orphans) {
    auto it = loop->sessions.find(e.session_id);
    if (it == loop->sessions.end()) continue;
    ReplyError(loop, it->second.get(), e.ticket, e.request_id,
               StatusCode::kUnavailable);
  }
}

// --- Coordinator pool ----------------------------------------------------

void ShardRouter::CoordinatorRun(Coordinator* coord) {
  coord->clients.resize(num_shards());
  for (;;) {
    CrossShardJob job;
    {
      MutexLock lock(&jobs_mu_);
      while (jobs_.empty() && !jobs_stopped_) jobs_cv_.Wait(&jobs_mu_);
      if (jobs_stopped_) break;  // Queued jobs die with the sessions.
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    RunCrossShard(coord, job);
  }
  for (auto& client : coord->clients) {
    if (client != nullptr) client->Close();
  }
}

Status ShardRouter::RecvFrameSliced(server::Client* client, FrameType* type,
                                    std::vector<uint8_t>* body,
                                    int64_t deadline_ms) {
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Unavailable("router stopping");
    }
    const uint64_t now = MonotonicMs();
    if (static_cast<int64_t>(now) >= deadline_ms) {
      return Status::DeadlineExceeded("frame wait timed out");
    }
    // Short slices keep Stop() prompt even mid-vote-wait.
    const int64_t slice =
        std::min<int64_t>(100, deadline_ms - static_cast<int64_t>(now));
    const Status s = client->RecvFrame(type, body, slice);
    if (!s.IsDeadlineExceeded()) return s;
  }
}

void ShardRouter::ClassifyInDoubt(uint64_t gtid, bool* commit, bool* skip) {
  MutexLock lock(&committed_mu_);
  *commit = committed_.count(gtid) != 0;
  // One critical section for both looks: a gtid that is neither committed
  // nor active is decidedly dead (presumed abort). Checking the two sets
  // under separate lock acquisitions would let a live transaction commit
  // between them and be wrongly aborted.
  *skip = !*commit && active_gtids_.count(gtid) != 0;
}

bool ShardRouter::EnsureShardClient(Coordinator* coord, uint32_t shard_id) {
  auto& client = coord->clients[shard_id];
  if (client == nullptr) client = std::make_unique<server::Client>();
  if (client->connected()) return true;
  if (stop_.load(std::memory_order_acquire)) return false;
  const auto& [host, shard_port] = shard_addrs_[shard_id];
  if (!client->Connect(host, shard_port, PeerRole::kCoordinator).ok()) {
    client->Close();
    return false;
  }
  // Resolve the shard's in-doubt backlog before using the connection; the
  // stream carries nothing else yet, so the replies are unambiguous. This
  // is also what un-parks a prepared branch orphaned by a vote timeout.
  if (!ResolveInDoubtOn(client.get()).ok()) {
    client->Close();
    return false;
  }
  return true;
}

Status ShardRouter::ResolveInDoubtOn(server::Client* client) {
  std::vector<uint8_t> enc;
  server::EncodeInDoubtQuery(&enc);
  NEXT700_RETURN_IF_ERROR(client->SendRaw(enc.data(), enc.size()));
  FrameType type;
  std::vector<uint8_t> body;
  NEXT700_RETURN_IF_ERROR(RecvFrameSliced(
      client, &type, &body, static_cast<int64_t>(MonotonicMs()) + 5000));
  if (type != FrameType::kInDoubtList) {
    return Status::InvalidArgument("shard answered in-doubt query with frame " +
                                   std::to_string(static_cast<int>(type)));
  }
  server::InDoubtList list;
  NEXT700_RETURN_IF_ERROR(
      server::DecodeInDoubtList(body.data(), body.size(), &list));
  for (const uint64_t gtid : list.gtids) {
    bool commit = false;
    bool skip = false;
    ClassifyInDoubt(gtid, &commit, &skip);
    if (skip) continue;  // A live coordinator thread owns this outcome.
    server::Decision decision;
    decision.gtid = gtid;
    enc.clear();
    server::EncodeDecision(
        commit ? FrameType::kCommitDecision : FrameType::kAbortDecision,
        decision, &enc);
    NEXT700_RETURN_IF_ERROR(client->SendRaw(enc.data(), enc.size()));
    NEXT700_RETURN_IF_ERROR(RecvFrameSliced(
        client, &type, &body, static_cast<int64_t>(MonotonicMs()) + 5000));
    server::DecisionAck ack;
    if (type != FrameType::kDecisionAck ||
        !server::DecodeDecisionAck(body.data(), body.size(), &ack).ok()) {
      return Status::InvalidArgument("bad decision ack during resolution");
    }
    stats_.resolved_in_doubt.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void ShardRouter::RunCrossShard(Coordinator* coord, const CrossShardJob& job) {
  const uint64_t gtid = NextGtid();
  {
    // Claim the gtid before any prepare leaves: a link's concurrent
    // in-doubt sweep must skip it, not presume abort.
    MutexLock lock(&committed_mu_);
    active_gtids_.insert(gtid);
  }

  std::vector<uint32_t> participants;
  for (uint32_t shard = 0; shard < job.shard_keys.size(); ++shard) {
    if (!job.shard_keys[shard].empty()) participants.push_back(shard);
  }

  // Phase one: one Prepare per participating shard, carrying that shard's
  // slice of the key set (kKvRmw argument encoding) and the global
  // partition ids those keys map to.
  bool any_no = false;
  StatusCode fail_code = StatusCode::kOk;
  std::vector<uint32_t> prepared;
  for (const uint32_t shard : participants) {
    if (!EnsureShardClient(coord, shard)) {
      any_no = true;
      if (fail_code == StatusCode::kOk) fail_code = StatusCode::kUnavailable;
      continue;
    }
    const std::vector<uint64_t>& keys = job.shard_keys[shard];
    server::Prepare prepare;
    prepare.gtid = gtid;
    prepare.proc_id = server::kKvRmw;
    for (const uint64_t key : keys) {
      prepare.partitions.push_back(
          server::KvPartitionOf(key, options_.num_partitions));
    }
    std::sort(prepare.partitions.begin(), prepare.partitions.end());
    prepare.partitions.erase(
        std::unique(prepare.partitions.begin(), prepare.partitions.end()),
        prepare.partitions.end());
    server::WireWriter args(&prepare.args);
    args.PutU16(static_cast<uint16_t>(keys.size()));
    for (const uint64_t key : keys) args.PutU64(key);
    std::vector<uint8_t> bytes;
    server::EncodePrepare(prepare, &bytes);
    if (coord->clients[shard]->SendRaw(bytes.data(), bytes.size()).ok()) {
      prepared.push_back(shard);
    } else {
      coord->clients[shard]->Close();
      any_no = true;
      if (fail_code == StatusCode::kOk) fail_code = StatusCode::kUnavailable;
    }
  }

  if (options_.crash_after_prepares_sent > 0 && !prepared.empty() &&
      cross_shard_started_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          options_.crash_after_prepares_sent) {
    // Coordinator crash window: prepares are out, the decision is not
    // logged. Participants are left in doubt; recovery must abort this
    // gtid (presumed abort) without losing anything acked.
    std::fflush(nullptr);
    ::_exit(42);
  }

  // Collect votes in send order under one absolute deadline (each client
  // is exclusively this thread's, so the per-connection FIFO pairs votes
  // with prepares). A client whose vote never arrived is closed — its
  // stream still owes a frame and could not be paired afterwards.
  const int64_t vote_deadline =
      static_cast<int64_t>(MonotonicMs()) + options_.vote_timeout_ms;
  std::vector<uint32_t> yes_shards;
  bool timed_out = false;
  for (const uint32_t shard : prepared) {
    FrameType type;
    std::vector<uint8_t> body;
    const Status s =
        RecvFrameSliced(coord->clients[shard].get(), &type, &body,
                        vote_deadline);
    if (!s.ok()) {
      coord->clients[shard]->Close();
      any_no = true;
      if (s.IsDeadlineExceeded()) timed_out = true;
      if (fail_code == StatusCode::kOk) {
        fail_code = s.IsDeadlineExceeded() ? StatusCode::kDeadlineExceeded
                                           : StatusCode::kUnavailable;
      }
      continue;
    }
    server::Vote vote;
    if (type != FrameType::kVote ||
        !server::DecodeVote(body.data(), body.size(), &vote).ok() ||
        vote.gtid != gtid) {
      coord->clients[shard]->Close();
      any_no = true;
      if (fail_code == StatusCode::kOk) fail_code = StatusCode::kUnavailable;
      continue;
    }
    if (vote.status == StatusCode::kOk) {
      yes_shards.push_back(shard);
    } else {
      any_no = true;
      if (fail_code == StatusCode::kOk) fail_code = vote.status;
    }
  }
  if (timed_out) {
    stats_.vote_timeouts.fetch_add(1, std::memory_order_relaxed);
  }

  bool commit = !any_no;
  uint64_t decision_lsn = 0;
  if (commit) {
    // The commit point: the decision is durable in the coordinator log
    // before any reply or decision frame leaves this process. Aborts are
    // never logged (presumed abort).
    uint8_t decision_body[8];
    server::StoreLE64(gtid, decision_body);
    decision_lsn = decision_log_->Append(LogRecordType::kCoordDecision,
                                         decision_body, sizeof(decision_body));
    const Status durable = decision_log_->WaitDurable(decision_lsn);
    if (!durable.ok()) {
      // Decision log device failure: we cannot claim the commit point, and
      // we must not commit without it. Abort instead.
      commit = false;
      fail_code = durable.code();
    } else {
      MutexLock lock(&committed_mu_);
      committed_.insert(gtid);
    }
  }

  // Phase two: decisions to every shard that voted yes (the others already
  // rolled back when they voted no — presumed abort needs no message, but
  // a yes-voter is parked until told). Acks are awaited (bounded) so a
  // committed transaction is visible on every participant before the
  // client hears about it; a straggler resolves through in-doubt recovery.
  server::Decision decision;
  decision.gtid = gtid;
  std::vector<uint8_t> decision_bytes;
  server::EncodeDecision(
      commit ? FrameType::kCommitDecision : FrameType::kAbortDecision,
      decision, &decision_bytes);
  const int64_t ack_deadline =
      static_cast<int64_t>(MonotonicMs()) + options_.ack_timeout_ms;
  for (const uint32_t shard : yes_shards) {
    server::Client* client = coord->clients[shard].get();
    if (!client->SendRaw(decision_bytes.data(), decision_bytes.size()).ok()) {
      client->Close();  // In-doubt recovery replays the decision later.
      continue;
    }
    FrameType type;
    std::vector<uint8_t> body;
    const Status s = RecvFrameSliced(client, &type, &body, ack_deadline);
    server::DecisionAck ack;
    if (!s.ok() || type != FrameType::kDecisionAck ||
        !server::DecodeDecisionAck(body.data(), body.size(), &ack).ok()) {
      client->Close();
      continue;
    }
  }

  {
    MutexLock lock(&committed_mu_);
    active_gtids_.erase(gtid);
  }

  // Reconnect (with in-doubt sweep) any participant we closed above: a
  // branch that voted yes after the deadline is parked prepared, and the
  // sweep's presumed abort is what unwinds it now rather than at the next
  // cross-shard transaction.
  if (!stop_.load(std::memory_order_acquire)) {
    for (const uint32_t shard : participants) {
      auto& client = coord->clients[shard];
      if (client != nullptr && client->connected()) continue;
      EnsureShardClient(coord, shard);  // Best effort.
    }
  }

  if (commit) {
    stats_.cross_shard_commits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.cross_shard_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  server::Response response;
  response.request_id = job.request_id;
  response.status = commit ? StatusCode::kOk
                           : (fail_code == StatusCode::kOk
                                  ? StatusCode::kAborted
                                  : fail_code);
  response.commit_lsn = decision_lsn;
  CoordinatorResult result;
  result.session_id = job.session_id;
  result.ticket = job.ticket;
  server::EncodeResponse(response, &result.encoded);
  PostResult(job.loop_index, std::move(result));
}

void ShardRouter::PostResult(uint32_t loop_index, CoordinatorResult result) {
  // Stop() joins the coordinator pool before the loops, so the target loop
  // and its backend are alive for the Wakeup even mid-shutdown.
  RouterLoop* loop = loops_[loop_index].get();
  {
    MutexLock lock(&loop->mu);
    loop->pending_results.push_back(std::move(result));
  }
  loop->io->Wakeup();
}

}  // namespace shard
}  // namespace next700
