#include "shard/shard_router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/macros.h"
#include "log/recovery.h"
#include "server/procs.h"

namespace next700 {
namespace shard {

using server::FrameType;
using server::PeerRole;

namespace {

/// Wall-clock nanoseconds — deliberately not the monotonic clock: gtids
/// must stay unique across router restarts, and the monotonic epoch resets
/// at boot.
uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t MonotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Re-frames a (type, body) pair exactly as the sender framed it — header
/// plus body is byte-identical to the original frame, which is what lets
/// the router relay shard responses without re-encoding.
void AppendFrame(FrameType type, const uint8_t* body, size_t body_len,
                 std::vector<uint8_t>* out) {
  uint8_t header[server::kFrameHeaderBytes];
  server::StoreLE32(static_cast<uint32_t>(body_len), header);
  header[4] = static_cast<uint8_t>(type);
  out->insert(out->end(), header, header + sizeof(header));
  out->insert(out->end(), body, body + body_len);
}

bool ParseHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return false;
  *host = addr.substr(0, colon);
  const long p = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

/// One accepted client connection. Shard reader threads complete tickets
/// out of order; the reorder buffer releases frames to the socket strictly
/// in ticket order, preserving the wire protocol's per-connection FIFO.
struct ShardRouter::ClientSession {
  int fd = -1;
  std::atomic<bool> closed{false};

  Mutex mu;
  uint64_t next_to_send GUARDED_BY(mu) = 0;
  std::map<uint64_t, std::vector<uint8_t>> ready GUARDED_BY(mu);

  ~ClientSession() {
    if (fd >= 0) ::close(fd);
  }

  /// Delivers one response frame for `ticket`; writes every newly
  /// contiguous frame to the client, coalesced into a single send so a
  /// burst of shard replies costs one syscall instead of one per ticket.
  /// Blocking send under the session mutex is fine here: the only other
  /// contenders are reader threads completing other tickets of the same
  /// client.
  void CompleteTicket(uint64_t ticket, std::vector<uint8_t> frame) {
    MutexLock lock(&mu);
    ready.emplace(ticket, std::move(frame));
    FlushReady();
  }

  /// Batch variant: a shard reader delivering a whole reply burst for this
  /// session pays one lock and (at most) one send for all of it.
  void CompleteTickets(
      std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* batch) {
    MutexLock lock(&mu);
    for (auto& [ticket, frame] : *batch) {
      ready.emplace(ticket, std::move(frame));
    }
    FlushReady();
  }

  void FlushReady() REQUIRES(mu) {
    auto it = ready.find(next_to_send);
    if (it == ready.end()) return;
    std::vector<uint8_t> burst = std::move(it->second);
    ready.erase(it);
    ++next_to_send;
    while ((it = ready.find(next_to_send)) != ready.end()) {
      burst.insert(burst.end(), it->second.begin(), it->second.end());
      ready.erase(it);
      ++next_to_send;
    }
    if (!WriteAll(burst)) closed.store(true, std::memory_order_release);
  }

  bool WriteAll(const std::vector<uint8_t>& bytes) REQUIRES(mu) {
    if (closed.load(std::memory_order_acquire)) return false;
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }
};

/// One upstream shard: a coordinator-role connection plus the FIFO of
/// expectations its reply stream must answer. `mu` serializes sends with
/// expectation pushes so the deque order always matches the wire order;
/// the reader thread is the only receiver and manages connect/teardown.
struct ShardRouter::ShardConn {
  uint32_t shard_id = 0;
  std::string host;
  uint16_t port = 0;

  Mutex mu;
  server::Client client;  // Sends under mu; reader thread receives.
  bool up GUARDED_BY(mu) = false;
  std::deque<Expectation> expect GUARDED_BY(mu);
  std::thread reader;
};

/// Per-read-burst staging area for single-shard forwards. The session
/// thread decodes a whole socket read's worth of requests, appends each
/// forward's frame bytes to its target shard's buffer, and then flushes
/// every shard with one gather send — the syscall-per-frame cost this
/// replaces was the router fast path's dominant overhead. Owned by one
/// session thread; never shared.
struct ShardRouter::ForwardBatch {
  struct PerShard {
    std::vector<uint8_t> bytes;
    std::vector<Expectation> expectations;
    /// (ticket, request_id) per staged frame, for kUnavailable replies
    /// when the whole batch fails to send.
    std::vector<std::pair<uint64_t, uint64_t>> ids;
  };
  explicit ForwardBatch(uint32_t num_shards) : shards(num_shards) {}
  std::vector<PerShard> shards;
};

/// Per-reply-burst staging area on a shard reader thread: forwarded
/// responses grouped by client session so each session pays one lock and
/// one coalesced send per burst instead of one per reply. Linear scan —
/// a burst rarely spans more than a handful of sessions.
struct ShardRouter::ReplyBatch {
  std::vector<std::pair<std::shared_ptr<ClientSession>,
                        std::vector<std::pair<uint64_t, std::vector<uint8_t>>>>>
      sessions;

  void Stage(const std::shared_ptr<ClientSession>& session, uint64_t ticket,
             std::vector<uint8_t> frame) {
    for (auto& entry : sessions) {
      if (entry.first == session) {
        entry.second.emplace_back(ticket, std::move(frame));
        return;
      }
    }
    sessions.emplace_back(
        session, std::vector<std::pair<uint64_t, std::vector<uint8_t>>>{});
    sessions.back().second.emplace_back(ticket, std::move(frame));
  }

  void Flush() {
    for (auto& [session, completions] : sessions) {
      session->CompleteTickets(&completions);
    }
    sessions.clear();
  }
};

/// Coordinator-side state of one cross-shard transaction. The session
/// thread owns the decision; shard reader threads deliver votes and acks.
struct ShardRouter::GlobalTxn {
  uint64_t gtid = 0;

  Mutex mu;
  CondVar cv;
  int votes_outstanding GUARDED_BY(mu) = 0;
  bool any_no GUARDED_BY(mu) = false;
  StatusCode no_status GUARDED_BY(mu) = StatusCode::kOk;
  bool decided GUARDED_BY(mu) = false;
  bool commit GUARDED_BY(mu) = false;
  std::vector<uint32_t> yes_shards GUARDED_BY(mu);
  int acks_outstanding GUARDED_BY(mu) = 0;
};

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK_MSG(!options_.shards.empty(), "router needs >= 1 shard");
  NEXT700_CHECK_MSG(!options_.log_dir.empty(),
                    "router needs a decision log dir");
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  NEXT700_CHECK(listen_fd_ < 0);
  gtid_base_ = WallNanos();

  // Prior commit decisions first (the scan reads the existing segments),
  // then open the log for appending (which starts a fresh segment).
  struct stat st;
  if (::stat(options_.log_dir.c_str(), &st) == 0) {
    std::vector<uint64_t> committed;
    NEXT700_RETURN_IF_ERROR(
        ScanCoordinatorDecisions(options_.log_dir, &committed));
    MutexLock lock(&committed_mu_);
    committed_.insert(committed.begin(), committed.end());
  }
  LogManagerOptions log_options;
  log_options.dir = options_.log_dir;
  log_options.sync_policy = LogSyncPolicy::kFdatasync;
  decision_log_ = std::make_unique<LogManager>(log_options);
  NEXT700_RETURN_IF_ERROR(decision_log_->Open());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (::inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad listen host: " + options_.listen_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    return Status::IOError("bind/listen failed: " +
                           std::string(strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  for (size_t i = 0; i < options_.shards.size(); ++i) {
    auto sc = std::make_unique<ShardConn>();
    sc->shard_id = static_cast<uint32_t>(i);
    if (!ParseHostPort(options_.shards[i], &sc->host, &sc->port)) {
      return Status::InvalidArgument("bad shard address: " +
                                     options_.shards[i]);
    }
    shard_conns_.push_back(std::move(sc));
  }

  stop_.store(false, std::memory_order_release);
  for (auto& sc : shard_conns_) {
    ShardConn* raw = sc.get();
    raw->reader = std::thread([this, raw] { ShardLoop(raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardRouter::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    MutexLock lock(&sessions_mu_);
    for (auto& session : sessions_) {
      session->closed.store(true, std::memory_order_release);
      ::shutdown(session->fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> session_threads;
  {
    MutexLock lock(&sessions_mu_);
    session_threads.swap(session_threads_);
  }
  for (auto& t : session_threads) t.join();
  for (auto& sc : shard_conns_) {
    if (sc->reader.joinable()) sc->reader.join();
  }
  shard_conns_.clear();
  if (decision_log_ != nullptr) decision_log_->Close();
}

bool ShardRouter::WaitShardsConnected(int64_t timeout_ms) {
  const uint64_t deadline = MonotonicMs() + static_cast<uint64_t>(timeout_ms);
  for (;;) {
    bool all_up = true;
    for (auto& sc : shard_conns_) {
      MutexLock lock(&sc->mu);
      if (!sc->up) all_up = false;
    }
    if (all_up) return true;
    if (MonotonicMs() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- Accept + client sessions ------------------------------------------

void ShardRouter::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<ClientSession>();
    session->fd = fd;
    MutexLock lock(&sessions_mu_);
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { SessionLoop(session); });
  }
}

void ShardRouter::SessionLoop(std::shared_ptr<ClientSession> session) {
  server::FrameDecoder decoder;
  bool handshaken = false;
  uint64_t next_ticket = 0;
  uint8_t buf[64 * 1024];
  ForwardBatch batch(num_shards());
  while (!stop_.load(std::memory_order_acquire) &&
         !session->closed.load(std::memory_order_acquire)) {
    pollfd pfd{session->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::read(session->fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    for (;;) {
      server::Frame frame;
      bool have = false;
      if (!decoder.Next(&frame, &have).ok()) {
        session->closed.store(true, std::memory_order_release);
        break;
      }
      if (!have) break;
      if (!handshaken) {
        server::Hello hello;
        if (frame.type != FrameType::kHello ||
            !server::DecodeHello(frame.body, frame.body_len, &hello).ok() ||
            hello.role != PeerRole::kClient) {
          session->closed.store(true, std::memory_order_release);
          break;
        }
        std::vector<uint8_t> ack;
        server::EncodeHelloAck(server::HelloAck{}, &ack);
        {
          MutexLock lock(&session->mu);
          if (!session->WriteAll(ack)) {
            session->closed.store(true, std::memory_order_release);
          }
        }
        handshaken = true;
        continue;
      }
      if (frame.type != FrameType::kRequest) {
        session->closed.store(true, std::memory_order_release);
        break;
      }
      if (!RouteRequest(session, next_ticket++, frame, &batch)) {
        session->closed.store(true, std::memory_order_release);
        break;
      }
    }
    // End of the read burst: everything staged goes out, one send per
    // shard. (A cross-shard transaction inside the burst already flushed
    // ahead of itself to preserve per-connection order.)
    FlushForwards(session, &batch);
  }
  session->closed.store(true, std::memory_order_release);
}

// --- Routing ------------------------------------------------------------

bool ShardRouter::RouteRequest(const std::shared_ptr<ClientSession>& session,
                               uint64_t ticket, const server::Frame& frame,
                               ForwardBatch* batch) {
  server::RequestView request;
  if (!server::DecodeRequestView(frame.body, frame.body_len, &request).ok()) {
    // Let a real engine produce the error response so clients see exactly
    // what a direct connection would have said.
    StageForward(session, ticket, 0, frame, 0, batch);
    return true;
  }
  const uint32_t num_shards = this->num_shards();
  server::WireReader args(request.args, request.args_len);
  if (request.proc_id == server::kKvGet || request.proc_id == server::kKvPut) {
    uint64_t key;
    const uint32_t target =
        args.GetU64(&key) ? server::KvShardOf(key, num_shards) : 0;
    StageForward(session, ticket, target, frame, request.request_id, batch);
    return true;
  }
  if (request.proc_id != server::kKvRmw) {
    StageForward(session, ticket, 0, frame, request.request_id, batch);
    return true;
  }
  uint16_t nkeys = 0;
  if (!args.GetU16(&nkeys) || nkeys == 0 ||
      args.remaining() != nkeys * sizeof(uint64_t)) {
    StageForward(session, ticket, 0, frame, request.request_id, batch);
    return true;
  }
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  uint32_t shards_touched = 0;
  uint32_t single = 0;
  for (uint16_t i = 0; i < nkeys; ++i) {
    uint64_t key;
    NEXT700_CHECK(args.GetU64(&key));
    const uint32_t shard = server::KvShardOf(key, num_shards);
    if (shard_keys[shard].empty()) {
      ++shards_touched;
      single = shard;
    }
    shard_keys[shard].push_back(key);
  }
  if (shards_touched == 1) {
    StageForward(session, ticket, single, frame, request.request_id, batch);
    return true;
  }
  // The 2PC run blocks this thread on votes; staged forwards must not sit
  // behind that wait, and prepares must not overtake earlier forwards on
  // the same shard connection.
  FlushForwards(session, batch);
  RunCrossShard(session, ticket, request.request_id, shard_keys);
  return true;
}

void ShardRouter::StageForward(const std::shared_ptr<ClientSession>& session,
                               uint64_t ticket, uint32_t shard_id,
                               const server::Frame& frame, uint64_t request_id,
                               ForwardBatch* batch) {
  ForwardBatch::PerShard& per = batch->shards[shard_id];
  AppendFrame(frame.type, frame.body, frame.body_len, &per.bytes);
  Expectation expectation;
  expectation.kind = Expectation::kForward;
  expectation.session = session;
  expectation.ticket = ticket;
  expectation.request_id = request_id;
  per.expectations.push_back(std::move(expectation));
  per.ids.emplace_back(ticket, request_id);
}

void ShardRouter::FlushForwards(const std::shared_ptr<ClientSession>& session,
                                ForwardBatch* batch) {
  for (uint32_t shard = 0; shard < batch->shards.size(); ++shard) {
    ForwardBatch::PerShard& per = batch->shards[shard];
    if (per.bytes.empty()) continue;
    const uint64_t count = per.expectations.size();
    if (SendBatchToShard(shard_conns_[shard].get(), per.bytes,
                         &per.expectations)) {
      stats_.forwarded.fetch_add(count, std::memory_order_relaxed);
    } else {
      // The clients survive; only these requests failed.
      for (const auto& [ticket, request_id] : per.ids) {
        ReplyError(session, ticket, request_id, StatusCode::kUnavailable);
      }
    }
    per.bytes.clear();
    per.expectations.clear();
    per.ids.clear();
  }
}

void ShardRouter::RunCrossShard(
    const std::shared_ptr<ClientSession>& session, uint64_t ticket,
    uint64_t request_id,
    const std::vector<std::vector<uint64_t>>& shard_keys) {
  auto txn = std::make_shared<GlobalTxn>();
  txn->gtid = NextGtid();

  // Phase one: one Prepare per participating shard, carrying that shard's
  // slice of the key set (kKvRmw argument encoding) and the global
  // partition ids those keys map to.
  std::vector<uint32_t> participants;
  for (uint32_t shard = 0; shard < shard_keys.size(); ++shard) {
    if (!shard_keys[shard].empty()) participants.push_back(shard);
  }
  {
    MutexLock lock(&txn->mu);
    txn->votes_outstanding = static_cast<int>(participants.size());
  }
  int sent = 0;
  for (const uint32_t shard : participants) {
    const std::vector<uint64_t>& keys = shard_keys[shard];
    server::Prepare prepare;
    prepare.gtid = txn->gtid;
    prepare.proc_id = server::kKvRmw;
    for (const uint64_t key : keys) {
      prepare.partitions.push_back(
          server::KvPartitionOf(key, options_.num_partitions));
    }
    std::sort(prepare.partitions.begin(), prepare.partitions.end());
    prepare.partitions.erase(
        std::unique(prepare.partitions.begin(), prepare.partitions.end()),
        prepare.partitions.end());
    server::WireWriter args(&prepare.args);
    args.PutU16(static_cast<uint16_t>(keys.size()));
    for (const uint64_t key : keys) args.PutU64(key);
    std::vector<uint8_t> bytes;
    server::EncodePrepare(prepare, &bytes);
    Expectation expectation;
    expectation.kind = Expectation::kVote;
    expectation.txn = txn;
    if (SendToShard(shard_conns_[shard].get(), bytes,
                    std::move(expectation))) {
      ++sent;
    } else {
      MutexLock lock(&txn->mu);
      txn->any_no = true;
      txn->no_status = StatusCode::kUnavailable;
      --txn->votes_outstanding;
    }
  }

  if (options_.crash_after_prepares_sent > 0 && sent > 0 &&
      cross_shard_started_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          options_.crash_after_prepares_sent) {
    // Coordinator crash window: prepares are out, the decision is not
    // logged. Participants are left in doubt; recovery must abort this
    // gtid (presumed abort) without losing anything acked.
    std::fflush(nullptr);
    ::_exit(42);
  }

  // Collect votes (session thread blocks; shard readers deliver).
  bool commit;
  StatusCode fail_code;
  std::vector<uint32_t> yes_shards;
  {
    MutexLock lock(&txn->mu);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.vote_timeout_ms);
    while (txn->votes_outstanding > 0 && !txn->any_no) {
      if (txn->cv.WaitFor(&txn->mu, deadline -
                                        std::chrono::steady_clock::now()) ==
              std::cv_status::timeout &&
          txn->votes_outstanding > 0) {
        txn->any_no = true;
        txn->no_status = StatusCode::kDeadlineExceeded;
        stats_.vote_timeouts.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    commit = !txn->any_no;
    fail_code = txn->no_status;
    txn->decided = true;
    txn->commit = commit;
    yes_shards = txn->yes_shards;
  }

  uint64_t decision_lsn = 0;
  if (commit) {
    // The commit point: the decision is durable in the coordinator log
    // before any reply or decision frame leaves this process. Aborts are
    // never logged (presumed abort).
    uint8_t body[8];
    server::StoreLE64(txn->gtid, body);
    decision_lsn =
        decision_log_->Append(LogRecordType::kCoordDecision, body,
                              sizeof(body));
    const Status durable = decision_log_->WaitDurable(decision_lsn);
    if (!durable.ok()) {
      // Decision log device failure: we cannot claim the commit point, and
      // we must not commit without it. Abort instead.
      commit = false;
      fail_code = durable.code();
      MutexLock lock(&txn->mu);
      txn->commit = false;
    } else {
      MutexLock lock(&committed_mu_);
      committed_.insert(txn->gtid);
    }
  }

  // Phase two: decisions to every shard that voted yes (the others already
  // rolled back when they voted no — presumed abort needs no message, but
  // a yes-voter is parked until told).
  server::Decision decision;
  decision.gtid = txn->gtid;
  std::vector<uint8_t> bytes;
  server::EncodeDecision(
      commit ? FrameType::kCommitDecision : FrameType::kAbortDecision,
      decision, &bytes);
  {
    MutexLock lock(&txn->mu);
    txn->acks_outstanding = 0;
  }
  for (const uint32_t shard : yes_shards) {
    Expectation expectation;
    expectation.kind = Expectation::kDecisionAck;
    expectation.txn = txn;
    {
      MutexLock lock(&txn->mu);
      ++txn->acks_outstanding;
    }
    if (!SendToShard(shard_conns_[shard].get(), bytes,
                     std::move(expectation))) {
      // Shard down: its in-doubt recovery replays the decision later.
      MutexLock lock(&txn->mu);
      --txn->acks_outstanding;
    }
  }
  {
    // Wait (bounded) for acks so a committed transaction is visible on
    // every participant before the client hears about it. The decision is
    // already durable; a straggler resolves through in-doubt recovery.
    MutexLock lock(&txn->mu);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.ack_timeout_ms);
    while (txn->acks_outstanding > 0) {
      if (txn->cv.WaitFor(&txn->mu, deadline -
                                        std::chrono::steady_clock::now()) ==
          std::cv_status::timeout) {
        break;
      }
    }
  }

  if (commit) {
    stats_.cross_shard_commits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.cross_shard_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  server::Response response;
  response.request_id = request_id;
  response.status = commit ? StatusCode::kOk
                           : (fail_code == StatusCode::kOk
                                  ? StatusCode::kAborted
                                  : fail_code);
  response.commit_lsn = decision_lsn;
  std::vector<uint8_t> encoded;
  server::EncodeResponse(response, &encoded);
  session->CompleteTicket(ticket, std::move(encoded));
}

void ShardRouter::ReplyError(const std::shared_ptr<ClientSession>& session,
                             uint64_t ticket, uint64_t request_id,
                             StatusCode code) {
  server::Response response;
  response.request_id = request_id;
  response.status = code;
  std::vector<uint8_t> encoded;
  server::EncodeResponse(response, &encoded);
  session->CompleteTicket(ticket, std::move(encoded));
}

// --- Shard connections --------------------------------------------------

bool ShardRouter::SendToShard(ShardConn* sc,
                              const std::vector<uint8_t>& bytes,
                              Expectation expectation) {
  MutexLock lock(&sc->mu);
  if (!sc->up) return false;
  if (!sc->client.SendRaw(bytes.data(), bytes.size()).ok()) {
    // The reader thread notices the dead socket and runs ShardDown; the
    // expectation was never queued, so nothing dangles.
    return false;
  }
  sc->expect.push_back(std::move(expectation));
  return true;
}

bool ShardRouter::SendBatchToShard(ShardConn* sc,
                                   const std::vector<uint8_t>& bytes,
                                   std::vector<Expectation>* expectations) {
  MutexLock lock(&sc->mu);
  if (!sc->up) return false;
  if (!sc->client.SendRaw(bytes.data(), bytes.size()).ok()) {
    // As in SendToShard: the reader thread tears the connection down; no
    // expectation was queued, so nothing dangles.
    return false;
  }
  for (Expectation& e : *expectations) sc->expect.push_back(std::move(e));
  return true;
}

void ShardRouter::ShardLoop(ShardConn* sc) {
  while (!stop_.load(std::memory_order_acquire)) {
    bool up;
    {
      MutexLock lock(&sc->mu);
      up = sc->up;
    }
    if (!up) {
      if (!ConnectShard(sc)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        continue;
      }
    }
    FrameType type;
    std::vector<uint8_t> body;
    Status s = sc->client.RecvFrame(&type, &body, 100);
    if (s.IsDeadlineExceeded()) continue;
    if (!s.ok()) {
      ShardDown(sc);
      continue;
    }
    // Drain every frame the read burst decoded (RecvFrame with a zero
    // deadline never touches the socket), staging forwarded responses so
    // each client session gets one coalesced send per burst.
    ReplyBatch replies;
    bool down = false;
    for (;;) {
      if (!DispatchShardFrame(sc, type, body, &replies)) break;
      s = sc->client.RecvFrame(&type, &body, 0);
      if (s.IsDeadlineExceeded()) break;
      if (!s.ok()) {
        down = true;
        break;
      }
    }
    replies.Flush();
    if (down) ShardDown(sc);
  }
  ShardDown(sc);
  MutexLock lock(&sc->mu);
  sc->client.Close();
}

bool ShardRouter::ConnectShard(ShardConn* sc) {
  sc->mu.Lock();
  sc->client.Close();
  Status s = sc->client.Connect(sc->host, sc->port, PeerRole::kCoordinator);
  sc->mu.Unlock();
  if (!s.ok()) return false;
  // Resolve the shard's in-doubt backlog before opening it to traffic;
  // the connection carries nothing else yet, so the replies here are
  // unambiguous.
  if (!ResolveInDoubt(sc).ok()) {
    MutexLock lock(&sc->mu);
    sc->client.Close();
    return false;
  }
  MutexLock lock(&sc->mu);
  sc->up = true;
  return true;
}

Status ShardRouter::ResolveInDoubt(ShardConn* sc) {
  std::vector<uint8_t> enc;
  server::EncodeInDoubtQuery(&enc);
  NEXT700_RETURN_IF_ERROR(sc->client.SendRaw(enc.data(), enc.size()));
  FrameType type;
  std::vector<uint8_t> body;
  NEXT700_RETURN_IF_ERROR(sc->client.RecvFrame(&type, &body, 5000));
  if (type != FrameType::kInDoubtList) {
    return Status::InvalidArgument("shard answered in-doubt query with frame " +
                                   std::to_string(static_cast<int>(type)));
  }
  server::InDoubtList list;
  NEXT700_RETURN_IF_ERROR(
      server::DecodeInDoubtList(body.data(), body.size(), &list));
  for (const uint64_t gtid : list.gtids) {
    bool commit;
    {
      MutexLock lock(&committed_mu_);
      commit = committed_.count(gtid) != 0;
    }
    server::Decision decision;
    decision.gtid = gtid;
    enc.clear();
    server::EncodeDecision(
        commit ? FrameType::kCommitDecision : FrameType::kAbortDecision,
        decision, &enc);
    NEXT700_RETURN_IF_ERROR(sc->client.SendRaw(enc.data(), enc.size()));
    NEXT700_RETURN_IF_ERROR(sc->client.RecvFrame(&type, &body, 5000));
    server::DecisionAck ack;
    if (type != FrameType::kDecisionAck ||
        !server::DecodeDecisionAck(body.data(), body.size(), &ack).ok()) {
      return Status::InvalidArgument("bad decision ack during resolution");
    }
    stats_.resolved_in_doubt.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void ShardRouter::ShardDown(ShardConn* sc) {
  std::deque<Expectation> orphans;
  {
    MutexLock lock(&sc->mu);
    if (!sc->up && sc->expect.empty()) return;
    sc->up = false;
    orphans.swap(sc->expect);
    sc->client.Close();
  }
  for (Expectation& e : orphans) {
    switch (e.kind) {
      case Expectation::kForward:
        ReplyError(e.session, e.ticket, e.request_id,
                   StatusCode::kUnavailable);
        break;
      case Expectation::kVote: {
        MutexLock lock(&e.txn->mu);
        if (!e.txn->decided) {
          e.txn->any_no = true;
          e.txn->no_status = StatusCode::kUnavailable;
          --e.txn->votes_outstanding;
          e.txn->cv.NotifyAll();
        }
        break;
      }
      case Expectation::kDecisionAck: {
        // The decision is durable; the shard resolves via in-doubt
        // recovery on reconnect. Just unblock the waiter.
        MutexLock lock(&e.txn->mu);
        --e.txn->acks_outstanding;
        e.txn->cv.NotifyAll();
        break;
      }
      case Expectation::kStrayAck:
        break;
    }
  }
}

bool ShardRouter::DispatchShardFrame(ShardConn* sc, FrameType type,
                                     const std::vector<uint8_t>& body,
                                     ReplyBatch* replies) {
  Expectation e;
  bool have = false;
  {
    MutexLock lock(&sc->mu);
    if (!sc->expect.empty()) {
      e = std::move(sc->expect.front());
      sc->expect.pop_front();
      have = true;
    }
  }
  if (!have) {
    // A reply nothing asked for: the FIFO contract is broken and the
    // stream can no longer be paired up. Drop the connection.
    ShardDown(sc);
    return false;
  }
  switch (e.kind) {
    case Expectation::kForward: {
      if (type != FrameType::kResponse) break;
      std::vector<uint8_t> frame;
      AppendFrame(type, body.data(), body.size(), &frame);
      replies->Stage(e.session, e.ticket, std::move(frame));
      return true;
    }
    case Expectation::kVote: {
      server::Vote vote;
      if (type != FrameType::kVote ||
          !server::DecodeVote(body.data(), body.size(), &vote).ok()) {
        break;
      }
      bool late_yes_needs_abort = false;
      {
        MutexLock lock(&e.txn->mu);
        if (!e.txn->decided) {
          if (vote.status == StatusCode::kOk) {
            e.txn->yes_shards.push_back(sc->shard_id);
          } else {
            e.txn->any_no = true;
            e.txn->no_status = vote.status;
          }
          --e.txn->votes_outstanding;
          e.txn->cv.NotifyAll();
        } else if (!e.txn->commit && vote.status == StatusCode::kOk) {
          // The coordinator timed this gtid out and presumed abort, but
          // the participant said yes and is now parked. Unwind it.
          late_yes_needs_abort = true;
        }
      }
      if (late_yes_needs_abort) {
        server::Decision decision;
        decision.gtid = e.txn->gtid;
        std::vector<uint8_t> bytes;
        server::EncodeDecision(FrameType::kAbortDecision, decision, &bytes);
        Expectation stray;
        stray.kind = Expectation::kStrayAck;
        SendToShard(sc, bytes, std::move(stray));
      }
      return true;
    }
    case Expectation::kDecisionAck: {
      MutexLock lock(&e.txn->mu);
      --e.txn->acks_outstanding;
      e.txn->cv.NotifyAll();
      return true;
    }
    case Expectation::kStrayAck:
      return true;
  }
  // Frame/expectation mismatch: unrecoverable pairing error.
  ShardDown(sc);
  return false;
}

}  // namespace shard
}  // namespace next700
