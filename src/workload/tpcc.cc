#include "workload/tpcc.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

namespace next700 {

namespace {

constexpr const char* kSyllables[10] = {
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI",  "CALLY", "ATION", "EING",
};

std::string MakeAlphaString(Rng* rng, uint32_t min_len, uint32_t max_len) {
  const uint32_t len =
      static_cast<uint32_t>(rng->NextRange(min_len, max_len));
  std::string out(len, 'a');
  for (auto& ch : out) {
    ch = static_cast<char>('a' + rng->NextUint64(26));
  }
  return out;
}

std::string MakeZip(Rng* rng) {
  std::string out(9, '1');
  for (int i = 0; i < 4; ++i) {
    out[static_cast<size_t>(i)] =
        static_cast<char>('0' + rng->NextUint64(10));
  }
  return out;
}

double MakeTax(Rng* rng) {
  return static_cast<double>(rng->NextUint64(2001)) / 10000.0;  // [0, 0.2]
}

}  // namespace

TpccWorkload::TpccWorkload(TpccOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK(options_.num_warehouses >= 1);
  NEXT700_CHECK(options_.districts_per_warehouse >= 1 &&
                options_.districts_per_warehouse <= 10);
  NEXT700_CHECK(options_.pct_new_order + options_.pct_payment +
                    options_.pct_order_status + options_.pct_delivery +
                    options_.pct_stock_level ==
                100);
}

std::string TpccWorkload::LastName(uint32_t num) {
  NEXT700_DCHECK(num <= 999);
  std::string out = kSyllables[num / 100];
  out += kSyllables[(num / 10) % 10];
  out += kSyllables[num % 10];
  return out;
}

void TpccWorkload::CreateSchemas(Engine* engine) {
  {
    Schema s;
    s.AddUint64("W_ID");
    s.AddChar("W_NAME", 10);
    s.AddChar("W_STREET_1", 20);
    s.AddChar("W_STREET_2", 20);
    s.AddChar("W_CITY", 20);
    s.AddChar("W_STATE", 2);
    s.AddChar("W_ZIP", 9);
    s.AddDouble("W_TAX");
    s.AddDouble("W_YTD");
    warehouse_ = engine->CreateTable("WAREHOUSE", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("D_ID");
    s.AddUint64("D_W_ID");
    s.AddChar("D_NAME", 10);
    s.AddChar("D_STREET_1", 20);
    s.AddChar("D_STREET_2", 20);
    s.AddChar("D_CITY", 20);
    s.AddChar("D_STATE", 2);
    s.AddChar("D_ZIP", 9);
    s.AddDouble("D_TAX");
    s.AddDouble("D_YTD");
    s.AddUint64("D_NEXT_O_ID");
    district_ = engine->CreateTable("DISTRICT", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("C_ID");
    s.AddUint64("C_D_ID");
    s.AddUint64("C_W_ID");
    s.AddChar("C_FIRST", 16);
    s.AddChar("C_MIDDLE", 2);
    s.AddChar("C_LAST", 16);
    s.AddChar("C_STREET_1", 20);
    s.AddChar("C_STREET_2", 20);
    s.AddChar("C_CITY", 20);
    s.AddChar("C_STATE", 2);
    s.AddChar("C_ZIP", 9);
    s.AddChar("C_PHONE", 16);
    s.AddUint64("C_SINCE");
    s.AddChar("C_CREDIT", 2);
    s.AddDouble("C_CREDIT_LIM");
    s.AddDouble("C_DISCOUNT");
    s.AddDouble("C_BALANCE");
    s.AddDouble("C_YTD_PAYMENT");
    s.AddUint64("C_PAYMENT_CNT");
    s.AddUint64("C_DELIVERY_CNT");
    // Spec size is 500; 250 keeps the in-memory footprint reasonable while
    // preserving the "customer rows are big" property (see DESIGN.md).
    s.AddChar("C_DATA", 250);
    customer_ = engine->CreateTable("CUSTOMER", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("H_C_ID");
    s.AddUint64("H_C_D_ID");
    s.AddUint64("H_C_W_ID");
    s.AddUint64("H_D_ID");
    s.AddUint64("H_W_ID");
    s.AddUint64("H_DATE");
    s.AddDouble("H_AMOUNT");
    s.AddChar("H_DATA", 24);
    history_ = engine->CreateTable("HISTORY", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("NO_O_ID");
    s.AddUint64("NO_D_ID");
    s.AddUint64("NO_W_ID");
    new_order_ = engine->CreateTable("NEW_ORDER", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("O_ID");
    s.AddUint64("O_D_ID");
    s.AddUint64("O_W_ID");
    s.AddUint64("O_C_ID");
    s.AddUint64("O_ENTRY_D");
    s.AddUint64("O_CARRIER_ID");
    s.AddUint64("O_OL_CNT");
    s.AddUint64("O_ALL_LOCAL");
    order_ = engine->CreateTable("ORDER", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("OL_O_ID");
    s.AddUint64("OL_D_ID");
    s.AddUint64("OL_W_ID");
    s.AddUint64("OL_NUMBER");
    s.AddUint64("OL_I_ID");
    s.AddUint64("OL_SUPPLY_W_ID");
    s.AddUint64("OL_DELIVERY_D");
    s.AddUint64("OL_QUANTITY");
    s.AddDouble("OL_AMOUNT");
    s.AddChar("OL_DIST_INFO", 24);
    order_line_ = engine->CreateTable("ORDER_LINE", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("I_ID");
    s.AddUint64("I_IM_ID");
    s.AddChar("I_NAME", 24);
    s.AddDouble("I_PRICE");
    s.AddChar("I_DATA", 50);
    item_ = engine->CreateTable("ITEM", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("S_I_ID");
    s.AddUint64("S_W_ID");
    s.AddUint64("S_QUANTITY");
    for (int d = 1; d <= 10; ++d) {
      char name[16];
      std::snprintf(name, sizeof(name), "S_DIST_%02d", d);
      s.AddChar(name, 24);
    }
    s.AddUint64("S_YTD");
    s.AddUint64("S_ORDER_CNT");
    s.AddUint64("S_REMOTE_CNT");
    s.AddChar("S_DATA", 50);
    stock_ = engine->CreateTable("STOCK", std::move(s));
  }

  const uint64_t w = options_.num_warehouses;
  const uint64_t d = w * options_.districts_per_warehouse;
  const uint64_t c = d * options_.customers_per_district;
  const uint64_t o = d * options_.initial_orders_per_district;
  warehouse_pk_ =
      engine->CreateIndex("WAREHOUSE_PK", warehouse_, IndexKind::kHash, w);
  district_pk_ =
      engine->CreateIndex("DISTRICT_PK", district_, IndexKind::kHash, d);
  customer_pk_ =
      engine->CreateIndex("CUSTOMER_PK", customer_, IndexKind::kHash, c);
  customer_by_name_ = engine->CreateIndex("CUSTOMER_BY_NAME", customer_,
                                          IndexKind::kHash, c);
  history_pk_ =
      engine->CreateIndex("HISTORY_PK", history_, IndexKind::kHash, c * 2);
  new_order_pk_ = engine->CreateIndex("NEW_ORDER_PK", new_order_,
                                      IndexKind::kBTree, o);
  order_pk_ = engine->CreateIndex("ORDER_PK", order_, IndexKind::kHash, o);
  order_by_customer_ = engine->CreateIndex("ORDER_BY_CUSTOMER", order_,
                                           IndexKind::kBTree, o);
  order_line_pk_ = engine->CreateIndex("ORDER_LINE_PK", order_line_,
                                       IndexKind::kBTree, o * 10);
  item_pk_ = engine->CreateIndex("ITEM_PK", item_, IndexKind::kHash,
                                 options_.num_items);
  stock_pk_ = engine->CreateIndex("STOCK_PK", stock_, IndexKind::kHash,
                                  w * options_.num_items);
}

void TpccWorkload::LoadItems(Engine* engine, Rng* rng) {
  const Schema& s = item_->schema();
  std::vector<uint8_t> buf(s.row_size());
  for (uint32_t i = 1; i <= options_.num_items; ++i) {
    s.SetUint64(buf.data(), I_ID, i);
    s.SetUint64(buf.data(), I_IM_ID, rng->NextRange(1, 10000));
    s.SetChar(buf.data(), I_NAME, MakeAlphaString(rng, 14, 24));
    s.SetDouble(buf.data(), I_PRICE,
                static_cast<double>(rng->NextRange(100, 10000)) / 100.0);
    // 10% of items carry "ORIGINAL" (spec 4.3.3.1).
    std::string data = MakeAlphaString(rng, 26, 50);
    if (rng->NextBool(0.1)) data.replace(data.size() / 2, 8, "ORIGINAL");
    s.SetChar(buf.data(), I_DATA, data);
    Row* row = engine->LoadRow(item_, 0, i, buf.data());
    NEXT700_CHECK(item_pk_->Insert(i, row).ok());
  }
  item_->set_read_only(true);
}

void TpccWorkload::LoadWarehouse(Engine* engine, uint32_t w, Rng* rng) {
  const uint32_t part = PartitionOf(w);

  {
    const Schema& s = warehouse_->schema();
    std::vector<uint8_t> buf(s.row_size());
    s.SetUint64(buf.data(), W_ID, w);
    s.SetChar(buf.data(), W_NAME, MakeAlphaString(rng, 6, 10));
    s.SetChar(buf.data(), W_STREET_1, MakeAlphaString(rng, 10, 20));
    s.SetChar(buf.data(), W_STREET_2, MakeAlphaString(rng, 10, 20));
    s.SetChar(buf.data(), W_CITY, MakeAlphaString(rng, 10, 20));
    s.SetChar(buf.data(), W_STATE, MakeAlphaString(rng, 2, 2));
    s.SetChar(buf.data(), W_ZIP, MakeZip(rng));
    s.SetDouble(buf.data(), W_TAX, MakeTax(rng));
    // Consistency condition 1 requires W_YTD == sum(D_YTD) at load.
    s.SetDouble(buf.data(), W_YTD,
                30000.0 * options_.districts_per_warehouse);
    Row* row = engine->LoadRow(warehouse_, part, w, buf.data());
    NEXT700_CHECK(warehouse_pk_->Insert(w, row).ok());
  }

  {
    const Schema& s = stock_->schema();
    std::vector<uint8_t> buf(s.row_size());
    for (uint32_t i = 1; i <= options_.num_items; ++i) {
      s.SetUint64(buf.data(), S_I_ID, i);
      s.SetUint64(buf.data(), S_W_ID, w);
      s.SetUint64(buf.data(), S_QUANTITY, rng->NextRange(10, 100));
      for (int col = S_DIST_01; col <= S_DIST_10; ++col) {
        s.SetChar(buf.data(), col, MakeAlphaString(rng, 24, 24));
      }
      s.SetUint64(buf.data(), S_YTD, 0);
      s.SetUint64(buf.data(), S_ORDER_CNT, 0);
      s.SetUint64(buf.data(), S_REMOTE_CNT, 0);
      std::string data = MakeAlphaString(rng, 26, 50);
      if (rng->NextBool(0.1)) data.replace(data.size() / 2, 8, "ORIGINAL");
      s.SetChar(buf.data(), S_DATA, data);
      const uint64_t key = StockKey(w, i);
      Row* row = engine->LoadRow(stock_, part, key, buf.data());
      NEXT700_CHECK(stock_pk_->Insert(key, row).ok());
    }
  }

  for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
    {
      const Schema& s = district_->schema();
      std::vector<uint8_t> buf(s.row_size());
      s.SetUint64(buf.data(), D_ID, d);
      s.SetUint64(buf.data(), D_W_ID, w);
      s.SetChar(buf.data(), D_NAME, MakeAlphaString(rng, 6, 10));
      s.SetChar(buf.data(), D_STREET_1, MakeAlphaString(rng, 10, 20));
      s.SetChar(buf.data(), D_STREET_2, MakeAlphaString(rng, 10, 20));
      s.SetChar(buf.data(), D_CITY, MakeAlphaString(rng, 10, 20));
      s.SetChar(buf.data(), D_STATE, MakeAlphaString(rng, 2, 2));
      s.SetChar(buf.data(), D_ZIP, MakeZip(rng));
      s.SetDouble(buf.data(), D_TAX, MakeTax(rng));
      s.SetDouble(buf.data(), D_YTD, 30000.0);
      s.SetUint64(buf.data(), D_NEXT_O_ID,
                  options_.initial_orders_per_district + 1);
      const uint64_t key = DistrictKey(w, d);
      Row* row = engine->LoadRow(district_, part, key, buf.data());
      NEXT700_CHECK(district_pk_->Insert(key, row).ok());
    }

    // Customers + their initial history rows.
    {
      const Schema& s = customer_->schema();
      const Schema& hs = history_->schema();
      std::vector<uint8_t> buf(s.row_size());
      std::vector<uint8_t> hbuf(hs.row_size());
      for (uint32_t c = 1; c <= options_.customers_per_district; ++c) {
        const uint32_t name_num =
            c <= 1000 ? c - 1
                      : static_cast<uint32_t>(
                            NuRand(rng, 255, 0, 999, options_.c_for_c_last));
        const std::string last = LastName(name_num);
        s.SetUint64(buf.data(), C_ID, c);
        s.SetUint64(buf.data(), C_D_ID, d);
        s.SetUint64(buf.data(), C_W_ID, w);
        s.SetChar(buf.data(), C_FIRST, MakeAlphaString(rng, 8, 16));
        s.SetChar(buf.data(), C_MIDDLE, "OE");
        s.SetChar(buf.data(), C_LAST, last);
        s.SetChar(buf.data(), C_STREET_1, MakeAlphaString(rng, 10, 20));
        s.SetChar(buf.data(), C_STREET_2, MakeAlphaString(rng, 10, 20));
        s.SetChar(buf.data(), C_CITY, MakeAlphaString(rng, 10, 20));
        s.SetChar(buf.data(), C_STATE, MakeAlphaString(rng, 2, 2));
        s.SetChar(buf.data(), C_ZIP, MakeZip(rng));
        s.SetChar(buf.data(), C_PHONE, MakeAlphaString(rng, 16, 16));
        s.SetUint64(buf.data(), C_SINCE, 0);
        s.SetChar(buf.data(), C_CREDIT, rng->NextBool(0.1) ? "BC" : "GC");
        s.SetDouble(buf.data(), C_CREDIT_LIM, 50000.0);
        s.SetDouble(buf.data(), C_DISCOUNT,
                    static_cast<double>(rng->NextUint64(5001)) / 10000.0);
        s.SetDouble(buf.data(), C_BALANCE, -10.0);
        s.SetDouble(buf.data(), C_YTD_PAYMENT, 10.0);
        s.SetUint64(buf.data(), C_PAYMENT_CNT, 1);
        s.SetUint64(buf.data(), C_DELIVERY_CNT, 0);
        s.SetChar(buf.data(), C_DATA, MakeAlphaString(rng, 100, 250));
        const uint64_t key = CustomerKey(w, d, c);
        Row* row = engine->LoadRow(customer_, part, key, buf.data());
        NEXT700_CHECK(customer_pk_->Insert(key, row).ok());
        NEXT700_CHECK(
            customer_by_name_->Insert(CustomerNameKey(w, d, last), row).ok());

        hs.SetUint64(hbuf.data(), H_C_ID, c);
        hs.SetUint64(hbuf.data(), H_C_D_ID, d);
        hs.SetUint64(hbuf.data(), H_C_W_ID, w);
        hs.SetUint64(hbuf.data(), H_D_ID, d);
        hs.SetUint64(hbuf.data(), H_W_ID, w);
        hs.SetUint64(hbuf.data(), H_DATE, 0);
        hs.SetDouble(hbuf.data(), H_AMOUNT, 10.0);
        hs.SetChar(hbuf.data(), H_DATA, MakeAlphaString(rng, 12, 24));
        const uint64_t hkey = key * 100;  // Load-time history namespace.
        Row* hrow = engine->LoadRow(history_, part, hkey, hbuf.data());
        NEXT700_CHECK(history_pk_->Insert(hkey, hrow).ok());
      }
    }

    // Orders over a random permutation of customers; the most recent ~30%
    // are undelivered (NEW_ORDER rows, no carrier).
    {
      const uint32_t num_orders =
          std::min(options_.initial_orders_per_district,
                   options_.customers_per_district);
      std::vector<uint32_t> perm(options_.customers_per_district);
      std::iota(perm.begin(), perm.end(), 1);
      for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng->NextUint64(i)]);
      }
      const Schema& os = order_->schema();
      const Schema& ols = order_line_->schema();
      const Schema& nos = new_order_->schema();
      std::vector<uint8_t> obuf(os.row_size());
      std::vector<uint8_t> olbuf(ols.row_size());
      std::vector<uint8_t> nobuf(nos.row_size());
      const uint32_t first_undelivered = num_orders * 7 / 10 + 1;
      for (uint32_t o = 1; o <= num_orders; ++o) {
        const uint32_t c = perm[o - 1];
        const uint32_t ol_cnt = static_cast<uint32_t>(rng->NextRange(5, 15));
        const bool delivered = o < first_undelivered;
        os.SetUint64(obuf.data(), O_ID, o);
        os.SetUint64(obuf.data(), O_D_ID, d);
        os.SetUint64(obuf.data(), O_W_ID, w);
        os.SetUint64(obuf.data(), O_C_ID, c);
        os.SetUint64(obuf.data(), O_ENTRY_D, o);
        os.SetUint64(obuf.data(), O_CARRIER_ID,
                     delivered ? rng->NextRange(1, 10) : 0);
        os.SetUint64(obuf.data(), O_OL_CNT, ol_cnt);
        os.SetUint64(obuf.data(), O_ALL_LOCAL, 1);
        const uint64_t okey = OrderKey(w, d, o);
        Row* orow = engine->LoadRow(order_, part, okey, obuf.data());
        NEXT700_CHECK(order_pk_->Insert(okey, orow).ok());
        NEXT700_CHECK(
            order_by_customer_->Insert(OrderByCustomerKey(w, d, c, o), orow)
                .ok());

        for (uint32_t line = 1; line <= ol_cnt; ++line) {
          ols.SetUint64(olbuf.data(), OL_O_ID, o);
          ols.SetUint64(olbuf.data(), OL_D_ID, d);
          ols.SetUint64(olbuf.data(), OL_W_ID, w);
          ols.SetUint64(olbuf.data(), OL_NUMBER, line);
          ols.SetUint64(olbuf.data(), OL_I_ID,
                        rng->NextRange(1, options_.num_items));
          ols.SetUint64(olbuf.data(), OL_SUPPLY_W_ID, w);
          ols.SetUint64(olbuf.data(), OL_DELIVERY_D, delivered ? o : 0);
          ols.SetUint64(olbuf.data(), OL_QUANTITY, 5);
          ols.SetDouble(
              olbuf.data(), OL_AMOUNT,
              delivered
                  ? 0.0
                  : static_cast<double>(rng->NextRange(1, 999999)) / 100.0);
          ols.SetChar(olbuf.data(), OL_DIST_INFO,
                      MakeAlphaString(rng, 24, 24));
          const uint64_t olkey = OrderLineKey(w, d, o, line);
          Row* olrow = engine->LoadRow(order_line_, part, olkey,
                                       olbuf.data());
          NEXT700_CHECK(order_line_pk_->Insert(olkey, olrow).ok());
        }

        if (!delivered) {
          nos.SetUint64(nobuf.data(), NO_O_ID, o);
          nos.SetUint64(nobuf.data(), NO_D_ID, d);
          nos.SetUint64(nobuf.data(), NO_W_ID, w);
          Row* norow = engine->LoadRow(new_order_, part, okey, nobuf.data());
          NEXT700_CHECK(new_order_pk_->Insert(okey, norow).ok());
        }
      }
    }
  }
}

void TpccWorkload::Load(Engine* engine) {
  num_partitions_ = engine->options().num_partitions;
  max_threads_ = engine->options().max_threads;
  history_seq_.reset(new HistorySeq[max_threads_]);
  CreateSchemas(engine);
  RegisterProcedures(engine);
  Rng rng(0xC0FFEE);
  LoadItems(engine, &rng);
  for (uint32_t w = 1; w <= options_.num_warehouses; ++w) {
    LoadWarehouse(engine, w, &rng);
  }
}

Status TpccWorkload::CheckConsistency(Engine* engine) {
  // Consistency condition 1: W_YTD == sum of its districts' D_YTD.
  for (uint32_t w = 1; w <= options_.num_warehouses; ++w) {
    Row* wrow = warehouse_pk_->Lookup(w);
    if (wrow == nullptr) return Status::Corruption("missing warehouse");
    const double w_ytd =
        warehouse_->schema().GetDouble(engine->RawImage(wrow), W_YTD);
    double d_sum = 0;
    for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
      Row* drow = district_pk_->Lookup(DistrictKey(w, d));
      if (drow == nullptr) return Status::Corruption("missing district");
      d_sum += district_->schema().GetDouble(engine->RawImage(drow), D_YTD);
    }
    if (std::abs(w_ytd - d_sum) > 0.01) {
      return Status::Corruption("W_YTD != sum(D_YTD) for warehouse " +
                                std::to_string(w));
    }
  }
  // Consistency condition 2/3-lite: D_NEXT_O_ID-1 is the max existing order
  // id, and that order's O_OL_CNT matches its order-line count.
  for (uint32_t w = 1; w <= options_.num_warehouses; ++w) {
    for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
      Row* drow = district_pk_->Lookup(DistrictKey(w, d));
      const uint64_t next_o_id = district_->schema().GetUint64(
          engine->RawImage(drow), D_NEXT_O_ID);
      const uint64_t max_o = next_o_id - 1;
      if (max_o == 0) continue;
      Row* orow = order_pk_->Lookup(OrderKey(w, d, max_o));
      if (orow == nullptr) {
        return Status::Corruption("max order missing for district");
      }
      if (order_pk_->Lookup(OrderKey(w, d, next_o_id)) != nullptr) {
        return Status::Corruption("order beyond D_NEXT_O_ID exists");
      }
      const uint64_t ol_cnt =
          order_->schema().GetUint64(engine->RawImage(orow), O_OL_CNT);
      std::vector<Row*> lines;
      NEXT700_RETURN_IF_ERROR(order_line_pk_->Scan(
          OrderLineKey(w, d, max_o, 0), OrderLineKey(w, d, max_o, 99), 0,
          &lines));
      if (lines.size() != ol_cnt) {
        return Status::Corruption("O_OL_CNT mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace next700
