#ifndef NEXT700_WORKLOAD_SMALLBANK_H_
#define NEXT700_WORKLOAD_SMALLBANK_H_

/// \file
/// SmallBank (Alomari et al.): a tiny banking workload whose transactions
/// create write-write and read-write conflicts on a handful of rows. It is
/// the serializability canary of the test suite: under any correct scheme,
/// a run of balance-moving transactions conserves total money exactly.

#include "workload/workload.h"

namespace next700 {

struct SmallBankOptions {
  uint64_t num_accounts = 100000;
  /// Zipf skew over accounts (0 = uniform); models the "hotspot" clients.
  double theta = 0.0;
  /// Transaction mix in percent; must sum to 100. The conservation tests
  /// use a mix of only SendPayment/Amalgamate/Balance.
  int pct_balance = 15;
  int pct_deposit_checking = 15;
  int pct_transact_savings = 15;
  int pct_amalgamate = 15;
  int pct_write_check = 15;
  int pct_send_payment = 25;
  int64_t initial_balance = 10000;  // Per account, both tables (cents).
};

class SmallBankWorkload : public Workload {
 public:
  explicit SmallBankWorkload(SmallBankOptions options);

  void Load(Engine* engine) override;
  Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) override;
  const char* name() const override { return "smallbank"; }

  /// Sum of every savings and checking balance (run quiescent).
  int64_t TotalMoney(Engine* engine) const;

  /// Expected total immediately after Load().
  int64_t InitialTotal() const {
    return 2 * options_.initial_balance *
           static_cast<int64_t>(options_.num_accounts);
  }

  const SmallBankOptions& options() const { return options_; }

 private:
  enum TxnType {
    kBalance,
    kDepositChecking,
    kTransactSavings,
    kAmalgamate,
    kWriteCheck,
    kSendPayment,
  };

  TxnType PickType(Rng* rng) const;
  uint64_t PickAccount(Rng* rng) { return zipf_->Next(rng); }

  Status ExecuteOnce(Engine* engine, int thread_id, TxnType type,
                     uint64_t acct_a, uint64_t acct_b, int64_t amount);

  SmallBankOptions options_;
  std::unique_ptr<ZipfGenerator> zipf_;
  Table* savings_ = nullptr;
  Table* checking_ = nullptr;
  Index* savings_pk_ = nullptr;
  Index* checking_pk_ = nullptr;
};

}  // namespace next700

#endif  // NEXT700_WORKLOAD_SMALLBANK_H_
