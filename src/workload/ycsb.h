#ifndef NEXT700_WORKLOAD_YCSB_H_
#define NEXT700_WORKLOAD_YCSB_H_

/// \file
/// YCSB-style key/value workload (the microbenchmark of the multicore CC
/// studies). One table of N records with F 8-byte fields; each transaction
/// performs `ops_per_txn` point operations on Zipf-distributed keys, each
/// op a read or a write. Partitioned mode groups a transaction's keys into
/// its home partition and injects a configurable fraction of
/// multi-partition transactions (the H-Store crossover experiment).

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace next700 {

struct YcsbOptions {
  uint64_t num_records = 1 << 20;
  int num_fields = 10;  // 8 bytes each.
  int ops_per_txn = 16;
  double write_fraction = 0.05;  // Per-op probability of a write.
  double theta = 0.0;            // Zipf skew; 0 = uniform.
  /// Writes read the row first (read-modify-write) instead of blind-write.
  bool read_modify_write = false;
  /// Partitioned key choice: all keys of a transaction fall in one home
  /// partition, except a `multi_partition_fraction` of transactions whose
  /// keys spread over `partitions_per_mp_txn` partitions.
  bool partitioned = false;
  double multi_partition_fraction = 0.0;
  int partitions_per_mp_txn = 2;
  IndexKind index_kind = IndexKind::kHash;
};

class YcsbWorkload : public Workload {
 public:
  explicit YcsbWorkload(YcsbOptions options);

  void Load(Engine* engine) override;
  Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) override;
  const char* name() const override { return "ycsb"; }

  const YcsbOptions& options() const { return options_; }
  Table* table() const { return table_; }
  Index* index() const { return index_; }

  /// Partition owning `key` under the engine's partition count.
  uint32_t PartitionOf(uint64_t key) const {
    return static_cast<uint32_t>(key % num_partitions_);
  }

 private:
  struct Op {
    uint64_t key;
    bool is_write;
  };

  /// Draws the next transaction's operations (and partition set).
  void GenerateTxn(Rng* rng, std::vector<Op>* ops,
                   std::vector<uint32_t>* partitions);

  Status ExecuteOnce(Engine* engine, int thread_id,
                     const std::vector<Op>& ops,
                     const std::vector<uint32_t>& partitions, Rng* rng,
                     uint8_t* buf);

  YcsbOptions options_;
  std::unique_ptr<ZipfGenerator> zipf_;
  Table* table_ = nullptr;
  Index* index_ = nullptr;
  uint32_t num_partitions_ = 1;
  uint32_t row_size_ = 0;
};

}  // namespace next700

#endif  // NEXT700_WORKLOAD_YCSB_H_
