#ifndef NEXT700_WORKLOAD_DRIVER_H_
#define NEXT700_WORKLOAD_DRIVER_H_

/// \file
/// Multi-threaded benchmark driver: warmup phase, barrier, timed
/// measurement window, barrier, aggregation. Worker stats are only read by
/// the coordinator between barriers, so the hot path needs no atomics.

#include <cstdint>

#include "common/stats.h"
#include "workload/workload.h"

namespace next700 {

struct DriverOptions {
  int num_threads = 1;
  double warmup_seconds = 0.25;
  double measure_seconds = 2.0;
  /// Non-zero switches to fixed-work mode: no warmup, each worker runs
  /// exactly this many logical transactions, elapsed time measured overall.
  uint64_t txns_per_thread = 0;
  /// Base RNG seed; worker i uses seed + i.
  uint64_t seed = 42;
};

class Driver {
 public:
  /// Runs `workload` against `engine` (already Load()-ed) and returns the
  /// aggregated measurement-window stats.
  static RunStats Run(Engine* engine, Workload* workload,
                      const DriverOptions& options);
};

}  // namespace next700

#endif  // NEXT700_WORKLOAD_DRIVER_H_
