#ifndef NEXT700_WORKLOAD_WORKLOAD_H_
#define NEXT700_WORKLOAD_WORKLOAD_H_

/// \file
/// Workload abstraction used by the benchmark driver. A workload knows how
/// to populate an engine (Load) and how to run one logical transaction to
/// completion (RunNextTxn) — including retrying concurrency aborts with
/// backoff, so the driver's view is "one logical unit of work done".

#include "common/rng.h"
#include "common/status.h"
#include "txn/engine.h"

namespace next700 {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Populates tables and indexes. Called once, before any transactions.
  virtual void Load(Engine* engine) = 0;

  /// Generates and executes one logical transaction on `thread_id`,
  /// retrying CC-induced aborts internally. Returns OK on commit and
  /// kAborted only for *user* aborts (e.g. TPC-C's 1% rollbacks).
  virtual Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) = 0;

  /// Human-readable name for reports.
  virtual const char* name() const = 0;
};

/// Shared retry helper: runs `attempt` until it commits or fails with a
/// non-retryable status, applying bounded randomized backoff between tries.
template <typename Fn>
Status RunWithRetry(Rng* rng, Fn&& attempt) {
  int tries = 0;
  for (;;) {
    const Status s = attempt();
    if (s.ok() || !s.IsAborted()) return s;
    // Randomized exponential backoff, capped; spinning immediately back
    // into a hot conflict zone just burns the other side's time.
    const int cap = tries < 10 ? (1 << tries) : 1024;
    const uint64_t spins = rng->NextUint64(static_cast<uint64_t>(cap) * 8 + 1);
    for (uint64_t i = 0; i < spins; ++i) CpuRelax();
    ++tries;
  }
}

}  // namespace next700

#endif  // NEXT700_WORKLOAD_WORKLOAD_H_
