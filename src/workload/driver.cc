#include "workload/driver.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace next700 {

namespace {

/// Timed mode: warmup until `go`, measure until `stop`.
void TimedWorker(Engine* engine, Workload* workload, int thread_id,
                 uint64_t seed, std::barrier<>* barrier,
                 const std::atomic<bool>* warmup_done,
                 const std::atomic<bool>* stop) {
  Rng rng(seed);
  while (!warmup_done->load(std::memory_order_acquire)) {
    (void)workload->RunNextTxn(engine, thread_id, &rng);
  }
  barrier->arrive_and_wait();  // Coordinator resets stats here.
  barrier->arrive_and_wait();
  ThreadStats* stats = engine->stats(thread_id);
  while (!stop->load(std::memory_order_acquire)) {
    const uint64_t begin = NowNanos();
    const Status s = workload->RunNextTxn(engine, thread_id, &rng);
    if (s.ok()) stats->commit_latency_ns.Record(NowNanos() - begin);
  }
  barrier->arrive_and_wait();  // Coordinator aggregates after this.
}

/// Fixed-work mode: run exactly `count` logical transactions.
void FixedWorker(Engine* engine, Workload* workload, int thread_id,
                 uint64_t seed, uint64_t count) {
  Rng rng(seed);
  ThreadStats* stats = engine->stats(thread_id);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t begin = NowNanos();
    const Status s = workload->RunNextTxn(engine, thread_id, &rng);
    if (s.ok()) stats->commit_latency_ns.Record(NowNanos() - begin);
  }
}

}  // namespace

RunStats Driver::Run(Engine* engine, Workload* workload,
                     const DriverOptions& options) {
  NEXT700_CHECK(options.num_threads >= 1);
  NEXT700_CHECK(options.num_threads <= engine->options().max_threads);

  if (options.txns_per_thread > 0) {
    engine->ResetStats();
    const uint64_t t0 = NowNanos();
    std::vector<std::thread> threads;
    for (int i = 0; i < options.num_threads; ++i) {
      threads.emplace_back(FixedWorker, engine, workload, i,
                           options.seed + i, options.txns_per_thread);
    }
    for (auto& t : threads) t.join();
    RunStats run = engine->AggregateStats();
    run.elapsed_seconds = static_cast<double>(NowNanos() - t0) / 1e9;
    return run;
  }

  std::atomic<bool> warmup_done{false};
  std::atomic<bool> stop{false};
  std::barrier<> barrier(options.num_threads + 1);

  std::vector<std::thread> threads;
  for (int i = 0; i < options.num_threads; ++i) {
    threads.emplace_back(TimedWorker, engine, workload, i, options.seed + i,
                         &barrier, &warmup_done, &stop);
  }

  std::this_thread::sleep_for(
      std::chrono::duration<double>(options.warmup_seconds));
  warmup_done.store(true, std::memory_order_release);
  barrier.arrive_and_wait();  // Workers quiesced between transactions.
  engine->ResetStats();
  const uint64_t t0 = NowNanos();
  barrier.arrive_and_wait();  // Measurement starts.

  std::this_thread::sleep_for(
      std::chrono::duration<double>(options.measure_seconds));
  stop.store(true, std::memory_order_release);
  barrier.arrive_and_wait();  // Workers done writing stats.
  const uint64_t t1 = NowNanos();

  for (auto& t : threads) t.join();
  RunStats run = engine->AggregateStats();
  run.elapsed_seconds = static_cast<double>(t1 - t0) / 1e9;
  return run;
}

}  // namespace next700
