#ifndef NEXT700_WORKLOAD_TPCC_H_
#define NEXT700_WORKLOAD_TPCC_H_

/// \file
/// Full-schema in-memory TPC-C: all nine tables and all five transaction
/// profiles (New-Order, Payment, Order-Status, Delivery, Stock-Level) with
/// NURand key distributions, by-last-name customer selection, remote
/// warehouse touches, and the 1% New-Order rollback. Deviations from the
/// spec (documented in DESIGN.md): delivery runs inline rather than
/// deferred, and think times are omitted — standard practice in the
/// multicore CC literature this reproduces.
///
/// Every transaction is a registered stored procedure whose argument
/// struct carries all randomness, so command logging can replay it
/// deterministically.

#include <atomic>
#include <memory>
#include <string>

#include "common/macros.h"
#include "workload/workload.h"

namespace next700 {

struct TpccOptions {
  uint32_t num_warehouses = 1;
  /// Scale-down knobs (tests and fast benchmarks); spec values are the
  /// defaults except initial orders, which dominate load time.
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t num_items = 100000;
  uint32_t initial_orders_per_district = 3000;

  /// Transaction mix in percent; must sum to 100.
  int pct_new_order = 45;
  int pct_payment = 43;
  int pct_order_status = 4;
  int pct_delivery = 4;
  int pct_stock_level = 4;

  /// Cross-warehouse payments (15%) and order lines (1%), spec 2.5.1.2 /
  /// 2.4.1.5. Only meaningful with num_warehouses > 1.
  bool remote_txns = true;

  /// NURand constants (fixed per run, spec 2.1.6.1).
  uint64_t c_for_c_last = 157;
  uint64_t c_for_c_id = 91;
  uint64_t c_for_ol_i_id = 42;
};

// --- Column layouts (indices match the Add* order in CreateSchemas) -------

enum WarehouseCol : int {
  W_ID, W_NAME, W_STREET_1, W_STREET_2, W_CITY, W_STATE, W_ZIP, W_TAX, W_YTD,
};
enum DistrictCol : int {
  D_ID, D_W_ID, D_NAME, D_STREET_1, D_STREET_2, D_CITY, D_STATE, D_ZIP,
  D_TAX, D_YTD, D_NEXT_O_ID,
};
enum CustomerCol : int {
  C_ID, C_D_ID, C_W_ID, C_FIRST, C_MIDDLE, C_LAST, C_STREET_1, C_STREET_2,
  C_CITY, C_STATE, C_ZIP, C_PHONE, C_SINCE, C_CREDIT, C_CREDIT_LIM,
  C_DISCOUNT, C_BALANCE, C_YTD_PAYMENT, C_PAYMENT_CNT, C_DELIVERY_CNT,
  C_DATA,
};
enum HistoryCol : int {
  H_C_ID, H_C_D_ID, H_C_W_ID, H_D_ID, H_W_ID, H_DATE, H_AMOUNT, H_DATA,
};
enum NewOrderCol : int { NO_O_ID, NO_D_ID, NO_W_ID };
enum OrderCol : int {
  O_ID, O_D_ID, O_W_ID, O_C_ID, O_ENTRY_D, O_CARRIER_ID, O_OL_CNT,
  O_ALL_LOCAL,
};
enum OrderLineCol : int {
  OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER, OL_I_ID, OL_SUPPLY_W_ID,
  OL_DELIVERY_D, OL_QUANTITY, OL_AMOUNT, OL_DIST_INFO,
};
enum ItemCol : int { I_ID, I_IM_ID, I_NAME, I_PRICE, I_DATA };
enum StockCol : int {
  S_I_ID, S_W_ID, S_QUANTITY, S_DIST_01, S_DIST_02, S_DIST_03, S_DIST_04,
  S_DIST_05, S_DIST_06, S_DIST_07, S_DIST_08, S_DIST_09, S_DIST_10, S_YTD,
  S_ORDER_CNT, S_REMOTE_CNT, S_DATA,
};

// --- Key encodings ---------------------------------------------------------

inline uint64_t DistrictKey(uint32_t w, uint32_t d) {
  return static_cast<uint64_t>(w) * 100 + d;
}
inline uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  return DistrictKey(w, d) * 100000 + c;
}
inline uint64_t StockKey(uint32_t w, uint32_t i) {
  return static_cast<uint64_t>(w) * 1000000 + i;
}
inline uint64_t OrderKey(uint32_t w, uint32_t d, uint64_t o) {
  return DistrictKey(w, d) * 10000000ull + o;
}
inline uint64_t OrderLineKey(uint32_t w, uint32_t d, uint64_t o,
                             uint32_t line) {
  return OrderKey(w, d, o) * 100 + line;
}
inline uint64_t OrderByCustomerKey(uint32_t w, uint32_t d, uint32_t c,
                                   uint64_t o) {
  return CustomerKey(w, d, c) * 10000000ull + o;
}
/// Secondary-index key for by-last-name lookups. The 24-bit name hash can
/// collide across names within a district; lookups filter on the stored
/// C_LAST, so collisions only cost an extra read.
inline uint64_t CustomerNameKey(uint32_t w, uint32_t d,
                                const std::string& last_name) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (const char ch : last_name) {
    h ^= static_cast<uint8_t>(ch);
    h *= 0x100000001B3ull;
  }
  return (DistrictKey(w, d) << 24) | (h & 0xFFFFFF);
}

// --- Stored-procedure argument structs (POD; all randomness inside) -------

inline constexpr int kMaxOrderLines = 15;

struct NewOrderArgs {
  uint32_t w_id, d_id, c_id;
  uint32_t ol_cnt;
  uint64_t o_entry_d;
  uint32_t item_ids[kMaxOrderLines];
  uint32_t supply_w_ids[kMaxOrderLines];
  uint32_t quantities[kMaxOrderLines];
  uint8_t rollback;  // Spec 2.4.1.4: 1% of New-Orders abort on a bad item.
};

struct PaymentArgs {
  uint32_t w_id, d_id;
  uint32_t c_w_id, c_d_id;
  uint8_t by_last_name;
  uint32_t c_id;
  char c_last[17];
  double amount;
  uint64_t h_date;
  uint64_t h_pk;  // Caller-generated unique history key (replay-stable).
};

struct OrderStatusArgs {
  uint32_t w_id, d_id;
  uint8_t by_last_name;
  uint32_t c_id;
  char c_last[17];
};

struct DeliveryArgs {
  uint32_t w_id;
  uint32_t carrier_id;
  uint64_t ol_delivery_d;
};

struct StockLevelArgs {
  uint32_t w_id, d_id;
  uint32_t threshold;
};

class TpccWorkload : public Workload {
 public:
  enum ProcId : uint32_t {
    kNewOrder = 1,
    kPayment = 2,
    kOrderStatus = 3,
    kDelivery = 4,
    kStockLevel = 5,
  };

  explicit TpccWorkload(TpccOptions options);

  void Load(Engine* engine) override;
  Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) override;
  const char* name() const override { return "tpcc"; }

  const TpccOptions& options() const { return options_; }

  /// Spec 4.3.2.3 syllable last names for number in [0, 999].
  static std::string LastName(uint32_t num);

  /// Audits the TPC-C consistency conditions that survive our scale-down:
  /// W_YTD = sum(D_YTD); D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID);
  /// order-line counts match O_OL_CNT. Single-threaded, outside txns.
  Status CheckConsistency(Engine* engine);

  // Table / index handles (exposed for tests and recovery rebuilders).
  Table* warehouse_ = nullptr;
  Table* district_ = nullptr;
  Table* customer_ = nullptr;
  Table* history_ = nullptr;
  Table* new_order_ = nullptr;
  Table* order_ = nullptr;
  Table* order_line_ = nullptr;
  Table* item_ = nullptr;
  Table* stock_ = nullptr;

  Index* warehouse_pk_ = nullptr;
  Index* district_pk_ = nullptr;
  Index* customer_pk_ = nullptr;
  Index* customer_by_name_ = nullptr;
  Index* history_pk_ = nullptr;
  Index* new_order_pk_ = nullptr;  // BTree: oldest-new-order scans.
  Index* order_pk_ = nullptr;
  Index* order_by_customer_ = nullptr;  // BTree: latest order per customer.
  Index* order_line_pk_ = nullptr;      // BTree: per-order range scans.
  Index* item_pk_ = nullptr;
  Index* stock_pk_ = nullptr;

 private:
  friend struct TpccProcedures;

  void CreateSchemas(Engine* engine);
  void RegisterProcedures(Engine* engine);
  void LoadItems(Engine* engine, Rng* rng);
  void LoadWarehouse(Engine* engine, uint32_t w, Rng* rng);

  uint32_t PartitionOf(uint32_t w_id) const {
    return (w_id - 1) % num_partitions_;
  }

  /// Customer selection helpers shared by Payment/Order-Status.
  Status FindCustomerByName(Engine* engine, TxnContext* txn, uint32_t w,
                            uint32_t d, const char* c_last, Row** out_row,
                            std::vector<uint8_t>* out_image);

  // Procedure bodies (invoked via the engine's procedure registry).
  Status NewOrderTxn(Engine* engine, TxnContext* txn,
                     const NewOrderArgs& args);
  Status PaymentTxn(Engine* engine, TxnContext* txn, const PaymentArgs& args);
  Status OrderStatusTxn(Engine* engine, TxnContext* txn,
                        const OrderStatusArgs& args);
  Status DeliveryTxn(Engine* engine, TxnContext* txn,
                     const DeliveryArgs& args);
  Status StockLevelTxn(Engine* engine, TxnContext* txn,
                       const StockLevelArgs& args);

  // Input generators (spec clause 2.x.1).
  void MakeNewOrder(int thread_id, Rng* rng, NewOrderArgs* args,
                    std::vector<uint32_t>* partitions);
  void MakePayment(int thread_id, Rng* rng, PaymentArgs* args,
                   std::vector<uint32_t>* partitions);
  void MakeOrderStatus(int thread_id, Rng* rng, OrderStatusArgs* args,
                       std::vector<uint32_t>* partitions);
  void MakeDelivery(int thread_id, Rng* rng, DeliveryArgs* args,
                    std::vector<uint32_t>* partitions);
  void MakeStockLevel(int thread_id, Rng* rng, StockLevelArgs* args,
                      std::vector<uint32_t>* partitions);

  uint32_t HomeWarehouse(int thread_id) const {
    return 1 + static_cast<uint32_t>(thread_id) % options_.num_warehouses;
  }

  TpccOptions options_;
  uint32_t num_partitions_ = 1;

  struct NEXT700_CACHE_ALIGNED HistorySeq {
    uint64_t next = 0;
  };
  std::unique_ptr<HistorySeq[]> history_seq_;
  int max_threads_ = 0;
};

}  // namespace next700

#endif  // NEXT700_WORKLOAD_TPCC_H_
