#include <algorithm>
#include <cstring>
#include <vector>

#include "workload/tpcc.h"

namespace next700 {

namespace {

/// Copies a POD args struct out of the raw procedure argument buffer.
template <typename T>
T UnpackArgs(const uint8_t* args, size_t len) {
  NEXT700_CHECK(len == sizeof(T));
  T out;
  std::memcpy(&out, args, sizeof(T));
  return out;
}

constexpr uint64_t kMaxOrderId = 9999999;

}  // namespace

/// Largest last-name number that is guaranteed to exist: the loader assigns
/// sequential numbers to the first min(customers, 1000) customers.
static uint32_t MaxNameNum(const TpccOptions& options) {
  return options.customers_per_district <= 1000
             ? options.customers_per_district - 1
             : 999;
}

void TpccWorkload::RegisterProcedures(Engine* engine) {
  engine->RegisterProcedure(
      kNewOrder, [this](Engine* e, TxnContext* txn, const uint8_t* a,
                        size_t len) {
        return NewOrderTxn(e, txn, UnpackArgs<NewOrderArgs>(a, len));
      });
  engine->RegisterProcedure(
      kPayment, [this](Engine* e, TxnContext* txn, const uint8_t* a,
                       size_t len) {
        return PaymentTxn(e, txn, UnpackArgs<PaymentArgs>(a, len));
      });
  engine->RegisterProcedure(
      kOrderStatus, [this](Engine* e, TxnContext* txn, const uint8_t* a,
                           size_t len) {
        return OrderStatusTxn(e, txn, UnpackArgs<OrderStatusArgs>(a, len));
      });
  engine->RegisterProcedure(
      kDelivery, [this](Engine* e, TxnContext* txn, const uint8_t* a,
                        size_t len) {
        return DeliveryTxn(e, txn, UnpackArgs<DeliveryArgs>(a, len));
      });
  engine->RegisterProcedure(
      kStockLevel, [this](Engine* e, TxnContext* txn, const uint8_t* a,
                          size_t len) {
        return StockLevelTxn(e, txn, UnpackArgs<StockLevelArgs>(a, len));
      });
}

Status TpccWorkload::FindCustomerByName(Engine* engine, TxnContext* txn,
                                        uint32_t w, uint32_t d,
                                        const char* c_last, Row** out_row,
                                        std::vector<uint8_t>* out_image) {
  const Schema& cs = customer_->schema();
  std::vector<Row*> candidates;
  customer_by_name_->LookupAll(CustomerNameKey(w, d, c_last), &candidates);

  struct Match {
    std::string first;
    Row* row;
    std::vector<uint8_t> image;
  };
  std::vector<Match> matches;
  std::vector<uint8_t> buf(cs.row_size());
  for (Row* row : candidates) {
    const Status s = engine->ReadRow(txn, row, buf.data());
    if (s.IsNotFound()) continue;
    NEXT700_RETURN_IF_ERROR(s);
    if (cs.GetChar(buf.data(), C_LAST) != c_last) continue;  // Hash alias.
    matches.push_back(
        Match{std::string(cs.GetChar(buf.data(), C_FIRST)), row, buf});
  }
  if (matches.empty()) return Status::NotFound("no customer with last name");
  // Spec 2.5.2.2: order by C_FIRST, take ceil(n/2) (1-based) = index
  // (n+1)/2 - 1.
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.first < b.first; });
  Match& chosen = matches[(matches.size() + 1) / 2 - 1];
  *out_row = chosen.row;
  *out_image = std::move(chosen.image);
  return Status::OK();
}

Status TpccWorkload::NewOrderTxn(Engine* engine, TxnContext* txn,
                                 const NewOrderArgs& args) {
  const uint32_t w = args.w_id;
  const uint32_t d = args.d_id;
  const uint32_t part = PartitionOf(w);
  const Schema& ws = warehouse_->schema();
  const Schema& ds = district_->schema();
  const Schema& cs = customer_->schema();
  const Schema& is = item_->schema();
  const Schema& ss = stock_->schema();
  const Schema& os = order_->schema();
  const Schema& ols = order_line_->schema();

  std::vector<uint8_t> buf(512);
  NEXT700_RETURN_IF_ERROR(engine->Read(txn, warehouse_pk_, w, buf.data()));
  const double w_tax = ws.GetDouble(buf.data(), W_TAX);

  NEXT700_RETURN_IF_ERROR(engine->ReadForUpdate(txn, district_pk_,
                                                DistrictKey(w, d),
                                                buf.data()));
  const double d_tax = ds.GetDouble(buf.data(), D_TAX);
  const uint64_t o_id = ds.GetUint64(buf.data(), D_NEXT_O_ID);
  ds.SetUint64(buf.data(), D_NEXT_O_ID, o_id + 1);
  NEXT700_RETURN_IF_ERROR(
      engine->Update(txn, district_pk_, DistrictKey(w, d), buf.data()));

  std::vector<uint8_t> cbuf(cs.row_size());
  NEXT700_RETURN_IF_ERROR(engine->Read(
      txn, customer_pk_, CustomerKey(w, d, args.c_id), cbuf.data()));
  const double c_discount = cs.GetDouble(cbuf.data(), C_DISCOUNT);

  bool all_local = true;
  for (uint32_t i = 0; i < args.ol_cnt; ++i) {
    if (args.supply_w_ids[i] != w) all_local = false;
  }

  // ORDER + NEW_ORDER inserts (visible after commit).
  const uint64_t okey = OrderKey(w, d, o_id);
  std::vector<uint8_t> obuf(os.row_size());
  os.SetUint64(obuf.data(), O_ID, o_id);
  os.SetUint64(obuf.data(), O_D_ID, d);
  os.SetUint64(obuf.data(), O_W_ID, w);
  os.SetUint64(obuf.data(), O_C_ID, args.c_id);
  os.SetUint64(obuf.data(), O_ENTRY_D, args.o_entry_d);
  os.SetUint64(obuf.data(), O_CARRIER_ID, 0);
  os.SetUint64(obuf.data(), O_OL_CNT, args.ol_cnt);
  os.SetUint64(obuf.data(), O_ALL_LOCAL, all_local ? 1 : 0);
  Result<Row*> orow = engine->Insert(txn, order_, part, okey, obuf.data());
  NEXT700_RETURN_IF_ERROR(orow.status());
  engine->AddIndexInsert(txn, order_pk_, okey, orow.value());
  engine->AddIndexInsert(txn, order_by_customer_,
                         OrderByCustomerKey(w, d, args.c_id, o_id),
                         orow.value());

  const Schema& nos = new_order_->schema();
  std::vector<uint8_t> nobuf(nos.row_size());
  nos.SetUint64(nobuf.data(), NO_O_ID, o_id);
  nos.SetUint64(nobuf.data(), NO_D_ID, d);
  nos.SetUint64(nobuf.data(), NO_W_ID, w);
  Result<Row*> norow =
      engine->Insert(txn, new_order_, part, okey, nobuf.data());
  NEXT700_RETURN_IF_ERROR(norow.status());
  engine->AddIndexInsert(txn, new_order_pk_, okey, norow.value());

  double total = 0;
  std::vector<uint8_t> ibuf(is.row_size());
  std::vector<uint8_t> sbuf(ss.row_size());
  std::vector<uint8_t> olbuf(ols.row_size());
  for (uint32_t i = 0; i < args.ol_cnt; ++i) {
    const uint32_t item_id = args.item_ids[i];
    const uint32_t supply_w = args.supply_w_ids[i];
    const uint32_t qty = args.quantities[i];

    const Status item_status =
        engine->Read(txn, item_pk_, item_id, ibuf.data());
    if (item_status.IsNotFound()) {
      // Spec 2.4.2.3: unused item id — user-initiated rollback.
      return Status::InvalidArgument("NEW-ORDER rollback (bad item)");
    }
    NEXT700_RETURN_IF_ERROR(item_status);
    const double price = is.GetDouble(ibuf.data(), I_PRICE);

    const uint64_t skey = StockKey(supply_w, item_id);
    NEXT700_RETURN_IF_ERROR(
        engine->ReadForUpdate(txn, stock_pk_, skey, sbuf.data()));
    uint64_t s_qty = ss.GetUint64(sbuf.data(), S_QUANTITY);
    s_qty = s_qty >= qty + 10 ? s_qty - qty : s_qty - qty + 91;
    ss.SetUint64(sbuf.data(), S_QUANTITY, s_qty);
    ss.SetUint64(sbuf.data(), S_YTD, ss.GetUint64(sbuf.data(), S_YTD) + qty);
    ss.SetUint64(sbuf.data(), S_ORDER_CNT,
                 ss.GetUint64(sbuf.data(), S_ORDER_CNT) + 1);
    if (supply_w != w) {
      ss.SetUint64(sbuf.data(), S_REMOTE_CNT,
                   ss.GetUint64(sbuf.data(), S_REMOTE_CNT) + 1);
    }
    NEXT700_RETURN_IF_ERROR(
        engine->Update(txn, stock_pk_, skey, sbuf.data()));

    const double amount = qty * price;
    total += amount;
    ols.SetUint64(olbuf.data(), OL_O_ID, o_id);
    ols.SetUint64(olbuf.data(), OL_D_ID, d);
    ols.SetUint64(olbuf.data(), OL_W_ID, w);
    ols.SetUint64(olbuf.data(), OL_NUMBER, i + 1);
    ols.SetUint64(olbuf.data(), OL_I_ID, item_id);
    ols.SetUint64(olbuf.data(), OL_SUPPLY_W_ID, supply_w);
    ols.SetUint64(olbuf.data(), OL_DELIVERY_D, 0);
    ols.SetUint64(olbuf.data(), OL_QUANTITY, qty);
    ols.SetDouble(olbuf.data(), OL_AMOUNT, amount);
    // S_DIST_xx of the supplying stock row for this district.
    ols.SetChar(olbuf.data(), OL_DIST_INFO,
                ss.GetChar(sbuf.data(), S_DIST_01 + (d - 1)));
    const uint64_t olkey = OrderLineKey(w, d, o_id, i + 1);
    Result<Row*> olrow =
        engine->Insert(txn, order_line_, part, olkey, olbuf.data());
    NEXT700_RETURN_IF_ERROR(olrow.status());
    engine->AddIndexInsert(txn, order_line_pk_, olkey, olrow.value());
  }
  // Total is computed per spec (display output); keep the compiler honest.
  total *= (1 - c_discount) * (1 + w_tax + d_tax);
  (void)total;
  return Status::OK();
}

Status TpccWorkload::PaymentTxn(Engine* engine, TxnContext* txn,
                                const PaymentArgs& args) {
  const Schema& ws = warehouse_->schema();
  const Schema& ds = district_->schema();
  const Schema& cs = customer_->schema();
  const Schema& hs = history_->schema();

  std::vector<uint8_t> wbuf(ws.row_size());
  NEXT700_RETURN_IF_ERROR(
      engine->ReadForUpdate(txn, warehouse_pk_, args.w_id, wbuf.data()));
  ws.SetDouble(wbuf.data(), W_YTD,
               ws.GetDouble(wbuf.data(), W_YTD) + args.amount);
  NEXT700_RETURN_IF_ERROR(
      engine->Update(txn, warehouse_pk_, args.w_id, wbuf.data()));

  const uint64_t dkey = DistrictKey(args.w_id, args.d_id);
  std::vector<uint8_t> dbuf(ds.row_size());
  NEXT700_RETURN_IF_ERROR(
      engine->ReadForUpdate(txn, district_pk_, dkey, dbuf.data()));
  ds.SetDouble(dbuf.data(), D_YTD,
               ds.GetDouble(dbuf.data(), D_YTD) + args.amount);
  NEXT700_RETURN_IF_ERROR(
      engine->Update(txn, district_pk_, dkey, dbuf.data()));

  Row* crow = nullptr;
  std::vector<uint8_t> cbuf;
  uint32_t c_id = args.c_id;
  if (args.by_last_name) {
    const Status s = FindCustomerByName(engine, txn, args.c_w_id, args.c_d_id,
                                        args.c_last, &crow, &cbuf);
    if (s.IsNotFound()) {
      return Status::InvalidArgument("payment: unknown last name");
    }
    NEXT700_RETURN_IF_ERROR(s);
    c_id = static_cast<uint32_t>(cs.GetUint64(cbuf.data(), C_ID));
  } else {
    cbuf.resize(cs.row_size());
    crow = customer_pk_->Lookup(
        CustomerKey(args.c_w_id, args.c_d_id, args.c_id));
    if (crow == nullptr) return Status::InvalidArgument("unknown customer");
    NEXT700_RETURN_IF_ERROR(engine->ReadRowForUpdate(txn, crow, cbuf.data()));
  }

  cs.SetDouble(cbuf.data(), C_BALANCE,
               cs.GetDouble(cbuf.data(), C_BALANCE) - args.amount);
  cs.SetDouble(cbuf.data(), C_YTD_PAYMENT,
               cs.GetDouble(cbuf.data(), C_YTD_PAYMENT) + args.amount);
  cs.SetUint64(cbuf.data(), C_PAYMENT_CNT,
               cs.GetUint64(cbuf.data(), C_PAYMENT_CNT) + 1);
  if (cs.GetChar(cbuf.data(), C_CREDIT) == "BC") {
    // Spec 2.5.2.2: bad-credit customers get payment info prepended to
    // C_DATA (truncated to the column capacity).
    char info[64];
    std::snprintf(info, sizeof(info), "%u %u %u %u %u %.2f|", c_id,
                  args.c_d_id, args.c_w_id, args.d_id, args.w_id,
                  args.amount);
    std::string data(info);
    data += cs.GetChar(cbuf.data(), C_DATA);
    if (data.size() > 250) data.resize(250);
    cs.SetChar(cbuf.data(), C_DATA, data);
  }
  NEXT700_RETURN_IF_ERROR(engine->UpdateRow(txn, crow, cbuf.data()));

  std::vector<uint8_t> hbuf(hs.row_size());
  hs.SetUint64(hbuf.data(), H_C_ID, c_id);
  hs.SetUint64(hbuf.data(), H_C_D_ID, args.c_d_id);
  hs.SetUint64(hbuf.data(), H_C_W_ID, args.c_w_id);
  hs.SetUint64(hbuf.data(), H_D_ID, args.d_id);
  hs.SetUint64(hbuf.data(), H_W_ID, args.w_id);
  hs.SetUint64(hbuf.data(), H_DATE, args.h_date);
  hs.SetDouble(hbuf.data(), H_AMOUNT, args.amount);
  hs.SetChar(hbuf.data(), H_DATA, "payment");
  Result<Row*> hrow = engine->Insert(txn, history_, PartitionOf(args.w_id),
                                     args.h_pk, hbuf.data());
  NEXT700_RETURN_IF_ERROR(hrow.status());
  engine->AddIndexInsert(txn, history_pk_, args.h_pk, hrow.value());
  return Status::OK();
}

Status TpccWorkload::OrderStatusTxn(Engine* engine, TxnContext* txn,
                                    const OrderStatusArgs& args) {
  const Schema& cs = customer_->schema();
  const Schema& os = order_->schema();
  const Schema& ols = order_line_->schema();

  Row* crow = nullptr;
  std::vector<uint8_t> cbuf;
  uint32_t c_id = args.c_id;
  if (args.by_last_name) {
    const Status s = FindCustomerByName(engine, txn, args.w_id, args.d_id,
                                        args.c_last, &crow, &cbuf);
    if (s.IsNotFound()) {
      return Status::InvalidArgument("order-status: unknown last name");
    }
    NEXT700_RETURN_IF_ERROR(s);
    c_id = static_cast<uint32_t>(cs.GetUint64(cbuf.data(), C_ID));
  } else {
    cbuf.resize(cs.row_size());
    NEXT700_RETURN_IF_ERROR(engine->Read(
        txn, customer_pk_, CustomerKey(args.w_id, args.d_id, args.c_id),
        cbuf.data()));
  }

  // Most recent order for this customer.
  std::vector<Row*> orders;
  NEXT700_RETURN_IF_ERROR(engine->ScanReverse(
      txn, order_by_customer_,
      OrderByCustomerKey(args.w_id, args.d_id, c_id, kMaxOrderId),
      OrderByCustomerKey(args.w_id, args.d_id, c_id, 0), 1, &orders));
  if (orders.empty()) return Status::OK();  // Customer without orders.

  std::vector<uint8_t> obuf(os.row_size());
  Status s = engine->ReadRow(txn, orders[0], obuf.data());
  if (s.IsNotFound()) return Status::OK();
  NEXT700_RETURN_IF_ERROR(s);
  const uint64_t o_id = os.GetUint64(obuf.data(), O_ID);

  std::vector<Row*> lines;
  NEXT700_RETURN_IF_ERROR(engine->Scan(
      txn, order_line_pk_, OrderLineKey(args.w_id, args.d_id, o_id, 0),
      OrderLineKey(args.w_id, args.d_id, o_id, 99), 0, &lines));
  std::vector<uint8_t> olbuf(ols.row_size());
  for (Row* line : lines) {
    s = engine->ReadRow(txn, line, olbuf.data());
    if (s.IsNotFound()) continue;
    NEXT700_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status TpccWorkload::DeliveryTxn(Engine* engine, TxnContext* txn,
                                 const DeliveryArgs& args) {
  const uint32_t w = args.w_id;
  const Schema& nos = new_order_->schema();
  const Schema& os = order_->schema();
  const Schema& ols = order_line_->schema();
  const Schema& cs = customer_->schema();

  for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district.
    std::vector<Row*> oldest;
    NEXT700_RETURN_IF_ERROR(engine->Scan(txn, new_order_pk_,
                                         OrderKey(w, d, 1),
                                         OrderKey(w, d, kMaxOrderId), 1,
                                         &oldest));
    if (oldest.empty()) continue;  // Spec 2.7.4.2: skip empty districts.
    Row* norow = oldest[0];
    std::vector<uint8_t> nobuf(nos.row_size());
    Status s = engine->ReadRowForUpdate(txn, norow, nobuf.data());
    if (s.IsNotFound()) {
      // Raced with another delivery; retry the transaction to rescan.
      return Status::Aborted("delivery raced on NEW_ORDER");
    }
    NEXT700_RETURN_IF_ERROR(s);
    const uint64_t o_id = nos.GetUint64(nobuf.data(), NO_O_ID);
    const uint64_t okey = OrderKey(w, d, o_id);

    s = engine->Delete(txn, norow);
    if (s.IsNotFound()) return Status::Aborted("delivery raced on delete");
    NEXT700_RETURN_IF_ERROR(s);
    engine->AddIndexRemove(txn, new_order_pk_, okey, norow);

    std::vector<uint8_t> obuf(os.row_size());
    NEXT700_RETURN_IF_ERROR(
        engine->ReadForUpdate(txn, order_pk_, okey, obuf.data()));
    const uint64_t c_id = os.GetUint64(obuf.data(), O_C_ID);
    os.SetUint64(obuf.data(), O_CARRIER_ID, args.carrier_id);
    NEXT700_RETURN_IF_ERROR(
        engine->Update(txn, order_pk_, okey, obuf.data()));

    std::vector<Row*> lines;
    NEXT700_RETURN_IF_ERROR(
        engine->Scan(txn, order_line_pk_, OrderLineKey(w, d, o_id, 0),
                     OrderLineKey(w, d, o_id, 99), 0, &lines));
    double total = 0;
    std::vector<uint8_t> olbuf(ols.row_size());
    for (Row* line : lines) {
      s = engine->ReadRowForUpdate(txn, line, olbuf.data());
      if (s.IsNotFound()) continue;
      NEXT700_RETURN_IF_ERROR(s);
      total += ols.GetDouble(olbuf.data(), OL_AMOUNT);
      ols.SetUint64(olbuf.data(), OL_DELIVERY_D, args.ol_delivery_d);
      NEXT700_RETURN_IF_ERROR(engine->UpdateRow(txn, line, olbuf.data()));
    }

    std::vector<uint8_t> cbuf(cs.row_size());
    const uint64_t ckey = CustomerKey(w, d, static_cast<uint32_t>(c_id));
    NEXT700_RETURN_IF_ERROR(
        engine->ReadForUpdate(txn, customer_pk_, ckey, cbuf.data()));
    cs.SetDouble(cbuf.data(), C_BALANCE,
                 cs.GetDouble(cbuf.data(), C_BALANCE) + total);
    cs.SetUint64(cbuf.data(), C_DELIVERY_CNT,
                 cs.GetUint64(cbuf.data(), C_DELIVERY_CNT) + 1);
    NEXT700_RETURN_IF_ERROR(
        engine->Update(txn, customer_pk_, ckey, cbuf.data()));
  }
  return Status::OK();
}

Status TpccWorkload::StockLevelTxn(Engine* engine, TxnContext* txn,
                                   const StockLevelArgs& args) {
  const Schema& ds = district_->schema();
  const Schema& ols = order_line_->schema();
  const Schema& ss = stock_->schema();
  const uint32_t w = args.w_id;
  const uint32_t d = args.d_id;

  std::vector<uint8_t> dbuf(ds.row_size());
  NEXT700_RETURN_IF_ERROR(
      engine->Read(txn, district_pk_, DistrictKey(w, d), dbuf.data()));
  const uint64_t next_o_id = ds.GetUint64(dbuf.data(), D_NEXT_O_ID);
  const uint64_t lo_order = next_o_id > 20 ? next_o_id - 20 : 1;

  std::vector<Row*> lines;
  NEXT700_RETURN_IF_ERROR(engine->Scan(
      txn, order_line_pk_, OrderLineKey(w, d, lo_order, 0),
      OrderLineKey(w, d, next_o_id - 1, 99), 0, &lines));

  std::vector<uint64_t> item_ids;
  std::vector<uint8_t> olbuf(ols.row_size());
  for (Row* line : lines) {
    const Status s = engine->ReadRow(txn, line, olbuf.data());
    if (s.IsNotFound()) continue;
    NEXT700_RETURN_IF_ERROR(s);
    item_ids.push_back(ols.GetUint64(olbuf.data(), OL_I_ID));
  }
  std::sort(item_ids.begin(), item_ids.end());
  item_ids.erase(std::unique(item_ids.begin(), item_ids.end()),
                 item_ids.end());

  uint64_t low_stock = 0;
  std::vector<uint8_t> sbuf(ss.row_size());
  for (uint64_t item : item_ids) {
    NEXT700_RETURN_IF_ERROR(engine->Read(
        txn, stock_pk_, StockKey(w, static_cast<uint32_t>(item)),
        sbuf.data()));
    if (ss.GetUint64(sbuf.data(), S_QUANTITY) < args.threshold) ++low_stock;
  }
  (void)low_stock;  // Display output in the spec.
  return Status::OK();
}

// --- Input generation (spec clause 2.x.1) ---------------------------------

void TpccWorkload::MakeNewOrder(int thread_id, Rng* rng, NewOrderArgs* args,
                                std::vector<uint32_t>* partitions) {
  std::memset(args, 0, sizeof(*args));
  args->w_id = HomeWarehouse(thread_id);
  args->d_id = static_cast<uint32_t>(
      rng->NextRange(1, options_.districts_per_warehouse));
  args->c_id = static_cast<uint32_t>(
      NuRand(rng, 1023, 1, options_.customers_per_district,
             options_.c_for_c_id));
  args->ol_cnt = static_cast<uint32_t>(rng->NextRange(5, kMaxOrderLines));
  args->o_entry_d = NowNanos();
  partitions->clear();
  partitions->push_back(PartitionOf(args->w_id));
  for (uint32_t i = 0; i < args->ol_cnt; ++i) {
    args->item_ids[i] = static_cast<uint32_t>(
        NuRand(rng, 8191, 1, options_.num_items, options_.c_for_ol_i_id));
    args->supply_w_ids[i] = args->w_id;
    if (options_.remote_txns && options_.num_warehouses > 1 &&
        rng->NextBool(0.01)) {
      uint32_t remote;
      do {
        remote = static_cast<uint32_t>(
            rng->NextRange(1, options_.num_warehouses));
      } while (remote == args->w_id);
      args->supply_w_ids[i] = remote;
      partitions->push_back(PartitionOf(remote));
    }
    args->quantities[i] = static_cast<uint32_t>(rng->NextRange(1, 10));
  }
  if (rng->NextBool(0.01)) {
    args->rollback = 1;
    args->item_ids[args->ol_cnt - 1] = 0;  // Unused item id.
  }
}

void TpccWorkload::MakePayment(int thread_id, Rng* rng, PaymentArgs* args,
                               std::vector<uint32_t>* partitions) {
  std::memset(args, 0, sizeof(*args));
  args->w_id = HomeWarehouse(thread_id);
  args->d_id = static_cast<uint32_t>(
      rng->NextRange(1, options_.districts_per_warehouse));
  if (options_.remote_txns && options_.num_warehouses > 1 &&
      rng->NextBool(0.15)) {
    do {
      args->c_w_id = static_cast<uint32_t>(
          rng->NextRange(1, options_.num_warehouses));
    } while (args->c_w_id == args->w_id);
    args->c_d_id = static_cast<uint32_t>(
        rng->NextRange(1, options_.districts_per_warehouse));
  } else {
    args->c_w_id = args->w_id;
    args->c_d_id = args->d_id;
  }
  args->by_last_name = rng->NextBool(0.6) ? 1 : 0;
  if (args->by_last_name) {
    const std::string last = LastName(static_cast<uint32_t>(
        NuRand(rng, 255, 0, MaxNameNum(options_), options_.c_for_c_last)));
    std::strncpy(args->c_last, last.c_str(), sizeof(args->c_last) - 1);
  } else {
    args->c_id = static_cast<uint32_t>(
        NuRand(rng, 1023, 1, options_.customers_per_district,
               options_.c_for_c_id));
  }
  args->amount = static_cast<double>(rng->NextRange(100, 500000)) / 100.0;
  args->h_date = NowNanos();
  args->h_pk = (uint64_t{1} << 63) |
               (static_cast<uint64_t>(thread_id) << 40) |
               history_seq_[thread_id].next++;
  partitions->clear();
  partitions->push_back(PartitionOf(args->w_id));
  if (PartitionOf(args->c_w_id) != PartitionOf(args->w_id)) {
    partitions->push_back(PartitionOf(args->c_w_id));
  }
}

void TpccWorkload::MakeOrderStatus(int thread_id, Rng* rng,
                                   OrderStatusArgs* args,
                                   std::vector<uint32_t>* partitions) {
  std::memset(args, 0, sizeof(*args));
  args->w_id = HomeWarehouse(thread_id);
  args->d_id = static_cast<uint32_t>(
      rng->NextRange(1, options_.districts_per_warehouse));
  args->by_last_name = rng->NextBool(0.6) ? 1 : 0;
  if (args->by_last_name) {
    const std::string last = LastName(static_cast<uint32_t>(
        NuRand(rng, 255, 0, MaxNameNum(options_), options_.c_for_c_last)));
    std::strncpy(args->c_last, last.c_str(), sizeof(args->c_last) - 1);
  } else {
    args->c_id = static_cast<uint32_t>(
        NuRand(rng, 1023, 1, options_.customers_per_district,
               options_.c_for_c_id));
  }
  partitions->clear();
  partitions->push_back(PartitionOf(args->w_id));
}

void TpccWorkload::MakeDelivery(int thread_id, Rng* rng, DeliveryArgs* args,
                                std::vector<uint32_t>* partitions) {
  std::memset(args, 0, sizeof(*args));
  args->w_id = HomeWarehouse(thread_id);
  args->carrier_id = static_cast<uint32_t>(rng->NextRange(1, 10));
  args->ol_delivery_d = NowNanos();
  partitions->clear();
  partitions->push_back(PartitionOf(args->w_id));
}

void TpccWorkload::MakeStockLevel(int thread_id, Rng* rng,
                                  StockLevelArgs* args,
                                  std::vector<uint32_t>* partitions) {
  std::memset(args, 0, sizeof(*args));
  args->w_id = HomeWarehouse(thread_id);
  args->d_id = static_cast<uint32_t>(
      rng->NextRange(1, options_.districts_per_warehouse));
  args->threshold = static_cast<uint32_t>(rng->NextRange(10, 20));
  partitions->clear();
  partitions->push_back(PartitionOf(args->w_id));
}

Status TpccWorkload::RunNextTxn(Engine* engine, int thread_id, Rng* rng) {
  const int pick = static_cast<int>(rng->NextUint64(100));
  std::vector<uint32_t> partitions;
  int boundary = options_.pct_new_order;
  if (pick < boundary) {
    NewOrderArgs args;
    MakeNewOrder(thread_id, rng, &args, &partitions);
    return RunWithRetry(rng, [&] {
      return engine->RunProcedure(kNewOrder, thread_id, &args, sizeof(args),
                                  partitions);
    });
  }
  boundary += options_.pct_payment;
  if (pick < boundary) {
    PaymentArgs args;
    MakePayment(thread_id, rng, &args, &partitions);
    return RunWithRetry(rng, [&] {
      return engine->RunProcedure(kPayment, thread_id, &args, sizeof(args),
                                  partitions);
    });
  }
  boundary += options_.pct_order_status;
  if (pick < boundary) {
    OrderStatusArgs args;
    MakeOrderStatus(thread_id, rng, &args, &partitions);
    return RunWithRetry(rng, [&] {
      return engine->RunProcedure(kOrderStatus, thread_id, &args,
                                  sizeof(args), partitions);
    });
  }
  boundary += options_.pct_delivery;
  if (pick < boundary) {
    DeliveryArgs args;
    MakeDelivery(thread_id, rng, &args, &partitions);
    return RunWithRetry(rng, [&] {
      return engine->RunProcedure(kDelivery, thread_id, &args, sizeof(args),
                                  partitions);
    });
  }
  StockLevelArgs args;
  MakeStockLevel(thread_id, rng, &args, &partitions);
  return RunWithRetry(rng, [&] {
    return engine->RunProcedure(kStockLevel, thread_id, &args, sizeof(args),
                                partitions);
  });
}

}  // namespace next700
