#include "workload/tatp.h"

namespace next700 {

TatpWorkload::TatpWorkload(TatpOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK(options_.num_subscribers > 0);
  NEXT700_CHECK(options_.pct_get_subscriber_data +
                    options_.pct_get_new_destination +
                    options_.pct_get_access_data +
                    options_.pct_update_subscriber_data +
                    options_.pct_update_location +
                    options_.pct_insert_call_forwarding +
                    options_.pct_delete_call_forwarding ==
                100);
}

void TatpWorkload::Load(Engine* engine) {
  num_partitions_ = engine->options().num_partitions;
  {
    Schema s;
    s.AddUint64("S_ID");
    s.AddChar("SUB_NBR", 15);
    s.AddUint64("BIT_1");
    s.AddUint64("MSC_LOCATION");
    s.AddUint64("VLR_LOCATION");
    subscriber_ = engine->CreateTable("SUBSCRIBER", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("S_ID");
    s.AddUint64("AI_TYPE");
    s.AddUint64("DATA1");
    s.AddUint64("DATA2");
    s.AddChar("DATA3", 5);
    access_info_ = engine->CreateTable("ACCESS_INFO", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("S_ID");
    s.AddUint64("SF_TYPE");
    s.AddUint64("IS_ACTIVE");
    s.AddUint64("ERROR_CNTRL");
    s.AddUint64("DATA_A");
    s.AddChar("DATA_B", 5);
    special_facility_ = engine->CreateTable("SPECIAL_FACILITY", std::move(s));
  }
  {
    Schema s;
    s.AddUint64("S_ID");
    s.AddUint64("SF_TYPE");
    s.AddUint64("START_TIME");
    s.AddUint64("END_TIME");
    s.AddChar("NUMBERX", 15);
    call_forwarding_ = engine->CreateTable("CALL_FORWARDING", std::move(s));
  }
  const uint64_t n = options_.num_subscribers;
  subscriber_pk_ =
      engine->CreateIndex("SUBSCRIBER_PK", subscriber_, IndexKind::kHash, n);
  access_info_pk_ = engine->CreateIndex("ACCESS_INFO_PK", access_info_,
                                        IndexKind::kHash, n * 3);
  special_facility_pk_ = engine->CreateIndex(
      "SPECIAL_FACILITY_PK", special_facility_, IndexKind::kHash, n * 3);
  // CF needs range scans per (s_id, sf_type): ordered index.
  call_forwarding_pk_ = engine->CreateIndex(
      "CALL_FORWARDING_PK", call_forwarding_, IndexKind::kBTree, n * 2);

  Rng rng(0x7A7B);
  std::vector<uint8_t> buf(64);
  for (uint64_t s_id = 1; s_id <= n; ++s_id) {
    const uint32_t part = PartitionOf(s_id);
    {
      const Schema& s = subscriber_->schema();
      char nbr[16];
      std::snprintf(nbr, sizeof(nbr), "%015llu",
                    static_cast<unsigned long long>(s_id));
      s.SetUint64(buf.data(), SUB_ID, s_id);
      s.SetChar(buf.data(), SUB_NBR, nbr);
      s.SetUint64(buf.data(), SUB_BIT_1, rng.NextUint64(2));
      s.SetUint64(buf.data(), SUB_MSC_LOCATION, rng.Next());
      s.SetUint64(buf.data(), SUB_VLR_LOCATION, rng.Next());
      Row* row = engine->LoadRow(subscriber_, part, s_id, buf.data());
      NEXT700_CHECK(subscriber_pk_->Insert(s_id, row).ok());
    }
    // 1..4 access-info rows with distinct types.
    {
      const Schema& s = access_info_->schema();
      const uint32_t count = static_cast<uint32_t>(rng.NextRange(1, 4));
      for (uint32_t t = 1; t <= count; ++t) {
        s.SetUint64(buf.data(), AI_S_ID, s_id);
        s.SetUint64(buf.data(), AI_TYPE, t);
        s.SetUint64(buf.data(), AI_DATA1, rng.NextUint64(256));
        s.SetUint64(buf.data(), AI_DATA2, rng.NextUint64(256));
        s.SetChar(buf.data(), AI_DATA3, "ZAB");
        const uint64_t key = TatpAccessInfoKey(s_id, t);
        Row* row = engine->LoadRow(access_info_, part, key, buf.data());
        NEXT700_CHECK(access_info_pk_->Insert(key, row).ok());
      }
    }
    // 1..4 special facilities; each with 0..3 call-forwarding rows.
    {
      const Schema& sf = special_facility_->schema();
      const Schema& cf = call_forwarding_->schema();
      const uint32_t count = static_cast<uint32_t>(rng.NextRange(1, 4));
      for (uint32_t t = 1; t <= count; ++t) {
        sf.SetUint64(buf.data(), SF_S_ID, s_id);
        sf.SetUint64(buf.data(), SF_TYPE, t);
        sf.SetUint64(buf.data(), SF_IS_ACTIVE, rng.NextBool(0.85) ? 1 : 0);
        sf.SetUint64(buf.data(), SF_ERROR_CNTRL, rng.NextUint64(256));
        sf.SetUint64(buf.data(), SF_DATA_A, rng.NextUint64(256));
        sf.SetChar(buf.data(), SF_DATA_B, "FGHIJ");
        const uint64_t sf_key = TatpSpecialFacilityKey(s_id, t);
        Row* row = engine->LoadRow(special_facility_, part, sf_key,
                                   buf.data());
        NEXT700_CHECK(special_facility_pk_->Insert(sf_key, row).ok());

        const uint32_t cf_count = static_cast<uint32_t>(rng.NextUint64(4));
        for (uint32_t c = 0; c < cf_count; ++c) {
          const uint32_t start = c * 8;  // 0, 8, 16.
          if (start > 16) break;
          cf.SetUint64(buf.data(), CF_S_ID, s_id);
          cf.SetUint64(buf.data(), CF_SF_TYPE, t);
          cf.SetUint64(buf.data(), CF_START_TIME, start);
          cf.SetUint64(buf.data(), CF_END_TIME, start + rng.NextRange(1, 8));
          cf.SetChar(buf.data(), CF_NUMBERX, "005551234567890");
          const uint64_t key = TatpCallForwardingKey(s_id, t, start);
          Row* cf_row = engine->LoadRow(call_forwarding_, part, key,
                                        buf.data());
          NEXT700_CHECK(call_forwarding_pk_->Insert(key, cf_row).ok());
        }
      }
    }
  }
}

Status TatpWorkload::GetSubscriberData(Engine* engine, TxnContext* txn,
                                       uint64_t s_id) {
  uint8_t buf[64];
  return engine->Read(txn, subscriber_pk_, s_id, buf);
}

Status TatpWorkload::GetNewDestination(Engine* engine, TxnContext* txn,
                                       uint64_t s_id, uint32_t sf_type,
                                       uint32_t start_time,
                                       uint32_t end_time) {
  uint8_t buf[64];
  const Schema& sf = special_facility_->schema();
  const Schema& cf = call_forwarding_->schema();
  Status s = engine->Read(txn, special_facility_pk_,
                          TatpSpecialFacilityKey(s_id, sf_type), buf);
  if (s.IsNotFound()) return Status::InvalidArgument("no such facility");
  NEXT700_RETURN_IF_ERROR(s);
  if (sf.GetUint64(buf, SF_IS_ACTIVE) == 0) {
    return Status::InvalidArgument("facility inactive");
  }
  std::vector<Row*> rows;
  NEXT700_RETURN_IF_ERROR(engine->Scan(
      txn, call_forwarding_pk_, TatpCallForwardingKey(s_id, sf_type, 0),
      TatpCallForwardingKey(s_id, sf_type, 16), 0, &rows));
  int matches = 0;
  for (Row* row : rows) {
    s = engine->ReadRow(txn, row, buf);
    if (s.IsNotFound()) continue;
    NEXT700_RETURN_IF_ERROR(s);
    if (cf.GetUint64(buf, CF_START_TIME) <= start_time &&
        end_time < cf.GetUint64(buf, CF_END_TIME)) {
      ++matches;
    }
  }
  if (matches == 0) return Status::InvalidArgument("no destination");
  return Status::OK();
}

Status TatpWorkload::GetAccessData(Engine* engine, TxnContext* txn,
                                   uint64_t s_id, uint32_t ai_type) {
  uint8_t buf[64];
  const Status s =
      engine->Read(txn, access_info_pk_, TatpAccessInfoKey(s_id, ai_type),
                   buf);
  if (s.IsNotFound()) return Status::InvalidArgument("no access info");
  return s;
}

Status TatpWorkload::UpdateSubscriberData(Engine* engine, TxnContext* txn,
                                          uint64_t s_id, uint32_t sf_type,
                                          uint64_t bit, uint64_t data_a) {
  uint8_t buf[64];
  const Schema& sub = subscriber_->schema();
  NEXT700_RETURN_IF_ERROR(
      engine->ReadForUpdate(txn, subscriber_pk_, s_id, buf));
  sub.SetUint64(buf, SUB_BIT_1, bit);
  NEXT700_RETURN_IF_ERROR(engine->Update(txn, subscriber_pk_, s_id, buf));

  const Schema& sf = special_facility_->schema();
  const uint64_t sf_key = TatpSpecialFacilityKey(s_id, sf_type);
  const Status s = engine->ReadForUpdate(txn, special_facility_pk_, sf_key,
                                         buf);
  if (s.IsNotFound()) return Status::InvalidArgument("no such facility");
  NEXT700_RETURN_IF_ERROR(s);
  sf.SetUint64(buf, SF_DATA_A, data_a);
  return engine->Update(txn, special_facility_pk_, sf_key, buf);
}

Status TatpWorkload::UpdateLocation(Engine* engine, TxnContext* txn,
                                    uint64_t s_id, uint64_t location) {
  uint8_t buf[64];
  const Schema& sub = subscriber_->schema();
  NEXT700_RETURN_IF_ERROR(
      engine->ReadForUpdate(txn, subscriber_pk_, s_id, buf));
  sub.SetUint64(buf, SUB_VLR_LOCATION, location);
  return engine->Update(txn, subscriber_pk_, s_id, buf);
}

Status TatpWorkload::InsertCallForwarding(Engine* engine, TxnContext* txn,
                                          uint64_t s_id, uint32_t sf_type,
                                          uint32_t start_time,
                                          uint32_t end_time,
                                          uint64_t numberx) {
  uint8_t buf[64];
  // The facility must exist.
  Status s = engine->Read(txn, special_facility_pk_,
                          TatpSpecialFacilityKey(s_id, sf_type), buf);
  if (s.IsNotFound()) return Status::InvalidArgument("no such facility");
  NEXT700_RETURN_IF_ERROR(s);
  const uint64_t key = TatpCallForwardingKey(s_id, sf_type, start_time);
  if (call_forwarding_pk_->Lookup(key) != nullptr) {
    // Spec: ~30% of inserts hit an existing row and roll back.
    return Status::InvalidArgument("call forwarding exists");
  }
  const Schema& cf = call_forwarding_->schema();
  cf.SetUint64(buf, CF_S_ID, s_id);
  cf.SetUint64(buf, CF_SF_TYPE, sf_type);
  cf.SetUint64(buf, CF_START_TIME, start_time);
  cf.SetUint64(buf, CF_END_TIME, end_time);
  char nbr[16];
  std::snprintf(nbr, sizeof(nbr), "%015llu",
                static_cast<unsigned long long>(numberx));
  cf.SetChar(buf, CF_NUMBERX, nbr);
  Result<Row*> row =
      engine->Insert(txn, call_forwarding_, PartitionOf(s_id), key, buf);
  NEXT700_RETURN_IF_ERROR(row.status());
  engine->AddIndexInsert(txn, call_forwarding_pk_, key, row.value());
  return Status::OK();
}

Status TatpWorkload::DeleteCallForwarding(Engine* engine, TxnContext* txn,
                                          uint64_t s_id, uint32_t sf_type,
                                          uint32_t start_time) {
  const uint64_t key = TatpCallForwardingKey(s_id, sf_type, start_time);
  Row* row = call_forwarding_pk_->Lookup(key);
  if (row == nullptr) {
    return Status::InvalidArgument("no call forwarding to delete");
  }
  const Status s = engine->Delete(txn, row);
  if (s.IsNotFound()) {
    return Status::InvalidArgument("call forwarding already gone");
  }
  NEXT700_RETURN_IF_ERROR(s);
  engine->AddIndexRemove(txn, call_forwarding_pk_, key, row);
  return Status::OK();
}

Status TatpWorkload::RunNextTxn(Engine* engine, int thread_id, Rng* rng) {
  const uint64_t s_id = 1 + rng->NextUint64(options_.num_subscribers);
  const std::vector<uint32_t> parts{PartitionOf(s_id)};
  const int pick = static_cast<int>(rng->NextUint64(100));
  int boundary = 0;

  const auto run = [&](auto&& body) {
    return RunWithRetry(rng, [&] {
      TxnContext* txn = engine->Begin(thread_id, parts);
      Status s = body(txn);
      if (s.ok()) s = engine->Commit(txn);
      if (!s.ok()) {
        if (s.IsAborted()) {
          engine->Abort(txn);
        } else {
          engine->AbortUser(txn);
        }
      }
      return s;
    });
  };

  if (pick < (boundary += options_.pct_get_subscriber_data)) {
    return run([&](TxnContext* txn) {
      return GetSubscriberData(engine, txn, s_id);
    });
  }
  if (pick < (boundary += options_.pct_get_new_destination)) {
    const uint32_t sf_type = static_cast<uint32_t>(rng->NextRange(1, 4));
    const uint32_t start = static_cast<uint32_t>(rng->NextUint64(3)) * 8;
    const uint32_t end = start + static_cast<uint32_t>(rng->NextRange(1, 8));
    return run([&](TxnContext* txn) {
      return GetNewDestination(engine, txn, s_id, sf_type, start, end);
    });
  }
  if (pick < (boundary += options_.pct_get_access_data)) {
    const uint32_t ai_type = static_cast<uint32_t>(rng->NextRange(1, 4));
    return run([&](TxnContext* txn) {
      return GetAccessData(engine, txn, s_id, ai_type);
    });
  }
  if (pick < (boundary += options_.pct_update_subscriber_data)) {
    const uint32_t sf_type = static_cast<uint32_t>(rng->NextRange(1, 4));
    const uint64_t bit = rng->NextUint64(2);
    const uint64_t data_a = rng->NextUint64(256);
    return run([&](TxnContext* txn) {
      return UpdateSubscriberData(engine, txn, s_id, sf_type, bit, data_a);
    });
  }
  if (pick < (boundary += options_.pct_update_location)) {
    const uint64_t location = rng->Next();
    return run([&](TxnContext* txn) {
      return UpdateLocation(engine, txn, s_id, location);
    });
  }
  if (pick < (boundary += options_.pct_insert_call_forwarding)) {
    const uint32_t sf_type = static_cast<uint32_t>(rng->NextRange(1, 4));
    const uint32_t start = static_cast<uint32_t>(rng->NextUint64(3)) * 8;
    const uint32_t end = start + static_cast<uint32_t>(rng->NextRange(1, 8));
    return run([&](TxnContext* txn) {
      return InsertCallForwarding(engine, txn, s_id, sf_type, start, end,
                                  rng->Next() % 1000000000ull);
    });
  }
  const uint32_t sf_type = static_cast<uint32_t>(rng->NextRange(1, 4));
  const uint32_t start = static_cast<uint32_t>(rng->NextUint64(3)) * 8;
  return run([&](TxnContext* txn) {
    return DeleteCallForwarding(engine, txn, s_id, sf_type, start);
  });
}

}  // namespace next700
