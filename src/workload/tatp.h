#ifndef NEXT700_WORKLOAD_TATP_H_
#define NEXT700_WORKLOAD_TATP_H_

/// \file
/// TATP (Telecom Application Transaction Processing): four tables keyed by
/// subscriber, seven short transaction profiles, 80% reads — the classic
/// "many tiny transactions" counterpoint to TPC-C. Insert/Delete
/// Call-Forwarding rows fail deterministically when the target (does not)
/// exist, which exercises the engines' insert/delete paths under
/// contention.

#include "workload/workload.h"

namespace next700 {

struct TatpOptions {
  uint64_t num_subscribers = 100000;
  /// Transaction mix in percent (standard TATP mix); must sum to 100.
  int pct_get_subscriber_data = 35;
  int pct_get_new_destination = 10;
  int pct_get_access_data = 35;
  int pct_update_subscriber_data = 2;
  int pct_update_location = 14;
  int pct_insert_call_forwarding = 2;
  int pct_delete_call_forwarding = 2;
};

// Column layouts (indices match the Add* order in Load).
enum SubscriberCol : int {
  SUB_ID, SUB_NBR, SUB_BIT_1, SUB_MSC_LOCATION, SUB_VLR_LOCATION,
};
enum AccessInfoCol : int { AI_S_ID, AI_TYPE, AI_DATA1, AI_DATA2, AI_DATA3 };
enum SpecialFacilityCol : int {
  SF_S_ID, SF_TYPE, SF_IS_ACTIVE, SF_ERROR_CNTRL, SF_DATA_A, SF_DATA_B,
};
enum CallForwardingCol : int {
  CF_S_ID, CF_SF_TYPE, CF_START_TIME, CF_END_TIME, CF_NUMBERX,
};

inline uint64_t TatpAccessInfoKey(uint64_t s_id, uint32_t ai_type) {
  return s_id * 4 + (ai_type - 1);
}
inline uint64_t TatpSpecialFacilityKey(uint64_t s_id, uint32_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}
inline uint64_t TatpCallForwardingKey(uint64_t s_id, uint32_t sf_type,
                                      uint32_t start_time) {
  return TatpSpecialFacilityKey(s_id, sf_type) * 3 + start_time / 8;
}

class TatpWorkload : public Workload {
 public:
  explicit TatpWorkload(TatpOptions options);

  void Load(Engine* engine) override;
  Status RunNextTxn(Engine* engine, int thread_id, Rng* rng) override;
  const char* name() const override { return "tatp"; }

  const TatpOptions& options() const { return options_; }

  Table* subscriber_ = nullptr;
  Table* access_info_ = nullptr;
  Table* special_facility_ = nullptr;
  Table* call_forwarding_ = nullptr;
  Index* subscriber_pk_ = nullptr;
  Index* access_info_pk_ = nullptr;
  Index* special_facility_pk_ = nullptr;
  Index* call_forwarding_pk_ = nullptr;

 private:
  uint32_t PartitionOf(uint64_t s_id) const {
    return static_cast<uint32_t>(s_id % num_partitions_);
  }

  Status GetSubscriberData(Engine* engine, TxnContext* txn, uint64_t s_id);
  Status GetNewDestination(Engine* engine, TxnContext* txn, uint64_t s_id,
                           uint32_t sf_type, uint32_t start_time,
                           uint32_t end_time);
  Status GetAccessData(Engine* engine, TxnContext* txn, uint64_t s_id,
                       uint32_t ai_type);
  Status UpdateSubscriberData(Engine* engine, TxnContext* txn, uint64_t s_id,
                              uint32_t sf_type, uint64_t bit,
                              uint64_t data_a);
  Status UpdateLocation(Engine* engine, TxnContext* txn, uint64_t s_id,
                        uint64_t location);
  Status InsertCallForwarding(Engine* engine, TxnContext* txn, uint64_t s_id,
                              uint32_t sf_type, uint32_t start_time,
                              uint32_t end_time, uint64_t numberx);
  Status DeleteCallForwarding(Engine* engine, TxnContext* txn, uint64_t s_id,
                              uint32_t sf_type, uint32_t start_time);

  TatpOptions options_;
  uint32_t num_partitions_ = 1;
};

}  // namespace next700

#endif  // NEXT700_WORKLOAD_TATP_H_
