#include "workload/smallbank.h"

namespace next700 {

namespace {
enum Col : int { kColCustId, kColBalance };
}  // namespace

SmallBankWorkload::SmallBankWorkload(SmallBankOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK(options_.num_accounts > 0);
  NEXT700_CHECK(options_.pct_balance + options_.pct_deposit_checking +
                    options_.pct_transact_savings + options_.pct_amalgamate +
                    options_.pct_write_check + options_.pct_send_payment ==
                100);
  zipf_ = std::make_unique<ZipfGenerator>(options_.num_accounts,
                                          options_.theta);
}

void SmallBankWorkload::Load(Engine* engine) {
  const uint32_t partitions = engine->options().num_partitions;
  Schema savings_schema;
  savings_schema.AddUint64("CUST_ID");
  savings_schema.AddInt64("BALANCE");
  Schema checking_schema = savings_schema;
  savings_ = engine->CreateTable("SAVINGS", std::move(savings_schema));
  checking_ = engine->CreateTable("CHECKING", std::move(checking_schema));
  savings_pk_ = engine->CreateIndex("SAVINGS_PK", savings_, IndexKind::kHash,
                                    options_.num_accounts);
  checking_pk_ = engine->CreateIndex("CHECKING_PK", checking_,
                                     IndexKind::kHash,
                                     options_.num_accounts);
  std::vector<uint8_t> buf(savings_->schema().row_size());
  for (uint64_t acct = 0; acct < options_.num_accounts; ++acct) {
    const uint32_t part = static_cast<uint32_t>(acct % partitions);
    savings_->schema().SetUint64(buf.data(), kColCustId, acct);
    savings_->schema().SetInt64(buf.data(), kColBalance,
                                options_.initial_balance);
    Row* srow = engine->LoadRow(savings_, part, acct, buf.data());
    NEXT700_CHECK(savings_pk_->Insert(acct, srow).ok());
    Row* crow = engine->LoadRow(checking_, part, acct, buf.data());
    NEXT700_CHECK(checking_pk_->Insert(acct, crow).ok());
  }
}

SmallBankWorkload::TxnType SmallBankWorkload::PickType(Rng* rng) const {
  int pick = static_cast<int>(rng->NextUint64(100));
  if ((pick -= options_.pct_balance) < 0) return kBalance;
  if ((pick -= options_.pct_deposit_checking) < 0) return kDepositChecking;
  if ((pick -= options_.pct_transact_savings) < 0) return kTransactSavings;
  if ((pick -= options_.pct_amalgamate) < 0) return kAmalgamate;
  if ((pick -= options_.pct_write_check) < 0) return kWriteCheck;
  return kSendPayment;
}

Status SmallBankWorkload::ExecuteOnce(Engine* engine, int thread_id,
                                      TxnType type, uint64_t acct_a,
                                      uint64_t acct_b, int64_t amount) {
  const Schema& s = savings_->schema();
  const uint32_t partitions = engine->options().num_partitions;
  std::vector<uint32_t> parts{static_cast<uint32_t>(acct_a % partitions)};
  if (type == kAmalgamate || type == kSendPayment) {
    parts.push_back(static_cast<uint32_t>(acct_b % partitions));
  }
  TxnContext* txn = engine->Begin(thread_id, parts);
  uint8_t sav[16], chk[16], other[16];
  auto abort_with = [&](const Status& status) {
    if (status.IsAborted()) {
      engine->Abort(txn);
    } else {
      engine->AbortUser(txn);  // Deterministic business-rule rollback.
    }
    return status;
  };

  switch (type) {
    case kBalance: {
      Status st = engine->Read(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      st = engine->Read(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      break;
    }
    case kDepositChecking: {
      Status st = engine->Read(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      s.SetInt64(chk, kColBalance, s.GetInt64(chk, kColBalance) + amount);
      st = engine->Update(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      break;
    }
    case kTransactSavings: {
      Status st = engine->Read(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      const int64_t balance = s.GetInt64(sav, kColBalance) + amount;
      if (balance < 0) {
        return abort_with(Status::InvalidArgument("insufficient savings"));
      }
      s.SetInt64(sav, kColBalance, balance);
      st = engine->Update(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      break;
    }
    case kAmalgamate: {
      Status st = engine->Read(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      st = engine->Read(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      st = engine->Read(txn, checking_pk_, acct_b, other);
      if (!st.ok()) return abort_with(st);
      const int64_t moved =
          s.GetInt64(sav, kColBalance) + s.GetInt64(chk, kColBalance);
      s.SetInt64(other, kColBalance, s.GetInt64(other, kColBalance) + moved);
      s.SetInt64(sav, kColBalance, 0);
      s.SetInt64(chk, kColBalance, 0);
      st = engine->Update(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      st = engine->Update(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      st = engine->Update(txn, checking_pk_, acct_b, other);
      if (!st.ok()) return abort_with(st);
      break;
    }
    case kWriteCheck: {
      Status st = engine->Read(txn, savings_pk_, acct_a, sav);
      if (!st.ok()) return abort_with(st);
      st = engine->Read(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      const int64_t total =
          s.GetInt64(sav, kColBalance) + s.GetInt64(chk, kColBalance);
      const int64_t penalty = total < amount ? 100 : 0;  // Overdraft fee.
      s.SetInt64(chk, kColBalance,
                 s.GetInt64(chk, kColBalance) - amount - penalty);
      st = engine->Update(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      break;
    }
    case kSendPayment: {
      Status st = engine->Read(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      if (s.GetInt64(chk, kColBalance) < amount) {
        return abort_with(Status::InvalidArgument("insufficient checking"));
      }
      st = engine->Read(txn, checking_pk_, acct_b, other);
      if (!st.ok()) return abort_with(st);
      s.SetInt64(chk, kColBalance, s.GetInt64(chk, kColBalance) - amount);
      s.SetInt64(other, kColBalance, s.GetInt64(other, kColBalance) + amount);
      st = engine->Update(txn, checking_pk_, acct_a, chk);
      if (!st.ok()) return abort_with(st);
      st = engine->Update(txn, checking_pk_, acct_b, other);
      if (!st.ok()) return abort_with(st);
      break;
    }
  }
  const Status st = engine->Commit(txn);
  if (!st.ok()) return abort_with(st);
  return Status::OK();
}

Status SmallBankWorkload::RunNextTxn(Engine* engine, int thread_id,
                                     Rng* rng) {
  const TxnType type = PickType(rng);
  const uint64_t acct_a = PickAccount(rng);
  uint64_t acct_b = acct_a;
  if (type == kAmalgamate || type == kSendPayment) {
    while (acct_b == acct_a && options_.num_accounts > 1) {
      acct_b = PickAccount(rng);
    }
  }
  const int64_t amount = static_cast<int64_t>(rng->NextRange(1, 100));
  return RunWithRetry(rng, [&] {
    return ExecuteOnce(engine, thread_id, type, acct_a, acct_b, amount);
  });
}

int64_t SmallBankWorkload::TotalMoney(Engine* engine) const {
  int64_t total = 0;
  const Schema& s = savings_->schema();
  const auto sum_table = [&](Table* table) {
    table->ForEachRow([&](Row* row) {
      if (row->deleted()) return;
      total += s.GetInt64(engine->RawImage(row), kColBalance);
    });
  };
  sum_table(savings_);
  sum_table(checking_);
  return total;
}

}  // namespace next700
