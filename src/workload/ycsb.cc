#include "workload/ycsb.h"

#include <algorithm>
#include <cstring>

namespace next700 {

namespace {
constexpr uint32_t kMaxRowSize = 1024;
}  // namespace

YcsbWorkload::YcsbWorkload(YcsbOptions options)
    : options_(std::move(options)) {
  NEXT700_CHECK(options_.num_records > 0);
  NEXT700_CHECK(options_.num_fields >= 1);
  zipf_ = std::make_unique<ZipfGenerator>(options_.num_records,
                                          options_.theta);
}

void YcsbWorkload::Load(Engine* engine) {
  num_partitions_ = engine->options().num_partitions;
  Schema schema;
  for (int f = 0; f < options_.num_fields; ++f) {
    schema.AddUint64("f" + std::to_string(f));
  }
  row_size_ = schema.row_size();
  NEXT700_CHECK(row_size_ <= kMaxRowSize);
  table_ = engine->CreateTable("usertable", std::move(schema));
  index_ = engine->CreateIndex("usertable_pk", table_, options_.index_kind,
                               options_.num_records);

  std::vector<uint8_t> buf(row_size_);
  const Schema& s = table_->schema();
  for (uint64_t key = 0; key < options_.num_records; ++key) {
    for (int f = 0; f < options_.num_fields; ++f) {
      s.SetUint64(buf.data(), f, key * 131 + static_cast<uint64_t>(f));
    }
    Row* row = engine->LoadRow(table_, PartitionOf(key), key, buf.data());
    NEXT700_CHECK(index_->Insert(key, row).ok());
  }
}

void YcsbWorkload::GenerateTxn(Rng* rng, std::vector<Op>* ops,
                               std::vector<uint32_t>* partitions) {
  ops->clear();
  partitions->clear();
  if (!options_.partitioned || num_partitions_ == 1) {
    for (int i = 0; i < options_.ops_per_txn; ++i) {
      ops->push_back(Op{zipf_->Next(rng),
                        rng->NextBool(options_.write_fraction)});
    }
    return;
  }
  // Partitioned mode: pick the partition set first, then constrain keys.
  int span = 1;
  if (rng->NextBool(options_.multi_partition_fraction)) {
    span = std::min<int>(options_.partitions_per_mp_txn,
                         static_cast<int>(num_partitions_));
  }
  while (static_cast<int>(partitions->size()) < span) {
    const uint32_t p =
        static_cast<uint32_t>(rng->NextUint64(num_partitions_));
    if (std::find(partitions->begin(), partitions->end(), p) ==
        partitions->end()) {
      partitions->push_back(p);
    }
  }
  for (int i = 0; i < options_.ops_per_txn; ++i) {
    const uint32_t target =
        (*partitions)[static_cast<size_t>(i) % partitions->size()];
    // Re-home a Zipf draw into the target partition, preserving skew.
    uint64_t key = zipf_->Next(rng);
    key = key - (key % num_partitions_) + target;
    if (key >= options_.num_records) {
      key = target;  // Smallest key in the partition.
    }
    ops->push_back(Op{key, rng->NextBool(options_.write_fraction)});
  }
}

Status YcsbWorkload::ExecuteOnce(Engine* engine, int thread_id,
                                 const std::vector<Op>& ops,
                                 const std::vector<uint32_t>& partitions,
                                 Rng* rng, uint8_t* buf) {
  TxnContext* txn = engine->Begin(thread_id, partitions);
  const Schema& schema = table_->schema();
  for (const Op& op : ops) {
    if (op.is_write && !options_.read_modify_write) {
      // Blind write: fresh full-row image.
      for (int f = 0; f < options_.num_fields; ++f) {
        schema.SetUint64(buf, f, rng->Next());
      }
      const Status s = engine->Update(txn, index_, op.key, buf);
      if (!s.ok()) {
        engine->Abort(txn);
        return s;
      }
      continue;
    }
    Status s = op.is_write ? engine->ReadForUpdate(txn, index_, op.key, buf)
                           : engine->Read(txn, index_, op.key, buf);
    if (!s.ok()) {
      engine->Abort(txn);
      return s;
    }
    if (op.is_write) {  // Read-modify-write.
      schema.SetUint64(buf, 0, schema.GetUint64(buf, 0) + 1);
      s = engine->Update(txn, index_, op.key, buf);
      if (!s.ok()) {
        engine->Abort(txn);
        return s;
      }
    }
  }
  const Status s = engine->Commit(txn);
  if (!s.ok()) engine->Abort(txn);
  return s;
}

Status YcsbWorkload::RunNextTxn(Engine* engine, int thread_id, Rng* rng) {
  // Thread-local scratch reused across transactions: after warm-up the
  // generation path performs no heap allocation (the vectors keep their
  // capacity), which the A3 allocation-count bench and test depend on.
  thread_local std::vector<Op> ops;
  thread_local std::vector<uint32_t> partitions;
  GenerateTxn(rng, &ops, &partitions);
  uint8_t buf[kMaxRowSize];
  return RunWithRetry(rng, [&] {
    return ExecuteOnce(engine, thread_id, ops, partitions, rng, buf);
  });
}

}  // namespace next700
