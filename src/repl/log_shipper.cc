#include "repl/log_shipper.h"

#include <algorithm>
#include <utility>

#include "server/protocol.h"

namespace next700 {
namespace repl {

Status LogShipper::NextBatch(std::vector<uint8_t>* out, bool* have_batch) {
  *have_batch = false;
  server::ReplBatch batch;
  batch.start_lsn = next_lsn_;
  Lsn end = next_lsn_;
  NEXT700_RETURN_IF_ERROR(log_->ReadFramesInRange(
      next_lsn_, next_lsn_ + server::kMaxReplBatchBytes, &batch.frames,
      &end));
  if (end == next_lsn_) return Status::OK();  // Nothing new is durable.
  batch.primary_durable_lsn = log_->durable_lsn();
  EncodeReplBatch(batch, out);
  next_lsn_ = end;
  *have_batch = true;
  return Status::OK();
}

void LogShipper::RecordAck(Lsn durable, Lsn applied) {
  acked_durable_ = std::max(acked_durable_, durable);
  acked_applied_ = std::max(acked_applied_, applied);
}

}  // namespace repl
}  // namespace next700
