#ifndef NEXT700_REPL_LOG_SHIPPER_H_
#define NEXT700_REPL_LOG_SHIPPER_H_

/// \file
/// Primary-side shipping cursor for one replica subscription. The server's
/// event loop owns one LogShipper per subscribed replica connection; the
/// shipper tracks the next LSN to send and builds checksummed ReplBatch
/// frames straight from the durable log stream via
/// LogManager::ReadFramesInRange — the bytes on the wire are the bytes on
/// the primary's disk, so replica logs are byte-identical and share the
/// primary's LSN space.
///
/// Flow control lives in the caller (the event loop ships while the
/// connection's write buffer is below a window); progress signals are the
/// durable callback (new bytes to ship), replica acks (lag bookkeeping),
/// and socket writability (window reopened).

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "log/log_manager.h"

namespace next700 {
namespace repl {

class LogShipper {
 public:
  /// `log` must outlive the shipper. `start_lsn` is the replica's
  /// subscription position (its local durable end) — it must be a frame
  /// boundary of the shared LSN space, which every replica ack is.
  LogShipper(LogManager* log, Lsn start_lsn)
      : log_(log), next_lsn_(start_lsn),
        acked_durable_(start_lsn), acked_applied_(start_lsn) {}

  /// Appends one encoded ReplBatch frame (wire header included) to `*out`
  /// if durable bytes exist past the cursor, advancing the cursor.
  /// *have_batch=false with OK means nothing new is durable. kNotFound
  /// means the cursor fell below the primary's retired log prefix — the
  /// replica is too far behind to tail the log and must re-bootstrap from
  /// a checkpoint; the caller should drop the subscription.
  Status NextBatch(std::vector<uint8_t>* out, bool* have_batch);

  /// Records a replica ack. Acks are cumulative; regressions are ignored.
  void RecordAck(Lsn durable, Lsn applied);

  Lsn next_lsn() const { return next_lsn_; }
  Lsn acked_durable() const { return acked_durable_; }
  Lsn acked_applied() const { return acked_applied_; }

  /// Bytes shipped but not yet replica-durable (lag in log bytes).
  uint64_t unacked_bytes() const { return next_lsn_ - acked_durable_; }

 private:
  LogManager* log_;
  Lsn next_lsn_;
  Lsn acked_durable_;
  Lsn acked_applied_;
};

}  // namespace repl
}  // namespace next700

#endif  // NEXT700_REPL_LOG_SHIPPER_H_
