#ifndef NEXT700_REPL_REPLICA_APPLIER_H_
#define NEXT700_REPL_REPLICA_APPLIER_H_

/// \file
/// Replica-side continuous apply of the primary's log stream.
///
/// Bootstrap contract: before Start(), the caller brings the replica
/// engine to a state consistent with its local log directory — either a
/// fresh engine with the same deterministically seeded data as the
/// primary (both logs empty, LSN 0) or RecoverEngine() from the replica's
/// own checkpoint + MANIFEST + log suffix (restart, or a copied primary
/// backup). The engine must be opened with logging pointed at the
/// replica's local log directory: the applier writes the primary's frame
/// bytes verbatim into it (LogManager::AppendRaw), so the two logs are
/// byte-identical and share one LSN space.
///
/// The applier thread connects to the primary with PeerRole::kReplica,
/// subscribes from its local durable end, and for every received batch:
/// append raw -> wait locally durable -> apply to the engine under the
/// write side of the read gate (RecoveryManager::ApplyFrames: Thomas-rule
/// value replay / serial command re-execution) -> advance applied LSN ->
/// ack. Acking only after the local durability barrier means an acked
/// byte survives a replica crash, which is what the primary's semisync
/// mode promises clients. Applying only after the same barrier keeps
/// applied_lsn <= local durable_lsn <= primary durable_lsn at all times.
///
/// Snapshot reads: the replica's server executes read-only procedures
/// between batches, serialized against raw apply by the ReadLock/
/// ReadUnlock gate (applier writes bypass CC, so reader/writer exclusion
/// is the isolation mechanism; the snapshot is the applied prefix of the
/// primary's commit order). Staleness is bounded by request.min_read_lsn.
///
/// Failover: promotion is a restart, not a code path — stop the replica
/// and start a primary on its directories. Crash recovery truncates any
/// torn tail the dying applier left, exactly as it would after a primary
/// crash; every byte the replica ever acked is below that tail.
///
/// If the primary dies or the connection drops, the applier keeps serving
/// reads and retries the connection with backoff until Stop().

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_safety.h"
#include "log/recovery.h"
#include "server/server.h"
#include "txn/engine.h"

namespace next700 {
namespace repl {

struct ReplicaApplierOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Delay between reconnect attempts when the primary is unreachable.
  uint64_t reconnect_backoff_ms = 100;
  /// Poll interval while waiting for stream bytes (also the Stop latency
  /// bound: the applier checks for shutdown at least this often).
  int64_t recv_deadline_ms = 200;
};

class ReplicaApplier : public server::SnapshotSource {
 public:
  /// `engine` must outlive the applier, be bootstrapped as described
  /// above, and have a LogManager (logging enabled on the replica's own
  /// log directory).
  ReplicaApplier(Engine* engine, ReplicaApplierOptions options);
  ~ReplicaApplier() override;
  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Secondary-index rebuild hook for value replay (workload-specific),
  /// forwarded to the RecoveryManager. Set before Start().
  void set_secondary_rebuilder(
      RecoveryManager::SecondaryIndexRebuilder rebuilder);

  /// Captures the local durable end as the applied watermark and starts
  /// the apply thread.
  Status Start();

  /// Stops the apply thread and disconnects. Idempotent.
  void Stop();

  // --- server::SnapshotSource (replica-role server integration) ---------

  Lsn applied_lsn() const override {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// Shared/exclusive gate between snapshot readers (server workers) and
  /// raw apply. Hand-built over Mutex+CondVar with writer priority so a
  /// continuous read load cannot starve the stream.
  void ReadLock() override;
  void ReadUnlock() override;

  // --- Observability ------------------------------------------------------

  /// Primary's durable LSN as of the last received batch (lag reference).
  Lsn primary_durable_lsn() const {
    return primary_durable_lsn_.load(std::memory_order_relaxed);
  }
  /// Replication lag in log bytes: primary durable minus locally applied.
  uint64_t lag_bytes() const {
    const Lsn primary = primary_durable_lsn();
    const Lsn applied = applied_lsn();
    return primary > applied ? primary - applied : 0;
  }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  uint64_t txns_applied() const {
    return txns_applied_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  /// First fatal stream error (a corrupt batch, a broken local log), or
  /// OK. Transient connection loss is not fatal — the applier retries.
  Status stream_status() const;

 private:
  void ApplyLoop();
  /// One connect + subscribe + drain session; returns when the connection
  /// drops, a fatal error sticks, or Stop() is requested.
  void RunSession();
  void WriteLock();
  void WriteUnlock();

  Engine* engine_;
  ReplicaApplierOptions options_;
  RecoveryManager recovery_;

  std::atomic<Lsn> applied_lsn_{0};
  std::atomic<Lsn> primary_durable_lsn_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> txns_applied_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> stop_{false};

  // Reader/writer gate: snapshot readers share; raw apply excludes.
  Mutex gate_mu_;
  CondVar gate_cv_;
  int readers_ GUARDED_BY(gate_mu_) = 0;
  int writers_waiting_ GUARDED_BY(gate_mu_) = 0;
  bool writer_ GUARDED_BY(gate_mu_) = false;

  mutable Mutex status_mu_;
  Status stream_status_ GUARDED_BY(status_mu_);

  bool running_ = false;  // Start/Stop-caller-owned.
  std::thread thread_;
};

}  // namespace repl
}  // namespace next700

#endif  // NEXT700_REPL_REPLICA_APPLIER_H_
