#include "repl/replica_applier.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "server/client.h"
#include "server/protocol.h"

namespace next700 {
namespace repl {

namespace {
// Consecutive recv deadlines with an unchanged partial frame in the decoder
// before the session is declared stalled and torn down for a reconnect.
constexpr int kMaxStalledDeadlines = 25;
}  // namespace

ReplicaApplier::ReplicaApplier(Engine* engine, ReplicaApplierOptions options)
    : engine_(engine), options_(std::move(options)), recovery_(engine) {
  NEXT700_CHECK(engine_ != nullptr);
  NEXT700_CHECK_MSG(engine_->log_manager() != nullptr,
                    "replica applier requires a local log");
}

ReplicaApplier::~ReplicaApplier() { Stop(); }

void ReplicaApplier::set_secondary_rebuilder(
    RecoveryManager::SecondaryIndexRebuilder rebuilder) {
  recovery_.set_secondary_rebuilder(std::move(rebuilder));
}

Status ReplicaApplier::Start() {
  NEXT700_CHECK(!running_);
  // Bootstrap already applied everything in the local log (see the file
  // header), so the local durable end is both the applied watermark and
  // the subscription position.
  applied_lsn_.store(engine_->log_manager()->durable_lsn(),
                     std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { ApplyLoop(); });
  return Status::OK();
}

void ReplicaApplier::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  running_ = false;
}

Status ReplicaApplier::stream_status() const {
  MutexLock lock(&status_mu_);
  return stream_status_;
}

void ReplicaApplier::ApplyLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    RunSession();
    if (stop_.load(std::memory_order_acquire)) break;
    if (!stream_status().ok()) break;  // Fatal; reconnecting cannot help.
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.reconnect_backoff_ms));
  }
  connected_.store(false, std::memory_order_relaxed);
}

void ReplicaApplier::RunSession() {
  LogManager* log = engine_->log_manager();
  server::Client client;
  if (!client
           .Connect(options_.primary_host, options_.primary_port,
                    server::PeerRole::kReplica)
           .ok()) {
    return;  // Primary down or not yet up; back off and retry.
  }
  connected_.store(true, std::memory_order_relaxed);

  // Subscribe from the local durable end. Everything below it was applied
  // (bootstrap contract + this loop's apply-before-ack ordering), so the
  // stream resumes without gaps or re-application.
  server::ReplAck subscribe;
  subscribe.durable_lsn = log->durable_lsn();
  subscribe.applied_lsn = applied_lsn();
  std::vector<uint8_t> encoded;
  EncodeReplAck(subscribe, &encoded);
  if (!client.SendRaw(encoded.data(), encoded.size()).ok()) {
    connected_.store(false, std::memory_order_relaxed);
    return;
  }

  // An idle primary (no new batches) and a primary stalled mid-frame both
  // surface as kDeadlineExceeded. They differ in the decoder: idle leaves
  // zero buffered bytes, a stall leaves a partial frame that never grows.
  // Tolerate a bounded number of consecutive stalled deadlines, then drop
  // the session and reconnect rather than waiting forever on a sick peer.
  int stalled_deadlines = 0;
  size_t last_buffered = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    server::FrameType type;
    std::vector<uint8_t> body;
    const Status received =
        client.RecvFrame(&type, &body, options_.recv_deadline_ms);
    if (received.code() == StatusCode::kDeadlineExceeded) {
      const size_t buffered = client.buffered_bytes();
      if (buffered > 0 && buffered == last_buffered) {
        if (++stalled_deadlines >= kMaxStalledDeadlines) break;
      } else {
        stalled_deadlines = 0;
      }
      last_buffered = buffered;
      continue;
    }
    stalled_deadlines = 0;
    last_buffered = 0;
    if (!received.ok()) break;  // Connection lost; reconnect.
    if (type != server::FrameType::kReplBatch) break;

    server::ReplBatch batch;
    const Status decoded =
        server::DecodeReplBatch(body.data(), body.size(), &batch);
    if (!decoded.ok()) {
      // A checksum mismatch poisons only the connection, not the replica:
      // nothing of the bad batch was appended, so reconnecting re-ships it.
      break;
    }
    const Lsn local_end = log->appended_lsn();
    if (batch.start_lsn != local_end) {
      // The stream must continue exactly at our log end — anything else
      // means the subscription got out of sync; resubscribe from scratch.
      break;
    }

    log->AppendRaw(batch.frames.data(), batch.frames.size());
    const Lsn end = batch.end_lsn();
    const Status durable = log->WaitDurable(end);
    if (!durable.ok()) {
      MutexLock lock(&status_mu_);
      if (stream_status_.ok()) stream_status_ = durable;
      break;
    }

    RecoveryStats stats;
    WriteLock();
    const Status applied =
        recovery_.ApplyFrames(batch.frames.data(), batch.frames.size(),
                              &stats);
    if (applied.ok()) {
      applied_lsn_.store(end, std::memory_order_release);
    }
    WriteUnlock();
    if (!applied.ok()) {
      MutexLock lock(&status_mu_);
      if (stream_status_.ok()) stream_status_ = applied;
      break;
    }
    batches_applied_.fetch_add(1, std::memory_order_relaxed);
    txns_applied_.fetch_add(stats.txns_replayed, std::memory_order_relaxed);
    primary_durable_lsn_.store(
        std::max(primary_durable_lsn_.load(std::memory_order_relaxed),
                 batch.primary_durable_lsn),
        std::memory_order_relaxed);

    server::ReplAck ack;
    ack.durable_lsn = end;
    ack.applied_lsn = end;
    encoded.clear();
    EncodeReplAck(ack, &encoded);
    if (!client.SendRaw(encoded.data(), encoded.size()).ok()) break;
  }
  connected_.store(false, std::memory_order_relaxed);
  client.Close();
}

void ReplicaApplier::ReadLock() {
  MutexLock lock(&gate_mu_);
  // Writer priority: a waiting applier blocks new readers, so a steady
  // read load cannot stall the stream (and with it, failover freshness).
  while (writer_ || writers_waiting_ > 0) gate_cv_.Wait(&gate_mu_);
  ++readers_;
}

void ReplicaApplier::ReadUnlock() {
  MutexLock lock(&gate_mu_);
  if (--readers_ == 0) gate_cv_.NotifyAll();
}

void ReplicaApplier::WriteLock() {
  MutexLock lock(&gate_mu_);
  ++writers_waiting_;
  while (writer_ || readers_ > 0) gate_cv_.Wait(&gate_mu_);
  --writers_waiting_;
  writer_ = true;
}

void ReplicaApplier::WriteUnlock() {
  MutexLock lock(&gate_mu_);
  writer_ = false;
  gate_cv_.NotifyAll();
}

}  // namespace repl
}  // namespace next700
