#include "index/hash_index.h"

#include <bit>

namespace next700 {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kBTree:
      return "btree";
  }
  return "unknown";
}

HashIndex::HashIndex(Table* table, uint64_t capacity_hint) : Index(table) {
  const uint64_t n = std::bit_ceil(capacity_hint < 16 ? 16 : capacity_hint);
  tables_.push_back(std::make_unique<BucketArray>(n));
  current_.store(tables_.back().get(), std::memory_order_release);
}

HashIndex::~HashIndex() {
  // Migrated buckets have empty chains, so this frees each entry once.
  for (auto& table : tables_) {
    for (auto& bucket : table->buckets) {
      Entry* e = bucket.head;
      while (e != nullptr) {
        Entry* next = e->next;
        delete e;
        e = next;
      }
    }
  }
}

HashIndex::Bucket* HashIndex::LockBucket(uint64_t key,
                                         BucketArray** out) const {
  const uint64_t h = FnvHash64(key);
  BucketArray* t = current_.load(std::memory_order_acquire);
  for (;;) {
    Bucket* b = &t->buckets[h & t->mask];
    b->Lock();
    if (!b->migrated) {
      *out = t;
      return b;
    }
    // Chain moved to the successor. `successor` was written before this
    // table was published as a resize source and the migrator's unlock
    // (release) ordered it before our lock (acquire), so it is visible.
    b->Unlock();
    t = t->successor;
  }
}

void HashIndex::MigrateOneBucket(BucketArray* src, uint64_t index) {
  BucketArray* dst = src->successor;
  Bucket& from = src->buckets[index];
  from.Lock();
  // Move each entry to its new home bucket. With a power-of-two doubling
  // every key in src bucket i lands in dst bucket i or i + src_size, but
  // rehashing through the mask keeps this independent of the growth factor.
  Entry* e = from.head;
  while (e != nullptr) {
    Entry* next = e->next;
    Bucket& to = dst->buckets[FnvHash64(e->key) & dst->mask];
    to.Lock();
    e->next = to.head;
    to.head = e;
    to.Unlock();
    e = next;
  }
  from.head = nullptr;
  from.migrated = true;
  from.Unlock();

  const uint64_t done =
      src->migrated_count.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == src->buckets.size()) {
    // Last bucket drained: install the new table. Order matters — a thread
    // that loads the fresh current_ must never re-enter the drained source,
    // and a thread that raced past the old resize_src_ just falls through
    // the (now exhausted) work queue harmlessly.
    current_.store(dst, std::memory_order_release);
    resize_src_.store(nullptr, std::memory_order_release);
    rehashes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HashIndex::MaybeGrowAndHelp() {
  if (resize_src_.load(std::memory_order_acquire) == nullptr) {
    BucketArray* cur = current_.load(std::memory_order_acquire);
    if (entries_.load(std::memory_order_relaxed) >
        cur->buckets.size() * kGrowLoadFactor) {
      MutexLock lock(&resize_mu_);
      // Re-check under the mutex: another thread may have started (or even
      // finished) a resize since the racy test above.
      cur = current_.load(std::memory_order_acquire);
      if (resize_src_.load(std::memory_order_acquire) == nullptr &&
          cur->successor == nullptr &&
          entries_.load(std::memory_order_relaxed) >
              cur->buckets.size() * kGrowLoadFactor) {
        tables_.push_back(
            std::make_unique<BucketArray>(cur->buckets.size() * 2));
        cur->successor = tables_.back().get();
        // Publish: from here on writers help drain `cur`.
        resize_src_.store(cur, std::memory_order_release);
      }
    }
  }
  BucketArray* src = resize_src_.load(std::memory_order_acquire);
  if (src == nullptr) return;
  for (uint64_t i = 0; i < kMigrateStride; ++i) {
    const uint64_t index =
        src->next_to_migrate.fetch_add(1, std::memory_order_relaxed);
    if (index >= src->buckets.size()) return;
    MigrateOneBucket(src, index);
  }
}

Status HashIndex::InsertImpl(uint64_t key, Row* row, bool unique) {
  MaybeGrowAndHelp();
  BucketArray* table;
  Bucket* bucket = LockBucket(key, &table);
  bucket->AssertHeld();
  for (Entry* e = bucket->head; e != nullptr; e = e->next) {
    if (e->key == key) {
      if (unique || e->row == row) {
        bucket->Unlock();
        return Status::AlreadyExists("hash index key exists");
      }
    }
  }
  bucket->head = new Entry{key, row, bucket->head};
  bucket->Unlock();
  entries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HashIndex::Insert(uint64_t key, Row* row) {
  return InsertImpl(key, row, /*unique=*/false);
}

Status HashIndex::InsertUnique(uint64_t key, Row* row) {
  return InsertImpl(key, row, /*unique=*/true);
}

Row* HashIndex::Lookup(uint64_t key) const {
  BucketArray* table;
  Bucket* bucket = LockBucket(key, &table);
  bucket->AssertHeld();
  for (Entry* e = bucket->head; e != nullptr; e = e->next) {
    if (e->key == key) {
      Row* row = e->row;
      bucket->Unlock();
      return row;
    }
  }
  bucket->Unlock();
  return nullptr;
}

void HashIndex::LookupAll(uint64_t key, std::vector<Row*>* out) const {
  BucketArray* table;
  Bucket* bucket = LockBucket(key, &table);
  bucket->AssertHeld();
  for (Entry* e = bucket->head; e != nullptr; e = e->next) {
    if (e->key == key) out->push_back(e->row);
  }
  bucket->Unlock();
}

bool HashIndex::Remove(uint64_t key, Row* row) {
  MaybeGrowAndHelp();
  BucketArray* table;
  Bucket* bucket = LockBucket(key, &table);
  bucket->AssertHeld();
  Entry** link = &bucket->head;
  while (*link != nullptr) {
    Entry* e = *link;
    if (e->key == key && e->row == row) {
      *link = e->next;
      bucket->Unlock();
      delete e;
      entries_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    link = &e->next;
  }
  bucket->Unlock();
  return false;
}

Status HashIndex::Scan(uint64_t lo, uint64_t hi, size_t limit,
                       std::vector<Row*>* out) const {
  (void)lo;
  (void)hi;
  (void)limit;
  (void)out;
  return Status::NotSupported("hash index cannot scan in key order");
}

Status HashIndex::ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                              std::vector<Row*>* out) const {
  (void)hi;
  (void)lo;
  (void)limit;
  (void)out;
  return Status::NotSupported("hash index cannot scan in key order");
}

}  // namespace next700
