#include "index/hash_index.h"

#include <bit>

namespace next700 {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kBTree:
      return "btree";
  }
  return "unknown";
}

HashIndex::HashIndex(Table* table, uint64_t capacity_hint) : Index(table) {
  uint64_t buckets = std::bit_ceil(capacity_hint < 16 ? 16 : capacity_hint);
  buckets_ = std::vector<Bucket>(buckets);
  bucket_mask_ = buckets - 1;
}

HashIndex::~HashIndex() {
  for (auto& bucket : buckets_) {
    Entry* e = bucket.head;
    while (e != nullptr) {
      Entry* next = e->next;
      delete e;
      e = next;
    }
  }
}

Status HashIndex::InsertImpl(uint64_t key, Row* row, bool unique) {
  Bucket& bucket = BucketFor(key);
  bucket.Lock();
  for (Entry* e = bucket.head; e != nullptr; e = e->next) {
    if (e->key == key) {
      if (unique || e->row == row) {
        bucket.Unlock();
        return Status::AlreadyExists("hash index key exists");
      }
    }
  }
  bucket.head = new Entry{key, row, bucket.head};
  bucket.Unlock();
  entries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HashIndex::Insert(uint64_t key, Row* row) {
  return InsertImpl(key, row, /*unique=*/false);
}

Status HashIndex::InsertUnique(uint64_t key, Row* row) {
  return InsertImpl(key, row, /*unique=*/true);
}

Row* HashIndex::Lookup(uint64_t key) const {
  Bucket& bucket = BucketFor(key);
  bucket.Lock();
  for (Entry* e = bucket.head; e != nullptr; e = e->next) {
    if (e->key == key) {
      Row* row = e->row;
      bucket.Unlock();
      return row;
    }
  }
  bucket.Unlock();
  return nullptr;
}

void HashIndex::LookupAll(uint64_t key, std::vector<Row*>* out) const {
  Bucket& bucket = BucketFor(key);
  bucket.Lock();
  for (Entry* e = bucket.head; e != nullptr; e = e->next) {
    if (e->key == key) out->push_back(e->row);
  }
  bucket.Unlock();
}

bool HashIndex::Remove(uint64_t key, Row* row) {
  Bucket& bucket = BucketFor(key);
  bucket.Lock();
  Entry** link = &bucket.head;
  while (*link != nullptr) {
    Entry* e = *link;
    if (e->key == key && e->row == row) {
      *link = e->next;
      bucket.Unlock();
      delete e;
      entries_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    link = &e->next;
  }
  bucket.Unlock();
  return false;
}

Status HashIndex::Scan(uint64_t lo, uint64_t hi, size_t limit,
                       std::vector<Row*>* out) const {
  (void)lo;
  (void)hi;
  (void)limit;
  (void)out;
  return Status::NotSupported("hash index cannot scan in key order");
}

Status HashIndex::ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                              std::vector<Row*>* out) const {
  (void)hi;
  (void)lo;
  (void)limit;
  (void)out;
  return Status::NotSupported("hash index cannot scan in key order");
}

}  // namespace next700
