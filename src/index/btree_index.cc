#include "index/btree_index.h"

#include <algorithm>

// Thread safety analysis: latch crabbing acquires and releases node latches
// hand-over-hand through data-dependent pointers and hands latched nodes
// across function boundaries (DescendShared/DescendExclusive return latched
// leaves; `held` carries a latched ancestor chain). That protocol is outside
// what TSA's function-local lock sets can express, so every crabbing
// function definition below opts out with NO_THREAD_SAFETY_ANALYSIS. The
// protocol is instead checked dynamically: latch ranks (kIndexRoot above
// kIndexNode) under NEXT700_DEBUG_LATCH_RANK, plus TSan coverage in CI.

namespace next700 {

BTreeIndex::BTreeIndex(Table* table) : Index(table) { root_ = new Leaf(); }

BTreeIndex::~BTreeIndex() { FreeSubtree(root_); }

void BTreeIndex::FreeSubtree(Node* node) {
  if (!node->is_leaf) {
    Inner* inner = static_cast<Inner*>(node);
    for (int i = 0; i <= inner->count; ++i) FreeSubtree(inner->children[i]);
    delete inner;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

int BTreeIndex::ChildIndex(const Inner* inner, const BKey& key) {
  // First separator strictly greater than key; children[i] covers
  // [keys[i-1], keys[i]).
  int i = 0;
  while (i < inner->count && !(key < inner->keys[i])) ++i;
  return i;
}

int BTreeIndex::LeafLowerBound(const Leaf* leaf, const BKey& key) {
  int i = 0;
  while (i < leaf->count && leaf->keys[i] < key) ++i;
  return i;
}

const BTreeIndex::Leaf* BTreeIndex::DescendShared(const BKey& key) const
    NO_THREAD_SAFETY_ANALYSIS {
  root_latch_.LockShared();
  const Node* node = root_;
  node->latch.LockShared();
  root_latch_.UnlockShared();
  while (!node->is_leaf) {
    const Inner* inner = static_cast<const Inner*>(node);
    const Node* child = inner->children[ChildIndex(inner, key)];
    child->latch.LockShared();
    node->latch.UnlockShared();
    node = child;
  }
  return static_cast<const Leaf*>(node);
}

void BTreeIndex::ReleaseHeld(std::vector<Inner*>* held,
                             bool* root_held) NO_THREAD_SAFETY_ANALYSIS {
  for (Inner* ancestor : *held) ancestor->latch.UnlockExclusive();
  held->clear();
  if (*root_held) {
    root_latch_.UnlockExclusive();
    *root_held = false;
  }
}

BTreeIndex::Leaf* BTreeIndex::DescendExclusive(
    const BKey& key, std::vector<Inner*>* held,
    bool* root_held) NO_THREAD_SAFETY_ANALYSIS {
  root_latch_.LockExclusive();
  *root_held = true;
  Node* node = root_;
  node->latch.LockExclusive();
  const int root_cap = node->is_leaf ? kLeafCapacity : kInnerKeys;
  if (node->count < root_cap) {
    root_latch_.UnlockExclusive();
    *root_held = false;
  }
  while (!node->is_leaf) {
    Inner* inner = static_cast<Inner*>(node);
    Node* child = inner->children[ChildIndex(inner, key)];
    child->latch.LockExclusive();
    const int child_cap = child->is_leaf ? kLeafCapacity : kInnerKeys;
    if (child->count < child_cap) {
      // Child cannot split, so no ancestor will be modified: release them.
      for (Inner* ancestor : *held) ancestor->latch.UnlockExclusive();
      held->clear();
      inner->latch.UnlockExclusive();
      if (*root_held) {
        root_latch_.UnlockExclusive();
        *root_held = false;
      }
    } else {
      held->push_back(inner);
    }
    node = child;
  }
  return static_cast<Leaf*>(node);
}

void BTreeIndex::InsertIntoParents(std::vector<Inner*>* held, bool* root_held,
                                   Node* left, BKey sep,
                                   Node* right) NO_THREAD_SAFETY_ANALYSIS {
  Node* lchild = left;
  Node* rchild = right;
  while (!held->empty()) {
    Inner* parent = held->back();
    held->pop_back();
    // Locate lchild among the children (fanout is small; scan).
    int pos = 0;
    while (pos <= parent->count && parent->children[pos] != lchild) ++pos;
    NEXT700_CHECK_MSG(pos <= parent->count, "btree parent lost its child");

    if (parent->count < kInnerKeys) {
      for (int i = parent->count; i > pos; --i) {
        parent->keys[i] = parent->keys[i - 1];
        parent->children[i + 1] = parent->children[i];
      }
      parent->keys[pos] = sep;
      parent->children[pos + 1] = rchild;
      ++parent->count;
      parent->latch.UnlockExclusive();
      ReleaseHeld(held, root_held);
      return;
    }

    // Parent is full: split it. Build the post-insert key/child sequence.
    BKey all_keys[kInnerKeys + 1];
    Node* all_children[kInnerKeys + 2];
    for (int i = 0; i < pos; ++i) all_keys[i] = parent->keys[i];
    all_keys[pos] = sep;
    for (int i = pos; i < kInnerKeys; ++i) all_keys[i + 1] = parent->keys[i];
    for (int i = 0; i <= pos; ++i) all_children[i] = parent->children[i];
    all_children[pos + 1] = rchild;
    for (int i = pos + 1; i <= kInnerKeys; ++i) {
      all_children[i + 1] = parent->children[i];
    }

    const int total_keys = kInnerKeys + 1;
    const int mid = total_keys / 2;
    const BKey promoted = all_keys[mid];

    Inner* right_inner = new Inner();
    parent->count = static_cast<uint16_t>(mid);
    for (int i = 0; i < mid; ++i) parent->keys[i] = all_keys[i];
    for (int i = 0; i <= mid; ++i) parent->children[i] = all_children[i];
    right_inner->count = static_cast<uint16_t>(total_keys - mid - 1);
    for (int i = 0; i < right_inner->count; ++i) {
      right_inner->keys[i] = all_keys[mid + 1 + i];
    }
    for (int i = 0; i <= right_inner->count; ++i) {
      right_inner->children[i] = all_children[mid + 1 + i];
    }
    parent->latch.UnlockExclusive();
    lchild = parent;
    rchild = right_inner;
    sep = promoted;
  }

  // The whole path was full: grow the tree. The root pointer latch must
  // still be held in that case.
  NEXT700_CHECK_MSG(*root_held, "btree root split without root latch");
  Inner* new_root = new Inner();
  new_root->count = 1;
  new_root->keys[0] = sep;
  new_root->children[0] = lchild;
  new_root->children[1] = rchild;
  root_ = new_root;
  root_latch_.UnlockExclusive();
  *root_held = false;
}

Status BTreeIndex::Insert(uint64_t key, Row* row) NO_THREAD_SAFETY_ANALYSIS {
  const BKey entry{key, reinterpret_cast<uint64_t>(row)};
  std::vector<Inner*> held;
  bool root_held = false;
  Leaf* leaf = DescendExclusive(entry, &held, &root_held);

  const int pos = LeafLowerBound(leaf, entry);
  if (pos < leaf->count && leaf->keys[pos] == entry) {
    leaf->latch.UnlockExclusive();
    ReleaseHeld(&held, &root_held);
    return Status::AlreadyExists("btree (key,row) pair exists");
  }

  if (leaf->count < kLeafCapacity) {
    for (int i = leaf->count; i > pos; --i) leaf->keys[i] = leaf->keys[i - 1];
    leaf->keys[pos] = entry;
    ++leaf->count;
    leaf->latch.UnlockExclusive();
    ReleaseHeld(&held, &root_held);
    entries_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Leaf split. Distribute the kLeafCapacity existing entries plus the new
  // one across leaf and a fresh right sibling.
  BKey all[kLeafCapacity + 1];
  for (int i = 0; i < pos; ++i) all[i] = leaf->keys[i];
  all[pos] = entry;
  for (int i = pos; i < kLeafCapacity; ++i) all[i + 1] = leaf->keys[i];

  const int total = kLeafCapacity + 1;
  const int mid = total / 2;
  Leaf* right = new Leaf();
  leaf->count = static_cast<uint16_t>(mid);
  for (int i = 0; i < mid; ++i) leaf->keys[i] = all[i];
  right->count = static_cast<uint16_t>(total - mid);
  for (int i = 0; i < right->count; ++i) right->keys[i] = all[mid + i];
  right->next = leaf->next;
  leaf->next = right;

  InsertIntoParents(&held, &root_held, leaf, right->keys[0], right);
  leaf->latch.UnlockExclusive();
  entries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BTreeIndex::InsertUnique(uint64_t key,
                                Row* row) NO_THREAD_SAFETY_ANALYSIS {
  // Uniqueness must be checked under the same latches that perform the
  // insert, so this re-implements Insert with a key-only existence check.
  const BKey entry{key, reinterpret_cast<uint64_t>(row)};
  std::vector<Inner*> held;
  bool root_held = false;
  Leaf* leaf = DescendExclusive(entry, &held, &root_held);

  // Any entry with the same user key sorts adjacent to (key, row). It is in
  // this leaf unless our insertion point is the leaf end, in which case it
  // could start the next leaf.
  const int pos = LeafLowerBound(leaf, BKey{key, 0});
  bool exists = pos < leaf->count && leaf->keys[pos].k == key;
  if (!exists && pos == leaf->count) {
    // Peek at following leaves (skipping empty ones) without dropping our
    // exclusive latch; forward coupling keeps the latch order global.
    Leaf* peek = leaf->next;
    while (peek != nullptr) {
      peek->latch.LockShared();
      if (peek->count > 0) {
        exists = peek->keys[0].k == key;
        peek->latch.UnlockShared();
        break;
      }
      Leaf* after = peek->next;
      peek->latch.UnlockShared();
      peek = after;
    }
  }
  if (exists) {
    leaf->latch.UnlockExclusive();
    ReleaseHeld(&held, &root_held);
    return Status::AlreadyExists("btree key exists");
  }

  const int ins = LeafLowerBound(leaf, entry);
  if (leaf->count < kLeafCapacity) {
    for (int i = leaf->count; i > ins; --i) leaf->keys[i] = leaf->keys[i - 1];
    leaf->keys[ins] = entry;
    ++leaf->count;
    leaf->latch.UnlockExclusive();
    ReleaseHeld(&held, &root_held);
    entries_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  BKey all[kLeafCapacity + 1];
  for (int i = 0; i < ins; ++i) all[i] = leaf->keys[i];
  all[ins] = entry;
  for (int i = ins; i < kLeafCapacity; ++i) all[i + 1] = leaf->keys[i];
  const int total = kLeafCapacity + 1;
  const int mid = total / 2;
  Leaf* right = new Leaf();
  leaf->count = static_cast<uint16_t>(mid);
  for (int i = 0; i < mid; ++i) leaf->keys[i] = all[i];
  right->count = static_cast<uint16_t>(total - mid);
  for (int i = 0; i < right->count; ++i) right->keys[i] = all[mid + i];
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParents(&held, &root_held, leaf, right->keys[0], right);
  leaf->latch.UnlockExclusive();
  entries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Row* BTreeIndex::Lookup(uint64_t key) const NO_THREAD_SAFETY_ANALYSIS {
  const Leaf* leaf = DescendShared(BKey{key, 0});
  int idx = LeafLowerBound(leaf, BKey{key, 0});
  for (;;) {
    if (idx < leaf->count) {
      Row* row =
          leaf->keys[idx].k == key ? RowOf(leaf->keys[idx]) : nullptr;
      leaf->latch.UnlockShared();
      return row;
    }
    const Leaf* next = leaf->next;
    if (next == nullptr) {
      leaf->latch.UnlockShared();
      return nullptr;
    }
    next->latch.LockShared();
    leaf->latch.UnlockShared();
    leaf = next;
    idx = 0;
  }
}

void BTreeIndex::LookupAll(uint64_t key, std::vector<Row*>* out) const
    NO_THREAD_SAFETY_ANALYSIS {
  const Leaf* leaf = DescendShared(BKey{key, 0});
  int idx = LeafLowerBound(leaf, BKey{key, 0});
  for (;;) {
    while (idx < leaf->count && leaf->keys[idx].k == key) {
      out->push_back(RowOf(leaf->keys[idx]));
      ++idx;
    }
    if (idx < leaf->count || leaf->next == nullptr) {
      leaf->latch.UnlockShared();
      return;
    }
    const Leaf* next = leaf->next;
    next->latch.LockShared();
    leaf->latch.UnlockShared();
    leaf = next;
    idx = 0;
  }
}

Status BTreeIndex::Scan(uint64_t lo, uint64_t hi, size_t limit,
                        std::vector<Row*>* out) const
    NO_THREAD_SAFETY_ANALYSIS {
  if (lo > hi) return Status::InvalidArgument("scan bounds reversed");
  const Leaf* leaf = DescendShared(BKey{lo, 0});
  int idx = LeafLowerBound(leaf, BKey{lo, 0});
  size_t taken = 0;
  for (;;) {
    while (idx < leaf->count) {
      const BKey& entry = leaf->keys[idx];
      if (entry.k > hi) {
        leaf->latch.UnlockShared();
        return Status::OK();
      }
      out->push_back(RowOf(entry));
      ++idx;
      if (limit != 0 && ++taken >= limit) {
        leaf->latch.UnlockShared();
        return Status::OK();
      }
    }
    const Leaf* next = leaf->next;
    if (next == nullptr) {
      leaf->latch.UnlockShared();
      return Status::OK();
    }
    next->latch.LockShared();
    leaf->latch.UnlockShared();
    leaf = next;
    idx = 0;
  }
}

Status BTreeIndex::ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                               std::vector<Row*>* out) const
    NO_THREAD_SAFETY_ANALYSIS {
  if (lo > hi) return Status::InvalidArgument("scan bounds reversed");
  // Collect ascending, then emit the tail in reverse. Walking the leaf
  // chain backwards would invert the latch order and risk deadlock against
  // forward scans, so the reverse scan pays an extra pass instead.
  std::vector<Row*> ascending;
  NEXT700_RETURN_IF_ERROR(Scan(lo, hi, 0, &ascending));
  const size_t take =
      limit == 0 ? ascending.size() : std::min(limit, ascending.size());
  for (size_t i = 0; i < take; ++i) {
    out->push_back(ascending[ascending.size() - 1 - i]);
  }
  return Status::OK();
}

bool BTreeIndex::Remove(uint64_t key, Row* row) NO_THREAD_SAFETY_ANALYSIS {
  const BKey target{key, reinterpret_cast<uint64_t>(row)};
  // Descend with shared latches, taking leaves exclusively. Removal never
  // merges nodes, so ancestors are read-only here.
  root_latch_.LockShared();
  Node* node = root_;
  if (node->is_leaf) {
    node->latch.LockExclusive();
  } else {
    node->latch.LockShared();
  }
  root_latch_.UnlockShared();
  while (!node->is_leaf) {
    Inner* inner = static_cast<Inner*>(node);
    Node* child = inner->children[ChildIndex(inner, target)];
    if (child->is_leaf) {
      child->latch.LockExclusive();
    } else {
      child->latch.LockShared();
    }
    node->latch.UnlockShared();
    node = child;
  }
  Leaf* leaf = static_cast<Leaf*>(node);
  int idx = LeafLowerBound(leaf, target);
  for (;;) {
    if (idx < leaf->count) {
      if (!(leaf->keys[idx] == target)) {
        leaf->latch.UnlockExclusive();
        return false;
      }
      for (int i = idx; i < leaf->count - 1; ++i) {
        leaf->keys[i] = leaf->keys[i + 1];
      }
      --leaf->count;
      leaf->latch.UnlockExclusive();
      entries_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    Leaf* next = leaf->next;
    if (next == nullptr) {
      leaf->latch.UnlockExclusive();
      return false;
    }
    next->latch.LockExclusive();
    leaf->latch.UnlockExclusive();
    leaf = next;
    idx = LeafLowerBound(leaf, target);
  }
}

int BTreeIndex::Height() const NO_THREAD_SAFETY_ANALYSIS {
  root_latch_.LockShared();
  const Node* node = root_;
  node->latch.LockShared();
  root_latch_.UnlockShared();
  int height = 1;
  while (!node->is_leaf) {
    const Inner* inner = static_cast<const Inner*>(node);
    const Node* child = inner->children[0];
    child->latch.LockShared();
    node->latch.UnlockShared();
    node = child;
    ++height;
  }
  node->latch.UnlockShared();
  return height;
}

}  // namespace next700
