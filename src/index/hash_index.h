#ifndef NEXT700_INDEX_HASH_INDEX_H_
#define NEXT700_INDEX_HASH_INDEX_H_

/// \file
/// Chained hash index with per-bucket byte latches and incremental doubling.
///
/// The bucket array starts at a size derived from the capacity hint. When
/// the load factor (entries / buckets) exceeds kGrowLoadFactor, a table of
/// twice as many buckets is published and writers migrate a few source
/// buckets per operation (latched, one bucket at a time); the writer that
/// migrates the last bucket swaps the new table in. Only Entry chain nodes
/// move — Row* values handed out by Lookup stay valid forever, and readers
/// are never blocked for more than one bucket's migration.
///
/// Concurrency protocol: an operation latches the bucket its key maps to in
/// the current table; if that bucket has been migrated it follows the
/// table's successor pointer and retries there (at most one hop per
/// completed resize). Retired bucket arrays are kept allocated until the
/// index is destroyed, so a reader holding a stale table pointer can always
/// finish its chase safely.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_safety.h"
#include "index/index.h"

namespace next700 {

class HashIndex : public Index {
 public:
  /// Grow when entries exceed buckets * kGrowLoadFactor.
  static constexpr uint64_t kGrowLoadFactor = 2;
  /// Source buckets each write operation migrates while a resize is active.
  /// Doubling at load factor L leaves L*N inserts before the next trigger
  /// and N buckets to move, so any stride >= 1 finishes in time; 4 keeps the
  /// transition window (and the extra lookup hop) short.
  static constexpr uint64_t kMigrateStride = 4;

  /// `capacity_hint` is the expected number of entries; the initial bucket
  /// array is sized to keep expected chain length around 1.
  HashIndex(Table* table, uint64_t capacity_hint);
  ~HashIndex() override;

  IndexKind kind() const override { return IndexKind::kHash; }

  Status Insert(uint64_t key, Row* row) override;
  Status InsertUnique(uint64_t key, Row* row) override;
  Row* Lookup(uint64_t key) const override;
  void LookupAll(uint64_t key, std::vector<Row*>* out) const override;
  bool Remove(uint64_t key, Row* row) override;
  Status Scan(uint64_t lo, uint64_t hi, size_t limit,
              std::vector<Row*>* out) const override;
  Status ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                     std::vector<Row*>* out) const override;
  uint64_t size() const override {
    return entries_.load(std::memory_order_relaxed);
  }

  uint64_t num_buckets() const {
    return current_.load(std::memory_order_acquire)->buckets.size();
  }
  /// Completed doublings (observability for tests and F11 commentary).
  uint64_t num_rehashes() const {
    return rehashes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t key;
    Row* row;
    Entry* next;
  };

  struct CAPABILITY("bucket") Bucket {
    std::atomic<uint8_t> latch{0};
    Entry* head GUARDED_BY(this) = nullptr;
    /// Set (under the latch) when this bucket's chain has been moved to the
    /// owning table's successor; the bucket is dead from then on.
    bool migrated GUARDED_BY(this) = false;

    void Lock() ACQUIRE() {
      while (latch.exchange(1, std::memory_order_acquire) != 0) CpuRelax();
    }
    void Unlock() RELEASE() { latch.store(0, std::memory_order_release); }
    /// Re-establishes the capability after LockBucket() hands a latched
    /// bucket across the call boundary (which TSA cannot track).
    void AssertHeld() ASSERT_CAPABILITY(this) {}
  };

  struct BucketArray {
    explicit BucketArray(uint64_t n) : buckets(n), mask(n - 1) {}
    mutable std::vector<Bucket> buckets;
    uint64_t mask;
    /// Target of the resize draining this table. Written once, before the
    /// table is published as a resize source; a thread that observes a
    /// migrated bucket (under its latch) is guaranteed to see it.
    BucketArray* successor = nullptr;
    /// Next source bucket index to claim (resize work queue).
    std::atomic<uint64_t> next_to_migrate{0};
    /// Source buckets fully migrated; the thread that moves this to
    /// buckets.size() performs the table swap.
    std::atomic<uint64_t> migrated_count{0};
  };

  /// Latches and returns the bucket currently owning `key`, chasing
  /// successor pointers past migrated buckets. On return the bucket latch
  /// is held and `*out` is the table it belongs to. TSA cannot express a
  /// capability handed off through a return value, so the analysis is
  /// disabled here and callers re-establish it with AssertHeld().
  Bucket* LockBucket(uint64_t key,
                     BucketArray** out) const NO_THREAD_SAFETY_ANALYSIS;

  Status InsertImpl(uint64_t key, Row* row, bool unique);

  /// Starts a resize if the load factor calls for one (no-op if one is
  /// already running), then claims and migrates up to kMigrateStride source
  /// buckets. Called from mutating operations only.
  void MaybeGrowAndHelp();
  void MigrateOneBucket(BucketArray* src, uint64_t index);

  /// Table ops should use; swapped by the finishing migrator.
  std::atomic<BucketArray*> current_;
  /// Non-null while a resize is draining it. Cleared after the swap.
  std::atomic<BucketArray*> resize_src_{nullptr};
  /// Serializes resize initiation.
  Mutex resize_mu_;
  /// Every table ever created, freed only at destruction so stale readers
  /// can always complete their successor chase. Mutated only while a resize
  /// is being initiated (constructor/destructor accesses are unshared).
  std::vector<std::unique_ptr<BucketArray>> tables_ GUARDED_BY(resize_mu_);

  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> rehashes_{0};
};

}  // namespace next700

#endif  // NEXT700_INDEX_HASH_INDEX_H_
