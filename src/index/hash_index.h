#ifndef NEXT700_INDEX_HASH_INDEX_H_
#define NEXT700_INDEX_HASH_INDEX_H_

/// \file
/// Chained hash index with per-bucket byte latches. The bucket count is
/// fixed at creation (sized from a capacity hint); chains absorb overflow,
/// so the structure never rehashes and pointers handed out stay valid.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "index/index.h"

namespace next700 {

class HashIndex : public Index {
 public:
  /// `capacity_hint` is the expected number of entries; the bucket array is
  /// sized to keep expected chain length around 1.
  HashIndex(Table* table, uint64_t capacity_hint);
  ~HashIndex() override;

  IndexKind kind() const override { return IndexKind::kHash; }

  Status Insert(uint64_t key, Row* row) override;
  Status InsertUnique(uint64_t key, Row* row) override;
  Row* Lookup(uint64_t key) const override;
  void LookupAll(uint64_t key, std::vector<Row*>* out) const override;
  bool Remove(uint64_t key, Row* row) override;
  Status Scan(uint64_t lo, uint64_t hi, size_t limit,
              std::vector<Row*>* out) const override;
  Status ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                     std::vector<Row*>* out) const override;
  uint64_t size() const override {
    return entries_.load(std::memory_order_relaxed);
  }

  uint64_t num_buckets() const { return buckets_.size(); }

 private:
  struct Entry {
    uint64_t key;
    Row* row;
    Entry* next;
  };

  struct Bucket {
    std::atomic<uint8_t> latch{0};
    Entry* head = nullptr;

    void Lock() {
      while (latch.exchange(1, std::memory_order_acquire) != 0) CpuRelax();
    }
    void Unlock() { latch.store(0, std::memory_order_release); }
  };

  Bucket& BucketFor(uint64_t key) const {
    return buckets_[FnvHash64(key) & bucket_mask_];
  }

  Status InsertImpl(uint64_t key, Row* row, bool unique);

  mutable std::vector<Bucket> buckets_;
  uint64_t bucket_mask_;
  std::atomic<uint64_t> entries_{0};
};

}  // namespace next700

#endif  // NEXT700_INDEX_HASH_INDEX_H_
