#ifndef NEXT700_INDEX_INDEX_H_
#define NEXT700_INDEX_INDEX_H_

/// \file
/// Index abstraction shared by all engine compositions. Keys are 64-bit;
/// composite keys (e.g. TPC-C warehouse/district/id) are encoded into the
/// 64 bits by the workload layer. Indexes have multimap semantics — the
/// same key may map to several rows (used by TPC-C's customer-by-last-name
/// and order-by-customer indexes); uniqueness, where required, is enforced
/// with InsertUnique.
///
/// Thread-safety: all operations are safe to call concurrently. Index
/// structures use short-duration latches internally; *logical* concurrency
/// control of row contents is the CC plugin's job. Phantom protection is
/// intentionally out of scope (documented in DESIGN.md), matching the
/// DBx1000 family of research frameworks.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/row.h"

namespace next700 {

class Table;

enum class IndexKind {
  kHash,
  kBTree,
};

const char* IndexKindName(IndexKind kind);

class Index {
 public:
  explicit Index(Table* table) : table_(table) {}
  virtual ~Index() = default;
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  virtual IndexKind kind() const = 0;
  Table* table() const { return table_; }

  /// Adds (key, row). Duplicate keys are allowed; the exact (key, row) pair
  /// must not already be present.
  virtual Status Insert(uint64_t key, Row* row) = 0;

  /// Adds (key, row) iff no entry with `key` exists; otherwise
  /// kAlreadyExists. The check-and-insert is atomic.
  virtual Status InsertUnique(uint64_t key, Row* row) = 0;

  /// First row stored under `key`, or nullptr.
  virtual Row* Lookup(uint64_t key) const = 0;

  /// Appends every row stored under `key` to `out`.
  virtual void LookupAll(uint64_t key, std::vector<Row*>* out) const = 0;

  /// Removes the exact (key, row) pair. Returns true if found.
  virtual bool Remove(uint64_t key, Row* row) = 0;

  /// Appends rows with keys in [lo, hi] in ascending key order, stopping
  /// after `limit` rows (0 = unlimited). Ordered indexes only; the hash
  /// index returns kNotSupported.
  virtual Status Scan(uint64_t lo, uint64_t hi, size_t limit,
                      std::vector<Row*>* out) const = 0;

  /// Like Scan but descending from `hi` down to `lo`.
  virtual Status ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                             std::vector<Row*>* out) const = 0;

  /// Number of entries (approximate under concurrency).
  virtual uint64_t size() const = 0;

 private:
  Table* table_;
};

}  // namespace next700

#endif  // NEXT700_INDEX_INDEX_H_
