#ifndef NEXT700_INDEX_BTREE_INDEX_H_
#define NEXT700_INDEX_BTREE_INDEX_H_

/// \file
/// Concurrent B+-tree with latch crabbing (lock coupling). Internally every
/// entry is the composite key (user_key, row pointer), which is unique even
/// when user keys repeat; multimap operations become range operations over
/// (key, 0)..(key, ~0). Inner nodes use shared latches on the read path and
/// exclusive crabbing on inserts, releasing ancestors as soon as the child
/// cannot split. Deletes never merge nodes (underfull leaves simply stay),
/// which keeps node lifetime simple: nodes are only freed when the tree is
/// destroyed.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/latch.h"
#include "index/index.h"

namespace next700 {

class BTreeIndex : public Index {
 public:
  explicit BTreeIndex(Table* table);
  ~BTreeIndex() override;

  IndexKind kind() const override { return IndexKind::kBTree; }

  Status Insert(uint64_t key, Row* row) override;
  Status InsertUnique(uint64_t key, Row* row) override;
  Row* Lookup(uint64_t key) const override;
  void LookupAll(uint64_t key, std::vector<Row*>* out) const override;
  bool Remove(uint64_t key, Row* row) override;
  Status Scan(uint64_t lo, uint64_t hi, size_t limit,
              std::vector<Row*>* out) const override;
  Status ScanReverse(uint64_t hi, uint64_t lo, size_t limit,
                     std::vector<Row*>* out) const override;
  uint64_t size() const override {
    return entries_.load(std::memory_order_relaxed);
  }

  /// Height of the tree (1 = root is a leaf). For tests.
  int Height() const;

 private:
  struct BKey {
    uint64_t k;  // User key.
    uint64_t t;  // Tie-break: the row pointer value.

    friend bool operator<(const BKey& a, const BKey& b) {
      return a.k < b.k || (a.k == b.k && a.t < b.t);
    }
    friend bool operator==(const BKey& a, const BKey& b) {
      return a.k == b.k && a.t == b.t;
    }
  };

  static constexpr int kLeafCapacity = 32;
  static constexpr int kInnerKeys = 32;  // Fanout = kInnerKeys + 1.

  struct Node {
    mutable RwSpinLatch latch{LatchRank::kIndexNode};
    bool is_leaf;
    uint16_t count = 0;

    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct Leaf : Node {
    Leaf() : Node(true) {}
    BKey keys[kLeafCapacity];
    Leaf* next = nullptr;
  };

  struct Inner : Node {
    Inner() : Node(false) {}
    BKey keys[kInnerKeys];
    Node* children[kInnerKeys + 1];
  };

  static Row* RowOf(const BKey& key) {
    return reinterpret_cast<Row*>(key.t);
  }

  /// First child index whose subtree may contain `key`.
  static int ChildIndex(const Inner* inner, const BKey& key);
  /// First position in `leaf` with entry >= key.
  static int LeafLowerBound(const Leaf* leaf, const BKey& key);

  /// Shared-latch descent; returns the leaf (latched shared) whose range
  /// contains `key`.
  const Leaf* DescendShared(const BKey& key) const;

  /// Exclusive descent for structure-modifying ops. On return the leaf is
  /// latched exclusively; `held` contains the still-latched ancestor chain
  /// (bottom-up insertion targets) and `root_held` reports whether the
  /// root pointer latch is still held. Ancestors outside `held` were
  /// already released because a safe child was found.
  Leaf* DescendExclusive(const BKey& key, std::vector<Inner*>* held,
                         bool* root_held);

  void ReleaseHeld(std::vector<Inner*>* held, bool* root_held);

  /// Inserts (sep, right) into the ancestor chain after a child split.
  void InsertIntoParents(std::vector<Inner*>* held, bool* root_held,
                         Node* left, BKey sep, Node* right);

  void FreeSubtree(Node* node);

  // Guards the root pointer itself; ranked above interior nodes because
  // every descent acquires it before any node latch.
  mutable RwSpinLatch root_latch_{LatchRank::kIndexRoot};
  Node* root_;
  std::atomic<uint64_t> entries_{0};
};

}  // namespace next700

#endif  // NEXT700_INDEX_BTREE_INDEX_H_
