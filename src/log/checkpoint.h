#ifndef NEXT700_LOG_CHECKPOINT_H_
#define NEXT700_LOG_CHECKPOINT_H_

/// \file
/// The checkpoint lifecycle: online snapshots, crash-atomic install, and
/// log truncation. Together with the WAL this completes the durability
/// story — recovery becomes "load the checkpoint named by the MANIFEST,
/// replay the log suffix past its start LSN", and segments wholly below
/// that LSN are retired so disk usage and recovery time are governed by
/// the checkpoint interval, not total history.
///
/// Snapshot policy per composition (CheckpointCoordinator):
///   * command logging (or no log) — the whole scan runs inside one
///     transaction-drain window: replay re-executes procedures, so the
///     snapshot must be a transactionally consistent cut.
///   * value logging, multiversion CC — drain only long enough to read the
///     start LSN, then an epoch-gated fuzzy scan captures each row's
///     newest *committed* version concurrently with execution.
///   * value logging, single-version CC — per-partition quiesce windows:
///     2PL and H-Store write row images in place mid-transaction, so each
///     partition is dumped under a brief drain, with execution resuming
///     between partitions.
/// Fuzzy/partition snapshots are correct because the start LSN is chosen
/// under a full drain: any transaction not fully captured by the scan has
/// a commit LSN above it and is replayed, and full-image replay with the
/// recorded per-row write timestamp (Thomas rule) makes double-application
/// idempotent.
///
/// Install order (crash-safe at every point, see tools/crashtest):
///   1. checkpoint file: tmp + fsync + rename + dirsync
///   2. MANIFEST: atomic replace naming {file, start_lsn, log base}
///   3. retire log segments wholly below start_lsn + dirsync
///   4. delete the previous checkpoint file (stale files are ignored)
///
/// Checkpoint file format (version tag in the magic):
///   [u64 magic][u32 num_tables]
///   per table: [u32 table_id][u64 row_count]
///     per row: [u32 partition][u64 primary_key][u8 deleted][u64 wts]
///              [payload row_size bytes]
///   [u64 checksum over everything before it]

#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_safety.h"
#include "log/manifest.h"
#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {

struct CheckpointStats {
  uint64_t tables = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double elapsed_seconds = 0;
};

/// Writes and loads single checkpoint files. Write() is the quiescent
/// building block (the caller guarantees no transactions are in flight);
/// the online path lives in CheckpointCoordinator.
class CheckpointManager {
 public:
  explicit CheckpointManager(Engine* engine) : engine_(engine) {}

  /// Secondary indexes are rebuilt through the same hook recovery uses.
  void set_secondary_rebuilder(
      RecoveryManager::SecondaryIndexRebuilder rebuilder) {
    rebuilder_ = std::move(rebuilder);
  }

  /// Dumps every table and installs the file crash-atomically
  /// (tmp + fsync + rename + dirsync). The engine must be quiescent.
  Status Write(const std::string& path, CheckpointStats* stats);

  /// Populates a schema-complete but *empty* engine from a checkpoint,
  /// re-inserting rows into each table's primary index and restoring each
  /// row's write timestamp so Thomas-rule replay of the log suffix works.
  Status Load(const std::string& path, CheckpointStats* stats);

 private:
  Engine* engine_;
  RecoveryManager::SecondaryIndexRebuilder rebuilder_;
};

struct CheckpointerOptions {
  /// Checkpoint directory: holds MANIFEST + ckpt.NNNNNN (created if
  /// missing).
  std::string dir;
  /// Background checkpoint cadence; 0 = manual CheckpointNow() only.
  uint64_t interval_ms = 0;
  /// Retire log segments wholly below each checkpoint's start LSN.
  bool truncate_log = true;
  /// Crash-harness hook, invoked with named points inside the install
  /// sequence ("checkpoint:mid-write", "checkpoint:before-rename",
  /// "checkpoint:before-manifest", "manifest:mid-write",
  /// "manifest:before-rename", "checkpoint:before-retire",
  /// "checkpoint:mid-retire", "checkpoint:before-cleanup").
  std::function<void(const char*)> crash_hook;
};

/// Owns the online checkpoint lifecycle for one Engine: snapshot capture
/// under the per-scheme policy above, crash-atomic install, MANIFEST
/// update, and log truncation. Constructed by the Engine when
/// EngineOptions::checkpoint_dir is set; Start() spawns the background
/// thread (call it only after DDL and loading — the scan must not race
/// CreateTable or CC-free LoadRow writes).
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(Engine* engine, CheckpointerOptions options);
  ~CheckpointCoordinator();
  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Reads the existing MANIFEST (resuming the checkpoint sequence) and
  /// deletes stale files a crash left behind — tmp files and checkpoint
  /// files the MANIFEST does not name. Called by the Engine before any
  /// transaction runs.
  Status Prepare();

  /// Spawns the background thread when interval_ms > 0 (no-op otherwise).
  void Start();

  /// Stops and joins the background thread; CheckpointNow stays usable.
  void Stop();

  /// Takes one checkpoint: snapshot, install, MANIFEST, truncate.
  /// Serialized — concurrent calls (manual + background) queue up.
  Status CheckpointNow(CheckpointStats* stats);

  uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }
  Lsn last_start_lsn() const {
    return last_start_lsn_.load(std::memory_order_relaxed);
  }
  /// Sticky first failure of a *background* checkpoint (manual calls
  /// return their status directly). A failed checkpoint only delays
  /// truncation — the log still covers everything.
  Status background_status() const;

 private:
  enum class SnapshotPolicy { kFullQuiesce, kPartitionWindows, kEpochFuzzy };

  SnapshotPolicy PolicyFor() const;
  void Hook(const char* point) {
    if (options_.crash_hook) options_.crash_hook(point);
  }
  /// Captures the snapshot into `out` (full file image, checksum included)
  /// and the LSN the paired log suffix starts at.
  void SerializeSnapshot(std::vector<uint8_t>* out, Lsn* start_lsn,
                         CheckpointStats* stats);
  void BackgroundLoop();

  Engine* engine_;
  CheckpointerOptions options_;

  // Serializes CheckpointNow; guards install state.
  mutable Mutex run_mu_;
  uint64_t next_seq_ GUARDED_BY(run_mu_) = 1;
  std::string prev_file_ GUARDED_BY(run_mu_);
  uint64_t prev_base_index_ GUARDED_BY(run_mu_) = 0;
  Lsn prev_base_lsn_ GUARDED_BY(run_mu_) = 0;
  Status background_status_ GUARDED_BY(run_mu_);

  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<Lsn> last_start_lsn_{0};

  Mutex stop_mu_;
  CondVar stop_cv_;
  bool stop_ GUARDED_BY(stop_mu_) = false;
  // Start/Stop-caller-owned (that API is single-threaded); unshared.
  bool started_ = false;
  std::thread thread_;
};

/// Everything recovery restored, for reporting.
struct RecoverOutcome {
  bool used_checkpoint = false;
  CheckpointStats checkpoint;
  RecoveryStats log;
};

/// Full recovery into a fresh, schema-complete engine: read the MANIFEST
/// in `checkpoint_dir`, load the checkpoint it names, then replay the log
/// suffix past its start LSN using its log-base bookkeeping. A missing
/// MANIFEST (or empty `checkpoint_dir`) falls back to plain full replay; a
/// corrupt MANIFEST or checkpoint is a loud error, never a silent partial
/// load — the truncated log cannot cover what the checkpoint held. An
/// empty or missing `log_dir` skips replay.
Status RecoverEngine(Engine* engine, const std::string& checkpoint_dir,
                     const std::string& log_dir,
                     RecoveryManager::SecondaryIndexRebuilder rebuilder,
                     RecoverOutcome* out);

}  // namespace next700

#endif  // NEXT700_LOG_CHECKPOINT_H_
