#ifndef NEXT700_LOG_CHECKPOINT_H_
#define NEXT700_LOG_CHECKPOINT_H_

/// \file
/// Quiescent checkpoints: a full dump of every table's committed rows,
/// written while no transactions are in flight. Together with the WAL this
/// completes the durability story — recovery becomes "load the newest
/// checkpoint, replay the log suffix", and the log can be truncated at
/// every checkpoint instead of growing forever. (A fuzzy checkpointer that
/// runs concurrently with transactions is listed as future work in
/// DESIGN.md.)
///
/// File format:
///   [u64 magic][u32 num_tables]
///   per table: [u32 table_id][u64 row_count]
///     per row: [u32 partition][u64 primary_key][u8 deleted]
///              [payload row_size bytes]
///   [u64 checksum over everything before it]

#include <string>

#include "common/status.h"
#include "log/recovery.h"
#include "txn/engine.h"

namespace next700 {

struct CheckpointStats {
  uint64_t tables = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double elapsed_seconds = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(Engine* engine) : engine_(engine) {}

  /// Secondary indexes are rebuilt through the same hook recovery uses.
  void set_secondary_rebuilder(
      RecoveryManager::SecondaryIndexRebuilder rebuilder) {
    rebuilder_ = std::move(rebuilder);
  }

  /// Dumps every table. The engine must be quiescent.
  Status Write(const std::string& path, CheckpointStats* stats);

  /// Populates a schema-complete but *empty* engine from a checkpoint,
  /// re-inserting rows into each table's primary index.
  Status Load(const std::string& path, CheckpointStats* stats);

 private:
  Engine* engine_;
  RecoveryManager::SecondaryIndexRebuilder rebuilder_;
};

}  // namespace next700

#endif  // NEXT700_LOG_CHECKPOINT_H_
