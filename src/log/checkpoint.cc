#include "log/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "log/log_record.h"

namespace next700 {

namespace {

constexpr uint64_t kCheckpointMagic = 0x4E37303043484B50ull;  // "N700CHKP".

Status WriteAll(std::FILE* f, const void* data, size_t len) {
  if (std::fwrite(data, 1, len, f) != len) {
    return Status::IOError("checkpoint write failed");
  }
  return Status::OK();
}

}  // namespace

Status CheckpointManager::Write(const std::string& path,
                                CheckpointStats* stats) {
  const uint64_t start = NowNanos();
  // Serialize into memory first so the checksum covers one buffer; table
  // dumps are bounded by what fits in RAM anyway (this is an in-memory
  // engine).
  std::vector<uint8_t> out;
  LogWriter writer(&out);
  writer.PutU64(kCheckpointMagic);
  const int num_tables = engine_->catalog()->num_tables();
  writer.PutU32(static_cast<uint32_t>(num_tables));
  for (int i = 0; i < num_tables; ++i) {
    Table* table = engine_->catalog()->table_at(i);
    writer.PutU32(table->id());
    // Count first (ForEachRow is stable while quiescent).
    uint64_t rows = 0;
    table->ForEachRow([&](Row*) { ++rows; });
    writer.PutU64(rows);
    const uint32_t row_size = table->schema().row_size();
    table->ForEachRow([&](Row* row) {
      writer.PutU32(row->partition);
      writer.PutU64(row->primary_key);
      writer.PutU8(row->deleted() ? 1 : 0);
      writer.PutBytes(engine_->RawImage(row), row_size);
      ++stats->rows;
    });
    ++stats->tables;
  }
  const uint64_t checksum = FnvHashBytes(out.data(), out.size());
  writer.PutU64(checksum);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  const Status s = WriteAll(f, out.data(), out.size());
  std::fclose(f);
  NEXT700_RETURN_IF_ERROR(s);
  stats->bytes = out.size();
  stats->elapsed_seconds = static_cast<double>(NowNanos() - start) / 1e9;
  return Status::OK();
}

Status CheckpointManager::Load(const std::string& path,
                               CheckpointStats* stats) {
  const uint64_t start = NowNanos();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> in(static_cast<size_t>(size));
  if (!in.empty() && std::fread(in.data(), 1, in.size(), f) != in.size()) {
    std::fclose(f);
    return Status::IOError("short read on " + path);
  }
  std::fclose(f);
  stats->bytes = in.size();

  if (in.size() < 20) return Status::Corruption("checkpoint too small");
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, in.data() + in.size() - 8, 8);
  if (stored_checksum != FnvHashBytes(in.data(), in.size() - 8)) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  LogReader reader(in.data(), in.size() - 8);
  uint64_t magic;
  uint32_t num_tables;
  if (!reader.GetU64(&magic) || magic != kCheckpointMagic ||
      !reader.GetU32(&num_tables)) {
    return Status::Corruption("bad checkpoint header");
  }
  for (uint32_t i = 0; i < num_tables; ++i) {
    uint32_t table_id;
    uint64_t rows;
    if (!reader.GetU32(&table_id) || !reader.GetU64(&rows)) {
      return Status::Corruption("truncated table header");
    }
    Table* table = engine_->catalog()->GetTable(table_id);
    if (table == nullptr) return Status::Corruption("unknown table id");
    Index* primary = engine_->catalog()->PrimaryIndex(table);
    const uint32_t row_size = table->schema().row_size();
    for (uint64_t r = 0; r < rows; ++r) {
      uint32_t partition;
      uint64_t primary_key;
      uint8_t deleted;
      if (!reader.GetU32(&partition) || !reader.GetU64(&primary_key) ||
          !reader.GetU8(&deleted)) {
        return Status::Corruption("truncated row header");
      }
      const uint8_t* payload = reader.Peek();
      if (!reader.Skip(row_size)) {
        return Status::Corruption("truncated row payload");
      }
      Row* row = engine_->LoadRow(table, partition, primary_key, payload);
      if (deleted != 0) {
        row->set_deleted(true);
        continue;  // Tombstones are not indexed.
      }
      if (primary != nullptr) {
        NEXT700_RETURN_IF_ERROR(primary->Insert(primary_key, row));
      }
      if (rebuilder_) rebuilder_(engine_, row);
      ++stats->rows;
    }
    ++stats->tables;
  }
  stats->elapsed_seconds = static_cast<double>(NowNanos() - start) / 1e9;
  return Status::OK();
}

}  // namespace next700
