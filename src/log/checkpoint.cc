#include "log/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "log/log_file.h"
#include "log/log_record.h"

namespace next700 {

namespace {

// "N700CHKQ": format v2, which records each row's write timestamp so a
// fuzzy snapshot composes with Thomas-rule replay of the log suffix. Files
// with the old magic fail the header check rather than misparse.
constexpr uint64_t kCheckpointMagic = 0x4E37303043484B51ull;

/// Newest committed version of a multiversion row, skipping an uncommitted
/// chain head installed by an in-flight writer. Null for a row whose
/// insert has not committed yet — such a row is not durable state.
const Version* NewestCommitted(const Row* row) {
  const Version* v = row->chain.load(std::memory_order_acquire);
  while (v != nullptr && !v->committed.load(std::memory_order_acquire)) {
    v = v->next;
  }
  return v;
}

/// Appends `[u32 table_id][u64 row_count placeholder]` and returns the
/// placeholder's offset: the count is patched after the partitions are
/// dumped, since an online scan cannot pre-count a moving table.
size_t BeginTableDump(Table* table, std::vector<uint8_t>* out) {
  LogWriter writer(out);
  writer.PutU32(table->id());
  const size_t count_offset = out->size();
  writer.PutU64(0);
  return count_offset;
}

void PatchRowCount(std::vector<uint8_t>* out, size_t count_offset,
                   uint64_t rows) {
  std::memcpy(out->data() + count_offset, &rows, sizeof(rows));
}

/// Dumps one partition's rows. For multiversion schemes this is safe
/// concurrently with execution (the caller holds an epoch pin; committed
/// versions are immutable); for single-version schemes the caller must
/// have drained transactions — 2PL and H-Store write row images in place.
void DumpPartitionRows(Engine* engine, Table* table, uint32_t partition,
                       std::vector<uint8_t>* out, uint64_t* rows) {
  const bool mv = engine->cc()->is_multiversion();
  const uint32_t row_size = table->schema().row_size();
  LogWriter writer(out);
  table->ForEachRowInPartition(partition, [&](Row* row) {
    uint8_t deleted;
    Timestamp wts;
    const uint8_t* payload;
    if (mv) {
      const Version* v = NewestCommitted(row);
      if (v == nullptr) return;  // Uncommitted insert: the log covers it.
      deleted = v->is_delete ? 1 : 0;
      wts = v->wts;
      payload = v->data();
    } else {
      deleted = row->deleted() ? 1 : 0;
      wts = row->wts.load(std::memory_order_relaxed);
      payload = row->data();
    }
    writer.PutU32(row->partition);
    writer.PutU64(row->primary_key);
    writer.PutU8(deleted);
    writer.PutU64(wts);
    writer.PutBytes(payload, row_size);
    ++*rows;
  });
}

void FinishCheckpointImage(std::vector<uint8_t>* out) {
  const uint64_t checksum = FnvHashBytes(out->data(), out->size());
  LogWriter writer(out);
  writer.PutU64(checksum);
}

}  // namespace

Status CheckpointManager::Write(const std::string& path,
                                CheckpointStats* stats) {
  const uint64_t start = NowNanos();
  // Serialize into memory first so the checksum covers one buffer; table
  // dumps are bounded by what fits in RAM anyway (this is an in-memory
  // engine).
  std::vector<uint8_t> out;
  LogWriter writer(&out);
  writer.PutU64(kCheckpointMagic);
  const int num_tables = engine_->catalog()->num_tables();
  writer.PutU32(static_cast<uint32_t>(num_tables));
  for (int i = 0; i < num_tables; ++i) {
    Table* table = engine_->catalog()->table_at(i);
    const size_t count_offset = BeginTableDump(table, &out);
    uint64_t rows = 0;
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      DumpPartitionRows(engine_, table, p, &out, &rows);
    }
    PatchRowCount(&out, count_offset, rows);
    stats->rows += rows;
    ++stats->tables;
  }
  FinishCheckpointImage(&out);

  NEXT700_RETURN_IF_ERROR(WriteFileAtomic(path, out.data(), out.size()));
  stats->bytes = out.size();
  stats->elapsed_seconds = static_cast<double>(NowNanos() - start) / 1e9;
  return Status::OK();
}

Status CheckpointManager::Load(const std::string& path,
                               CheckpointStats* stats) {
  const uint64_t start = NowNanos();
  std::vector<uint8_t> in;
  NEXT700_RETURN_IF_ERROR(ReadFileFully(path, &in));
  stats->bytes = in.size();

  if (in.size() < 20) return Status::Corruption("checkpoint too small");
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, in.data() + in.size() - 8, 8);
  if (stored_checksum != FnvHashBytes(in.data(), in.size() - 8)) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  LogReader reader(in.data(), in.size() - 8);
  uint64_t magic;
  uint32_t num_tables;
  if (!reader.GetU64(&magic) || magic != kCheckpointMagic ||
      !reader.GetU32(&num_tables)) {
    return Status::Corruption("bad checkpoint header");
  }
  for (uint32_t i = 0; i < num_tables; ++i) {
    uint32_t table_id;
    uint64_t rows;
    if (!reader.GetU32(&table_id) || !reader.GetU64(&rows)) {
      return Status::Corruption("truncated table header");
    }
    Table* table = engine_->catalog()->GetTable(table_id);
    if (table == nullptr) return Status::Corruption("unknown table id");
    Index* primary = engine_->catalog()->PrimaryIndex(table);
    const uint32_t row_size = table->schema().row_size();
    for (uint64_t r = 0; r < rows; ++r) {
      uint32_t partition;
      uint64_t primary_key;
      uint8_t deleted;
      uint64_t wts;
      if (!reader.GetU32(&partition) || !reader.GetU64(&primary_key) ||
          !reader.GetU8(&deleted) || !reader.GetU64(&wts)) {
        return Status::Corruption("truncated row header");
      }
      const uint8_t* payload = reader.Peek();
      if (!reader.Skip(row_size)) {
        return Status::Corruption("truncated row payload");
      }
      if (partition >= table->num_partitions()) {
        return Status::Corruption("row partition out of range");
      }
      Row* row = engine_->LoadRow(table, partition, primary_key, payload);
      // The snapshot's write timestamp drives the Thomas rule when the log
      // suffix replays over this row.
      row->wts.store(wts, std::memory_order_relaxed);
      if (deleted != 0) {
        row->set_deleted(true);
        continue;  // Tombstones are not indexed.
      }
      if (primary != nullptr) {
        NEXT700_RETURN_IF_ERROR(primary->Insert(primary_key, row));
      }
      if (rebuilder_) rebuilder_(engine_, row);
      ++stats->rows;
    }
    ++stats->tables;
  }
  stats->elapsed_seconds = static_cast<double>(NowNanos() - start) / 1e9;
  return Status::OK();
}

CheckpointCoordinator::CheckpointCoordinator(Engine* engine,
                                             CheckpointerOptions options)
    : engine_(engine), options_(std::move(options)) {
  NEXT700_CHECK(!options_.dir.empty());
}

CheckpointCoordinator::~CheckpointCoordinator() { Stop(); }

Status CheckpointCoordinator::Prepare() {
  NEXT700_RETURN_IF_ERROR(EnsureLogDir(options_.dir));
  CheckpointManifest manifest;
  const Status ms = ReadManifest(options_.dir, &manifest);
  std::string live_file;
  if (ms.ok()) {
    MutexLock lock(&run_mu_);
    next_seq_ = manifest.checkpoint_seq + 1;
    prev_file_ = manifest.checkpoint_file;
    prev_base_index_ = manifest.log_base_index;
    prev_base_lsn_ = manifest.log_base_lsn;
    last_start_lsn_.store(manifest.start_lsn, std::memory_order_relaxed);
    live_file = prev_file_;
  } else if (!ms.IsNotFound()) {
    return ms;  // A corrupt MANIFEST must fail loudly, never be replaced.
  }
  // Sweep what a crashed install left behind: tmp files, and checkpoint
  // files the MANIFEST does not name (a rename that landed before the
  // manifest update, or an old file whose cleanup was interrupted).
  DIR* d = ::opendir(options_.dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      const bool is_tmp =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
      const bool is_stale_ckpt = name.compare(0, 5, "ckpt.") == 0 &&
                                 !is_tmp && name != live_file;
      if (is_tmp || is_stale_ckpt) {
        ::unlink((options_.dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  return Status::OK();
}

void CheckpointCoordinator::Start() {
  if (options_.interval_ms == 0 || started_) return;
  started_ = true;
  {
    MutexLock lock(&stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { BackgroundLoop(); });
}

void CheckpointCoordinator::Stop() {
  if (!started_) return;
  {
    MutexLock lock(&stop_mu_);
    stop_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
  started_ = false;
}

Status CheckpointCoordinator::background_status() const {
  MutexLock lock(&run_mu_);
  return background_status_;
}

void CheckpointCoordinator::BackgroundLoop() {
  stop_mu_.Lock();
  while (!stop_) {
    // Sleep one interval, waking early only for stop.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.interval_ms);
    while (!stop_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      (void)stop_cv_.WaitFor(&stop_mu_, deadline - now);
    }
    if (stop_) break;
    stop_mu_.Unlock();
    CheckpointStats stats;
    const Status s = CheckpointNow(&stats);
    if (!s.ok()) {
      // A failed background checkpoint only delays truncation — the log
      // still covers everything — but it must not pass silently.
      MutexLock run_lock(&run_mu_);
      if (background_status_.ok()) background_status_ = s;
    }
    stop_mu_.Lock();
  }
  stop_mu_.Unlock();
}

CheckpointCoordinator::SnapshotPolicy CheckpointCoordinator::PolicyFor()
    const {
  // Command logging re-executes procedures on recovery, so the snapshot
  // must be a consistent cut — only a full drain gives one. The same holds
  // when there is no log at all (the checkpoint *is* the recovered state).
  if (engine_->log_manager() == nullptr ||
      engine_->options().logging == LoggingKind::kCommand) {
    return SnapshotPolicy::kFullQuiesce;
  }
  return engine_->cc()->is_multiversion() ? SnapshotPolicy::kEpochFuzzy
                                          : SnapshotPolicy::kPartitionWindows;
}

void CheckpointCoordinator::SerializeSnapshot(std::vector<uint8_t>* out,
                                              Lsn* start_lsn,
                                              CheckpointStats* stats) {
  const SnapshotPolicy policy = PolicyFor();
  LogManager* log = engine_->log_manager();
  out->clear();
  LogWriter writer(out);
  writer.PutU64(kCheckpointMagic);
  const int num_tables = engine_->catalog()->num_tables();
  writer.PutU32(static_cast<uint32_t>(num_tables));

  // The start LSN is always chosen under a full drain: with no transaction
  // between log append and finalize, every commit at or below it is fully
  // materialized, and every commit above it will be replayed — so a scan
  // that later observes such a commit's writes is harmless (full-image
  // replay with the recorded wts is idempotent).
  const auto capture_start_lsn = [&] {
    *start_lsn = log != nullptr ? log->appended_lsn() : 0;
  };

  if (policy == SnapshotPolicy::kFullQuiesce) {
    engine_->PauseTransactions();
    capture_start_lsn();
    for (int i = 0; i < num_tables; ++i) {
      Table* table = engine_->catalog()->table_at(i);
      const size_t count_offset = BeginTableDump(table, out);
      uint64_t rows = 0;
      for (uint32_t p = 0; p < table->num_partitions(); ++p) {
        DumpPartitionRows(engine_, table, p, out, &rows);
      }
      PatchRowCount(out, count_offset, rows);
      stats->rows += rows;
      ++stats->tables;
    }
    engine_->ResumeTransactions();
  } else if (policy == SnapshotPolicy::kEpochFuzzy) {
    engine_->PauseTransactions();
    capture_start_lsn();
    engine_->ResumeTransactions();
    // Fuzzy scan concurrent with execution: committed versions are
    // immutable, and the checkpointer's own epoch slot keeps the chains it
    // walks from being reclaimed under it.
    EpochManager* epochs = engine_->epoch_manager();
    const int ckpt_slot = engine_->options().max_threads;
    for (int i = 0; i < num_tables; ++i) {
      Table* table = engine_->catalog()->table_at(i);
      const size_t count_offset = BeginTableDump(table, out);
      uint64_t rows = 0;
      for (uint32_t p = 0; p < table->num_partitions(); ++p) {
        EpochGuard guard(epochs, ckpt_slot);
        DumpPartitionRows(engine_, table, p, out, &rows);
      }
      PatchRowCount(out, count_offset, rows);
      stats->rows += rows;
      ++stats->tables;
    }
  } else {  // kPartitionWindows
    // Single-version schemes write row images in place mid-transaction, so
    // each partition is dumped under a brief drain; execution resumes
    // between partitions.
    bool first_window = true;
    for (int i = 0; i < num_tables; ++i) {
      Table* table = engine_->catalog()->table_at(i);
      const size_t count_offset = BeginTableDump(table, out);
      uint64_t rows = 0;
      for (uint32_t p = 0; p < table->num_partitions(); ++p) {
        engine_->PauseTransactions();
        if (first_window) {
          capture_start_lsn();
          first_window = false;
        }
        DumpPartitionRows(engine_, table, p, out, &rows);
        engine_->ResumeTransactions();
      }
      PatchRowCount(out, count_offset, rows);
      stats->rows += rows;
      ++stats->tables;
    }
    if (first_window) {  // No tables: still anchor the LSN consistently.
      engine_->PauseTransactions();
      capture_start_lsn();
      engine_->ResumeTransactions();
    }
  }
  FinishCheckpointImage(out);
}

Status CheckpointCoordinator::CheckpointNow(CheckpointStats* stats) {
  MutexLock lock(&run_mu_);
  const uint64_t start_ns = NowNanos();
  CheckpointStats local;
  std::vector<uint8_t> body;
  Lsn start_lsn = 0;
  SerializeSnapshot(&body, &start_lsn, &local);

  const uint64_t seq = next_seq_;
  const std::string file = CheckpointFileName(seq);
  NEXT700_RETURN_IF_ERROR(WriteFileAtomic(
      options_.dir + "/" + file, body.data(), body.size(),
      [this](const char* point) {
        Hook((std::string("checkpoint:") + point).c_str());
      }));

  Hook("checkpoint:before-manifest");
  CheckpointManifest manifest;
  manifest.checkpoint_seq = seq;
  manifest.checkpoint_file = file;
  manifest.start_lsn = start_lsn;
  LogManager* log = engine_->log_manager();
  const bool truncate = log != nullptr && options_.truncate_log;
  if (truncate) {
    const SealedSegment base = log->BaseAfterRetire(start_lsn);
    manifest.log_base_index = base.index;
    manifest.log_base_lsn = base.start_lsn;
  } else {
    manifest.log_base_index = prev_base_index_;
    manifest.log_base_lsn = prev_base_lsn_;
  }
  NEXT700_RETURN_IF_ERROR(WriteManifestAtomic(
      options_.dir, manifest, [this](const char* point) {
        Hook((std::string("manifest:") + point).c_str());
      }));

  Hook("checkpoint:before-retire");
  if (truncate) {
    // The MANIFEST recording the new base is durable, so segments below
    // the checkpoint are unreachable by recovery whether or not these
    // unlinks complete — a crash here leaves stale files the next Open()
    // deletes.
    NEXT700_RETURN_IF_ERROR(log->RetireSegmentsBelow(
        start_lsn, [this] { Hook("checkpoint:mid-retire"); }));
  }

  Hook("checkpoint:before-cleanup");
  if (!prev_file_.empty() && prev_file_ != file) {
    // Best-effort: a stale checkpoint file is ignored by recovery and
    // swept by the next Prepare(). run_mu_ deliberately spans the whole
    // checkpoint including its IO — it serializes checkpoint runs, it is
    // not a transaction-path latch.
    // lint: allow-blocking-under-latch
    ::unlink((options_.dir + "/" + prev_file_).c_str());
  }

  prev_file_ = file;
  prev_base_index_ = manifest.log_base_index;
  prev_base_lsn_ = manifest.log_base_lsn;
  next_seq_ = seq + 1;
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  last_start_lsn_.store(start_lsn, std::memory_order_relaxed);

  local.bytes = body.size();
  local.elapsed_seconds = static_cast<double>(NowNanos() - start_ns) / 1e9;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RecoverEngine(Engine* engine, const std::string& checkpoint_dir,
                     const std::string& log_dir,
                     RecoveryManager::SecondaryIndexRebuilder rebuilder,
                     RecoverOutcome* out) {
  CheckpointManifest manifest;
  Status ms = checkpoint_dir.empty()
                  ? Status::NotFound("no checkpoint dir")
                  : ReadManifest(checkpoint_dir, &manifest);
  if (!ms.ok() && !ms.IsNotFound()) return ms;  // Corrupt MANIFEST: loud.

  Lsn start_lsn = 0;
  uint64_t log_base_index = 0;
  Lsn log_base_lsn = 0;
  if (ms.ok()) {
    log_base_index = manifest.log_base_index;
    log_base_lsn = manifest.log_base_lsn;
    if (!manifest.checkpoint_file.empty()) {
      CheckpointManager loader(engine);
      loader.set_secondary_rebuilder(rebuilder);
      NEXT700_RETURN_IF_ERROR(
          loader.Load(checkpoint_dir + "/" + manifest.checkpoint_file,
                      &out->checkpoint));
      out->used_checkpoint = true;
      start_lsn = manifest.start_lsn;
    }
  }
  struct stat st;
  if (!log_dir.empty() && ::stat(log_dir.c_str(), &st) == 0) {
    RecoveryManager recovery(engine);
    recovery.set_secondary_rebuilder(rebuilder);
    NEXT700_RETURN_IF_ERROR(recovery.Replay(log_dir, &out->log, start_lsn,
                                            log_base_index, log_base_lsn));
    // Prepared-but-undecided 2PC branches found in the log are parked on
    // the engine; the server refuses normal traffic until the coordinator
    // resolves them (Engine::ResolveInDoubt).
    if (!recovery.in_doubt().empty()) {
      engine->SetInDoubt(recovery.TakeInDoubt(), rebuilder);
    }
  }
  return Status::OK();
}

}  // namespace next700
