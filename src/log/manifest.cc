#include "log/manifest.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "log/log_file.h"
#include "log/log_record.h"

namespace next700 {

namespace {

constexpr uint64_t kManifestMagic = 0x4E3730304D414E49ull;  // "N700MANI".
constexpr uint32_t kManifestVersion = 1;

}  // namespace

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string CheckpointFileName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt.%06llu",
                static_cast<unsigned long long>(seq));
  return name;
}

Status ReadManifest(const std::string& dir, CheckpointManifest* out) {
  const std::string path = ManifestPath(dir);
  std::vector<uint8_t> data;
  {
    // Distinguish "fresh system" from a real read failure before parsing.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("no manifest at " + path);
    std::fclose(f);
  }
  NEXT700_RETURN_IF_ERROR(ReadFileFully(path, &data));
  if (data.size() < 8 + 8) {
    return Status::Corruption("manifest too small: " + path);
  }
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, data.data() + data.size() - 8, 8);
  if (stored_checksum != FnvHashBytes(data.data(), data.size() - 8)) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }
  LogReader reader(data.data(), data.size() - 8);
  uint64_t magic;
  uint32_t version;
  uint32_t name_len;
  if (!reader.GetU64(&magic) || magic != kManifestMagic ||
      !reader.GetU32(&version) || version != kManifestVersion ||
      !reader.GetU64(&out->checkpoint_seq) || !reader.GetU32(&name_len)) {
    return Status::Corruption("bad manifest header: " + path);
  }
  const uint8_t* name = reader.Peek();
  if (!reader.Skip(name_len) || !reader.GetU64(&out->start_lsn) ||
      !reader.GetU64(&out->log_base_index) ||
      !reader.GetU64(&out->log_base_lsn)) {
    return Status::Corruption("truncated manifest body: " + path);
  }
  out->checkpoint_file.assign(reinterpret_cast<const char*>(name), name_len);
  return Status::OK();
}

Status WriteManifestAtomic(
    const std::string& dir, const CheckpointManifest& manifest,
    const std::function<void(const char*)>& crash_hook) {
  std::vector<uint8_t> data;
  LogWriter writer(&data);
  writer.PutU64(kManifestMagic);
  writer.PutU32(kManifestVersion);
  writer.PutU64(manifest.checkpoint_seq);
  writer.PutU32(static_cast<uint32_t>(manifest.checkpoint_file.size()));
  writer.PutBytes(
      reinterpret_cast<const uint8_t*>(manifest.checkpoint_file.data()),
      manifest.checkpoint_file.size());
  writer.PutU64(manifest.start_lsn);
  writer.PutU64(manifest.log_base_index);
  writer.PutU64(manifest.log_base_lsn);
  writer.PutU64(FnvHashBytes(data.data(), data.size()));
  return WriteFileAtomic(ManifestPath(dir), data.data(), data.size(),
                         crash_hook);
}

}  // namespace next700
