#ifndef NEXT700_LOG_RECOVERY_H_
#define NEXT700_LOG_RECOVERY_H_

/// \file
/// Crash recovery by log replay. The caller constructs a *fresh* engine
/// with the same schema, indexes, and registered procedures (and logging
/// disabled or pointed at a new directory), then replays the old log into
/// it:
///
///   * value records   — after-images are applied in timestamp order per
///     row (Thomas-rule replay: an image is skipped when a newer one was
///     already applied), and missing rows are re-created and re-inserted
///     into their table's primary index. Secondary indexes are rebuilt by
///     the optional per-row callback, since only the workload knows their
///     key derivation.
///   * command records — registered procedures are re-executed serially in
///     log order.
///   * prepare/outcome records (2PC participants) — a kTxnPrepare stashes
///     its redo body by gtid without touching rows; the matching
///     kTxnOutcome applies the stash (commit) or drops it (abort) at the
///     outcome's log position. Prepares with no outcome by end of replay
///     are the *in-doubt set*: their rows stay untouched and the stashed
///     redo is surfaced via in_doubt()/TakeInDoubt() so the serving layer
///     can resolve them once the coordinator reports its decision.
///
/// Replay walks the `log.NNNNNN` segments of a log directory in index
/// order (a single-file path is also accepted, for unit tests and log
/// suffixes extracted by checkpointing). Segments rotate on frame
/// boundaries, so only the *final* segment may end in a torn frame — a
/// torn or checksum-failed frame anywhere else is real corruption and
/// fails the replay instead of being silently skipped.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/engine.h"

namespace next700 {

struct RecoveryStats {
  uint64_t txns_replayed = 0;
  uint64_t writes_applied = 0;
  uint64_t writes_skipped = 0;  // Thomas-rule skips.
  uint64_t segments_read = 0;
  uint64_t bytes_read = 0;
  double elapsed_seconds = 0;
};

class RecoveryManager {
 public:
  /// Called for every row (re)created by value replay so the workload can
  /// rebuild secondary index entries.
  using SecondaryIndexRebuilder = std::function<void(Engine*, Row*)>;

  explicit RecoveryManager(Engine* engine) : engine_(engine) {}

  void set_secondary_rebuilder(SecondaryIndexRebuilder rebuilder) {
    rebuilder_ = std::move(rebuilder);
  }

  /// Replays the log at `path` (segment directory or single file) into the
  /// engine. Frames that end at or below `start_lsn` are skipped — the
  /// checkpoint + log-suffix path passes the checkpoint LSN here. A
  /// truncated log passes the MANIFEST's `log_base_index`/`log_base_lsn`:
  /// segments below the index are ignored (a retired prefix a crash left
  /// behind) and cumulative LSNs start at the base instead of 0. Returns
  /// kCorruption for mid-log damage; a torn tail on the final segment ends
  /// replay with OK.
  Status Replay(const std::string& path, RecoveryStats* stats,
                Lsn start_lsn = 0, uint64_t log_base_index = 0,
                Lsn log_base_lsn = 0);

  /// Applies a contiguous run of *complete* frames from memory — the
  /// replication applier feeds received stream batches here, one batch at
  /// a time, reusing the exact replay semantics (Thomas-rule value apply,
  /// serial command re-execution). A torn or checksum-failed frame is
  /// kCorruption: unlike a crashed log's final segment, a shipped batch
  /// has no legal torn tail. The caller serializes invocations and
  /// excludes concurrent readers (replay writes row images directly,
  /// outside any CC).
  Status ApplyFrames(const uint8_t* data, size_t len, RecoveryStats* stats);

  /// Applies one kTxnValue-format body directly (the stashed redo of an
  /// in-doubt transaction the coordinator has since decided to commit).
  /// Same single-writer requirements as ApplyFrames.
  Status ApplyRedoBody(const uint8_t* data, size_t len, RecoveryStats* stats);

  /// Prepared-but-undecided transactions left over after replay:
  /// gtid -> stashed kTxnValue redo body. The map persists across
  /// ApplyFrames calls (a prepare and its outcome may arrive in different
  /// replication batches).
  const std::map<uint64_t, std::vector<uint8_t>>& in_doubt() const {
    return in_doubt_;
  }
  std::map<uint64_t, std::vector<uint8_t>> TakeInDoubt() {
    return std::move(in_doubt_);
  }

 private:
  Status ApplyValueRecord(LogReader* reader, RecoveryStats* stats);
  Status ApplyCommandRecord(LogReader* reader, RecoveryStats* stats);
  Status ApplyPrepareRecord(LogReader* reader, RecoveryStats* stats);
  Status ApplyOutcomeRecord(LogReader* reader, RecoveryStats* stats);
  /// Shared frame walk over one contiguous byte run. `origin` labels error
  /// messages; `allow_torn_tail` permits an incomplete final frame (only
  /// the final segment of a crashed log); frames ending at or below
  /// `start_lsn` (relative to `base_lsn`) are skipped.
  Status WalkFrames(const uint8_t* data, size_t len,
                    const std::string& origin, bool allow_torn_tail,
                    Lsn base_lsn, Lsn start_lsn, RecoveryStats* stats);
  /// One segment. `base_lsn` is the LSN of its first byte; `is_final`
  /// permits a torn tail.
  Status ReplaySegment(const std::string& path, Lsn base_lsn, bool is_final,
                       Lsn start_lsn, RecoveryStats* stats);

  /// Overwrites a row's visible image outside any transaction (replay is
  /// single-threaded).
  static void ApplyImage(Engine* engine, Row* row, const uint8_t* image,
                         uint32_t len);

  Engine* engine_;
  SecondaryIndexRebuilder rebuilder_;
  std::map<uint64_t, std::vector<uint8_t>> in_doubt_;
};

/// Scans a shard-router coordinator log (kCoordDecision frames only) and
/// returns every committed gtid. Under presumed abort a gtid absent from
/// the log was aborted, so this set is the whole recovery state. Accepts a
/// segment directory or single file; a torn tail on the final segment ends
/// the scan cleanly (that decision was never acked, so abort is correct).
Status ScanCoordinatorDecisions(const std::string& path,
                                std::vector<uint64_t>* committed);

}  // namespace next700

#endif  // NEXT700_LOG_RECOVERY_H_
