#ifndef NEXT700_LOG_RECOVERY_H_
#define NEXT700_LOG_RECOVERY_H_

/// \file
/// Crash recovery by log replay. The caller constructs a *fresh* engine
/// with the same schema, indexes, and registered procedures (and logging
/// disabled or pointed at a new file), then replays the old log into it:
///
///   * value records   — after-images are applied in timestamp order per
///     row (Thomas-rule replay: an image is skipped when a newer one was
///     already applied), and missing rows are re-created and re-inserted
///     into their table's primary index. Secondary indexes are rebuilt by
///     the optional per-row callback, since only the workload knows their
///     key derivation.
///   * command records — registered procedures are re-executed serially in
///     log order.
///
/// Replay stops cleanly at the first torn or corrupt frame (crash tail).

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "txn/engine.h"

namespace next700 {

struct RecoveryStats {
  uint64_t txns_replayed = 0;
  uint64_t writes_applied = 0;
  uint64_t writes_skipped = 0;  // Thomas-rule skips.
  uint64_t bytes_read = 0;
  double elapsed_seconds = 0;
};

class RecoveryManager {
 public:
  /// Called for every row (re)created by value replay so the workload can
  /// rebuild secondary index entries.
  using SecondaryIndexRebuilder = std::function<void(Engine*, Row*)>;

  explicit RecoveryManager(Engine* engine) : engine_(engine) {}

  void set_secondary_rebuilder(SecondaryIndexRebuilder rebuilder) {
    rebuilder_ = std::move(rebuilder);
  }

  /// Replays `log_path` into the engine. Returns kCorruption only for
  /// mid-log damage; a torn tail ends replay with OK.
  Status Replay(const std::string& log_path, RecoveryStats* stats);

 private:
  Status ApplyValueRecord(LogReader* reader, RecoveryStats* stats);
  Status ApplyCommandRecord(LogReader* reader, RecoveryStats* stats);

  /// Overwrites a row's visible image outside any transaction (replay is
  /// single-threaded).
  static void ApplyImage(Engine* engine, Row* row, const uint8_t* image,
                         uint32_t len);

  Engine* engine_;
  SecondaryIndexRebuilder rebuilder_;
};

}  // namespace next700

#endif  // NEXT700_LOG_RECOVERY_H_
