#include "log/log_file.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "io/io_backend.h"
#include "log/log_record.h"

namespace next700 {

namespace {

/// EAGAIN on a blocking fd indicates a misconfigured device; retry a
/// bounded number of times before declaring it broken instead of spinning.
constexpr int kMaxEagainRetries = 1000;

}  // namespace

PosixLogFile::~PosixLogFile() { Close(); }

Status PosixLogFile::Open(const std::string& path, bool o_dsync) {
  int flags = O_CREAT | O_EXCL | O_WRONLY | O_APPEND;
#ifdef O_DSYNC
  if (o_dsync) flags |= O_DSYNC;
#else
  if (o_dsync) flags |= O_SYNC;
#endif
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot create log segment " + path + ": " +
                           std::strerror(errno));
  }
  o_dsync_ = o_dsync;
  return Status::OK();
}

ssize_t PosixLogFile::RawWrite(const uint8_t* data, size_t len) {
  return ::write(fd_, data, len);
}

Status PosixLogFile::Append(const uint8_t* data, size_t len) {
  size_t off = 0;
  int eagain_retries = 0;
  while (off < len) {
    CountWrite();
    const ssize_t n = RawWrite(data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;  // Signal; the write wrote nothing.
      if (errno == EAGAIN && ++eagain_retries < kMaxEagainRetries) continue;
      return Status::IOError(std::string("log write failed: ") +
                             std::strerror(errno));
    }
    eagain_retries = 0;
    off += static_cast<size_t>(n);  // Short write: continue from here.
  }
  if (o_dsync_) ++sync_count_;  // The write itself was the barrier.
  return Status::OK();
}

Status PosixLogFile::Sync() {
  if (o_dsync_) return Status::OK();
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(std::string("fdatasync failed: ") +
                           std::strerror(errno));
  }
  ++sync_count_;
  return Status::OK();
}

void PosixLogFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status UringLogFile::SubmitAppend(io::IoBackend* io, const uint8_t* data,
                                  size_t len, bool barrier) {
  if (io == nullptr || io->kind() != io::IoBackendKind::kUring) {
    return LogFile::SubmitAppend(io, data, len, barrier);
  }
  // Unique cookies per call: an errored pair may leave its partner CQE in
  // flight, and a reused cookie would misroute it next time around.
  const uint64_t write_ud = next_cookie_++;
  const uint64_t fsync_ud = next_cookie_++;
  NEXT700_RETURN_IF_ERROR(
      io->SubmitWrite(fd(), data, len, write_ud, /*link=*/barrier));
  CountWrite();
  if (barrier) {
    NEXT700_RETURN_IF_ERROR(io->SubmitFsync(fd(), /*datasync=*/true,
                                            fsync_ud));
  }
  ++linked_submits_;
  ssize_t written = -1;
  bool fsync_done = !barrier;
  bool fsync_ok = false;
  while (written < 0 || !fsync_done) {
    io::IoEvent events[4];
    const int n = io->Reap(events, 4, -1);
    if (n < 0) {
      return Status::IOError("log io backend reap failed: " +
                             std::string(std::strerror(-n)));
    }
    for (int i = 0; i < n; ++i) {
      const io::IoEvent& ev = events[i];
      if (ev.user_data == write_ud) {
        if (ev.result == -EINTR || ev.result == -EAGAIN) {
          written = 0;  // Nothing landed; the posix loop below retries.
        } else if (ev.result < 0) {
          return Status::IOError(std::string("log ring write failed: ") +
                                 std::strerror(-ev.result));
        } else {
          written = ev.result;
        }
      } else if (ev.user_data == fsync_ud) {
        // -ECANCELED: the linked write was short or failed, severing the
        // chain; the completion fallback below re-issues the barrier.
        fsync_done = true;
        fsync_ok = ev.result == 0;
        if (ev.result < 0 && ev.result != -ECANCELED) {
          return Status::IOError(std::string("log ring fsync failed: ") +
                                 std::strerror(-ev.result));
        }
      }
      // Foreign events cannot appear: this backend is flusher-private.
    }
  }
  if (static_cast<size_t>(written) < len) {
    // Short write severed the linked barrier; finish through the posix
    // retry loop, which preserves the all-or-error Append contract.
    NEXT700_RETURN_IF_ERROR(Append(data + written, len - written));
    return barrier ? Sync() : Status::OK();
  }
  if (o_dsync()) {
    CountSync();  // The O_DSYNC write itself was the barrier.
  } else if (barrier) {
    if (!fsync_ok) return Sync();  // Linked barrier cancelled; re-issue.
    CountSync();
  }
  return Status::OK();
}

std::string LogSegmentPath(const std::string& dir, uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "log.%06llu",
                static_cast<unsigned long long>(index));
  return dir + "/" + name;
}

Status ListLogSegments(const std::string& dir, std::vector<LogSegment>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::OK();  // Fresh log: no history yet.
    return Status::IOError("cannot open log dir " + dir + ": " +
                           std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(d)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, "log.", 4) != 0) continue;
    char* end = nullptr;
    const unsigned long long index = std::strtoull(name + 4, &end, 10);
    if (end == name + 4 || *end != '\0') continue;  // Not log.NNNNNN.
    LogSegment segment;
    segment.path = dir + "/" + name;
    segment.index = index;
    struct stat st;
    if (::stat(segment.path.c_str(), &st) != 0) {
      ::closedir(d);
      return Status::IOError("cannot stat " + segment.path);
    }
    segment.bytes = static_cast<uint64_t>(st.st_size);
    out->push_back(std::move(segment));
  }
  ::closedir(d);
  std::sort(out->begin(), out->end(),
            [](const LogSegment& a, const LogSegment& b) {
              return a.index < b.index;
            });
  return Status::OK();
}

Status EnsureLogDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) {
    // The new directory's entry lives in its *parent*: without this
    // barrier a power loss can forget the whole log directory even though
    // every segment inside it was fdatasync'd.
    const std::string::size_type slash = dir.find_last_of('/');
    const std::string parent = slash == std::string::npos
                                   ? std::string(".")
                                   : (slash == 0 ? std::string("/")
                                                 : dir.substr(0, slash));
    return SyncDir(parent);
  }
  if (errno == EEXIST) return Status::OK();
  return Status::IOError("cannot create log dir " + dir + ": " +
                         std::strerror(errno));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open dir " + dir + " for fsync: " +
                           std::strerror(errno));
  }
  Status s = Status::OK();
  if (::fsync(fd) != 0) {
    s = Status::IOError("fsync of dir " + dir + " failed: " +
                        std::strerror(errno));
  }
  ::close(fd);
  return s;
}

Status ScanValidFramePrefix(const std::string& path, uint64_t* valid_bytes) {
  *valid_bytes = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> data;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot tell size of " + path);
  }
  data.resize(static_cast<size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return Status::IOError("short read on " + path);
  }
  std::fclose(f);

  // Same framing discipline as RecoveryManager::ReplaySegment: a torn
  // write leaves a prefix, so only an *incomplete* header, or an
  // incomplete body under a checksum-valid header, is a legal crash tail.
  size_t pos = 0;
  while (pos < data.size()) {
    if (pos + kFrameHeaderBytes > data.size()) break;  // Torn header.
    uint32_t body_len;
    std::memcpy(&body_len, data.data() + pos, 4);
    const uint8_t type_raw = data[pos + 4];
    uint32_t header_sum;
    std::memcpy(&header_sum, data.data() + pos + 5, 4);
    if (header_sum != FrameHeaderSum(body_len, type_raw)) {
      return Status::Corruption("log frame header corrupt in " + path);
    }
    const size_t frame_end = pos + kFrameOverheadBytes + body_len;
    if (frame_end > data.size()) break;  // Torn body (header vouches len).
    uint64_t checksum;
    std::memcpy(&checksum, data.data() + pos + kFrameHeaderBytes + body_len,
                8);
    if (checksum !=
        FnvHashBytes(data.data() + pos + kFrameHeaderBytes, body_len)) {
      return Status::Corruption("log checksum mismatch in " + path);
    }
    pos = frame_end;
  }
  *valid_bytes = pos;
  return Status::OK();
}

Status TruncateLogSegment(const std::string& path, uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for truncate: " +
                           std::strerror(errno));
  }
  Status s = Status::OK();
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    s = Status::IOError("cannot truncate " + path + ": " +
                        std::strerror(errno));
  } else if (::fsync(fd) != 0) {
    s = Status::IOError("fsync after truncate of " + path + " failed: " +
                        std::strerror(errno));
  }
  ::close(fd);
  return s;
}

void RemoveLogDir(const std::string& dir) {
  std::vector<LogSegment> segments;
  if (!ListLogSegments(dir, &segments).ok()) return;
  for (const LogSegment& segment : segments) {
    ::unlink(segment.path.c_str());
  }
  ::rmdir(dir.c_str());
}

void RemoveDirContents(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      const char* name = entry->d_name;
      if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
        continue;
      }
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

Status ReadFileRange(const std::string& path, uint64_t offset, uint64_t len,
                     std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " is gone");
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  const size_t base = out->size();
  out->resize(base + len);
  size_t have = 0;
  while (have < len) {
    const ssize_t n = ::pread(fd, out->data() + base + have, len - have,
                              static_cast<off_t>(offset + have));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      out->resize(base + have);
      return Status::IOError("pread failed on " + path + ": " +
                             std::strerror(err));
    }
    if (n == 0) break;  // EOF: the tail has not been written yet.
    have += static_cast<size_t>(n);
  }
  ::close(fd);
  out->resize(base + have);
  return Status::OK();
}

Status ReadFileFully(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot tell size of " + path);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek " + path);
  }
  out->resize(static_cast<size_t>(size));
  if (size > 0 && std::fread(out->data(), 1, out->size(), f) != out->size()) {
    std::fclose(f);
    return Status::IOError("short read on " + path);
  }
  std::fclose(f);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const uint8_t* data,
                       size_t len,
                       const std::function<void(const char*)>& crash_hook) {
  const std::string tmp = path + ".tmp";
  // O_TRUNC, not O_EXCL: a crash can leave a stale tmp file behind, and the
  // next install must simply overwrite it.
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  auto write_all = [fd](const uint8_t* p, size_t n) -> Status {
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, p + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("write failed: ") +
                               std::strerror(errno));
      }
      off += static_cast<size_t>(w);
    }
    return Status::OK();
  };
  const size_t half = len / 2;
  Status s = write_all(data, half);
  if (s.ok()) {
    if (crash_hook) crash_hook("mid-write");
    s = write_all(data + half, len - half);
  }
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IOError("fsync of " + tmp + " failed: " +
                        std::strerror(errno));
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (crash_hook) crash_hook("before-rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = Status::IOError("cannot rename " + tmp + " to " + path +
                                      ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return rs;
  }
  // The rename's durability lives in the directory entry.
  const std::string::size_type slash = path.find_last_of('/');
  const std::string parent =
      slash == std::string::npos
          ? std::string(".")
          : (slash == 0 ? std::string("/") : path.substr(0, slash));
  return SyncDir(parent);
}

}  // namespace next700
