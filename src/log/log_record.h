#ifndef NEXT700_LOG_LOG_RECORD_H_
#define NEXT700_LOG_LOG_RECORD_H_

/// \file
/// On-disk log record framing. Every record is:
///
///   [u32 body_len][u8 type][u32 header_sum][body ...][u64 body_sum]
///
/// `header_sum` is 32-bit FNV-1a over the first five bytes (length +
/// type); `body_sum` is FNV-1a over the body. A crashed write can only
/// leave a *prefix* of the frame behind, so recovery can tell a torn tail
/// from corruption: a fully-present header with a bad header_sum, or a
/// fully-present frame with a bad body_sum, was flushed that way and is
/// corruption. Only a frame that runs past end-of-file under a *valid*
/// header is a legal torn tail — and only in the final segment. Without
/// header_sum, a bit flip in the length field would masquerade as a torn
/// tail and silently swallow every acked transaction behind it.
///
/// Body formats:
///   kTxnValue:   u64 commit_ts, u32 num_writes, then per write:
///                u32 table_id, u32 partition, u64 primary_key, u8 kind
///                (0=update, 1=insert, 2=delete), u32 payload_len, payload.
///   kTxnCommand: u64 commit_ts, u32 proc_id, u32 arg_len, args.
///   kTxnPrepare: u64 gtid, then a full kTxnValue body (the redo image of
///                the prepared-but-undecided branch). Always value format —
///                even under command logging — so in-doubt resolution after
///                a crash never needs to re-execute the procedure.
///   kTxnOutcome: u64 gtid, u8 committed (0=abort, 1=commit). Pairs with a
///                preceding kTxnPrepare; on commit, recovery applies the
///                stashed redo at the outcome's log position.
///   kCoordDecision: u64 gtid. Written only by a shard-router coordinator
///                (its log holds nothing else); only commit decisions are
///                logged — absence means abort (presumed abort).

#include <cstdint>
#include <cstring>
#include <vector>

namespace next700 {

enum class LogRecordType : uint8_t {
  kTxnValue = 1,
  kTxnCommand = 2,
  kTxnPrepare = 3,
  kTxnOutcome = 4,
  kCoordDecision = 5,
};

enum class LogWriteKind : uint8_t {
  kUpdate = 0,
  kInsert = 1,
  kDelete = 2,
};

/// Frame layout byte counts.
constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;  // body_len, type, header_sum
constexpr size_t kFrameOverheadBytes = kFrameHeaderBytes + 8;  // + body_sum

/// FNV-1a over an arbitrary buffer (log checksums).
inline uint64_t FnvHashBytes(const uint8_t* data, size_t len) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// The 32-bit header checksum for a frame with the given length and type.
inline uint32_t FrameHeaderSum(uint32_t body_len, uint8_t type) {
  uint8_t header[5];
  std::memcpy(header, &body_len, sizeof(body_len));
  header[4] = type;
  return static_cast<uint32_t>(FnvHashBytes(header, sizeof(header)));
}

/// Append-only little-endian serializer for log bodies. Buffer is any
/// byte container with push_back and end-positioned range insert —
/// std::vector for recovery/checkpoint paths, the TxnContext's arena-backed
/// SmallVector on the commit hot path (zero heap traffic per record).
template <typename Buffer>
class BasicLogWriter {
 public:
  explicit BasicLogWriter(Buffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + len);
  }

 private:
  Buffer* out_;
};

using LogWriter = BasicLogWriter<std::vector<uint8_t>>;

/// Bounds-checked little-endian reader for log bodies.
class LogReader {
 public:
  LogReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool GetU8(uint8_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetBytes(void* out, size_t len) {
    if (pos_ + len > len_) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }
  const uint8_t* Peek() const { return data_ + pos_; }
  bool Skip(size_t len) {
    if (pos_ + len > len_) return false;
    pos_ += len;
    return true;
  }
  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace next700

#endif  // NEXT700_LOG_LOG_RECORD_H_
