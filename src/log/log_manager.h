#ifndef NEXT700_LOG_LOG_MANAGER_H_
#define NEXT700_LOG_LOG_MANAGER_H_

/// \file
/// Write-ahead logging with group commit. Workers serialize their commit
/// record into a shared buffer (one short critical section — the serial log
/// is itself a measured contention point, cf. Aether); a dedicated flusher
/// thread writes the buffer to the log device every `flush_interval_us` and
/// advances the durable LSN, waking transactions blocked in WaitDurable().
///
/// The "log device" is a file plus an injectable per-flush latency, which
/// models DRAM-like NVM (0 µs), NVMe (~20 µs), or SATA-SSD-ish (~100 µs)
/// commit hardware without needing the hardware.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "log/log_record.h"

namespace next700 {

enum class LoggingKind {
  kNone,
  kValue,    // Full after-images (ARIES-style redo).
  kCommand,  // Procedure id + parameters (H-Store/VoltDB-style).
};

const char* LoggingKindName(LoggingKind kind);

using Lsn = uint64_t;

struct LogManagerOptions {
  std::string path;
  uint64_t flush_interval_us = 50;
  uint64_t device_latency_us = 0;  // Injected on every physical flush.
};

class LogManager {
 public:
  explicit LogManager(LogManagerOptions options);
  ~LogManager();
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Opens the log file (truncating) and starts the flusher.
  Status Open();

  /// Flushes outstanding records and stops the flusher.
  void Close();

  /// Appends one framed record; returns the LSN *after* the record (the
  /// point that must become durable for it to be stable).
  Lsn Append(LogRecordType type, const uint8_t* body, size_t body_len);
  Lsn Append(LogRecordType type, const std::vector<uint8_t>& body) {
    return Append(type, body.data(), body.size());
  }

  /// Blocks until everything up to `lsn` reached the device.
  void WaitDurable(Lsn lsn);

  /// Registers a callback the flusher invokes (from its own thread, outside
  /// the log mutex) after every physical flush, with the new durable LSN.
  /// Used for group-commit-aware reply release: the network server defers
  /// client responses until the commit LSN is durable instead of blocking a
  /// worker in WaitDurable. May be called while the flusher is running;
  /// SetDurableCallback(nullptr) returns only after any in-flight
  /// invocation has finished, making teardown race-free.
  void SetDurableCallback(std::function<void(Lsn)> callback);

  Lsn durable_lsn() const;
  Lsn appended_lsn() const;

  /// Physical flush count (group-commit effectiveness metric).
  uint64_t flush_count() const {
    return flush_count_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return options_.path; }

 private:
  void FlusherLoop();

  LogManagerOptions options_;
  int fd_ = -1;

  // Serializes callback (re)registration against flusher invocation.
  std::mutex callback_mu_;
  std::function<void(Lsn)> durable_callback_;

  // Append cursor (workers, short critical sections) and flusher-side state
  // live on separate cache lines: every committing worker bounces the
  // cursor's line, and the flusher's bookkeeping must not ride along.
  NEXT700_CACHE_ALIGNED mutable std::mutex mu_;
  std::condition_variable flushed_cv_;
  std::condition_variable flusher_cv_;
  std::vector<uint8_t> buffer_;  // Records appended but not yet written.
  Lsn appended_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  bool stop_ = false;
  bool running_ = false;

  NEXT700_CACHE_ALIGNED std::atomic<uint64_t> flush_count_{0};

  std::thread flusher_;
};

}  // namespace next700

#endif  // NEXT700_LOG_LOG_MANAGER_H_
