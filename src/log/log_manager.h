#ifndef NEXT700_LOG_LOG_MANAGER_H_
#define NEXT700_LOG_LOG_MANAGER_H_

/// \file
/// Write-ahead logging with group commit and real durability. Workers
/// serialize their commit record into a shared buffer (one short critical
/// section — the serial log is itself a measured contention point, cf.
/// Aether); a dedicated flusher thread writes the buffer to the log device
/// every `flush_interval_us`, issues the configured durability barrier
/// (fdatasync / O_DSYNC), and only then advances the durable LSN, waking
/// transactions blocked in WaitDurable().
///
/// The log is a directory of append-only segments (`log.000000`,
/// `log.000001`, ...). Open() never truncates *committed* history: it
/// scans the existing segments, cuts a crash's torn frame off the tail of
/// the final one (and only a torn frame — complete-but-corrupt frames fail
/// Open), resumes the LSN space after the surviving bytes, and appends to
/// a fresh segment. The flusher rotates to a new segment once the current
/// one crosses `segment_bytes` (always on a frame boundary, so only the
/// final segment of a crashed log can carry a torn frame).
///
/// I/O errors are sticky: the flusher parks, durable_lsn_ stops advancing,
/// and every subsequent WaitDurable returns the error instead of the
/// process aborting. The physical backend is injectable (LogFileFactory)
/// so the crash-fault harness can tear writes and count barriers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "io/io_backend.h"
#include "log/log_file.h"
#include "log/log_record.h"

namespace next700 {

enum class LoggingKind {
  kNone,
  kValue,    // Full after-images (ARIES-style redo).
  kCommand,  // Procedure id + parameters (H-Store/VoltDB-style).
};

const char* LoggingKindName(LoggingKind kind);

/// How the flusher makes a flush durable before advancing durable_lsn_.
enum class LogSyncPolicy {
  kNone,       // No barrier: durability is a promise about the page cache.
  kFdatasync,  // fdatasync(2) after each physical flush.
  kODsync,     // Segments opened O_DSYNC: every write is its own barrier.
};

const char* LogSyncPolicyName(LogSyncPolicy policy);

using Lsn = uint64_t;

struct LogManagerOptions {
  /// Segment directory (created if missing). Replaces the old single-file
  /// `path`: opening no longer truncates previous segments.
  std::string dir;
  uint64_t flush_interval_us = 50;
  /// Extra modelled latency injected on every physical flush (legacy NVM /
  /// SSD model; composes with, but does not substitute for, sync_policy).
  uint64_t device_latency_us = 0;
  LogSyncPolicy sync_policy = LogSyncPolicy::kNone;
  /// Rotate to a new segment once the current one reaches this size.
  /// 0 = never rotate.
  uint64_t segment_bytes = 64ull << 20;
  /// Physical backend per segment; empty = PosixLogFile. The crashtest
  /// harness injects its fault backend here.
  LogFileFactory file_factory;
  /// Log-truncation bookkeeping, read from the checkpoint MANIFEST: the
  /// first segment index that is still live and the LSN of its first byte.
  /// Segments with a smaller index are a retired prefix — a crash between
  /// the manifest update and the unlinks can leave them behind, and Open()
  /// deletes them. Both default to 0: a never-truncated log.
  uint64_t base_index = 0;
  Lsn base_lsn = 0;
  /// Device submission path for the flusher. kAuto/kUring build a private
  /// uring (the staged flush and its barrier go down as one linked
  /// submission); kEpoll — and any kernel that refuses a ring under kAuto —
  /// keeps the synchronous write+fdatasync path, which is already batched
  /// by group commit. A custom file_factory always wins over the ring
  /// (fault injection interposes at the Append/Sync seam regardless of
  /// backend). kUring fails Open() loudly where unsupported.
  io::IoBackendKind io_backend = io::IoBackendKind::kAuto;
};

/// A fully written, frame-boundary-aligned segment that rotation has moved
/// past. Retirement unlinks sealed segments whose LSN range falls entirely
/// below a checkpoint's start LSN.
struct SealedSegment {
  uint64_t index = 0;
  std::string path;
  Lsn start_lsn = 0;
  Lsn end_lsn = 0;
};

class LogManager {
 public:
  explicit LogManager(LogManagerOptions options);
  ~LogManager();
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Creates the segment directory if needed, truncates a torn crash tail
  /// off the final surviving segment (it is about to stop being final, and
  /// recovery tolerates a torn frame only there), resumes the LSN space
  /// after the surviving bytes, opens a fresh segment, and starts the
  /// flusher. Returns kCorruption — without truncating — if the final
  /// segment holds a complete frame with a bad checksum: that was flushed
  /// that way and may cover acked transactions.
  Status Open();

  /// Flushes outstanding records and stops the flusher. After Close(),
  /// io_status() reports whether the final flush reached the device.
  void Close();

  /// Appends one framed record; returns the LSN *after* the record (the
  /// point that must become durable for it to be stable).
  Lsn Append(LogRecordType type, const uint8_t* body, size_t body_len);
  Lsn Append(LogRecordType type, const std::vector<uint8_t>& body) {
    return Append(type, body.data(), body.size());
  }

  /// Appends pre-framed bytes verbatim — the replica-side mirror of
  /// Append(): a replica writes the primary's frame stream into its own log
  /// so both logs are byte-identical and share one LSN space. `data` must
  /// hold whole frames exactly as Append() would have produced them; the
  /// caller is responsible for having validated their checksums. Returns
  /// the LSN after the appended bytes.
  Lsn AppendRaw(const uint8_t* data, size_t len);

  /// Reads the durable frame stream covering [lsn_lo, min(lsn_hi,
  /// durable_lsn())) into `*out` and sets `*end_lsn` to the LSN after the
  /// last byte returned. `lsn_lo` must be a frame boundary; only whole
  /// frames are returned (the range is trimmed back to the last complete
  /// frame), so `*end_lsn` is a frame boundary too. Safe against concurrent
  /// appends, rotation, and retirement: the durable clamp is taken before
  /// the segment-table snapshot, segment files never move once named, and
  /// a segment retired mid-read surfaces as kNotFound — which also reports
  /// an `lsn_lo` below the retired prefix (the caller must re-bootstrap
  /// from a checkpoint instead of tailing the log). An empty result with
  /// *end_lsn == lsn_lo means nothing new is durable yet.
  Status ReadFramesInRange(Lsn lsn_lo, Lsn lsn_hi, std::vector<uint8_t>* out,
                           Lsn* end_lsn) const;

  /// Blocks until everything up to `lsn` reached the device. Returns OK
  /// only on real durability; kIOError (sticky) if the device failed, and
  /// kUnavailable if the log was closed before `lsn` became durable —
  /// Close() during an in-flight commit is not durability.
  Status WaitDurable(Lsn lsn);

  /// Sticky device status: the first flush error, or OK.
  Status io_status() const;

  /// Registers a callback the flusher invokes (from its own thread, outside
  /// every log mutex) after each successful flush, with the new durable
  /// LSN. Used for group-commit-aware reply release: the network server
  /// defers client responses until the commit LSN is durable instead of
  /// blocking a worker in WaitDurable. The callback may itself call
  /// SetDurableCallback (re-registration is reentrancy-safe); from any
  /// other thread, SetDurableCallback returns only after an in-flight
  /// invocation finishes, making teardown race-free.
  void SetDurableCallback(std::function<void(Lsn)> callback);

  Lsn durable_lsn() const;
  Lsn appended_lsn() const;

  /// Physical flush count (group-commit effectiveness metric).
  uint64_t flush_count() const {
    return flush_count_.load(std::memory_order_relaxed);
  }

  /// Durability barriers issued (fdatasync calls, or O_DSYNC writes).
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// Segments this manager has opened for appending (rotation metric).
  uint64_t segments_opened() const {
    return segments_opened_.load(std::memory_order_relaxed);
  }

  /// write(2)-equivalent device operations issued across all segments —
  /// with flush_count(), the submissions-batched series (writes per
  /// physical flush should be ~1).
  uint64_t write_syscalls() const {
    return write_syscalls_.load(std::memory_order_relaxed);
  }

  /// The flusher's ring counters, or null when the log runs the
  /// synchronous (epoll-fallback) device path.
  const io::IoCounters* io_counters() const {
    return io_ == nullptr ? nullptr : &io_->counters();
  }

  /// "uring" when the flusher submits through a ring, else "sync".
  const char* io_backend_name() const {
    return io_ == nullptr ? "sync" : io_->name();
  }

  const std::string& dir() const { return options_.dir; }

  /// The (index, start LSN) of the segment that still holds bytes at or
  /// above `lsn` — what a checkpoint at `lsn` records as the log base in
  /// its MANIFEST before retiring the prefix. Falls back to the live
  /// segment when every sealed one is below `lsn`. Thread-safe.
  SealedSegment BaseAfterRetire(Lsn lsn) const;

  /// Unlinks every sealed segment whose bytes all fall below `lsn`, then
  /// fsyncs the log directory. Call only after the MANIFEST recording the
  /// matching base is durable: a crash mid-retirement then leaves stale
  /// below-base segments that the next Open() deletes. `between_unlinks`,
  /// when set, runs after each unlink (crash-harness hook). Thread-safe
  /// against the flusher's rotation.
  Status RetireSegmentsBelow(Lsn lsn,
                             const std::function<void()>& between_unlinks);

  /// Sealed (rotated-past) segments currently on disk, oldest first.
  std::vector<SealedSegment> sealed_segments() const;

 private:
  void FlusherLoop();
  /// Rotate-if-needed + append + barrier + modelled latency for one flush.
  Status WriteAndSync(const std::vector<uint8_t>& batch);
  Status OpenSegment(uint64_t index);

  /// Folds the live file's write_count() delta into write_syscalls_;
  /// flusher-owned (also called on the cold Open/Close paths).
  void AccumulateDeviceWrites();

  LogManagerOptions options_;
  // Flusher-owned after Open() returns (Open hands them off by starting the
  // thread); no lock, and deliberately no TSA annotation — single-owner
  // hand-off is a happens-before edge, not a lock discipline.
  std::unique_ptr<LogFile> file_;
  std::unique_ptr<io::IoBackend> io_;  // Null = synchronous device path.
  uint64_t segment_index_ = 0;    // Flusher-owned after Open().
  uint64_t segment_written_ = 0;  // Bytes in the current segment.
  uint64_t file_writes_seen_ = 0;  // write_count() already accumulated.

  // Segment-table state shared between the flusher (rotation seals the old
  // live segment) and the checkpointer (retirement unlinks sealed ones).
  mutable Mutex segments_mu_;
  std::vector<SealedSegment> sealed_ GUARDED_BY(segments_mu_);  // Oldest 1st.
  uint64_t live_index_ GUARDED_BY(segments_mu_) = 0;  // Current live segment.
  Lsn live_start_lsn_ GUARDED_BY(segments_mu_) = 0;   // LSN of its 1st byte.

  // Serializes callback (re)registration against flusher invocation.
  Mutex callback_mu_;
  CondVar callback_cv_;
  std::function<void(Lsn)> durable_callback_ GUARDED_BY(callback_mu_);
  bool callback_running_ GUARDED_BY(callback_mu_) = false;
  // The flusher publishes its own id at startup, before the first durable
  // callback can run.
  std::thread::id flusher_tid_ GUARDED_BY(callback_mu_);

  // Append cursor (workers, short critical sections) and flusher-side state
  // live on separate cache lines: every committing worker bounces the
  // cursor's line, and the flusher's bookkeeping must not ride along.
  NEXT700_CACHE_ALIGNED mutable Mutex mu_;
  CondVar flushed_cv_;
  CondVar flusher_cv_;
  // Records appended but not yet written.
  std::vector<uint8_t> buffer_ GUARDED_BY(mu_);
  Lsn appended_lsn_ GUARDED_BY(mu_) = 0;
  Lsn durable_lsn_ GUARDED_BY(mu_) = 0;
  Status io_status_ GUARDED_BY(mu_);  // Sticky first device error.
  bool flusher_exited_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  // Open/Close-caller-owned (the API is single-threaded there); unshared,
  // so unannotated.
  bool running_ = false;

  NEXT700_CACHE_ALIGNED std::atomic<uint64_t> flush_count_{0};
  std::atomic<uint64_t> sync_count_{0};
  std::atomic<uint64_t> segments_opened_{0};
  std::atomic<uint64_t> write_syscalls_{0};

  std::thread flusher_;
};

}  // namespace next700

#endif  // NEXT700_LOG_LOG_MANAGER_H_
