#include "log/recovery.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "log/log_file.h"

namespace next700 {

namespace {

/// Scoped engine replay mode: replayed command transactions re-execute
/// through the normal commit pipeline, and on an engine whose own log is
/// open (a replica, or checkpoint+suffix recovery into a serving engine)
/// they must not be appended to that log a second time.
class ReplayModeGuard {
 public:
  explicit ReplayModeGuard(Engine* engine) : engine_(engine) {
    engine_->set_replay_mode(true);
  }
  ~ReplayModeGuard() { engine_->set_replay_mode(false); }
  ReplayModeGuard(const ReplayModeGuard&) = delete;
  ReplayModeGuard& operator=(const ReplayModeGuard&) = delete;

 private:
  Engine* engine_;
};

}  // namespace

void RecoveryManager::ApplyImage(Engine* engine, Row* row,
                                 const uint8_t* image, uint32_t len) {
  if (engine->cc()->is_multiversion()) {
    Version* v = row->chain.load(std::memory_order_relaxed);
    NEXT700_CHECK(v != nullptr);
    std::memcpy(v->data(), image, len);
  } else {
    std::memcpy(row->data(), image, len);
  }
}

Status RecoveryManager::ApplyValueRecord(LogReader* reader,
                                         RecoveryStats* stats) {
  uint64_t commit_ts;
  uint32_t num_writes;
  if (!reader->GetU64(&commit_ts) || !reader->GetU32(&num_writes)) {
    return Status::Corruption("truncated value record");
  }
  for (uint32_t i = 0; i < num_writes; ++i) {
    uint32_t table_id, partition, payload_len;
    uint64_t primary_key;
    uint8_t kind_raw;
    if (!reader->GetU32(&table_id) || !reader->GetU32(&partition) ||
        !reader->GetU64(&primary_key) || !reader->GetU8(&kind_raw) ||
        !reader->GetU32(&payload_len)) {
      return Status::Corruption("truncated write entry");
    }
    const uint8_t* payload = reader->Peek();
    if (!reader->Skip(payload_len)) {
      return Status::Corruption("truncated payload");
    }
    Table* table = engine_->catalog()->GetTable(table_id);
    if (table == nullptr) return Status::Corruption("unknown table id");
    NEXT700_CHECK(payload_len == 0 ||
                  payload_len == table->schema().row_size());
    Index* primary = engine_->catalog()->PrimaryIndex(table);
    NEXT700_CHECK_MSG(primary != nullptr, "table has no primary index");
    const auto kind = static_cast<LogWriteKind>(kind_raw);

    Row* row = primary->Lookup(primary_key);
    if (row == nullptr) {
      if (kind == LogWriteKind::kDelete) continue;  // Never materialized.
      row = engine_->LoadRow(table, partition, primary_key, payload);
      row->wts.store(commit_ts, std::memory_order_relaxed);
      NEXT700_CHECK(primary->Insert(primary_key, row).ok());
      if (rebuilder_) rebuilder_(engine_, row);
      ++stats->writes_applied;
      continue;
    }
    // Thomas-rule replay: 0 means "log order is commit order" (lock-based
    // schemes); otherwise images carry explicit timestamps and only newer
    // ones overwrite.
    const Timestamp applied = row->wts.load(std::memory_order_relaxed);
    if (commit_ts != 0 && commit_ts < applied) {
      ++stats->writes_skipped;
      continue;
    }
    if (kind == LogWriteKind::kDelete) {
      row->set_deleted(true);
      primary->Remove(primary_key, row);
    } else {
      row->set_deleted(false);
      ApplyImage(engine_, row, payload, payload_len);
    }
    row->wts.store(commit_ts, std::memory_order_relaxed);
    ++stats->writes_applied;
  }
  ++stats->txns_replayed;
  return Status::OK();
}

Status RecoveryManager::ApplyCommandRecord(LogReader* reader,
                                           RecoveryStats* stats) {
  uint64_t commit_ts;
  uint32_t proc_id, arg_len;
  if (!reader->GetU64(&commit_ts) || !reader->GetU32(&proc_id) ||
      !reader->GetU32(&arg_len)) {
    return Status::Corruption("truncated command record");
  }
  const uint8_t* args = reader->Peek();
  if (!reader->Skip(arg_len)) return Status::Corruption("truncated args");
  // Serial re-execution in log order on worker 0; retry CC aborts (none are
  // expected single-threaded), pass user aborts through (they replay the
  // original abort deterministically).
  for (;;) {
    const Status s = engine_->RunProcedure(proc_id, 0, args, arg_len);
    if (s.ok() || !s.IsAborted()) break;
  }
  ++stats->txns_replayed;
  return Status::OK();
}

Status RecoveryManager::ApplyPrepareRecord(LogReader* reader,
                                           RecoveryStats* stats) {
  (void)stats;
  uint64_t gtid;
  if (!reader->GetU64(&gtid)) {
    return Status::Corruption("truncated prepare record");
  }
  // Stash the redo body without touching rows: until the outcome record (or
  // the coordinator's post-recovery decision) arrives, this branch is
  // neither committed nor aborted. Overwrite is harmless — a participant
  // writes at most one prepare per gtid, and replaying the same frames
  // twice (replication catch-up) must be idempotent.
  const uint8_t* body = reader->Peek();
  const size_t body_len = reader->remaining();
  in_doubt_[gtid].assign(body, body + body_len);
  NEXT700_CHECK(reader->Skip(body_len));
  return Status::OK();
}

Status RecoveryManager::ApplyOutcomeRecord(LogReader* reader,
                                           RecoveryStats* stats) {
  uint64_t gtid;
  uint8_t committed;
  if (!reader->GetU64(&gtid) || !reader->GetU8(&committed) ||
      committed > 1) {
    return Status::Corruption("malformed outcome record");
  }
  auto it = in_doubt_.find(gtid);
  if (committed) {
    // A commit outcome is only ever logged after the prepare is durable, so
    // a missing stash means the log lost the prepare: real corruption.
    if (it == in_doubt_.end()) {
      return Status::Corruption("commit outcome without prepare record");
    }
    LogReader redo(it->second.data(), it->second.size());
    const Status s = ApplyValueRecord(&redo, stats);
    if (!s.ok()) return s;
  }
  // Abort with no stash is legal: the in-memory abort path logs an outcome
  // even when the prepare predates this replay window.
  if (it != in_doubt_.end()) in_doubt_.erase(it);
  return Status::OK();
}

Status RecoveryManager::WalkFrames(const uint8_t* data, size_t len,
                                   const std::string& origin,
                                   bool allow_torn_tail, Lsn base_lsn,
                                   Lsn start_lsn, RecoveryStats* stats) {
  size_t pos = 0;
  while (pos < len) {
    // Frame: u32 len, u8 type, u32 header_sum, body, u64 body_sum.
    if (pos + kFrameHeaderBytes > len) {  // Torn tail.
      if (allow_torn_tail) break;
      return Status::Corruption("torn frame in " + origin);
    }
    uint32_t body_len;
    std::memcpy(&body_len, data + pos, 4);
    const uint8_t type_raw = data[pos + 4];
    uint32_t header_sum;
    std::memcpy(&header_sum, data + pos + 5, 4);
    if (header_sum != FrameHeaderSum(body_len, type_raw)) {
      // A torn write leaves a *prefix*; it cannot produce nine header
      // bytes that disagree with their own checksum. This is corruption
      // even at the tail — without it a flipped length byte would read as
      // a torn tail and silently drop every acked txn behind it.
      return Status::Corruption("log frame header corrupt in " + origin);
    }
    const size_t frame_end = pos + kFrameOverheadBytes + body_len;
    if (frame_end > len) {  // Torn tail (header vouches for len).
      if (allow_torn_tail) break;
      return Status::Corruption("torn frame in " + origin);
    }
    const uint8_t* body = data + pos + kFrameHeaderBytes;
    uint64_t checksum;
    std::memcpy(&checksum, data + pos + kFrameHeaderBytes + body_len, 8);
    if (checksum != FnvHashBytes(body, body_len)) {
      // The whole frame is present, so the write that produced it
      // completed — a bad body checksum is corruption, never a crash tail.
      return Status::Corruption("log checksum mismatch in " + origin);
    }
    if (base_lsn + frame_end <= start_lsn) {
      pos = frame_end;  // Before the checkpoint: already materialized.
      continue;
    }
    LogReader reader(body, body_len);
    Status s;
    switch (static_cast<LogRecordType>(type_raw)) {
      case LogRecordType::kTxnValue:
        s = ApplyValueRecord(&reader, stats);
        break;
      case LogRecordType::kTxnCommand:
        s = ApplyCommandRecord(&reader, stats);
        break;
      case LogRecordType::kTxnPrepare:
        s = ApplyPrepareRecord(&reader, stats);
        break;
      case LogRecordType::kTxnOutcome:
        s = ApplyOutcomeRecord(&reader, stats);
        break;
      default:
        // kCoordDecision never appears in an engine log — a coordinator's
        // decision log holds nothing else and is scanned separately.
        s = Status::Corruption("unknown record type");
    }
    if (!s.ok()) return s;
    pos = frame_end;
  }
  return Status::OK();
}

Status RecoveryManager::ApplyFrames(const uint8_t* data, size_t len,
                                    RecoveryStats* stats) {
  ReplayModeGuard guard(engine_);
  stats->bytes_read += len;
  return WalkFrames(data, len, "replication batch",
                    /*allow_torn_tail=*/false, /*base_lsn=*/0,
                    /*start_lsn=*/0, stats);
}

Status RecoveryManager::ApplyRedoBody(const uint8_t* data, size_t len,
                                      RecoveryStats* stats) {
  ReplayModeGuard guard(engine_);
  LogReader reader(data, len);
  return ApplyValueRecord(&reader, stats);
}

Status RecoveryManager::ReplaySegment(const std::string& path, Lsn base_lsn,
                                      bool is_final, Lsn start_lsn,
                                      RecoveryStats* stats) {
  std::vector<uint8_t> file;
  NEXT700_RETURN_IF_ERROR(ReadFileFully(path, &file));
  stats->bytes_read += file.size();
  ++stats->segments_read;
  return WalkFrames(file.data(), file.size(), "non-final segment " + path,
                    /*allow_torn_tail=*/is_final, base_lsn, start_lsn,
                    stats);
}

Status RecoveryManager::Replay(const std::string& path, RecoveryStats* stats,
                               Lsn start_lsn, uint64_t log_base_index,
                               Lsn log_base_lsn) {
  ReplayModeGuard guard(engine_);
  const uint64_t start = NowNanos();
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path);
  }
  if (S_ISDIR(st.st_mode)) {
    std::vector<LogSegment> segments;
    NEXT700_RETURN_IF_ERROR(ListLogSegments(path, &segments));
    // Segments below the manifest's base are a retired prefix that a crash
    // left behind (their contents are covered by the checkpoint); the LSN
    // space of the retained chain starts at the recorded base, not 0.
    Lsn base_lsn = log_base_lsn;
    size_t first = 0;
    while (first < segments.size() &&
           segments[first].index < log_base_index) {
      ++first;
    }
    for (size_t i = first; i < segments.size(); ++i) {
      const bool is_final = i + 1 == segments.size();
      NEXT700_RETURN_IF_ERROR(ReplaySegment(segments[i].path, base_lsn,
                                            is_final, start_lsn, stats));
      base_lsn += segments[i].bytes;
    }
  } else {
    NEXT700_RETURN_IF_ERROR(
        ReplaySegment(path, /*base_lsn=*/log_base_lsn, /*is_final=*/true,
                      start_lsn, stats));
  }
  stats->elapsed_seconds =
      static_cast<double>(NowNanos() - start) / 1e9;
  return Status::OK();
}

namespace {

/// One segment (or single file) of a coordinator decision log.
Status ScanDecisionBytes(const uint8_t* data, size_t len,
                         const std::string& origin, bool allow_torn_tail,
                         std::vector<uint64_t>* committed) {
  size_t pos = 0;
  while (pos < len) {
    if (pos + kFrameHeaderBytes > len) {
      if (allow_torn_tail) break;
      return Status::Corruption("torn frame in " + origin);
    }
    uint32_t body_len;
    std::memcpy(&body_len, data + pos, 4);
    const uint8_t type_raw = data[pos + 4];
    uint32_t header_sum;
    std::memcpy(&header_sum, data + pos + 5, 4);
    if (header_sum != FrameHeaderSum(body_len, type_raw)) {
      return Status::Corruption("decision frame header corrupt in " +
                                origin);
    }
    const size_t frame_end = pos + kFrameOverheadBytes + body_len;
    if (frame_end > len) {
      if (allow_torn_tail) break;
      return Status::Corruption("torn frame in " + origin);
    }
    const uint8_t* body = data + pos + kFrameHeaderBytes;
    uint64_t checksum;
    std::memcpy(&checksum, data + pos + kFrameHeaderBytes + body_len, 8);
    if (checksum != FnvHashBytes(body, body_len)) {
      return Status::Corruption("decision checksum mismatch in " + origin);
    }
    if (static_cast<LogRecordType>(type_raw) !=
            LogRecordType::kCoordDecision ||
        body_len != sizeof(uint64_t)) {
      return Status::Corruption("non-decision record in coordinator log " +
                                origin);
    }
    LogReader reader(body, body_len);
    uint64_t gtid;
    NEXT700_CHECK(reader.GetU64(&gtid));
    committed->push_back(gtid);
    pos = frame_end;
  }
  return Status::OK();
}

}  // namespace

Status ScanCoordinatorDecisions(const std::string& path,
                                std::vector<uint64_t>* committed) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path);
  }
  std::vector<std::string> files;
  if (S_ISDIR(st.st_mode)) {
    std::vector<LogSegment> segments;
    NEXT700_RETURN_IF_ERROR(ListLogSegments(path, &segments));
    for (const LogSegment& seg : segments) files.push_back(seg.path);
  } else {
    files.push_back(path);
  }
  for (size_t i = 0; i < files.size(); ++i) {
    std::vector<uint8_t> file;
    NEXT700_RETURN_IF_ERROR(ReadFileFully(files[i], &file));
    NEXT700_RETURN_IF_ERROR(
        ScanDecisionBytes(file.data(), file.size(), files[i],
                          /*allow_torn_tail=*/i + 1 == files.size(),
                          committed));
  }
  return Status::OK();
}

}  // namespace next700
