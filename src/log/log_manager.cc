#include "log/log_manager.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/macros.h"

namespace next700 {

const char* LoggingKindName(LoggingKind kind) {
  switch (kind) {
    case LoggingKind::kNone:
      return "none";
    case LoggingKind::kValue:
      return "value";
    case LoggingKind::kCommand:
      return "command";
  }
  return "unknown";
}

const char* LogSyncPolicyName(LogSyncPolicy policy) {
  switch (policy) {
    case LogSyncPolicy::kNone:
      return "none";
    case LogSyncPolicy::kFdatasync:
      return "fdatasync";
    case LogSyncPolicy::kODsync:
      return "odsync";
  }
  return "unknown";
}

LogManager::LogManager(LogManagerOptions options)
    : options_(std::move(options)) {}

LogManager::~LogManager() { Close(); }

void LogManager::AccumulateDeviceWrites() {
  if (file_ == nullptr) return;
  const uint64_t now = file_->write_count();
  write_syscalls_.fetch_add(now - file_writes_seen_,
                            std::memory_order_relaxed);
  file_writes_seen_ = now;
}

Status LogManager::OpenSegment(uint64_t index) {
  // A custom factory (fault injection, RawWrite shims) always wins: its
  // Append/Sync overrides are the crashtest seam and must interpose no
  // matter which submission backend is configured. Otherwise, a resolved
  // ring gets the linked-submission device.
  file_ = options_.file_factory ? options_.file_factory()
          : io_ != nullptr     ? std::make_unique<UringLogFile>()
                               : std::make_unique<PosixLogFile>();
  file_writes_seen_ = 0;
  NEXT700_RETURN_IF_ERROR(
      file_->Open(LogSegmentPath(options_.dir, index),
                  options_.sync_policy == LogSyncPolicy::kODsync));
  // The segment's directory entry must be durable before any write to it
  // is acked: fdatasync/O_DSYNC cover the file's data, not the entry that
  // names it, and a vanished segment loses every txn acked against it.
  NEXT700_RETURN_IF_ERROR(SyncDir(options_.dir));
  segment_index_ = index;
  segment_written_ = 0;
  segments_opened_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::Open() {
  NEXT700_CHECK(!running_);
  // Resolve the device submission path before the first segment opens.
  // kAuto degrades to the synchronous path quietly; explicit kUring does
  // not — a CI job asking for the ring must not silently test without it.
  // A custom file_factory (the crash-fault seam) always supplies the
  // device, so no ring is built for it to ignore.
  io_.reset();
  if (options_.file_factory == nullptr &&
      options_.io_backend != io::IoBackendKind::kEpoll) {
    std::unique_ptr<io::IoBackend> ring;
    const Status ring_status =
        io::CreateIoBackend(io::IoBackendKind::kUring, &ring);
    if (ring_status.ok()) {
      io_ = std::move(ring);
    } else if (options_.io_backend == io::IoBackendKind::kUring) {
      return ring_status;
    }
  }
  NEXT700_RETURN_IF_ERROR(EnsureLogDir(options_.dir));
  // Resume the LSN space after the surviving history instead of truncating
  // it: recovery replays those segments, and our frames land after them.
  std::vector<LogSegment> history;
  NEXT700_RETURN_IF_ERROR(ListLogSegments(options_.dir, &history));
  if (options_.base_index > 0) {
    // Segments below the manifest's base are a retired prefix; a crash
    // between the manifest update and the unlinks leaves them behind.
    // Finish the job here — their LSN range is fully covered by the
    // checkpoint, so deleting them loses nothing.
    bool removed_stale = false;
    size_t keep = 0;
    for (size_t i = 0; i < history.size(); ++i) {
      if (history[i].index < options_.base_index) {
        ::unlink(history[i].path.c_str());
        removed_stale = true;
      } else {
        if (keep != i) history[keep] = std::move(history[i]);
        ++keep;
      }
    }
    history.resize(keep);
    if (removed_stale) NEXT700_RETURN_IF_ERROR(SyncDir(options_.dir));
  }
  if (!history.empty()) {
    // A crash can leave a torn frame only at the tail of the final
    // segment. Cut it off *now*: once we append a new segment, that
    // segment is no longer final, and recovery would report its crash
    // tail as corruption — permanently, for every later replay. A
    // complete frame with a bad checksum is real damage, never a torn
    // write; refuse to resume over it rather than silently truncate
    // acked transactions.
    LogSegment& last = history.back();
    uint64_t valid = 0;
    NEXT700_RETURN_IF_ERROR(ScanValidFramePrefix(last.path, &valid));
    if (valid < last.bytes) {
      NEXT700_RETURN_IF_ERROR(TruncateLogSegment(last.path, valid));
      last.bytes = valid;
    }
  }
  // Cumulative LSNs start at the manifest's base, not 0: retirement may
  // have deleted a prefix of the segment chain, but the LSN space (and the
  // frames recovery skips below a checkpoint's start_lsn) must not shift.
  Lsn cursor = options_.base_lsn;
  uint64_t next_index = options_.base_index;
  {
    MutexLock seg_lock(&segments_mu_);
    sealed_.clear();
    for (const LogSegment& segment : history) {
      sealed_.push_back(SealedSegment{segment.index, segment.path, cursor,
                                      cursor + segment.bytes});
      cursor += segment.bytes;
      next_index = segment.index + 1;
    }
    live_index_ = next_index;
    live_start_lsn_ = cursor;
  }
  {
    // The flusher does not exist yet, but taking mu_ keeps the lock
    // discipline uniform (and statically checkable) on the cold path.
    MutexLock lock(&mu_);
    appended_lsn_ = durable_lsn_ = cursor;
    io_status_ = Status::OK();
    flusher_exited_ = false;
    stop_ = false;
  }
  NEXT700_RETURN_IF_ERROR(OpenSegment(next_index));

  running_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::OK();
}

void LogManager::Close() {
  if (!running_) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  flusher_cv_.NotifyAll();
  flusher_.join();
  running_ = false;
  AccumulateDeviceWrites();
  if (file_ != nullptr) file_->Close();
  file_.reset();
}

Lsn LogManager::Append(LogRecordType type, const uint8_t* body,
                       size_t body_len) {
  // Checksum outside the critical section: the serial buffer is a measured
  // contention point (Aether), so only the memcpy happens under the mutex.
  const uint64_t checksum = FnvHashBytes(body, body_len);
  const uint32_t len_field = static_cast<uint32_t>(body_len);
  const uint32_t header_sum =
      FrameHeaderSum(len_field, static_cast<uint8_t>(type));
  Lsn end;
  {
    MutexLock lock(&mu_);
    LogWriter writer(&buffer_);
    writer.PutU32(len_field);
    writer.PutU8(static_cast<uint8_t>(type));
    writer.PutU32(header_sum);
    writer.PutBytes(body, body_len);
    writer.PutU64(checksum);
    appended_lsn_ += kFrameOverheadBytes + body_len;
    end = appended_lsn_;
  }
  return end;
}

Lsn LogManager::AppendRaw(const uint8_t* data, size_t len) {
  Lsn end;
  {
    MutexLock lock(&mu_);
    buffer_.insert(buffer_.end(), data, data + len);
    appended_lsn_ += len;
    end = appended_lsn_;
  }
  return end;
}

Status LogManager::ReadFramesInRange(Lsn lsn_lo, Lsn lsn_hi,
                                     std::vector<uint8_t>* out,
                                     Lsn* end_lsn) const {
  *end_lsn = lsn_lo;
  // Clamp to the durable watermark *before* snapshotting the segment table:
  // every byte below the clamp is already on disk, so a rotation between
  // the two steps only adds segments above the range we read. The snapshot
  // is safe to use after the lock drops because segment files never move
  // or shrink once named — retirement unlinks them whole, which the
  // per-file kNotFound below detects.
  const Lsn hi = std::min(lsn_hi, durable_lsn());
  if (hi <= lsn_lo) return Status::OK();
  struct Piece {
    std::string path;
    Lsn start_lsn;
    Lsn end_lsn;  // For the live segment: the durable clamp.
  };
  std::vector<Piece> pieces;
  {
    MutexLock lock(&segments_mu_);
    if (lsn_lo < (sealed_.empty() ? live_start_lsn_
                                  : sealed_.front().start_lsn)) {
      return Status::NotFound("lsn below the retired log prefix");
    }
    for (const SealedSegment& segment : sealed_) {
      if (segment.end_lsn <= lsn_lo || segment.start_lsn >= hi) continue;
      pieces.push_back(Piece{segment.path, segment.start_lsn,
                             segment.end_lsn});
    }
    if (live_start_lsn_ < hi) {
      pieces.push_back(Piece{LogSegmentPath(options_.dir, live_index_),
                             live_start_lsn_, hi});
    }
  }
  const size_t base = out->size();
  Lsn cursor = lsn_lo;
  for (const Piece& piece : pieces) {
    const Lsn from = std::max(cursor, piece.start_lsn);
    const Lsn to = std::min(hi, piece.end_lsn);
    if (from >= to) continue;
    const size_t before = out->size();
    NEXT700_RETURN_IF_ERROR(ReadFileRange(piece.path, from - piece.start_lsn,
                                          to - from, out));
    cursor = from + (out->size() - before);
    // A short read can only happen on the live segment, where the write
    // of a just-durable flush may still be landing; stop there.
    if (out->size() - before < to - from) break;
  }
  // Trim back to the last complete frame so *end_lsn is a frame boundary:
  // an arbitrary lsn_hi (batch cap) can cut mid-frame.
  size_t whole = 0;
  while (out->size() - base - whole >= kFrameHeaderBytes) {
    uint32_t body_len;
    std::memcpy(&body_len, out->data() + base + whole, sizeof(body_len));
    const uint64_t frame = kFrameOverheadBytes + uint64_t{body_len};
    if (out->size() - base - whole < frame) break;
    whole += frame;
  }
  out->resize(base + whole);
  *end_lsn = lsn_lo + whole;
  return Status::OK();
}

void LogManager::SetDurableCallback(std::function<void(Lsn)> callback) {
  MutexLock lock(&callback_mu_);
  // From the flusher's own callback, skip the drain (it would self-wait);
  // from any other thread, wait out an in-flight invocation so the caller
  // can free whatever the old callback captured.
  if (std::this_thread::get_id() != flusher_tid_) {
    while (callback_running_) callback_cv_.Wait(&callback_mu_);
  }
  durable_callback_ = std::move(callback);
}

Status LogManager::WaitDurable(Lsn lsn) {
  MutexLock lock(&mu_);
  flusher_cv_.NotifyAll();  // Give the flusher a nudge for low latency.
  while (durable_lsn_ < lsn && io_status_.ok() && !flusher_exited_) {
    flushed_cv_.Wait(&mu_);
  }
  if (durable_lsn_ >= lsn) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  return Status::Unavailable("log closed before lsn became durable");
}

Status LogManager::io_status() const {
  MutexLock lock(&mu_);
  return io_status_;
}

Lsn LogManager::durable_lsn() const {
  MutexLock lock(&mu_);
  return durable_lsn_;
}

Lsn LogManager::appended_lsn() const {
  MutexLock lock(&mu_);
  return appended_lsn_;
}

SealedSegment LogManager::BaseAfterRetire(Lsn lsn) const {
  MutexLock lock(&segments_mu_);
  for (const SealedSegment& segment : sealed_) {
    if (segment.end_lsn > lsn) return segment;
  }
  // Every sealed segment falls below the checkpoint: the live segment is
  // the new base. Later rotations only grow the chain above it, so the
  // returned (index, start_lsn) stays valid after this call returns.
  SealedSegment live;
  live.index = live_index_;
  live.path = LogSegmentPath(options_.dir, live_index_);
  live.start_lsn = live.end_lsn = live_start_lsn_;
  return live;
}

Status LogManager::RetireSegmentsBelow(
    Lsn lsn, const std::function<void()>& between_unlinks) {
  std::vector<SealedSegment> victims;
  {
    MutexLock lock(&segments_mu_);
    size_t keep = 0;
    for (size_t i = 0; i < sealed_.size(); ++i) {
      if (sealed_[i].end_lsn <= lsn) {
        victims.push_back(std::move(sealed_[i]));
      } else {
        if (keep != i) sealed_[keep] = std::move(sealed_[i]);
        ++keep;
      }
    }
    sealed_.resize(keep);
  }
  if (victims.empty()) return Status::OK();
  for (const SealedSegment& segment : victims) {
    ::unlink(segment.path.c_str());
    if (between_unlinks) between_unlinks();
  }
  return SyncDir(options_.dir);
}

std::vector<SealedSegment> LogManager::sealed_segments() const {
  MutexLock lock(&segments_mu_);
  return sealed_;
}

Status LogManager::WriteAndSync(const std::vector<uint8_t>& batch) {
  // Rotation happens only between flushes, so every segment but the live
  // one ends on a frame boundary — recovery relies on this to treat a torn
  // frame in a non-final segment as corruption, not a crash tail.
  if (options_.segment_bytes > 0 && segment_written_ > 0 &&
      segment_written_ + batch.size() > options_.segment_bytes) {
    AccumulateDeviceWrites();
    file_->Close();
    {
      // Seal the outgoing segment so the checkpointer can retire it.
      MutexLock seg_lock(&segments_mu_);
      sealed_.push_back(SealedSegment{
          segment_index_, LogSegmentPath(options_.dir, segment_index_),
          live_start_lsn_, live_start_lsn_ + segment_written_});
      live_index_ = segment_index_ + 1;
      live_start_lsn_ += segment_written_;
    }
    NEXT700_RETURN_IF_ERROR(OpenSegment(segment_index_ + 1));
  }
  // One submission carries the staged bytes and (under kFdatasync) the
  // barrier: a linked WRITE+FSYNC pair on the ring path, Append+Sync on
  // the synchronous path — the device decides, the flusher does not care.
  const bool barrier = options_.sync_policy == LogSyncPolicy::kFdatasync;
  NEXT700_RETURN_IF_ERROR(
      file_->SubmitAppend(io_.get(), batch.data(), batch.size(), barrier));
  segment_written_ += batch.size();
  AccumulateDeviceWrites();
  switch (options_.sync_policy) {
    case LogSyncPolicy::kNone:
      break;
    case LogSyncPolicy::kFdatasync:
      sync_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LogSyncPolicy::kODsync:
      // The O_DSYNC write itself was the barrier.
      sync_count_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (options_.device_latency_us > 0) {
    // Model the commit latency of a slower log device (NVM/SSD study knob;
    // EXPERIMENTS.md labels numbers produced this way as simulated).
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.device_latency_us));
  }
  return Status::OK();
}

void LogManager::FlusherLoop() {
  {
    // Publish our id under callback_mu_ before the first callback can
    // fire: SetDurableCallback reads it (under the same mutex) to detect
    // reentrant registration, and an unsynchronized write from Open()
    // would race with a callback that re-registers during the very first
    // flush.
    MutexLock lock(&callback_mu_);
    flusher_tid_ = std::this_thread::get_id();
  }
  std::vector<uint8_t> local;
  for (;;) {
    Lsn target;
    {
      MutexLock lock(&mu_);
      if (!stop_ && buffer_.empty()) {
        // A spurious wake just polls one interval early — the flusher is a
        // periodic cadence, so no condition re-check loop is needed here.
        (void)flusher_cv_.WaitFor(
            &mu_, std::chrono::microseconds(options_.flush_interval_us));
      }
      if (buffer_.empty()) {
        if (stop_) break;  // Residual buffer already drained.
        continue;
      }
      local.swap(buffer_);
      target = appended_lsn_;
    }
    const Status s = WriteAndSync(local);
    local.clear();
    if (!s.ok()) {
      // Sticky device failure: durable_lsn_ stops here; every waiter (and
      // every future WaitDurable) gets the error instead of an abort.
      {
        MutexLock lock(&mu_);
        io_status_ = s;
      }
      break;
    }
    flush_count_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&mu_);
      durable_lsn_ = target;
    }
    flushed_cv_.NotifyAll();
    // Invoke the durable callback outside callback_mu_ so a reentrant
    // SetDurableCallback from inside the callback cannot deadlock;
    // callback_running_ keeps external (re)registration teardown-safe.
    std::function<void(Lsn)> callback;
    {
      MutexLock lock(&callback_mu_);
      callback = durable_callback_;
      callback_running_ = true;
    }
    if (callback) callback(target);
    {
      MutexLock lock(&callback_mu_);
      callback_running_ = false;
    }
    callback_cv_.NotifyAll();
  }
  {
    MutexLock lock(&mu_);
    flusher_exited_ = true;
  }
  flushed_cv_.NotifyAll();
}

}  // namespace next700
