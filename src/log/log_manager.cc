#include "log/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>

#include "common/macros.h"

namespace next700 {

const char* LoggingKindName(LoggingKind kind) {
  switch (kind) {
    case LoggingKind::kNone:
      return "none";
    case LoggingKind::kValue:
      return "value";
    case LoggingKind::kCommand:
      return "command";
  }
  return "unknown";
}

LogManager::LogManager(LogManagerOptions options)
    : options_(std::move(options)) {}

LogManager::~LogManager() { Close(); }

Status LogManager::Open() {
  NEXT700_CHECK(!running_);
  fd_ = ::open(options_.path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open log file: " + options_.path);
  }
  stop_ = false;
  running_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::OK();
}

void LogManager::Close() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  flusher_cv_.notify_all();
  flusher_.join();
  running_ = false;
  ::close(fd_);
  fd_ = -1;
}

Lsn LogManager::Append(LogRecordType type, const uint8_t* body,
                       size_t body_len) {
  // Checksum outside the critical section: the serial buffer is a measured
  // contention point (Aether), so only the memcpy happens under the mutex.
  const uint64_t checksum = FnvHashBytes(body, body_len);
  const uint32_t len_field = static_cast<uint32_t>(body_len);
  Lsn end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LogWriter writer(&buffer_);
    writer.PutU32(len_field);
    writer.PutU8(static_cast<uint8_t>(type));
    writer.PutBytes(body, body_len);
    writer.PutU64(checksum);
    appended_lsn_ += sizeof(len_field) + 1 + body_len + sizeof(checksum);
    end = appended_lsn_;
  }
  return end;
}

void LogManager::SetDurableCallback(std::function<void(Lsn)> callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  durable_callback_ = std::move(callback);
}

void LogManager::WaitDurable(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  flusher_cv_.notify_all();  // Give the flusher a nudge for low latency.
  flushed_cv_.wait(lock, [&] { return durable_lsn_ >= lsn || stop_; });
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Lsn LogManager::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

void LogManager::FlusherLoop() {
  std::vector<uint8_t> local;
  for (;;) {
    Lsn target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      flusher_cv_.wait_for(
          lock, std::chrono::microseconds(options_.flush_interval_us),
          [&] { return stop_ || !buffer_.empty(); });
      if (buffer_.empty()) {
        if (stop_) return;
        continue;
      }
      local.swap(buffer_);
      target = appended_lsn_;
    }
    size_t off = 0;
    while (off < local.size()) {
      const ssize_t n = ::write(fd_, local.data() + off, local.size() - off);
      NEXT700_CHECK_MSG(n >= 0, "log write failed");
      off += static_cast<size_t>(n);
    }
    if (options_.device_latency_us > 0) {
      // Model the commit latency of the log device (fsync on NVM/SSD).
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.device_latency_us));
    }
    ++flush_count_;
    local.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      durable_lsn_ = target;
    }
    flushed_cv_.notify_all();
    {
      std::lock_guard<std::mutex> cb_lock(callback_mu_);
      if (durable_callback_) durable_callback_(target);
    }
  }
}

}  // namespace next700
