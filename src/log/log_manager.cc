#include "log/log_manager.h"

#include <chrono>

#include "common/macros.h"

namespace next700 {

const char* LoggingKindName(LoggingKind kind) {
  switch (kind) {
    case LoggingKind::kNone:
      return "none";
    case LoggingKind::kValue:
      return "value";
    case LoggingKind::kCommand:
      return "command";
  }
  return "unknown";
}

const char* LogSyncPolicyName(LogSyncPolicy policy) {
  switch (policy) {
    case LogSyncPolicy::kNone:
      return "none";
    case LogSyncPolicy::kFdatasync:
      return "fdatasync";
    case LogSyncPolicy::kODsync:
      return "odsync";
  }
  return "unknown";
}

LogManager::LogManager(LogManagerOptions options)
    : options_(std::move(options)) {}

LogManager::~LogManager() { Close(); }

Status LogManager::OpenSegment(uint64_t index) {
  file_ = options_.file_factory ? options_.file_factory()
                                : std::make_unique<PosixLogFile>();
  NEXT700_RETURN_IF_ERROR(
      file_->Open(LogSegmentPath(options_.dir, index),
                  options_.sync_policy == LogSyncPolicy::kODsync));
  // The segment's directory entry must be durable before any write to it
  // is acked: fdatasync/O_DSYNC cover the file's data, not the entry that
  // names it, and a vanished segment loses every txn acked against it.
  NEXT700_RETURN_IF_ERROR(SyncDir(options_.dir));
  segment_index_ = index;
  segment_written_ = 0;
  segments_opened_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::Open() {
  NEXT700_CHECK(!running_);
  NEXT700_RETURN_IF_ERROR(EnsureLogDir(options_.dir));
  // Resume the LSN space after the surviving history instead of truncating
  // it: recovery replays those segments, and our frames land after them.
  std::vector<LogSegment> history;
  NEXT700_RETURN_IF_ERROR(ListLogSegments(options_.dir, &history));
  if (!history.empty()) {
    // A crash can leave a torn frame only at the tail of the final
    // segment. Cut it off *now*: once we append a new segment, that
    // segment is no longer final, and recovery would report its crash
    // tail as corruption — permanently, for every later replay. A
    // complete frame with a bad checksum is real damage, never a torn
    // write; refuse to resume over it rather than silently truncate
    // acked transactions.
    LogSegment& last = history.back();
    uint64_t valid = 0;
    NEXT700_RETURN_IF_ERROR(ScanValidFramePrefix(last.path, &valid));
    if (valid < last.bytes) {
      NEXT700_RETURN_IF_ERROR(TruncateLogSegment(last.path, valid));
      last.bytes = valid;
    }
  }
  uint64_t existing_bytes = 0;
  uint64_t next_index = 0;
  for (const LogSegment& segment : history) {
    existing_bytes += segment.bytes;
    next_index = segment.index + 1;
  }
  appended_lsn_ = durable_lsn_ = existing_bytes;
  NEXT700_RETURN_IF_ERROR(OpenSegment(next_index));

  io_status_ = Status::OK();
  flusher_exited_ = false;
  stop_ = false;
  running_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::OK();
}

void LogManager::Close() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  flusher_cv_.notify_all();
  flusher_.join();
  running_ = false;
  if (file_ != nullptr) file_->Close();
  file_.reset();
}

Lsn LogManager::Append(LogRecordType type, const uint8_t* body,
                       size_t body_len) {
  // Checksum outside the critical section: the serial buffer is a measured
  // contention point (Aether), so only the memcpy happens under the mutex.
  const uint64_t checksum = FnvHashBytes(body, body_len);
  const uint32_t len_field = static_cast<uint32_t>(body_len);
  const uint32_t header_sum =
      FrameHeaderSum(len_field, static_cast<uint8_t>(type));
  Lsn end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LogWriter writer(&buffer_);
    writer.PutU32(len_field);
    writer.PutU8(static_cast<uint8_t>(type));
    writer.PutU32(header_sum);
    writer.PutBytes(body, body_len);
    writer.PutU64(checksum);
    appended_lsn_ += kFrameOverheadBytes + body_len;
    end = appended_lsn_;
  }
  return end;
}

void LogManager::SetDurableCallback(std::function<void(Lsn)> callback) {
  std::unique_lock<std::mutex> lock(callback_mu_);
  // From the flusher's own callback, skip the drain (it would self-wait);
  // from any other thread, wait out an in-flight invocation so the caller
  // can free whatever the old callback captured.
  if (std::this_thread::get_id() != flusher_tid_) {
    callback_cv_.wait(lock, [&] { return !callback_running_; });
  }
  durable_callback_ = std::move(callback);
}

Status LogManager::WaitDurable(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  flusher_cv_.notify_all();  // Give the flusher a nudge for low latency.
  flushed_cv_.wait(lock, [&] {
    return durable_lsn_ >= lsn || !io_status_.ok() || flusher_exited_;
  });
  if (durable_lsn_ >= lsn) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  return Status::Unavailable("log closed before lsn became durable");
}

Status LogManager::io_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_status_;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Lsn LogManager::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

Status LogManager::WriteAndSync(const std::vector<uint8_t>& batch) {
  // Rotation happens only between flushes, so every segment but the live
  // one ends on a frame boundary — recovery relies on this to treat a torn
  // frame in a non-final segment as corruption, not a crash tail.
  if (options_.segment_bytes > 0 && segment_written_ > 0 &&
      segment_written_ + batch.size() > options_.segment_bytes) {
    file_->Close();
    NEXT700_RETURN_IF_ERROR(OpenSegment(segment_index_ + 1));
  }
  NEXT700_RETURN_IF_ERROR(file_->Append(batch.data(), batch.size()));
  segment_written_ += batch.size();
  switch (options_.sync_policy) {
    case LogSyncPolicy::kNone:
      break;
    case LogSyncPolicy::kFdatasync:
      NEXT700_RETURN_IF_ERROR(file_->Sync());
      sync_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LogSyncPolicy::kODsync:
      // The O_DSYNC write itself was the barrier.
      sync_count_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (options_.device_latency_us > 0) {
    // Model the commit latency of a slower log device (NVM/SSD study knob;
    // EXPERIMENTS.md labels numbers produced this way as simulated).
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.device_latency_us));
  }
  return Status::OK();
}

void LogManager::FlusherLoop() {
  {
    // Publish our id under callback_mu_ before the first callback can
    // fire: SetDurableCallback reads it (under the same mutex) to detect
    // reentrant registration, and an unsynchronized write from Open()
    // would race with a callback that re-registers during the very first
    // flush.
    std::lock_guard<std::mutex> lock(callback_mu_);
    flusher_tid_ = std::this_thread::get_id();
  }
  std::vector<uint8_t> local;
  for (;;) {
    Lsn target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      flusher_cv_.wait_for(
          lock, std::chrono::microseconds(options_.flush_interval_us),
          [&] { return stop_ || !buffer_.empty(); });
      if (buffer_.empty()) {
        if (stop_) break;  // Residual buffer already drained.
        continue;
      }
      local.swap(buffer_);
      target = appended_lsn_;
    }
    const Status s = WriteAndSync(local);
    local.clear();
    if (!s.ok()) {
      // Sticky device failure: durable_lsn_ stops here; every waiter (and
      // every future WaitDurable) gets the error instead of an abort.
      {
        std::lock_guard<std::mutex> lock(mu_);
        io_status_ = s;
      }
      break;
    }
    flush_count_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      durable_lsn_ = target;
    }
    flushed_cv_.notify_all();
    // Invoke the durable callback outside callback_mu_ so a reentrant
    // SetDurableCallback from inside the callback cannot deadlock;
    // callback_running_ keeps external (re)registration teardown-safe.
    std::function<void(Lsn)> callback;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      callback = durable_callback_;
      callback_running_ = true;
    }
    if (callback) callback(target);
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      callback_running_ = false;
    }
    callback_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    flusher_exited_ = true;
  }
  flushed_cv_.notify_all();
}

}  // namespace next700
