#ifndef NEXT700_LOG_MANIFEST_H_
#define NEXT700_LOG_MANIFEST_H_

/// \file
/// The checkpoint MANIFEST: one small file in the checkpoint directory that
/// names the current durable (checkpoint, log-suffix) pair. Recovery reads
/// it first; everything else on disk — stale checkpoint files, tmp files
/// from a crashed install, log segments below the recorded base — is
/// garbage to be ignored or deleted.
///
///   * `checkpoint_file` + `start_lsn`: load that checkpoint, then replay
///     only log frames ending above start_lsn.
///   * `log_base_index` + `log_base_lsn`: the first retained log segment
///     and the LSN of its first byte. Segment retirement deletes whole
///     prefixes of the log, so LSN bookkeeping can no longer assume
///     segment 0 starts at LSN 0; the manifest carries the new origin.
///
/// The manifest is updated by complete replacement through
/// WriteFileAtomic (tmp + fsync + rename + dirsync), so a crash during the
/// update leaves the previous manifest intact and the previous pair
/// recoverable. An empty `checkpoint_file` is legal: it records log-base
/// bookkeeping before any checkpoint has completed (not used today, but
/// the reader accepts it).

#include <cstdint>
#include <string>

#include "common/status.h"
#include "log/log_manager.h"

namespace next700 {

struct CheckpointManifest {
  /// Monotonic checkpoint sequence number; names the checkpoint file.
  uint64_t checkpoint_seq = 0;
  /// Basename of the live checkpoint inside the checkpoint directory
  /// (e.g. "ckpt.000003"); empty = no checkpoint yet.
  std::string checkpoint_file;
  /// Replay skips log frames ending at or below this LSN.
  Lsn start_lsn = 0;
  /// First retained log segment index and the LSN of its first byte.
  uint64_t log_base_index = 0;
  Lsn log_base_lsn = 0;
};

/// `<dir>/MANIFEST`.
std::string ManifestPath(const std::string& dir);

/// `ckpt.NNNNNN` for sequence number `seq` (basename only).
std::string CheckpointFileName(uint64_t seq);

/// Reads and validates `<dir>/MANIFEST`. kNotFound when the file (or the
/// directory) does not exist — a fresh system; kCorruption when it exists
/// but fails its checksum or framing — never silently ignored, since a
/// wrong manifest silently loses acked transactions.
Status ReadManifest(const std::string& dir, CheckpointManifest* out);

/// Atomically replaces `<dir>/MANIFEST` (tmp + fsync + rename + dirsync).
/// `crash_hook` receives the installer's "mid-write" / "before-rename"
/// points (crash harness).
Status WriteManifestAtomic(
    const std::string& dir, const CheckpointManifest& manifest,
    const std::function<void(const char*)>& crash_hook = nullptr);

}  // namespace next700

#endif  // NEXT700_LOG_MANIFEST_H_
