#ifndef NEXT700_LOG_LOG_FILE_H_
#define NEXT700_LOG_LOG_FILE_H_

/// \file
/// The log device behind the LogManager: an append-only file with an
/// explicit durability barrier. The manager talks to this interface only,
/// which makes the physical backend injectable — PosixLogFile is the real
/// thing (write + fdatasync / O_DSYNC), and src/faultlog/ provides a
/// fault-injecting backend that can crash the process mid-write, tear a
/// write at a byte offset, or flip bits in flushed data for the
/// crash-consistency harness (tools/crashtest).
///
/// Also here: the on-disk segment naming shared by the manager (which
/// appends to `<dir>/log.NNNNNN` and rotates on a size threshold) and the
/// recovery path (which replays the segments of a directory in order).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace next700 {

namespace io {
class IoBackend;
}  // namespace io

/// Append-only log device. Append() must either write every byte or return
/// a non-OK status; Sync() is the durability barrier after which previously
/// appended bytes must survive a crash.
class LogFile {
 public:
  virtual ~LogFile() = default;

  /// Creates `path` (which must not already exist — segments are never
  /// reused) and opens it for appending. `o_dsync` requests synchronous
  /// writes (every Append is its own barrier; Sync becomes a no-op).
  virtual Status Open(const std::string& path, bool o_dsync) = 0;

  /// Writes all `len` bytes, retrying transient failures (EINTR/EAGAIN)
  /// and short writes. A non-OK return means the device is broken; the
  /// caller must treat the tail of the log as unwritten.
  virtual Status Append(const uint8_t* data, size_t len) = 0;

  /// Durability barrier (fdatasync). No-op under O_DSYNC.
  virtual Status Sync() = 0;

  virtual void Close() = 0;

  /// Barriers issued by this file: Sync() calls, or Append() calls when
  /// opened with O_DSYNC. Lets tests verify durability is real, not a
  /// sleep_for stand-in.
  virtual uint64_t sync_count() const = 0;

  /// write(2)-equivalent operations issued (syscall attempts in the posix
  /// path, write submissions in the uring path). 0 for synthetic devices
  /// that do not override it; the flusher turns this into the
  /// write-syscalls-per-txn series.
  virtual uint64_t write_count() const { return 0; }

  /// Submits the staged flush (`len` bytes) plus, when `barrier`, the
  /// durability barrier — batched into one kernel entry where the device
  /// and `io` support it (linked WRITE+FSYNC on a uring backend). The
  /// default routes through Append() + Sync(), so every existing subclass
  /// seam (fault injection, RawWrite shims) interposes unchanged; this is
  /// deliberate — crashtest's faults must keep firing no matter which
  /// backend the server runs.
  virtual Status SubmitAppend(io::IoBackend* io, const uint8_t* data,
                              size_t len, bool barrier) {
    (void)io;
    NEXT700_RETURN_IF_ERROR(Append(data, len));
    return barrier ? Sync() : Status::OK();
  }
};

/// Creates the backend for each newly opened segment. The default (an empty
/// factory) builds PosixLogFile.
using LogFileFactory = std::function<std::unique_ptr<LogFile>()>;

/// The real device: O_APPEND + fdatasync with EINTR/EAGAIN retry and
/// short-write continuation. RawWrite is virtual so tests can shim the
/// write syscall (EINTR storms, short writes, persistent EIO) without
/// touching the retry logic under test.
class PosixLogFile : public LogFile {
 public:
  ~PosixLogFile() override;

  Status Open(const std::string& path, bool o_dsync) override;
  Status Append(const uint8_t* data, size_t len) override;
  Status Sync() override;
  void Close() override;
  uint64_t sync_count() const override { return sync_count_; }
  uint64_t write_count() const override { return write_count_; }

 protected:
  /// Single write(2) attempt; returns the syscall result with errno intact.
  /// Overridden by fault/EINTR shims.
  virtual ssize_t RawWrite(const uint8_t* data, size_t len);

  int fd() const { return fd_; }
  bool o_dsync() const { return o_dsync_; }
  /// Counter hooks for subclasses whose writes/barriers bypass
  /// Append()/Sync() (the uring submission path).
  void CountWrite() { ++write_count_; }
  void CountSync() { ++sync_count_; }

 private:
  int fd_ = -1;
  bool o_dsync_ = false;
  uint64_t sync_count_ = 0;
  uint64_t write_count_ = 0;
};

/// Log device for the async spine: given a uring backend, the staged flush
/// and its barrier go down as a linked WRITE + FSYNC pair in one ring
/// submission (one kernel entry for write-and-barrier instead of two
/// syscalls). A short write severs the kernel-side link, so the remainder
/// (and the barrier) fall back to the posix retry loop — durability
/// semantics are identical to PosixLogFile's. Without a backend it *is*
/// a PosixLogFile.
class UringLogFile final : public PosixLogFile {
 public:
  Status SubmitAppend(io::IoBackend* io, const uint8_t* data, size_t len,
                      bool barrier) override;

  /// WRITE+FSYNC pairs that went down as one linked submission.
  uint64_t linked_submits() const { return linked_submits_; }

 private:
  uint64_t linked_submits_ = 0;
  uint64_t next_cookie_ = 1;  // Unique per-call cookies for the ring.
};

/// One on-disk segment of a log directory.
struct LogSegment {
  std::string path;
  uint64_t index = 0;
  uint64_t bytes = 0;
};

/// `<dir>/log.NNNNNN`.
std::string LogSegmentPath(const std::string& dir, uint64_t index);

/// Lists the `log.NNNNNN` segments of `dir`, sorted by index. A missing
/// directory is not an error (empty result): a fresh log has no history.
Status ListLogSegments(const std::string& dir, std::vector<LogSegment>* out);

/// Creates `dir` if missing (parent must exist). A freshly created
/// directory's entry is fsynced into its parent: fdatasync on a segment
/// persists the segment's data, not the mkdir that made it reachable.
Status EnsureLogDir(const std::string& dir);

/// fsync(2) on the directory itself — the barrier that makes freshly
/// created entries (new segments) survive power loss. fdatasync on the
/// segment fd does not cover the directory entry that names it.
Status SyncDir(const std::string& dir);

/// Scans `path` for the longest prefix of fully valid frames and returns
/// its length in `*valid_bytes`. An incomplete header, or an incomplete
/// body under a checksum-valid header, ends the scan (a legal torn tail);
/// a *complete* header or frame whose checksum disagrees is flushed-that-
/// way damage and returns kCorruption — truncating it would silently drop
/// acked transactions.
Status ScanValidFramePrefix(const std::string& path, uint64_t* valid_bytes);

/// ftruncate(2) `path` to `valid_bytes` and fsync the result. Used by
/// LogManager::Open to cut a crash's torn tail off the final surviving
/// segment before new segments make it non-final (recovery tolerates a
/// torn tail only in the final segment).
Status TruncateLogSegment(const std::string& path, uint64_t valid_bytes);

/// Deletes every `log.*` segment in `dir` and then the directory itself.
/// Benches and examples use this to reset between runs now that opening a
/// log no longer truncates history.
void RemoveLogDir(const std::string& dir);

/// Deletes every regular file in `dir` (non-recursive) and then `dir`
/// itself. Checkpoint directories hold MANIFEST + ckpt.NNNNNN files, so
/// RemoveLogDir's `log.*` filter does not cover them.
void RemoveDirContents(const std::string& dir);

/// Appends `len` bytes of `path` starting at byte `offset` to `*out` via
/// pread(2). Reading past EOF returns the bytes that exist (possibly none)
/// rather than an error: the log tail legitimately grows behind the reader.
/// ENOENT maps to kNotFound so callers racing segment retirement can tell
/// "gone" from "broken".
Status ReadFileRange(const std::string& path, uint64_t offset, uint64_t len,
                     std::vector<uint8_t>* out);

/// Reads all of `path` into `*out`, checking every seek/tell/read result:
/// a failed ftell must surface as kIOError, not become a ~SIZE_MAX resize
/// that kills the process with bad_alloc. Shared by recovery, checkpoint
/// load, and the manifest reader.
Status ReadFileFully(const std::string& path, std::vector<uint8_t>* out);

/// Crash-atomic file install: writes `len` bytes to `path + ".tmp"`,
/// fsyncs, renames over `path`, and fsyncs the parent directory. A crash
/// at any point leaves either the old file (or nothing) or the complete
/// new one — never a torn `path`. `crash_hook`, when set, is invoked with
/// the named points "mid-write" (half the payload written to the tmp
/// file) and "before-rename" (tmp complete and fsynced) so the crash
/// harness can kill the process inside the install.
Status WriteFileAtomic(
    const std::string& path, const uint8_t* data, size_t len,
    const std::function<void(const char*)>& crash_hook = nullptr);

}  // namespace next700

#endif  // NEXT700_LOG_LOG_FILE_H_
