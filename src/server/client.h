#ifndef NEXT700_SERVER_CLIENT_H_
#define NEXT700_SERVER_CLIENT_H_

/// \file
/// Blocking client for the networked transaction service, with explicit
/// pipelining: Send() queues any number of requests without waiting, and
/// Recv() returns responses in request order (the server guarantees
/// per-connection ordering). Every receive takes a deadline and returns
/// kDeadlineExceeded on expiry, kUnavailable when the server hangs up.
/// One Client per thread; instances are not thread-safe.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"

namespace next700 {
namespace server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the protocol handshake: sends a Hello declaring
  /// `role` and waits for the server's HelloAck (magic + version checked on
  /// both sides). A replication subscriber connects with PeerRole::kReplica.
  Status Connect(const std::string& host, uint16_t port,
                 PeerRole role = PeerRole::kClient);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Queues and writes one request frame. Blocks only if the socket buffer
  /// is full (the server applies backpressure by not reading).
  Status Send(const Request& request);

  /// Receives the next response (request order). `deadline_ms` < 0 waits
  /// forever.
  Status Recv(Response* response, int64_t deadline_ms = 5000);

  /// Unary convenience: Send + Recv and verify the echoed request id.
  Status Call(const Request& request, Response* response,
              int64_t deadline_ms = 5000);

  /// Receives the next frame of any type, copying its body into `*body`.
  /// The replication applier drains ReplBatch frames this way.
  Status RecvFrame(FrameType* type, std::vector<uint8_t>* body,
                   int64_t deadline_ms = 5000);

  /// Sends raw bytes as-is — protocol tests use this to inject malformed
  /// frames; not for normal use.
  Status SendRaw(const void* data, size_t len);

  /// Bytes received but not yet assembled into a complete frame. A receive
  /// loop that keeps hitting kDeadlineExceeded can distinguish an idle peer
  /// (0) from one stalled mid-frame (nonzero, unchanged across deadlines).
  size_t buffered_bytes() const { return decoder_.buffered_bytes(); }

  /// Relinquishes the connected socket (post-handshake) to the caller;
  /// the Client reverts to disconnected and will not close it. The
  /// multiplexed load generator handshakes through a Client, then drives
  /// the raw fd nonblocking.
  int ReleaseFd() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<uint8_t> send_buf_;
};

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_CLIENT_H_
