#include "server/protocol.h"

#include "log/log_record.h"

namespace next700 {
namespace server {

namespace {

void PutFrameHeader(FrameType type, uint32_t body_len,
                    std::vector<uint8_t>* out) {
  WireWriter writer(out);
  writer.PutU32(body_len);
  writer.PutU8(static_cast<uint8_t>(type));
}

}  // namespace

bool IsValidWireStatus(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
}

void EncodeRequest(const Request& request, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(request.request_id);
  writer.PutU32(request.proc_id);
  writer.PutU64(request.min_read_lsn);
  writer.PutU16(static_cast<uint16_t>(request.partitions.size()));
  writer.PutU32(static_cast<uint32_t>(request.args.size()));
  for (uint32_t p : request.partitions) writer.PutU32(p);
  writer.PutRaw(request.args.data(), request.args.size());
  PutFrameHeader(FrameType::kRequest, static_cast<uint32_t>(body.size()), out);
  out->insert(out->end(), body.begin(), body.end());
}

void EncodeResponse(const Response& response, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(response.request_id);
  writer.PutU8(static_cast<uint8_t>(response.status));
  writer.PutU64(response.commit_lsn);
  writer.PutU32(static_cast<uint32_t>(response.payload.size()));
  writer.PutRaw(response.payload.data(), response.payload.size());
  PutFrameHeader(FrameType::kResponse, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeRequest(const uint8_t* body, size_t len, Request* out) {
  WireReader reader(body, len);
  uint16_t num_partitions;
  uint32_t arg_len;
  if (!reader.GetU64(&out->request_id) || !reader.GetU32(&out->proc_id) ||
      !reader.GetU64(&out->min_read_lsn) ||
      !reader.GetU16(&num_partitions) || !reader.GetU32(&arg_len)) {
    return Status::InvalidArgument("truncated request header");
  }
  if (num_partitions > kMaxPartitionsPerRequest) {
    return Status::InvalidArgument("partition set too large");
  }
  out->partitions.resize(num_partitions);
  for (uint16_t i = 0; i < num_partitions; ++i) {
    if (!reader.GetU32(&out->partitions[i])) {
      return Status::InvalidArgument("truncated partition list");
    }
  }
  if (arg_len != reader.remaining()) {
    return Status::InvalidArgument("argument length mismatch");
  }
  out->args.resize(arg_len);
  if (arg_len > 0 && !reader.GetRaw(out->args.data(), arg_len)) {
    return Status::InvalidArgument("truncated arguments");
  }
  return Status::OK();
}

Status DecodeRequestView(const uint8_t* body, size_t len, RequestView* out) {
  WireReader reader(body, len);
  uint16_t num_partitions;
  uint32_t arg_len;
  if (!reader.GetU64(&out->request_id) || !reader.GetU32(&out->proc_id) ||
      !reader.GetU64(&out->min_read_lsn) ||
      !reader.GetU16(&num_partitions) || !reader.GetU32(&arg_len)) {
    return Status::InvalidArgument("truncated request header");
  }
  if (num_partitions > kMaxPartitionsPerRequest) {
    return Status::InvalidArgument("partition set too large");
  }
  if (reader.remaining() <
      static_cast<size_t>(num_partitions) * sizeof(uint32_t)) {
    return Status::InvalidArgument("truncated partition list");
  }
  for (uint16_t i = 0; i < num_partitions; ++i) {
    uint32_t ignored;
    reader.GetU32(&ignored);
  }
  if (arg_len != reader.remaining()) {
    return Status::InvalidArgument("argument length mismatch");
  }
  out->args = body + (len - arg_len);
  out->args_len = arg_len;
  return Status::OK();
}

Status DecodeResponse(const uint8_t* body, size_t len, Response* out) {
  WireReader reader(body, len);
  uint8_t status_code;
  uint32_t payload_len;
  if (!reader.GetU64(&out->request_id) || !reader.GetU8(&status_code) ||
      !reader.GetU64(&out->commit_lsn) || !reader.GetU32(&payload_len)) {
    return Status::InvalidArgument("truncated response header");
  }
  if (!IsValidWireStatus(status_code)) {
    return Status::InvalidArgument("unknown status code");
  }
  out->status = static_cast<StatusCode>(status_code);
  if (payload_len != reader.remaining()) {
    return Status::InvalidArgument("payload length mismatch");
  }
  out->payload.resize(payload_len);
  if (payload_len > 0 && !reader.GetRaw(out->payload.data(), payload_len)) {
    return Status::InvalidArgument("truncated payload");
  }
  return Status::OK();
}

void EncodeHello(const Hello& hello, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU32(hello.magic);
  writer.PutU8(hello.version);
  writer.PutU8(static_cast<uint8_t>(hello.role));
  PutFrameHeader(FrameType::kHello, static_cast<uint32_t>(body.size()), out);
  out->insert(out->end(), body.begin(), body.end());
}

void EncodeHelloAck(const HelloAck& ack, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU32(ack.magic);
  writer.PutU8(ack.version);
  PutFrameHeader(FrameType::kHelloAck, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

void EncodeReplBatch(const ReplBatch& batch, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(batch.start_lsn);
  writer.PutU64(batch.primary_durable_lsn);
  writer.PutU32(static_cast<uint32_t>(batch.frames.size()));
  writer.PutRaw(batch.frames.data(), batch.frames.size());
  writer.PutU64(FnvHashBytes(batch.frames.data(), batch.frames.size()));
  PutFrameHeader(FrameType::kReplBatch, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

void EncodeReplAck(const ReplAck& ack, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(ack.durable_lsn);
  writer.PutU64(ack.applied_lsn);
  PutFrameHeader(FrameType::kReplAck, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeHello(const uint8_t* body, size_t len, Hello* out) {
  WireReader reader(body, len);
  uint8_t role;
  if (!reader.GetU32(&out->magic) || !reader.GetU8(&out->version) ||
      !reader.GetU8(&role) || reader.remaining() != 0) {
    return Status::InvalidArgument("malformed hello");
  }
  if (out->magic != kWireMagic) {
    return Status::InvalidArgument("bad protocol magic: not a next700 peer");
  }
  if (out->version != kWireVersion) {
    return Status::InvalidArgument("protocol version mismatch: peer speaks " +
                                   std::to_string(out->version) +
                                   ", this node speaks " +
                                   std::to_string(kWireVersion));
  }
  if (role > static_cast<uint8_t>(PeerRole::kCoordinator)) {
    return Status::InvalidArgument("unknown peer role");
  }
  out->role = static_cast<PeerRole>(role);
  return Status::OK();
}

Status DecodeHelloAck(const uint8_t* body, size_t len, HelloAck* out) {
  WireReader reader(body, len);
  if (!reader.GetU32(&out->magic) || !reader.GetU8(&out->version) ||
      reader.remaining() != 0) {
    return Status::InvalidArgument("malformed hello ack");
  }
  if (out->magic != kWireMagic) {
    return Status::InvalidArgument("bad protocol magic: not a next700 peer");
  }
  if (out->version != kWireVersion) {
    return Status::InvalidArgument("protocol version mismatch: peer speaks " +
                                   std::to_string(out->version) +
                                   ", this node speaks " +
                                   std::to_string(kWireVersion));
  }
  return Status::OK();
}

Status DecodeReplBatch(const uint8_t* body, size_t len, ReplBatch* out) {
  WireReader reader(body, len);
  uint32_t frames_len;
  if (!reader.GetU64(&out->start_lsn) ||
      !reader.GetU64(&out->primary_durable_lsn) ||
      !reader.GetU32(&frames_len) || frames_len > reader.remaining()) {
    return Status::InvalidArgument("truncated repl batch header");
  }
  out->frames.resize(frames_len);
  uint64_t batch_sum;
  if ((frames_len > 0 && !reader.GetRaw(out->frames.data(), frames_len)) ||
      !reader.GetU64(&batch_sum) || reader.remaining() != 0) {
    return Status::InvalidArgument("truncated repl batch");
  }
  if (batch_sum != FnvHashBytes(out->frames.data(), out->frames.size())) {
    return Status::Corruption("repl batch checksum mismatch");
  }
  return Status::OK();
}

Status DecodeReplAck(const uint8_t* body, size_t len, ReplAck* out) {
  WireReader reader(body, len);
  if (!reader.GetU64(&out->durable_lsn) ||
      !reader.GetU64(&out->applied_lsn) || reader.remaining() != 0) {
    return Status::InvalidArgument("malformed repl ack");
  }
  return Status::OK();
}

void EncodePrepare(const Prepare& prepare, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(prepare.gtid);
  writer.PutU32(prepare.proc_id);
  writer.PutU16(static_cast<uint16_t>(prepare.partitions.size()));
  writer.PutU32(static_cast<uint32_t>(prepare.args.size()));
  for (uint32_t p : prepare.partitions) writer.PutU32(p);
  writer.PutRaw(prepare.args.data(), prepare.args.size());
  PutFrameHeader(FrameType::kPrepare, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodePrepare(const uint8_t* body, size_t len, Prepare* out) {
  WireReader reader(body, len);
  uint16_t num_partitions;
  uint32_t arg_len;
  if (!reader.GetU64(&out->gtid) || !reader.GetU32(&out->proc_id) ||
      !reader.GetU16(&num_partitions) || !reader.GetU32(&arg_len)) {
    return Status::InvalidArgument("truncated prepare header");
  }
  if (num_partitions > kMaxPartitionsPerRequest) {
    return Status::InvalidArgument("partition set too large");
  }
  out->partitions.resize(num_partitions);
  for (uint16_t i = 0; i < num_partitions; ++i) {
    if (!reader.GetU32(&out->partitions[i])) {
      return Status::InvalidArgument("truncated partition list");
    }
  }
  if (arg_len != reader.remaining()) {
    return Status::InvalidArgument("argument length mismatch");
  }
  out->args.resize(arg_len);
  if (arg_len > 0 && !reader.GetRaw(out->args.data(), arg_len)) {
    return Status::InvalidArgument("truncated arguments");
  }
  return Status::OK();
}

void EncodeVote(const Vote& vote, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(vote.gtid);
  writer.PutU8(static_cast<uint8_t>(vote.status));
  writer.PutU64(vote.prepare_lsn);
  PutFrameHeader(FrameType::kVote, static_cast<uint32_t>(body.size()), out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeVote(const uint8_t* body, size_t len, Vote* out) {
  WireReader reader(body, len);
  uint8_t status_code;
  if (!reader.GetU64(&out->gtid) || !reader.GetU8(&status_code) ||
      !reader.GetU64(&out->prepare_lsn) || reader.remaining() != 0) {
    return Status::InvalidArgument("malformed vote");
  }
  if (!IsValidWireStatus(status_code)) {
    return Status::InvalidArgument("unknown status code");
  }
  out->status = static_cast<StatusCode>(status_code);
  return Status::OK();
}

void EncodeDecision(FrameType type, const Decision& decision,
                    std::vector<uint8_t>* out) {
  NEXT700_CHECK(type == FrameType::kCommitDecision ||
                type == FrameType::kAbortDecision);
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(decision.gtid);
  PutFrameHeader(type, static_cast<uint32_t>(body.size()), out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeDecision(const uint8_t* body, size_t len, Decision* out) {
  WireReader reader(body, len);
  if (!reader.GetU64(&out->gtid) || reader.remaining() != 0) {
    return Status::InvalidArgument("malformed decision");
  }
  return Status::OK();
}

void EncodeDecisionAck(const DecisionAck& ack, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU64(ack.gtid);
  writer.PutU8(static_cast<uint8_t>(ack.status));
  PutFrameHeader(FrameType::kDecisionAck, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeDecisionAck(const uint8_t* body, size_t len, DecisionAck* out) {
  WireReader reader(body, len);
  uint8_t status_code;
  if (!reader.GetU64(&out->gtid) || !reader.GetU8(&status_code) ||
      reader.remaining() != 0) {
    return Status::InvalidArgument("malformed decision ack");
  }
  if (!IsValidWireStatus(status_code)) {
    return Status::InvalidArgument("unknown status code");
  }
  out->status = static_cast<StatusCode>(status_code);
  return Status::OK();
}

void EncodeInDoubtQuery(std::vector<uint8_t>* out) {
  PutFrameHeader(FrameType::kInDoubtQuery, 0, out);
}

void EncodeInDoubtList(const InDoubtList& list, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.PutU32(static_cast<uint32_t>(list.gtids.size()));
  for (uint64_t gtid : list.gtids) writer.PutU64(gtid);
  PutFrameHeader(FrameType::kInDoubtList, static_cast<uint32_t>(body.size()),
                 out);
  out->insert(out->end(), body.begin(), body.end());
}

Status DecodeInDoubtList(const uint8_t* body, size_t len, InDoubtList* out) {
  WireReader reader(body, len);
  uint32_t count;
  if (!reader.GetU32(&count) ||
      reader.remaining() != count * sizeof(uint64_t)) {
    return Status::InvalidArgument("malformed in-doubt list");
  }
  out->gtids.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.GetU64(&out->gtids[i])) {
      return Status::InvalidArgument("truncated in-doubt list");
    }
  }
  return Status::OK();
}

Status FrameDecoder::Next(Frame* frame, bool* have_frame) {
  *have_frame = false;
  // Compact once the consumed prefix dominates, so long-lived pipelined
  // connections do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Status::OK();
  const uint8_t* base = buffer_.data() + consumed_;
  // Explicit little-endian load: a memcpy here would read the length in
  // host byte order and misparse every frame from a cross-endian peer.
  const uint32_t body_len = LoadLE32(base);
  const uint8_t type = base[4];
  if (body_len > kMaxFrameBody) {
    return Status::InvalidArgument("oversized frame");
  }
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kInDoubtList)) {
    return Status::InvalidArgument("unknown frame type");
  }
  if (available < kFrameHeaderBytes + body_len) return Status::OK();
  frame->type = static_cast<FrameType>(type);
  frame->body = base + kFrameHeaderBytes;
  frame->body_len = body_len;
  consumed_ += kFrameHeaderBytes + body_len;
  *have_frame = true;
  return Status::OK();
}

}  // namespace server
}  // namespace next700
