#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>

#include "common/stats.h"

namespace next700 {
namespace server {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port,
                       PeerRole role) {
  NEXT700_CHECK(fd_ < 0);
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return Status::Unavailable("connect() failed: " +
                               std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Handshake: declare who we are, verify the peer is a same-version
  // next700 server before any request leaves this process.
  Hello hello;
  hello.role = role;
  send_buf_.clear();
  EncodeHello(hello, &send_buf_);
  NEXT700_RETURN_IF_ERROR(SendRaw(send_buf_.data(), send_buf_.size()));
  FrameType type;
  std::vector<uint8_t> body;
  Status s = RecvFrame(&type, &body, /*deadline_ms=*/5000);
  if (s.ok() && type != FrameType::kHelloAck) {
    s = Status::InvalidArgument("peer did not answer the handshake");
  }
  if (s.ok()) {
    HelloAck ack;
    s = DecodeHelloAck(body.data(), body.size(), &ack);
  }
  if (!s.ok()) Close();
  return s;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRaw(const void* data, size_t len) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Unavailable("send() failed: " +
                                 std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::Send(const Request& request) {
  send_buf_.clear();
  EncodeRequest(request, &send_buf_);
  return SendRaw(send_buf_.data(), send_buf_.size());
}

Status Client::Recv(Response* response, int64_t deadline_ms) {
  FrameType type;
  std::vector<uint8_t> body;
  NEXT700_RETURN_IF_ERROR(RecvFrame(&type, &body, deadline_ms));
  if (type != FrameType::kResponse) {
    Close();
    return Status::InvalidArgument("server sent a non-response frame");
  }
  return DecodeResponse(body.data(), body.size(), response);
}

Status Client::RecvFrame(FrameType* type, std::vector<uint8_t>* body,
                         int64_t deadline_ms) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  const uint64_t start_ns = NowNanos();
  for (;;) {
    Frame frame;
    bool have = false;
    NEXT700_RETURN_IF_ERROR(decoder_.Next(&frame, &have));
    if (have) {
      *type = frame.type;
      body->assign(frame.body, frame.body + frame.body_len);
      return Status::OK();
    }
    int timeout_ms = -1;
    if (deadline_ms >= 0) {
      const int64_t elapsed_ms =
          static_cast<int64_t>((NowNanos() - start_ns) / 1000000);
      if (elapsed_ms >= deadline_ms) {
        return Status::DeadlineExceeded("no response within deadline");
      }
      // Clamp before narrowing: a caller passing a huge deadline (e.g.
      // INT64_MAX "wait practically forever") must not wrap into a negative
      // poll timeout, which poll() treats as infinite even after the
      // deadline math says we should keep accounting.
      const int64_t remaining_ms = deadline_ms - elapsed_ms;
      timeout_ms = remaining_ms > INT_MAX ? INT_MAX
                                          : static_cast<int>(remaining_ms);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::IOError("poll() failed");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("no response within deadline");
    }
    uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    Close();
    return Status::Unavailable("server closed the connection");
  }
}

Status Client::Call(const Request& request, Response* response,
                    int64_t deadline_ms) {
  NEXT700_RETURN_IF_ERROR(Send(request));
  NEXT700_RETURN_IF_ERROR(Recv(response, deadline_ms));
  if (response->request_id != request.request_id) {
    Close();
    return Status::InvalidArgument("response for a different request id");
  }
  return Status::OK();
}

}  // namespace server
}  // namespace next700
